#!/usr/bin/env python3
"""Quickstart: simulate QCR on an opportunistic network in ~30 lines.

Builds the paper's homogeneous setting — 50 phones meeting at random, a
50-item catalog with Pareto popularity, 5 cache slots each — and compares
Query Counting Replication against a uniform fixed allocation and the
centralized optimum for a 10-minute step deadline.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    QCR,
    DemandModel,
    SimulationConfig,
    StepUtility,
    generate_requests,
    homogeneous_poisson_trace,
    opt_protocol,
    simulate,
    uni_protocol,
)

N_NODES, N_ITEMS, RHO, MU = 50, 50, 5, 0.05  # the paper's Section-6.2 setup
DURATION = 2000.0  # minutes


def main() -> None:
    # Content popularity (Pareto, omega=1) and user impatience (10-minute
    # deadline: a request fulfilled later is worthless).
    demand = DemandModel.pareto(N_ITEMS, omega=1.0, total_rate=4.0)
    utility = StepUtility(tau=10.0)

    # One realization of mobility and demand, shared by all protocols.
    trace = homogeneous_poisson_trace(N_NODES, MU, DURATION, seed=1)
    requests = generate_requests(demand, N_NODES, DURATION, seed=2)
    config = SimulationConfig(n_items=N_ITEMS, rho=RHO, utility=utility)

    protocols = {
        "OPT (centralized)": opt_protocol(
            demand, utility, MU, N_NODES, RHO, pure_p2p=True, n_clients=N_NODES
        ),
        "QCR (local info only)": QCR(utility, MU),
        "UNI (uniform cache)": uni_protocol(demand, N_NODES, RHO),
    }

    print(f"{'protocol':24s} {'utility/min':>12s} {'hit ratio':>10s} {'delay p50':>10s}")
    for name, protocol in protocols.items():
        result = simulate(trace, requests, config, protocol, seed=3)
        print(
            f"{name:24s} {result.gain_rate:12.4f} "
            f"{result.fulfillment_ratio:10.3f} {result.median_delay:9.2f}m"
        )


if __name__ == "__main__":
    main()
