#!/usr/bin/env python3
"""Design study: how user impatience reshapes the optimal cache.

Walks the analytic toolchain of Section 4 without any simulation:

1. sweep the power-impatience exponent ``alpha`` and print the optimal
   allocation of 250 cache slots over a 20-item catalog — from nearly
   uniform (very patient users) to winner-take-all (alpha -> 2);
2. verify the Property-1 balance condition ``d_i * phi(x_i) = const`` on
   each solution;
3. integrate the Eq. (7) replica dynamics to show QCR's fluid limit
   converging to the same point from a uniform start.

Run:  python examples/impatience_design.py
"""

from __future__ import annotations

import numpy as np

from repro.allocation import (
    balance_report,
    power_allocation_exponent,
    replica_dynamics,
    solve_relaxed,
)
from repro.demand import DemandModel
from repro.utility import power_family

N_SERVERS, RHO, MU = 50, 5, 0.05
N_ITEMS = 20
ALPHAS = (-2.0, -1.0, 0.0, 1.0, 1.5, 1.9)


def main() -> None:
    demand = DemandModel.pareto(N_ITEMS, omega=1.0)
    budget = float(RHO * N_SERVERS)

    print("== optimal allocation across the impatience spectrum ==")
    header = "alpha  exponent  " + "  ".join(f"x_{i:<2d}" for i in range(6))
    print(header + "  ...  balance spread")
    for alpha in ALPHAS:
        utility = power_family(alpha)
        counts = solve_relaxed(
            demand, utility, MU, N_SERVERS, budget
        ).counts
        report = balance_report(counts, demand, utility, MU, N_SERVERS)
        head = "  ".join(f"{c:4.1f}" for c in counts[:6])
        print(
            f"{alpha:5.1f}  {power_allocation_exponent(alpha):8.3f}  "
            f"{head}  ...  {report.relative_spread:.2e}"
        )

    print(
        "\nexponent = 1/(2-alpha): 0.25 (near-uniform) -> 0.5 (sqrt) ->"
        " 1 (proportional) -> 10 (winner-take-all)"
    )

    print("\n== Eq. (7) fluid dynamics: QCR converging to the optimum ==")
    utility = power_family(0.0)
    target = solve_relaxed(demand, utility, MU, N_SERVERS, budget).counts
    x0 = np.full(N_ITEMS, budget / N_ITEMS)
    result = replica_dynamics(
        x0, demand, utility, MU, N_SERVERS, RHO, t_end=20000.0, n_eval=6
    )
    print("t        " + "  ".join(f"x_{i:<2d}" for i in range(5)))
    for t, state in zip(result.times, result.trajectory):
        head = "  ".join(f"{c:4.1f}" for c in state[:5])
        print(f"{t:8.0f} {head}")
    print("target   " + "  ".join(f"{c:4.1f}" for c in target[:5]))


if __name__ == "__main__":
    main()
