#!/usr/bin/env python3
"""Podcast dissemination at a conference (the Podnet/Infocom setting).

Attendees' phones exchange podcast episodes over Bluetooth during a
three-day conference.  Contacts are heterogeneous (some attendees are far
more social) and strongly diurnal — nothing happens at night.  Episodes
lose value quickly: a session recording requested during the coffee break
is stale by the next morning (one-hour step deadline).

This example runs the Section-6.3 conference scenario: it generates the
synthetic Infocom'06-like trace, inspects its statistics, and compares
QCR against the fixed allocations, including the trace-aware submodular
OPT.

Run:  python examples/conference_podcast.py
"""

from __future__ import annotations

from repro.contacts import summarize
from repro.experiments import conference_scenario, run_scenario
from repro.utility import StepUtility

DEADLINE_MINUTES = 60.0
TRIALS = 3


def main() -> None:
    scenario = conference_scenario(StepUtility(DEADLINE_MINUTES))

    print("== synthetic conference trace (Infocom'06 substitute) ==")
    print(summarize(scenario.trace_factory(0)))
    print()

    print(
        f"running {TRIALS} trials x 6 protocols "
        f"(step deadline {DEADLINE_MINUTES:g} min)..."
    )
    comparison = run_scenario(scenario, n_trials=TRIALS, base_seed=5)

    print("\n== results (normalized loss vs OPT, higher is better) ==")
    ranked = sorted(
        comparison.losses().items(), key=lambda kv: kv[1], reverse=True
    )
    for name, loss in ranked:
        stats = comparison.stats[name]
        lo, hi = stats.interval
        print(
            f"{name:6s} loss {loss:+7.2f}%   "
            f"utility/min {stats.mean_gain_rate:8.4f} "
            f"[{lo:.4f}, {hi:.4f}]"
        )

    print(
        "\nReading: on a bursty, diurnal trace the demand-heavy"
        " allocations (PROP, DOM) close much of their homogeneous-case"
        " gap, SQRT loses its shine, and QCR stays competitive using"
        " only local query counts."
    )


if __name__ == "__main__":
    main()
