#!/usr/bin/env python3
"""Learning the impatience curve from live feedback (paper future work).

The paper assumes the delay-utility is known (e.g. from a survey); its
conclusion asks "how to estimate the delay-utility function implicitly
from user feedback".  This example closes that loop for the
advertising-revenue model:

1. the *true* impatience is an exponential-decay curve the operator does
   not know; the operator deploys QCR tuned to a wrong guess (users
   assumed patient: a one-hour deadline), so the protocol under-replicates
   popular items;
2. the deployment logs, for every fulfillment, the wait and whether the
   user actually consumed the content (a Bernoulli draw from the hidden
   true curve);
3. the operator fits a monotone consumption curve from the log
   (isotonic regression, :func:`estimate_consumption_curve`) and
   re-derives QCR's reaction function from the estimate via Property 2;
4. the redeployed system's utility approaches the fully-informed
   baseline.

Run:  python examples/feedback_estimation.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    QCR,
    DemandModel,
    SimulationConfig,
    StepUtility,
    generate_requests,
    homogeneous_poisson_trace,
    simulate,
)
from repro.utility import (
    ExponentialUtility,
    FeedbackSample,
    estimate_consumption_curve,
)

N, I, RHO, MU, T = 50, 50, 5, 0.05, 2500.0
TRUE_CURVE = ExponentialUtility(0.15)  # hidden from the operator


def main() -> None:
    demand = DemandModel.pareto(I, omega=1.0, total_rate=4.0)
    trace = homogeneous_poisson_trace(N, MU, T, seed=30)
    requests = generate_requests(demand, N, T, seed=31)
    # All runs are *scored* against the true curve.
    config = SimulationConfig(n_items=I, rho=RHO, utility=TRUE_CURVE)

    # Phase 1 — mis-tuned deployment, logging feedback.
    guess = StepUtility(60.0)
    phase1 = simulate(trace, requests, config, QCR(guess, MU), seed=32)
    rng = np.random.default_rng(33)
    consumption_probability = np.clip(
        np.asarray(TRUE_CURVE(np.maximum(phase1.delays, 1e-9))), 0.0, 1.0
    )
    log = [
        FeedbackSample(float(delay), bool(rng.random() < p))
        for delay, p in zip(phase1.delays, consumption_probability)
    ]

    # Phase 2 — fit the curve and redeploy QCR with it.
    learned = estimate_consumption_curve(log, n_bins=12)
    phase2 = simulate(trace, requests, config, QCR(learned, MU), seed=32)
    informed = simulate(trace, requests, config, QCR(TRUE_CURVE, MU), seed=32)

    print("== learning the impatience curve from feedback ==")
    print(f"true curve       : {TRUE_CURVE.name}")
    print(f"operator's guess : {guess.name}")
    print(f"feedback samples : {len(log)}")
    print(f"learned curve    : {learned.name}")
    print()
    print("consumption probability fit:")
    print(f"{'wait':>6s} {'true':>7s} {'learned':>8s}")
    for t in (1.0, 5.0, 10.0, 20.0, 40.0):
        print(f"{t:6.0f} {float(TRUE_CURVE(t)):7.3f} {float(learned(t)):8.3f}")
    print()
    print("utility per minute (scored against the true curve):")
    print(f"  QCR, guessed curve : {phase1.gain_rate:8.4f}")
    print(f"  QCR, learned curve : {phase2.gain_rate:8.4f}")
    print(f"  QCR, true curve    : {informed.gain_rate:8.4f}")


if __name__ == "__main__":
    main()
