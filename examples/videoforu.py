#!/usr/bin/env python3
"""VideoForU: the paper's motivating business scenario, end to end.

A startup distributes 15-minute episodes with embedded ads to subscribers'
phones over opportunistic contacts.  Revenue is earned whenever a user
actually watches a delivered episode — i.e. the delay-utility is the
probability a user still watches after waiting, which VideoForU has
measured by survey (a *tabulated* impatience curve, not a textbook
family).

This example shows the full design loop from Section 1:

1. fit the survey data into a :class:`TabulatedUtility`;
2. compute the optimal cache allocation and projected ad revenue for the
   planned fleet — the "break-even" check;
3. derive QCR's reaction function from the same curve (Property 2 works
   for *any* monotone utility) and validate by simulation that the
   distributed protocol approaches the centralized projection.

Run:  python examples/videoforu.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    QCR,
    DemandModel,
    QCRConfig,
    SimulationConfig,
    TabulatedUtility,
    generate_requests,
    greedy_homogeneous,
    homogeneous_poisson_trace,
    opt_protocol,
    prop_protocol,
    simulate,
)

# ----------------------------------------------------------------------
# Scenario: scaled-down VideoForU (50 subscribers, 50-episode catalog).
# ----------------------------------------------------------------------
N_USERS = 50
CATALOG = 50
CACHE_SLOTS = 5          # episodes donated per phone
MEETING_RATE = 0.05      # pairwise encounters per minute
DURATION = 3000.0        # minutes simulated (~2 days)
REQUESTS_PER_USER_HOUR = 5.0 / 60.0
REVENUE_PER_VIEW = 0.02  # dollars per watched ad


def survey_impatience() -> TabulatedUtility:
    """The measured probability of still watching after waiting t minutes.

    (Synthetic survey numbers: most users tolerate a few minutes; almost
    nobody watches content delivered hours late.)
    """
    wait_minutes = [0.0, 2.0, 5.0, 15.0, 60.0, 240.0]
    watch_probability = [1.0, 0.95, 0.80, 0.45, 0.10, 0.0]
    return TabulatedUtility(wait_minutes, watch_probability)


def main() -> None:
    utility = survey_impatience()
    total_rate = N_USERS * REQUESTS_PER_USER_HOUR
    demand = DemandModel.pareto(CATALOG, omega=1.0, total_rate=total_rate)

    # ------------------------------------------------------------------
    # 1. Centralized planning: optimal allocation + break-even estimate.
    # ------------------------------------------------------------------
    plan = greedy_homogeneous(
        demand, utility, MEETING_RATE, N_USERS, CACHE_SLOTS,
        pure_p2p=True, n_clients=N_USERS,
    )
    views_per_day = plan.welfare * 1440.0
    print("== centralized plan ==")
    print(f"optimal copies of top 5 episodes : {plan.counts[:5]}")
    print(f"projected watched episodes / day : {views_per_day:8.1f}")
    print(f"projected ad revenue / day       : ${views_per_day * REVENUE_PER_VIEW:8.2f}")
    print()

    # ------------------------------------------------------------------
    # 2. Validate the distributed protocol against the projection.
    # ------------------------------------------------------------------
    trace = homogeneous_poisson_trace(N_USERS, MEETING_RATE, DURATION, seed=10)
    requests = generate_requests(demand, N_USERS, DURATION, seed=11)
    config = SimulationConfig(
        n_items=CATALOG, rho=CACHE_SLOTS, utility=utility,
        request_timeout=240.0,  # users give up once the curve hits zero
    )

    contenders = {
        "OPT  (needs control channel)": opt_protocol(
            demand, utility, MEETING_RATE, N_USERS, CACHE_SLOTS,
            pure_p2p=True, n_clients=N_USERS,
        ),
        "QCR  (fully distributed)": QCR(utility, MEETING_RATE),
        "PROP (passive replication)": prop_protocol(
            demand, N_USERS, CACHE_SLOTS
        ),
    }
    print("== simulation ==")
    print(f"{'protocol':30s} {'views/day':>10s} {'revenue/day':>12s} {'vs plan':>8s}")
    for name, protocol in contenders.items():
        result = simulate(trace, requests, config, protocol, seed=12)
        daily_views = result.gain_rate * 1440.0
        ratio = daily_views / views_per_day
        print(
            f"{name:30s} {daily_views:10.1f} "
            f"${daily_views * REVENUE_PER_VIEW:10.2f} {ratio:8.1%}"
        )

    # ------------------------------------------------------------------
    # 3. The reaction function the phones actually run (Property 2).
    # ------------------------------------------------------------------
    print("\n== QCR reaction function psi(y) from the survey curve ==")
    for y in (1, 3, 10, 30, 100):
        psi = utility.psi(y, N_USERS, MEETING_RATE)
        print(f"query count {y:4d} -> replicate {psi:6.3f} copies on fulfill")


if __name__ == "__main__":
    main()
