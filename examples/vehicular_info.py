#!/usr/bin/env python3
"""Time-critical information sharing in a taxi fleet (Cabspotting setting).

Fifty cabs roam a city and exchange content whenever they pass within
200 m.  The content is *time-critical* — road hazards, fare hot-spots —
so the delay-utility is an inverse-power curve whose value is enormous
for near-instant delivery and still positive hours later.  Because
``h(0+) = inf``, this runs in the *dedicated-node* configuration implied
by the paper (Section 3.2): a subset of cabs act as carriers (servers)
for the rest.

The example builds the vehicular trace from actual simulated mobility
(random-waypoint cabs with home territories), extracts contacts, and
compares replication strategies.

Run:  python examples/vehicular_info.py
"""

from __future__ import annotations

import numpy as np

from repro.allocation import HeterogeneousProblem, greedy_heterogeneous
from repro.contacts import pair_rate_matrix, summarize
from repro.contacts.synthetic import VehicularTraceConfig, vehicular_trace
from repro.demand import DemandModel, generate_requests
from repro.protocols import QCR, StaticAllocation, prop_protocol, uni_protocol
from repro.sim import SimulationConfig, simulate
from repro.utility import PowerUtility

N_CABS = 50
N_SERVERS = 25  # dedicated carrier cabs
N_ITEMS = 40
RHO = 4
ALPHA = 1.5  # time-critical impatience


def main() -> None:
    config = VehicularTraceConfig(n_nodes=N_CABS)
    trace = vehicular_trace(config, seed=20)
    print("== synthetic taxi trace (Cabspotting substitute) ==")
    print(summarize(trace))

    utility = PowerUtility(ALPHA)
    demand = DemandModel.pareto(N_ITEMS, omega=1.0, total_rate=2.0)
    servers = tuple(range(N_SERVERS))
    clients = tuple(range(N_SERVERS, N_CABS))
    sim_config = SimulationConfig(
        n_items=N_ITEMS,
        rho=RHO,
        utility=utility,
        servers=servers,
        clients=clients,
    )
    requests = generate_requests(
        demand, N_CABS, trace.duration, seed=21
    ).sliced(0.0, trace.duration)
    # Requests must come from client cabs only: remap by modulo.
    remapped = requests.nodes % len(clients) + N_SERVERS
    from repro.demand import RequestSchedule

    requests = RequestSchedule(
        times=requests.times,
        items=requests.items,
        nodes=remapped,
        duration=requests.duration,
    )

    # Trace-aware OPT: estimate carrier->client contact rates and run the
    # submodular greedy (Theorem 1 / Section 6.1).
    rates = pair_rate_matrix(trace)[np.ix_(list(servers), list(clients))]
    problem = HeterogeneousProblem(
        demand=demand,
        utility=utility,
        rate_matrix=rates,
        rho=RHO,
        rate_floor=1.0 / trace.duration,
    )
    opt = StaticAllocation(
        allocation=greedy_heterogeneous(problem).allocation, name="OPT"
    )

    mu_estimate = max(trace.mean_pair_rate, 1e-6)
    contenders = {
        "OPT": opt,
        "QCR": QCR(utility, mu_estimate),
        "PROP": prop_protocol(demand, N_SERVERS, RHO),
        "UNI": uni_protocol(demand, N_SERVERS, RHO),
    }

    print("\n== dedicated-carrier simulation (inverse power alpha=1.5) ==")
    print(f"{'protocol':6s} {'utility/min':>12s} {'hit ratio':>10s} {'p95 delay':>10s}")
    for name, protocol in contenders.items():
        result = simulate(trace, requests, sim_config, protocol, seed=22)
        print(
            f"{name:6s} {result.gain_rate:12.4f} "
            f"{result.fulfillment_ratio:10.3f} {result.p95_delay:9.1f}m"
        )

    print(
        "\nReading: with h(0+) unbounded, prompt delivery dominates the"
        " objective; allocations skew hard toward popular items"
        " (exponent 1/(2-alpha) = 2), and trace-aware OPT exploits the"
        " cabs' territorial meeting structure."
    )


if __name__ == "__main__":
    main()
