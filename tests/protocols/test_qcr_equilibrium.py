"""Integration tests: QCR's long-run allocation tracks the optimum.

These are the simulation-level counterparts of Property 2: with the
Table-1 reaction function (plus the pure-P2P correction), QCR's
time-averaged replica counts should correlate strongly with the relaxed
optimal allocation, and the achieved utility should beat naive
allocations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocation import solve_relaxed
from repro.contacts import homogeneous_poisson_trace
from repro.demand import DemandModel, generate_requests
from repro.protocols import QCR, QCRConfig, uni_protocol
from repro.sim import SimulationConfig, simulate
from repro.utility import PowerUtility, StepUtility

N, I, RHO, MU, T = 30, 20, 3, 0.08, 3000.0


@pytest.fixture(scope="module")
def environment():
    demand = DemandModel.pareto(I, omega=1.0, total_rate=3.0)
    trace = homogeneous_poisson_trace(N, MU, T, seed=31)
    requests = generate_requests(demand, N, T, seed=32)
    return demand, trace, requests


@pytest.mark.parametrize(
    "utility,qcr_config",
    [
        (StepUtility(5.0), QCRConfig()),
        (PowerUtility(0.0), QCRConfig(psi_scale=0.1)),
    ],
    ids=["step", "power0"],
)
def test_allocation_tracks_relaxed_optimum(environment, utility, qcr_config):
    demand, trace, requests = environment
    config = SimulationConfig(
        n_items=I, rho=RHO, utility=utility, record_interval=100.0
    )
    result = simulate(
        trace, requests, config, QCR(utility, MU, qcr_config), seed=33
    )
    half = len(result.snapshot_counts) // 2
    average = result.snapshot_counts[half:].mean(axis=0)
    target = solve_relaxed(demand, utility, MU, N, budget=float(RHO * N)).counts
    correlation = np.corrcoef(average, target)[0, 1]
    assert correlation > 0.85
    # The most popular item must hold clearly more replicas than the tail.
    assert average[0] > 1.5 * average[-1]


def test_qcr_beats_uniform_for_step(environment):
    demand, trace, requests = environment
    utility = StepUtility(3.0)
    config = SimulationConfig(n_items=I, rho=RHO, utility=utility)
    qcr = simulate(trace, requests, config, QCR(utility, MU), seed=34)
    uni = simulate(
        trace, requests, config, uni_protocol(demand, N, RHO), seed=34
    )
    assert qcr.gain_rate > uni.gain_rate


def test_mandate_routing_bounds_outstanding_mandates(environment):
    demand, trace, requests = environment
    utility = PowerUtility(0.0)
    config = SimulationConfig(
        n_items=I, rho=RHO, utility=utility, record_interval=100.0
    )
    with_routing = simulate(
        trace,
        requests,
        config,
        QCR(utility, MU, QCRConfig(psi_scale=0.5)),
        seed=35,
    )
    without_routing = simulate(
        trace,
        requests,
        config,
        QCR(utility, MU, QCRConfig(psi_scale=0.5, mandate_routing=False)),
        seed=35,
    )
    routed_tail = with_routing.snapshot_mandates[-3:].sum()
    stranded_tail = without_routing.snapshot_mandates[-3:].sum()
    # The Figure-3 divergence: stranded mandates accumulate without
    # routing, by an order of magnitude or more.
    assert stranded_tail > 5 * max(routed_tail, 1)
