"""Tests for the fixed-allocation competitor protocols."""

from __future__ import annotations

import numpy as np
import pytest

from repro.contacts import homogeneous_poisson_trace
from repro.demand import DemandModel, generate_requests
from repro.errors import ConfigurationError
from repro.protocols import (
    StaticAllocation,
    dom_protocol,
    opt_protocol,
    prop_protocol,
    sqrt_protocol,
    uni_protocol,
)
from repro.sim import Simulation, SimulationConfig
from repro.utility import StepUtility

N, I, RHO, MU = 10, 8, 2, 0.1


@pytest.fixture
def demand():
    return DemandModel.pareto(I, omega=1.0, total_rate=1.0)


@pytest.fixture
def environment(demand):
    trace = homogeneous_poisson_trace(N, MU, 100.0, seed=1)
    requests = generate_requests(demand, N, 100.0, seed=2)
    config = SimulationConfig(n_items=I, rho=RHO, utility=StepUtility(5.0))
    return trace, requests, config


def initial_counts(protocol, environment):
    trace, requests, config = environment
    sim = Simulation(trace, requests, config, protocol, seed=3)
    return sim.counts.copy()


class TestBuilders:
    def test_uni_counts(self, demand, environment):
        counts = initial_counts(uni_protocol(demand, N, RHO), environment)
        assert counts.sum() == RHO * N
        assert counts.max() - counts.min() <= 1  # as even as possible

    def test_prop_counts(self, demand, environment):
        counts = initial_counts(prop_protocol(demand, N, RHO), environment)
        assert counts.sum() == RHO * N
        # Ratio roughly follows demand, up to integer rounding.
        assert counts[0] > counts[-1]

    def test_sqrt_between_uni_and_prop(self, demand, environment):
        uni = initial_counts(uni_protocol(demand, N, RHO), environment)
        sqrt = initial_counts(sqrt_protocol(demand, N, RHO), environment)
        prop = initial_counts(prop_protocol(demand, N, RHO), environment)
        assert uni.std() <= sqrt.std() <= prop.std()

    def test_dom_counts(self, demand, environment):
        counts = initial_counts(dom_protocol(demand, N, RHO), environment)
        assert counts[:RHO].tolist() == [N, N]
        assert counts[RHO:].sum() == 0

    def test_opt_counts_match_greedy(self, demand, environment):
        from repro.allocation import greedy_homogeneous

        protocol = opt_protocol(demand, StepUtility(5.0), MU, N, RHO)
        counts = initial_counts(protocol, environment)
        greedy = greedy_homogeneous(demand, StepUtility(5.0), MU, N, RHO)
        assert np.array_equal(np.sort(counts), np.sort(greedy.counts))

    def test_names(self, demand):
        assert uni_protocol(demand, N, RHO).name == "UNI"
        assert sqrt_protocol(demand, N, RHO).name == "SQRT"
        assert prop_protocol(demand, N, RHO).name == "PROP"
        assert dom_protocol(demand, N, RHO).name == "DOM"
        assert opt_protocol(demand, StepUtility(1.0), MU, N, RHO).name == "OPT"


class TestStaticAllocation:
    def test_requires_exactly_one_input(self):
        with pytest.raises(ConfigurationError):
            StaticAllocation()
        with pytest.raises(ConfigurationError):
            StaticAllocation(
                counts=np.ones(3, dtype=np.int64),
                allocation=np.ones((3, 2), dtype=np.int8),
            )

    def test_explicit_matrix_used_verbatim(self, environment):
        trace, requests, config = environment
        allocation = np.zeros((I, N), dtype=np.int8)
        allocation[0, :4] = 1
        sim = Simulation(
            trace,
            requests,
            config,
            StaticAllocation(allocation=allocation),
            seed=4,
        )
        assert sim.counts[0] == 4
        assert sim.counts[1:].sum() == 0

    def test_no_dynamics(self, environment):
        trace, requests, config = environment
        allocation = np.zeros((I, N), dtype=np.int8)
        allocation[0] = 1
        allocation[1] = 1
        sim = Simulation(
            trace, requests, config, StaticAllocation(allocation=allocation), seed=5
        )
        result = sim.run()
        assert np.array_equal(result.final_counts, allocation.sum(axis=1))
