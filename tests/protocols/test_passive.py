"""Tests for passive (cache-on-fulfill) replication."""

from __future__ import annotations

import numpy as np
import pytest

from repro.contacts import homogeneous_poisson_trace
from repro.demand import DemandModel, generate_requests
from repro.protocols import PassiveReplication
from repro.sim import Simulation, SimulationConfig
from repro.utility import StepUtility


@pytest.fixture
def environment():
    demand = DemandModel.pareto(8, omega=1.5, total_rate=4.0)
    trace = homogeneous_poisson_trace(12, 0.1, 800.0, seed=21)
    requests = generate_requests(demand, 12, 800.0, seed=22)
    config = SimulationConfig(
        n_items=8, rho=2, utility=StepUtility(10.0), record_interval=50.0
    )
    return demand, trace, requests, config


class TestPassive:
    def test_replicates_on_fulfill(self, environment):
        demand, trace, requests, config = environment
        result = Simulation(
            trace, requests, config, PassiveReplication(), seed=23
        ).run()
        # Caches stay full; the allocation must have drifted from seed
        # towards popularity (top item gains replicas).
        assert result.snapshot_counts.sum(axis=1).max() <= 2 * 12
        assert result.final_counts[0] > result.final_counts[-1]

    def test_drifts_toward_proportional(self, environment):
        """Passive replication converges to ~proportional allocation,
        the equilibrium the paper attributes to it (Section 6.2)."""
        demand, trace, requests, config = environment
        result = Simulation(
            trace, requests, config, PassiveReplication(), seed=24
        ).run()
        half = len(result.snapshot_counts) // 2
        average = result.snapshot_counts[half:].mean(axis=0)
        # Correlate long-run average counts with demand (both centered).
        correlation = np.corrcoef(average, demand.rates)[0, 1]
        assert correlation > 0.8

    def test_name(self):
        assert PassiveReplication().name == "PASSIVE"
