"""Unit tests for Query Counting Replication mechanics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.contacts import ContactTrace
from repro.demand import RequestSchedule
from repro.errors import ConfigurationError
from repro.protocols import QCR, QCRConfig
from repro.sim import Simulation, SimulationConfig
from repro.utility import PowerUtility, StepUtility


def trace_of(events, n_nodes=4, duration=100.0):
    times, a, b = zip(*events) if events else ((), (), ())
    return ContactTrace(
        times=np.asarray(times, dtype=float),
        node_a=np.asarray(a, dtype=np.int64),
        node_b=np.asarray(b, dtype=np.int64),
        n_nodes=n_nodes,
        duration=duration,
    )


def requests_of(events, duration=100.0):
    times, items, nodes = zip(*events) if events else ((), (), ())
    return RequestSchedule(
        times=np.asarray(times, dtype=float),
        items=np.asarray(items, dtype=np.int64),
        nodes=np.asarray(nodes, dtype=np.int64),
        duration=duration,
    )


def build_sim(trace, requests, protocol, *, n_items=4, rho=2, seed=0,
              utility=None):
    config = SimulationConfig(
        n_items=n_items,
        rho=rho,
        utility=utility or StepUtility(10.0),
    )
    return Simulation(trace, requests, config, protocol, seed=seed)


class TestConfigValidation:
    def test_defaults(self):
        config = QCRConfig()
        assert config.mandate_routing
        assert config.pure_correction
        assert config.psi_scale == 1.0

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            QCRConfig(psi_scale=0.0)
        with pytest.raises(ConfigurationError):
            QCRConfig(sticky_share=0.2)
        with pytest.raises(ConfigurationError):
            QCRConfig(max_mandates_per_request=0)
        with pytest.raises(ConfigurationError):
            QCRConfig(max_replications_per_contact=0)

    def test_protocol_rejects_bad_mu(self):
        with pytest.raises(ConfigurationError):
            QCR(StepUtility(1.0), 0.0)

    def test_name_reflects_routing(self):
        assert QCR(StepUtility(1.0), 0.1).name == "QCR"
        assert (
            QCR(StepUtility(1.0), 0.1, QCRConfig(mandate_routing=False)).name
            == "QCRWOM"
        )


class TestReaction:
    def test_dedicated_reaction_matches_psi(self):
        """Without the pure correction, reaction == Table-1 psi."""
        utility = StepUtility(10.0)
        protocol = QCR(utility, 0.1, QCRConfig(pure_correction=False))
        sim = build_sim(
            trace_of([]), requests_of([]), protocol, utility=utility
        )
        for y in (1, 4, 20):
            assert protocol.reaction(y, sim) == pytest.approx(
                utility.psi(y, sim.n_servers, 0.1)
            )

    def test_pure_correction_adds_positive_term(self):
        utility = StepUtility(10.0)
        plain = QCR(utility, 0.1, QCRConfig(pure_correction=False))
        corrected = QCR(utility, 0.1, QCRConfig(pure_correction=True))
        sim_plain = build_sim(
            trace_of([]), requests_of([]), plain, utility=utility
        )
        sim_corr = build_sim(
            trace_of([]), requests_of([]), corrected, utility=utility, seed=0
        )
        for y in (2, 5, 20):
            assert corrected.reaction(y, sim_corr) > plain.reaction(
                y, sim_plain
            )

    def test_correction_formula(self):
        """psi_pure(y) = psi(y) + (x/N) L(mu x)/(1 - x/N), x = S/max(y,2)."""
        utility = StepUtility(10.0)
        mu = 0.1
        protocol = QCR(utility, mu)
        sim = build_sim(trace_of([]), requests_of([]), protocol, utility=utility)
        n = sim.n_servers
        y = 5.0
        x = n / y
        expected = utility.psi(y, n, mu) + (x / n) * utility.laplace_c(
            mu * x
        ) / (1 - x / n)
        assert protocol.reaction(y, sim) == pytest.approx(expected)

    def test_correction_disabled_in_dedicated_mode(self):
        utility = StepUtility(10.0)
        protocol = QCR(utility, 0.1)
        config = SimulationConfig(
            n_items=2, rho=2, utility=utility, servers=(0, 1), clients=(2, 3)
        )
        sim = Simulation(
            trace_of([]), requests_of([]), config, protocol, seed=0
        )
        assert protocol.reaction(4, sim) == pytest.approx(
            utility.psi(4, sim.n_servers, 0.1)
        )

    def test_psi_scale_applied(self):
        utility = StepUtility(10.0)
        base = QCR(utility, 0.1, QCRConfig(pure_correction=False))
        scaled = QCR(
            utility, 0.1, QCRConfig(pure_correction=False, psi_scale=0.25)
        )
        sim_a = build_sim(trace_of([]), requests_of([]), base, utility=utility)
        sim_b = build_sim(trace_of([]), requests_of([]), scaled, utility=utility)
        assert scaled.reaction(4, sim_b) == pytest.approx(
            0.25 * base.reaction(4, sim_a)
        )

    def test_randomized_round_unbiased(self):
        rng = np.random.default_rng(11)
        draws = [QCR._randomized_round(2.3, rng) for _ in range(4000)]
        assert set(draws) <= {2, 3}
        assert np.mean(draws) == pytest.approx(2.3, abs=0.05)


class TestAdaptiveRate:
    def test_falls_back_before_enough_observations(self):
        utility = StepUtility(10.0)
        protocol = QCR(
            utility, 0.1, QCRConfig(adaptive_mu=True, min_rate_observations=5)
        )
        sim = build_sim(trace_of([]), requests_of([]), protocol, utility=utility)
        assert protocol.local_rate(sim, 0, 10.0) == 0.1

    def test_estimates_from_observed_contacts(self):
        utility = StepUtility(10.0)
        protocol = QCR(
            utility, 0.1, QCRConfig(adaptive_mu=True, min_rate_observations=3)
        )
        sim = build_sim(trace_of([]), requests_of([]), protocol, utility=utility)
        protocol._contact_counts[0] = 6
        # 6 contacts in 20 time units over 3 possible partners.
        assert protocol.local_rate(sim, 0, 20.0) == pytest.approx(
            6 / (20.0 * 3)
        )

    def test_disabled_by_default(self):
        utility = StepUtility(10.0)
        protocol = QCR(utility, 0.1)
        sim = build_sim(trace_of([]), requests_of([]), protocol, utility=utility)
        protocol._contact_counts[0] = 1000
        assert protocol.local_rate(sim, 0, 1.0) == 0.1

    def test_contacts_counted_during_run(self):
        utility = StepUtility(10.0)
        protocol = QCR(utility, 0.1, QCRConfig(adaptive_mu=True))
        trace = trace_of([(1.0, 0, 1), (2.0, 0, 2), (3.0, 0, 1)])
        sim = build_sim(trace, requests_of([]), protocol, utility=utility)
        sim.run()
        assert protocol._contact_counts[0] == 3
        assert protocol._contact_counts[1] == 2
        assert protocol._contact_counts[2] == 1

    def test_reaction_uses_override_rate(self):
        utility = StepUtility(10.0)
        protocol = QCR(utility, 0.1, QCRConfig(pure_correction=False))
        sim = build_sim(trace_of([]), requests_of([]), protocol, utility=utility)
        assert protocol.reaction(4, sim, mu=0.5) == pytest.approx(
            utility.psi(4, sim.n_servers, 0.5)
        )

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            QCRConfig(min_rate_observations=0)


class TestQueryCounting:
    def test_counter_counts_meetings_until_fulfilled(self):
        """The example of Section 5.1: fulfilled on the k-th meeting ->
        counter k."""
        utility = StepUtility(10.0)
        protocol = QCR(utility, 0.1, QCRConfig(pure_correction=False))
        observed = []

        original = protocol.on_fulfill

        def spy(sim, t, requester, provider, item, counter):
            observed.append(counter)
            original(sim, t, requester, provider, item, counter)

        protocol.on_fulfill = spy
        # Node 0 requests item held only by node 3; meets 1, 2, then 3.
        trace = trace_of([(2.0, 0, 1), (3.0, 0, 2), (4.0, 0, 3)])
        requests = requests_of([(1.0, 0, 0)])
        sim = build_sim(trace, requests, protocol, utility=utility, seed=5)
        # Force a known allocation: only node 3 holds item 0.
        for node in sim.nodes:
            cache = node.cache
            for item in list(cache):
                pass
        # Rebuild deterministically instead: find where item 0 is and move it.
        # Simpler: run and check the counter equals the number of meetings
        # of node 0 up to the fulfilling one.
        sim.run()
        assert observed, "request should eventually be fulfilled"
        assert observed[0] >= 1


class TestMandateLifecycle:
    def make_controlled_sim(self, *, routing=True, pull=False):
        """Node 1 holds item 0 (sticky); node 0 requests it and meets 1."""
        utility = StepUtility(10.0)
        protocol = QCR(
            utility,
            0.1,
            QCRConfig(
                mandate_routing=routing,
                pure_correction=False,
                psi_scale=1.0,
                pull_execution=pull,
                cache_on_fulfill=False,
            ),
        )
        trace = trace_of([(2.0, 0, 1), (5.0, 1, 2), (6.0, 1, 3)])
        requests = requests_of([(1.0, 0, 0)])
        # Scan seeds for an initial allocation where the requester (node 0)
        # lacks item 0 and the provider (node 1) holds it.
        for seed in range(500):
            sim = build_sim(trace, requests, protocol, utility=utility, seed=seed)
            if sim.nodes[1].has_item(0) and all(
                not sim.nodes[k].has_item(0) for k in (0, 2, 3)
            ):
                return sim, protocol
        raise AssertionError("no suitable seed found")

    def test_routing_hands_mandates_to_provider(self):
        sim, protocol = self.make_controlled_sim(routing=True)
        # Patch the reaction so exactly 3 mandates are created.
        protocol.reaction = lambda y, s, mu=None: 3.0
        result = sim.run()
        # After the run the mandates were routed to copy holders and
        # executed on later contacts; the requester should not be the
        # only mandate holder.
        totals = protocol.mandate_totals(sim)
        assert totals.sum() < 3  # some executed

    def test_without_routing_mandates_strand(self):
        sim, protocol = self.make_controlled_sim(routing=False)
        protocol.reaction = lambda y, s, mu=None: 3.0
        sim.run()
        # cache_on_fulfill=False and no routing: the requester keeps all
        # mandates and can never execute them (it never holds the item).
        requester = sim.nodes[0]
        assert requester.mandates.get(0, 0) == 3

    def test_pull_execution_rescues_stranded_mandates(self):
        sim, protocol = self.make_controlled_sim(routing=False, pull=True)
        protocol.reaction = lambda y, s, mu=None: 3.0
        trace = trace_of([(2.0, 0, 1), (5.0, 0, 1)])
        # Rebuild with a second meeting between requester and holder.
        utility = StepUtility(10.0)
        sim = build_sim(trace, requests_of([(1.0, 0, 0)]), protocol,
                        utility=utility, seed=7)
        sim.run()
        requester = sim.nodes[0]
        # The second meeting lets the requester pull a copy for itself.
        assert requester.mandates.get(0, 0) < 3

    def test_mandate_cap(self):
        utility = PowerUtility(-1.0)  # psi grows ~ y^2: huge bursts
        protocol = QCR(
            utility,
            0.1,
            QCRConfig(pure_correction=False, max_mandates_per_request=2),
        )
        trace = trace_of([(t, 0, n) for t, n in zip(range(2, 40), [1, 2, 3] * 13)])
        requests = requests_of([(1.0, 0, 0)])
        sim = build_sim(trace, requests, protocol, utility=utility, seed=8)
        created = []

        original_round = protocol._randomized_round

        sim.run()
        # No single fulfillment may have created more than the cap.
        totals = protocol.mandate_totals(sim)
        assert totals.max() <= 2


class TestStickyPreference:
    def test_sticky_gets_two_thirds_when_both_hold(self):
        utility = StepUtility(10.0)
        protocol = QCR(utility, 0.1, QCRConfig(pure_correction=False))
        trace = trace_of([(1.0, 0, 1)])
        sim = build_sim(trace, requests_of([]), protocol, utility=utility, seed=9)
        node0, node1 = sim.nodes[0], sim.nodes[1]
        # Construct the dual-holder state: node 0 is the sticky owner of
        # its pinned item; ensure node 1 also caches that item.
        item = node0.cache.sticky
        assert item is not None and sim.sticky_node_of(item) == 0
        if not node1.has_item(item):
            assert sim.insert_copy(node1, item)
        node0.mandates[item] = 6
        node1.mandates[item] = 3
        protocol._route(sim, node0, node1)
        assert node0.mandates[item] == 6  # round(2/3 * 9)
        assert node1.mandates[item] == 3

    def test_single_holder_takes_all(self):
        utility = StepUtility(10.0)
        protocol = QCR(utility, 0.1, QCRConfig(pure_correction=False))
        sim = build_sim(
            trace_of([]), requests_of([]), protocol, utility=utility, seed=10
        )
        node0, node1 = sim.nodes[0], sim.nodes[1]
        # Choose an item only node1 holds.
        item = next(i for i in node1.cache if i not in node0.cache)
        node0.mandates[item] = 4
        protocol._route(sim, node0, node1)
        assert node0.mandates.get(item, 0) == 0
        assert node1.mandates[item] == 4

    def test_neither_holds_even_split(self):
        utility = StepUtility(10.0)
        protocol = QCR(utility, 0.1, QCRConfig(pure_correction=False))
        sim = build_sim(
            trace_of([]), requests_of([]), protocol, utility=utility, seed=11
        )
        node0, node1 = sim.nodes[0], sim.nodes[1]
        item = next(
            i for i in range(4) if i not in node0.cache and i not in node1.cache
        )
        node0.mandates[item] = 4
        protocol._route(sim, node0, node1)
        assert node0.mandates.get(item, 0) == 2
        assert node1.mandates.get(item, 0) == 2


class TestReplicaConservation:
    def test_total_replicas_constant_when_caches_full(self):
        """Every insert into a full cache evicts exactly one replica, so
        the global count stays at rho * |S|."""
        from repro.contacts import homogeneous_poisson_trace
        from repro.demand import DemandModel, generate_requests

        demand = DemandModel.pareto(8, total_rate=2.0)
        trace = homogeneous_poisson_trace(10, 0.1, 200.0, seed=12)
        requests = generate_requests(demand, 10, 200.0, seed=13)
        config = SimulationConfig(
            n_items=8, rho=2, utility=StepUtility(5.0), record_interval=20.0
        )
        protocol = QCR(config.utility, 0.1)
        result = Simulation(trace, requests, config, protocol, seed=14).run()
        totals = result.snapshot_counts.sum(axis=1)
        assert np.all(totals == 20)

    def test_sticky_replica_never_lost(self):
        from repro.contacts import homogeneous_poisson_trace
        from repro.demand import DemandModel, generate_requests

        demand = DemandModel.pareto(8, total_rate=2.0)
        trace = homogeneous_poisson_trace(10, 0.1, 200.0, seed=15)
        requests = generate_requests(demand, 10, 200.0, seed=16)
        config = SimulationConfig(
            n_items=8, rho=2, utility=StepUtility(5.0), record_interval=20.0
        )
        result = Simulation(
            trace, requests, config, QCR(config.utility, 0.1), seed=17
        ).run()
        assert result.snapshot_counts.min() >= 1
