"""End-to-end integration tests reproducing the paper's headline claims
on small instances.

Each test is a miniature of one evaluation finding:

* the optimal allocation beats every heuristic (OPT is optimal);
* SQRT is near-optimal at ``alpha = 0`` (Cohen-Shenker square-root law);
* DOM collapses under waiting costs (tail items starve);
* QCR, using only local information, lands between OPT and the naive
  allocations;
* analytic welfare predicts simulated gain rates for static allocations.
"""

from __future__ import annotations

import pytest

from repro.allocation import greedy_homogeneous
from repro.contacts import homogeneous_poisson_trace
from repro.demand import DemandModel, generate_requests
from repro.protocols import (
    QCR,
    dom_protocol,
    opt_protocol,
    prop_protocol,
    sqrt_protocol,
    uni_protocol,
)
from repro.sim import SimulationConfig, simulate
from repro.utility import PowerUtility, StepUtility

N, I, RHO, MU, T = 30, 20, 3, 0.08, 2500.0


@pytest.fixture(scope="module")
def world():
    demand = DemandModel.pareto(I, omega=1.0, total_rate=3.0)
    trace = homogeneous_poisson_trace(N, MU, T, seed=41)
    requests = generate_requests(demand, N, T, seed=42)
    return demand, trace, requests


def run(world, utility, protocol, seed=43):
    _, trace, requests = world
    config = SimulationConfig(n_items=I, rho=RHO, utility=utility)
    return simulate(trace, requests, config, protocol, seed=seed)


class TestOptimality:
    def test_opt_beats_heuristics_step(self, world):
        demand, _, _ = world
        utility = StepUtility(5.0)
        opt = run(world, utility, opt_protocol(
            demand, utility, MU, N, RHO, pure_p2p=True, n_clients=N
        ))
        for heuristic in (
            uni_protocol(demand, N, RHO),
            dom_protocol(demand, N, RHO),
        ):
            other = run(world, utility, heuristic)
            assert opt.gain_rate >= other.gain_rate - 1e-9

    def test_sqrt_near_optimal_at_alpha_zero(self, world):
        """The square-root law is optimal at alpha = 0 (Section 4.2)."""
        demand, _, _ = world
        utility = PowerUtility(0.0)
        opt = run(world, utility, opt_protocol(
            demand, utility, MU, N, RHO, pure_p2p=True, n_clients=N
        ))
        sqrt = run(world, utility, sqrt_protocol(demand, N, RHO))
        loss = (sqrt.gain_rate - opt.gain_rate) / abs(opt.gain_rate)
        assert abs(loss) < 0.10

    def test_dom_collapses_under_waiting_costs(self, world):
        demand, _, _ = world
        utility = PowerUtility(0.0)
        opt = run(world, utility, opt_protocol(
            demand, utility, MU, N, RHO, pure_p2p=True, n_clients=N
        ))
        dom = run(world, utility, dom_protocol(demand, N, RHO))
        # DOM starves the tail: at least an order of magnitude worse.
        assert dom.gain_rate < 5 * opt.gain_rate  # both negative

    def test_prop_overweights_popular_items(self, world):
        """PROP is notably suboptimal for waiting costs (Section 6.2)."""
        demand, _, _ = world
        utility = PowerUtility(0.0)
        sqrt = run(world, utility, sqrt_protocol(demand, N, RHO))
        prop = run(world, utility, prop_protocol(demand, N, RHO))
        assert sqrt.gain_rate > prop.gain_rate


class TestQcrEndToEnd:
    def test_qcr_between_opt_and_uni(self, world):
        demand, _, _ = world
        utility = StepUtility(5.0)
        opt = run(world, utility, opt_protocol(
            demand, utility, MU, N, RHO, pure_p2p=True, n_clients=N
        ))
        qcr = run(world, utility, QCR(utility, MU))
        uni = run(world, utility, uni_protocol(demand, N, RHO))
        assert uni.gain_rate < qcr.gain_rate <= opt.gain_rate * 1.02

    def test_qcr_loss_within_paper_envelope_step(self, world):
        """Paper: QCR within ~5% of OPT for step utilities."""
        demand, _, _ = world
        utility = StepUtility(5.0)
        opt = run(world, utility, opt_protocol(
            demand, utility, MU, N, RHO, pure_p2p=True, n_clients=N
        ))
        qcr = run(world, utility, QCR(utility, MU))
        loss = (qcr.gain_rate - opt.gain_rate) / abs(opt.gain_rate)
        assert loss > -0.10


class TestAnalyticAgreement:
    @pytest.mark.parametrize(
        "utility", [StepUtility(5.0), PowerUtility(0.0)], ids=["step", "power"]
    )
    def test_simulated_gain_matches_welfare(self, world, utility):
        """For a static optimal allocation, the simulated gain rate should
        match the analytic social welfare within sampling error."""
        demand, _, _ = world
        greedy = greedy_homogeneous(
            demand, utility, MU, N, RHO, pure_p2p=True, n_clients=N
        )
        result = run(
            world,
            utility,
            opt_protocol(demand, utility, MU, N, RHO, pure_p2p=True, n_clients=N),
        )
        assert result.gain_rate == pytest.approx(greedy.welfare, rel=0.08)
