"""The shipped tree must satisfy its own static analysis.

This is the CI gate in miniature: ``repro lint src/repro`` clean, and
(when mypy is installed) ``mypy`` clean under the pyproject config.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"


def test_src_repro_is_lint_clean() -> None:
    report = run_lint([str(SRC)])
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.ok, f"repro lint found violations at HEAD:\n{rendered}"
    # The three utility/ sentinel comparisons are documented suppressions.
    assert report.n_suppressed >= 3


def test_benchmarks_tree_is_lint_clean() -> None:
    report = run_lint([str(REPO_ROOT / "benchmarks")])
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.ok, f"repro lint found violations at HEAD:\n{rendered}"


def test_py_typed_marker_ships() -> None:
    assert (SRC / "py.typed").is_file()


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_clean() -> None:  # pragma: no cover - needs mypy
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml", "src/repro"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
