"""RPL004 true positives: event merges that drop the stable order."""

import numpy as np


def merge_events(times, kinds):
    order = np.argsort(times)
    resorted = np.sort(times)
    wrong_key = np.lexsort((times, kinds))
    opaque = np.lexsort(list(zip(times, kinds)))
    return order, resorted, wrong_key, opaque
