"""RPL004 clean pass: the sanctioned stable (kinds, times) merge."""

import numpy as np


def merge_events(times, kinds):
    order = np.lexsort((kinds, times))
    stable = np.argsort(times, kind="stable")
    resorted = np.sort(times, kind="stable")
    return order, stable, resorted
