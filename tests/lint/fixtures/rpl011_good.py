"""RPL011 clean pass: event kinds come from the schema registry."""

from repro.obs import events as trace_events
from repro.obs import events as ev

DELIVER = trace_events.DELIVER


def run_step(tracer, queue, t, item, node):
    tracer.emit(trace_events.DELIVER, t, item=item, node=node)
    tracer.emit(DELIVER, t, item=item, node=node)
    queue.log_event(ev.UNIT_CLAIM, unit=item, worker=node)


def emit_unrelated(channel, payload):
    # Non-string first arguments are someone else's emit(); not a kind.
    channel.emit(payload)
    channel.emit(42, payload)
