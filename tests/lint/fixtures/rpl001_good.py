"""RPL001 clean pass: seeded, explicitly threaded Generators."""

import numpy as np


def roll(seed):
    rng = np.random.default_rng(seed)
    children = np.random.SeedSequence(seed).spawn(2)
    other = np.random.default_rng(children[0])
    return rng.random() + other.random()
