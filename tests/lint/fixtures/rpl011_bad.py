"""RPL011 true positives: literal event kinds at emit sites."""


def run_step(tracer, queue, t, item, node):
    tracer.emit("deliver", t, item=item, node=node)  # literal kind
    tracer.emit("contact_drop", t, a=node, b=node)  # literal kind
    queue.log_event("unit_claim", unit=item, worker=node)  # literal kind


def settle(self, t):
    self.tracer.emit("settle", t, reason="horizon")  # literal kind
