"""RPL001 true positives: unseeded / global-state randomness."""

import random
from random import shuffle

import numpy as np


def roll():
    np.random.seed(42)
    value = np.random.random()
    rng = np.random.default_rng()
    deck = [1, 2, 3]
    shuffle(deck)
    return value + random.random() + rng.random() + deck[0]
