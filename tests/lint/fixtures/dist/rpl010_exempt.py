"""RPL010 exempt path: supervised polling lives under dist/."""

import time


def supervised_poll(queue, poll_interval):
    while not queue.complete():
        time.sleep(poll_interval)
