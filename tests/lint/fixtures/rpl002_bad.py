"""RPL002 true positives: wall-clock reads in library code."""

import time
from datetime import datetime


def stamp():
    started = time.time()
    elapsed = time.perf_counter()
    today = datetime.now()
    return started, elapsed, today
