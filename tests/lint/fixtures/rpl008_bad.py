"""RPL008 true positives: fork-unsafe parallel work units."""

from concurrent.futures import ProcessPoolExecutor

import numpy as np


def sweep(units, seed):
    rng = np.random.default_rng(seed)
    with ProcessPoolExecutor(max_workers=4) as pool:
        lazy = [pool.submit(lambda u: u * 2, unit) for unit in units]
        risky = pool.submit(run_one, rng)
        shipped = pool.submit(run_one, np.random.default_rng(seed))
    return lazy, risky, shipped


def run_one(rng):
    return rng.random()
