"""Whole-file opt-out for vendored/generated code."""
# repro-lint: skip-file

import random


def anything_goes():
    return random.random()
