"""RPL010 clean pass: bounded retries, single waits, sleepless spins."""

import time


def bounded_retry(operation, attempts):
    for attempt in range(attempts):
        try:
            return operation()
        except ValueError:
            time.sleep(min(0.1 * 2.0**attempt, 2.0))
    raise ValueError("all attempts failed")


def single_wait(delay):
    time.sleep(delay)


def drain_without_sleep(ready):
    count = 0
    while not ready():
        count += 1
    return count


def deferred_sleeps(items):
    """A def inside a while runs on its own schedule, not the loop's."""
    handlers = []
    while items:
        item = items.pop()

        def handler(delay, _item=item):
            time.sleep(delay)
            return _item

        handlers.append(handler)
    return handlers
