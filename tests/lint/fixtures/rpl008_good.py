"""RPL008 clean pass: pinned start method, picklable seed-driven units."""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

import numpy as np


def run_one(seed):
    return np.random.default_rng(seed).random()


def sweep(seeds):
    context = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(max_workers=4, mp_context=context) as pool:
        futures = [pool.submit(run_one, seed) for seed in seeds]
    return [future.result() for future in futures]
