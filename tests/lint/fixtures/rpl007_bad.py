"""RPL007 true positives: broad handlers with no re-raise."""


def load_quietly(path):
    try:
        with open(path) as handle:
            return handle.read()
    except Exception:
        return None


def swallow_everything(fn):
    try:
        return fn()
    except:  # noqa: E722
        pass
    try:
        return fn()
    except (ValueError, BaseException):
        return None
