"""RPL005 true positives: exact float equality and NaN comparison."""

import math

import numpy as np


def check(welfare, gain):
    if welfare == 0.3:
        return True
    if gain != -1.5:
        return False
    if welfare == np.nan:
        return True
    if gain == float("nan"):
        return True
    return math.isnan(welfare)
