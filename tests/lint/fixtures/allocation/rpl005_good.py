"""RPL005 clean pass: tolerant comparisons and proper NaN checks."""

import math


def check(welfare, gain, count):
    if math.isclose(welfare, 0.3, abs_tol=1e-12):
        return True
    if count == 3:  # integer compare is exact and fine
        return False
    return math.isnan(gain)
