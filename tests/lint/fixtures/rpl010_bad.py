"""RPL010 true positives: unbounded sleep-based retry loops."""

import os
import time
from time import sleep


def wait_for_file(path):
    while not os.path.exists(path):
        time.sleep(0.5)


def wait_for_flag(flag):
    while True:
        if flag():
            return
        sleep(0.1)


def poll_with_capped_backoff(ready):
    attempts = 0
    while not ready():
        attempts += 1
        time.sleep(min(0.1 * attempts, 2.0))
