"""RPL002 path exemption: timing is legitimate under benchmarks/."""

import time


def measure(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
