"""RPL006 clean pass: None defaults, field factories, immutables."""

from dataclasses import dataclass, field
from typing import ClassVar, Dict, List, Optional


def collect(item, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket


@dataclass
class SweepConfig:
    protocols: ClassVar[List[str]] = ["OPT", "QCR"]
    names: tuple = ("OPT", "QCR")
    overrides: Dict[str, float] = field(default_factory=dict)
    label: Optional[str] = None
