"""Suppression syntax: trailing and standalone directives."""

import time


def trailing():
    return time.time()  # repro-lint: ignore[RPL002] test fixture, not sim logic


def standalone():
    # This read feeds a log label only, never simulation state.
    # repro-lint: ignore[RPL002]
    return time.time()


def bare_ignore(bucket=[]):  # repro-lint: ignore
    return bucket


def wrong_code():
    return time.time()  # repro-lint: ignore[RPL001] suppresses the wrong rule
