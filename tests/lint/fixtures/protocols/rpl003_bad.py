"""RPL003 true positives: protocol mutating engine-owned node state."""


class RoguePlacement:
    name = "ROGUE"

    def on_fulfill(self, sim, t, requester, provider, item, counter):
        requester.cache.insert(item, sim.rng)
        requester.online = False
        provider.outstanding[item] = []
        del provider.outstanding[item]
        provider.outstanding.pop(item, None)

    def after_contact(self, sim, t, a, b):
        from .helpers import make_request

        a.add_request(make_request(0, a.node_id, t))
        b.cache.discard(3)
