"""RPL003 clean pass: replicas via the engine API, own mandate state."""


class PolitePlacement:
    name = "POLITE"

    def initialize(self, sim):
        self._seen = 0

    def on_fulfill(self, sim, t, requester, provider, item, counter):
        if requester.is_server and not requester.has_item(item):
            sim.insert_copy(requester, item)
        requester.mandates[item] = requester.mandates.get(item, 0) + 1

    def after_contact(self, sim, t, a, b):
        self._seen += 1
        if a.has_item(0):
            sim.insert_copy(b, 0)
