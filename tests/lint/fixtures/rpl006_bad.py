"""RPL006 true positives: shared mutable defaults and class attributes."""

import numpy as np


def collect(item, bucket=[]):
    bucket.append(item)
    return bucket


def tally(key, counts={}, *, tags=set()):
    counts[key] = counts.get(key, 0) + 1
    return counts, tags


def fill(values=np.zeros(3)):
    return values


class SweepConfig:
    protocols = ["OPT", "QCR"]
    overrides = {}
