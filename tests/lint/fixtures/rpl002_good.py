"""RPL002 clean pass: event-time driven logic; sleep is not a clock read."""

import time


def backoff(t, delay):
    time.sleep(delay)
    return t + delay
