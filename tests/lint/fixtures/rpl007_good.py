"""RPL007 clean pass: specific exceptions, or broad with a re-raise."""


def load(path, on_error):
    try:
        with open(path) as handle:
            return handle.read()
    except (OSError, ValueError):
        return None


def guarded(fn, on_error):
    try:
        return fn()
    except Exception:
        if on_error == "raise":
            raise
        return None
