"""RPL002 shim exemption: experiments/benchmark.py may read the clock."""

import time


def time_engine(run):
    start = time.perf_counter()
    run()
    return time.perf_counter() - start
