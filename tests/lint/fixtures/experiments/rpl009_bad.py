"""RPL009 true positives: bare print() in experiment orchestration."""


def run_sweep(points):
    print("starting sweep")
    for index, point in enumerate(points):
        print(f"point {index}: {point}")
    print("sweep done")


def report(failures):
    if failures:
        print("failures:", len(failures))
