"""RPL009 clean pass: structured logging plus a deliberate suppression."""

from repro.obs.log import get_logger

logger = get_logger("repro.experiments.sweep_fixture")


def run_sweep(points):
    logger.info("starting sweep", n_points=len(points))
    for index, point in enumerate(points):
        logger.debug("point", index=index, value=f"{point:g}")
    logger.info("sweep done")


def report(failures):
    if failures:
        logger.warning("sweep failures", count=len(failures))
    print("final banner")  # repro-lint: ignore[RPL009]
