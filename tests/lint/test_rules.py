"""Per-rule fixture tests: one true-positive and one clean-pass each."""

from pathlib import Path

import pytest

from repro.lint import all_rules, run_lint

FIXTURES = Path(__file__).parent / "fixtures"

#: code -> (bad fixture, good fixture, minimum expected true positives).
RULE_FIXTURES = {
    "RPL001": ("rpl001_bad.py", "rpl001_good.py", 5),
    "RPL002": ("rpl002_bad.py", "rpl002_good.py", 3),
    "RPL003": (
        "protocols/rpl003_bad.py",
        "protocols/rpl003_good.py",
        6,
    ),
    "RPL004": ("sim/rpl004_bad.py", "sim/rpl004_good.py", 4),
    "RPL005": (
        "allocation/rpl005_bad.py",
        "allocation/rpl005_good.py",
        4,
    ),
    "RPL006": ("rpl006_bad.py", "rpl006_good.py", 5),
    "RPL007": ("rpl007_bad.py", "rpl007_good.py", 3),
    "RPL008": ("rpl008_bad.py", "rpl008_good.py", 3),
    "RPL009": (
        "experiments/rpl009_bad.py",
        "experiments/rpl009_good.py",
        4,
    ),
    "RPL010": ("rpl010_bad.py", "rpl010_good.py", 3),
    "RPL011": ("rpl011_bad.py", "rpl011_good.py", 4),
}


def codes_in(path: Path) -> list:
    report = run_lint([str(path)])
    assert not report.parse_errors, report.parse_errors
    return [finding.code for finding in report.findings]


def test_every_rule_has_fixtures() -> None:
    registered = {rule.code for rule in all_rules()}
    assert registered == set(RULE_FIXTURES)


@pytest.mark.parametrize("code", sorted(RULE_FIXTURES))
def test_bad_fixture_detected(code: str) -> None:
    bad, _, min_findings = RULE_FIXTURES[code]
    codes = codes_in(FIXTURES / bad)
    assert codes.count(code) >= min_findings, codes


@pytest.mark.parametrize("code", sorted(RULE_FIXTURES))
def test_good_fixture_clean(code: str) -> None:
    _, good, _ = RULE_FIXTURES[code]
    codes = codes_in(FIXTURES / good)
    assert code not in codes, codes


@pytest.mark.parametrize("code", sorted(RULE_FIXTURES))
def test_good_fixture_fully_clean(code: str) -> None:
    """Good fixtures trip no rule at all, not just their own."""
    _, good, _ = RULE_FIXTURES[code]
    assert codes_in(FIXTURES / good) == []


def test_wallclock_exempt_paths() -> None:
    assert codes_in(FIXTURES / "benchmarks" / "rpl002_exempt.py") == []
    assert codes_in(FIXTURES / "experiments" / "benchmark.py") == []


def test_retry_sleep_exempt_under_dist() -> None:
    """Supervised polling in the dist/ backend is RPL010's one carve-out."""
    assert codes_in(FIXTURES / "dist" / "rpl010_exempt.py") == []


def test_no_print_silent_outside_experiments() -> None:
    """print() is only an RPL009 finding under experiments/."""
    source = (FIXTURES / "experiments" / "rpl009_bad.py").read_text()
    copy = FIXTURES / "rpl009_relocated_tmp.py"
    copy.write_text(source)
    try:
        assert "RPL009" not in codes_in(copy)
    finally:
        copy.unlink()


def test_findings_carry_location_and_hint() -> None:
    report = run_lint([str(FIXTURES / "rpl002_bad.py")])
    finding = report.findings[0]
    assert finding.line > 1
    assert finding.col >= 1
    assert finding.code == "RPL002"
    assert finding.hint
    assert "rpl002_bad.py" in finding.path


def test_scoped_rules_silent_outside_their_package() -> None:
    """The same source is clean when it lives outside the rule's scope."""
    source = (FIXTURES / "sim" / "rpl004_bad.py").read_text()
    copy = FIXTURES / "rpl004_relocated_tmp.py"
    copy.write_text(source)
    try:
        assert "RPL004" not in codes_in(copy)
    finally:
        copy.unlink()
