"""Runner behavior: suppressions, JSON mode, selection, CLI wiring."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.lint import run_lint
from repro.lint.runner import JSON_VERSION

FIXTURES = Path(__file__).parent / "fixtures"


class TestSuppressions:
    def test_trailing_and_standalone_ignores(self) -> None:
        report = run_lint([str(FIXTURES / "suppressed.py")])
        # trailing[RPL002], standalone[RPL002], bare ignore all suppress;
        # the wrong-code directive does not.
        assert report.n_suppressed == 3
        assert [f.code for f in report.findings] == ["RPL002"]
        assert report.findings[0].line > 15

    def test_skip_file(self) -> None:
        report = run_lint([str(FIXTURES / "skipfile.py")])
        assert report.findings == []
        assert report.ok

    def test_suppression_comment_in_string_is_inert(self, tmp_path) -> None:
        path = tmp_path / "strings.py"
        path.write_text(
            'LABEL = "# repro-lint: ignore[RPL002]"\n'
            "import time\n"
            "NOW = time.time()\n"
        )
        report = run_lint([str(path)])
        assert [f.code for f in report.findings] == ["RPL002"]


class TestRunner:
    def test_select_restricts_rules(self) -> None:
        report = run_lint(
            [str(FIXTURES / "rpl001_bad.py")], select=["RPL002"]
        )
        assert report.findings == []

    def test_unknown_select_code_raises(self) -> None:
        with pytest.raises(ConfigurationError, match="unknown rule code"):
            run_lint([str(FIXTURES)], select=["RPL999"])

    def test_missing_path_raises(self) -> None:
        with pytest.raises(ConfigurationError, match="no such file"):
            run_lint(["does/not/exist"])

    def test_parse_error_reported_not_raised(self, tmp_path) -> None:
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        report = run_lint([str(bad)])
        assert not report.ok
        assert len(report.parse_errors) == 1
        assert "broken.py" in report.parse_errors[0][0]

    def test_deterministic_ordering(self) -> None:
        first = run_lint([str(FIXTURES)])
        second = run_lint([str(FIXTURES)])
        assert [f.render() for f in first.findings] == [
            f.render() for f in second.findings
        ]
        assert first.findings == sorted(first.findings)


class TestJsonFormat:
    def test_payload_shape(self) -> None:
        report = run_lint([str(FIXTURES / "rpl002_bad.py")])
        payload = json.loads(report.render_json())
        assert payload["version"] == JSON_VERSION
        assert payload["tool"] == "repro-lint"
        assert payload["n_findings"] == len(payload["findings"]) > 0
        entry = payload["findings"][0]
        assert set(entry) == {
            "file",
            "line",
            "col",
            "code",
            "message",
            "hint",
        }

    def test_round_trips_through_json(self) -> None:
        report = run_lint([str(FIXTURES)])
        payload = json.loads(report.render_json())
        assert payload["n_findings"] == len(report.findings)
        assert payload["n_suppressed"] == report.n_suppressed


class TestCli:
    def test_exit_one_on_findings(self, capsys) -> None:
        code = main(["lint", str(FIXTURES / "rpl002_bad.py")])
        captured = capsys.readouterr()
        assert code == 1
        assert "RPL002" in captured.out
        assert "hint:" in captured.out

    def test_exit_zero_on_clean(self, capsys) -> None:
        code = main(["lint", str(FIXTURES / "rpl001_good.py")])
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_json_flag(self, capsys) -> None:
        code = main(
            ["lint", str(FIXTURES / "rpl002_bad.py"), "--format", "json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "repro-lint"

    def test_select_flag(self, capsys) -> None:
        code = main(
            [
                "lint",
                str(FIXTURES / "rpl002_bad.py"),
                "--select",
                "RPL001",
            ]
        )
        assert code == 0
        capsys.readouterr()

    def test_list_rules(self, capsys) -> None:
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RPL001", "RPL008"):
            assert code in out
