"""Integration tests for the dedicated-node (throwbox/kiosk) scenario.

The paper's "Dedicated nodes" case: server and client populations are
disjoint (buses, throwboxes, kiosks).  Unbounded `h(0+)` utilities
(time-critical content) are only legal here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocation import (
    HeterogeneousProblem,
    greedy_heterogeneous,
    greedy_homogeneous,
)
from repro.contacts import homogeneous_poisson_trace, pair_rate_matrix
from repro.demand import DemandModel, RequestSchedule, generate_requests
from repro.protocols import QCR, StaticAllocation, uni_protocol
from repro.sim import Simulation, SimulationConfig, simulate
from repro.utility import PowerUtility

N_NODES, N_SERVERS, N_ITEMS, RHO, MU, T = 16, 6, 10, 2, 0.08, 1500.0
SERVERS = tuple(range(N_SERVERS))
CLIENTS = tuple(range(N_SERVERS, N_NODES))


@pytest.fixture(scope="module")
def world():
    demand = DemandModel.pareto(N_ITEMS, omega=1.0, total_rate=2.0)
    trace = homogeneous_poisson_trace(N_NODES, MU, T, seed=71)
    raw = generate_requests(demand, N_NODES, T, seed=72)
    # Map request origins onto the client population.
    requests = RequestSchedule(
        times=raw.times,
        items=raw.items,
        nodes=raw.nodes % len(CLIENTS) + N_SERVERS,
        duration=raw.duration,
    )
    return demand, trace, requests


def config(utility):
    return SimulationConfig(
        n_items=N_ITEMS,
        rho=RHO,
        utility=utility,
        servers=SERVERS,
        clients=CLIENTS,
    )


class TestDedicatedInversePower:
    def test_unbounded_utility_runs(self, world):
        """Inverse power (h(0+) = inf) is legal with disjoint populations."""
        demand, trace, requests = world
        utility = PowerUtility(1.5)
        result = simulate(
            trace, requests, config(utility), QCR(utility, MU), seed=73
        )
        assert result.n_fulfilled > 0
        assert np.isfinite(result.total_gain)

    def test_opt_beats_uniform(self, world):
        demand, trace, requests = world
        utility = PowerUtility(1.5)
        greedy = greedy_homogeneous(
            demand, utility, MU, N_SERVERS, RHO
        )
        opt = simulate(
            trace,
            requests,
            config(utility),
            StaticAllocation(counts=greedy.counts, name="OPT"),
            seed=74,
        )
        uni = simulate(
            trace,
            requests,
            config(utility),
            uni_protocol(demand, N_SERVERS, RHO),
            seed=74,
        )
        assert opt.gain_rate > uni.gain_rate

    def test_heterogeneous_opt_without_client_servers(self, world):
        """The submodular greedy accepts infinite-h0 utilities as long as
        no client doubles as a server."""
        demand, trace, requests = world
        utility = PowerUtility(1.5)
        rates = pair_rate_matrix(trace)[
            np.ix_(list(SERVERS), list(CLIENTS))
        ]
        problem = HeterogeneousProblem(
            demand=demand,
            utility=utility,
            rate_matrix=rates,
            rho=RHO,
            rate_floor=1.0 / trace.duration,
        )
        result = greedy_heterogeneous(problem)
        assert result.allocation.shape == (N_ITEMS, N_SERVERS)
        assert result.allocation.sum() == RHO * N_SERVERS

    def test_clients_never_store(self, world):
        demand, trace, requests = world
        utility = PowerUtility(1.5)
        sim = Simulation(
            trace, requests, config(utility), QCR(utility, MU), seed=75
        )
        sim.run()
        for client in CLIENTS:
            assert sim.nodes[client].cache is None

    def test_query_counter_only_counts_servers(self, world):
        """Meetings with fellow clients must not advance the counter."""
        demand, trace, requests = world
        utility = PowerUtility(1.5)
        protocol = QCR(utility, MU)
        counters = []

        original = protocol.on_fulfill

        def spy(sim, t, requester, provider, item, counter):
            counters.append(counter)
            original(sim, t, requester, provider, item, counter)

        protocol.on_fulfill = spy
        sim = Simulation(
            trace, requests, config(utility), protocol, seed=76
        )
        sim.run()
        assert counters
        # With 6 servers of 16 nodes and content spread over them, the
        # mean query count must reflect server meetings only: at most a
        # few servers seen before success.
        assert np.mean(counters) < 8
