"""The metrics registry and its exporters.

Covers the tentpole's exporter guarantees: Prometheus text exposition
with correct label escaping and monotone cumulative buckets, a
``# HELP``/``# TYPE`` round trip through :func:`parse_prometheus`, the
caller-timestamped JSONL writer, and the tracer-style enable/disable
resolution.
"""

from __future__ import annotations

import io
import json
import math

import pytest

from repro.obs import metrics as m


@pytest.fixture(autouse=True)
def _fresh_registry():
    m.reset_registry()
    m.set_enabled(None)
    yield
    m.reset_registry()
    m.set_enabled(None)


# ----------------------------------------------------------------------
# primitives
# ----------------------------------------------------------------------
def test_counter_monotone():
    c = m.Counter()
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1.0)


def test_gauge_set_and_add():
    g = m.Gauge()
    g.set(4.0)
    g.add(-1.5)
    assert g.value == 2.5


def test_histogram_buckets_inclusive_upper_edges():
    h = m.Histogram(bounds=(1.0, 10.0))
    for value in (0.5, 1.0, 5.0, 10.0, 11.0):
        h.observe(value)
    cumulative = h.cumulative_buckets()
    assert cumulative == [(1.0, 2), (10.0, 4), (math.inf, 5)]
    assert h.count == 5
    assert h.sum == pytest.approx(27.5)


def test_histogram_cumulative_counts_are_monotone():
    h = m.Histogram(bounds=m.exponential_buckets(1.0, 2.0, 8))
    for k in range(200):
        h.observe(float(k))
    counts = [n for _, n in h.cumulative_buckets()]
    assert counts == sorted(counts)
    assert counts[-1] == 200


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        m.Histogram(bounds=())
    with pytest.raises(ValueError):
        m.Histogram(bounds=(2.0, 1.0))
    with pytest.raises(ValueError):
        m.Histogram(bounds=(1.0, math.inf))


def test_exponential_buckets_shape():
    assert m.exponential_buckets(1.0, 4.0, 3) == (1.0, 4.0, 16.0)
    with pytest.raises(ValueError):
        m.exponential_buckets(0.0, 2.0, 3)


# ----------------------------------------------------------------------
# registry semantics
# ----------------------------------------------------------------------
def test_registry_get_or_create_returns_same_child():
    reg = m.MetricsRegistry()
    first = reg.counter("repro_test_total", labels={"proto": "QCR"})
    second = reg.counter("repro_test_total", labels={"proto": "QCR"})
    assert first is second
    other = reg.counter("repro_test_total", labels={"proto": "UNI"})
    assert other is not first
    assert len(reg) == 1


def test_registry_rejects_kind_and_label_mismatch():
    reg = m.MetricsRegistry()
    reg.counter("repro_thing_total")
    with pytest.raises(ValueError):
        reg.gauge("repro_thing_total")
    reg.gauge("repro_depth", labels={"state": "pending"})
    with pytest.raises(ValueError):
        reg.gauge("repro_depth", labels={"other": "x"})


def test_registry_rejects_invalid_names():
    reg = m.MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("bad name")
    with pytest.raises(ValueError):
        reg.counter("repro_ok_total", labels={"bad-label": "x"})


def test_snapshot_shape():
    reg = m.MetricsRegistry()
    reg.counter("repro_runs_total", help="runs").inc(3)
    reg.histogram("repro_sizes", buckets=(1.0, 2.0)).observe(1.5)
    snap = reg.snapshot()
    assert snap["repro_runs_total"]["kind"] == "counter"
    assert snap["repro_runs_total"]["series"][0]["value"] == 3.0
    hist = snap["repro_sizes"]["series"][0]
    assert hist["count"] == 1
    assert hist["buckets"][-1][0] == "+Inf"
    assert hist["buckets"][-1][1] == 1
    # Snapshot is JSON-clean.
    json.dumps(snap)


# ----------------------------------------------------------------------
# enable/disable resolution
# ----------------------------------------------------------------------
def test_enabled_resolution_env_and_override(monkeypatch):
    monkeypatch.delenv(m.ENV_VAR, raising=False)
    assert m.metrics_enabled() is False
    assert m.enabled_registry() is None
    monkeypatch.setenv(m.ENV_VAR, "1")
    assert m.metrics_enabled() is True
    assert m.enabled_registry() is m.registry()
    # Programmatic override beats the environment.
    m.set_enabled(False)
    assert m.enabled_registry() is None
    m.set_enabled(True)
    monkeypatch.delenv(m.ENV_VAR, raising=False)
    assert m.enabled_registry() is m.registry()


def test_env_value_spellings(monkeypatch):
    for value in ("1", "true", "YES", "On"):
        monkeypatch.setenv(m.ENV_VAR, value)
        assert m.metrics_enabled() is True
    for value in ("", "0", "off", "no", "false"):
        monkeypatch.setenv(m.ENV_VAR, value)
        assert m.metrics_enabled() is False


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
def test_render_prometheus_basics():
    reg = m.MetricsRegistry()
    reg.counter("repro_runs_total", help="completed runs").inc(2)
    reg.gauge("repro_depth", labels={"state": "pending"}).set(4)
    text = reg.to_prometheus()
    assert "# HELP repro_runs_total completed runs" in text
    assert "# TYPE repro_runs_total counter" in text
    assert "repro_runs_total 2" in text
    assert 'repro_depth{state="pending"} 4' in text
    assert text.endswith("\n")


def test_render_prometheus_escapes_labels():
    reg = m.MetricsRegistry()
    nasty = 'a\\b"c\nd'
    reg.counter("repro_esc_total", labels={"who": nasty}).inc()
    text = reg.to_prometheus()
    assert '{who="a\\\\b\\"c\\nd"}' in text
    parsed = m.parse_prometheus(text)
    sample = parsed["repro_esc_total"]["samples"][0]
    assert sample["labels"]["who"] == nasty


def test_render_prometheus_histogram_buckets_monotone():
    reg = m.MetricsRegistry()
    h = reg.histogram("repro_chunk_events", buckets=(1.0, 4.0, 16.0))
    for value in (0.5, 3.0, 3.0, 20.0):
        h.observe(value)
    text = reg.to_prometheus()
    parsed = m.parse_prometheus(text)
    buckets = [
        sample
        for sample in parsed["repro_chunk_events"]["samples"]
        if sample["name"] == "repro_chunk_events_bucket"
    ]
    counts = [sample["value"] for sample in buckets]
    assert counts == sorted(counts)
    assert buckets[-1]["labels"]["le"] == "+Inf"
    assert counts[-1] == 4
    by_name = {
        sample["name"]: sample["value"]
        for sample in parsed["repro_chunk_events"]["samples"]
        if sample["name"] != "repro_chunk_events_bucket"
    }
    assert by_name["repro_chunk_events_count"] == 4
    assert by_name["repro_chunk_events_sum"] == pytest.approx(26.5)


def test_parse_prometheus_round_trips_help_and_type():
    reg = m.MetricsRegistry()
    reg.counter("repro_a_total", help="first\nline two").inc()
    reg.histogram("repro_b", help="a histogram", buckets=(1.0,)).observe(0.5)
    parsed = m.parse_prometheus(reg.to_prometheus())
    assert parsed["repro_a_total"]["kind"] == "counter"
    assert parsed["repro_a_total"]["help"] == "first\nline two"
    assert parsed["repro_b"]["kind"] == "histogram"
    # Histogram samples attach to the base family, not fake families.
    assert "repro_b_bucket" not in parsed
    assert "repro_b_sum" not in parsed


def test_parse_prometheus_rejects_malformed_lines():
    with pytest.raises(ValueError):
        m.parse_prometheus("!!! not exposition format")


# ----------------------------------------------------------------------
# JSONL snapshots + coercion
# ----------------------------------------------------------------------
def test_write_snapshot_jsonl_appends_timestamped_records(tmp_path):
    reg = m.MetricsRegistry()
    reg.counter("repro_runs_total").inc()
    path = str(tmp_path / "metrics.jsonl")
    m.write_snapshot_jsonl(path, reg.snapshot(), t=1.0, meta={"phase": "a"})
    reg.counter("repro_runs_total").inc()
    m.write_snapshot_jsonl(path, reg.snapshot(), t=2.0)
    lines = [
        json.loads(line)
        for line in open(path, encoding="utf-8").read().splitlines()
    ]
    assert [record["t"] for record in lines] == [1.0, 2.0]
    assert lines[0]["phase"] == "a"
    values = [
        record["metrics"]["repro_runs_total"]["series"][0]["value"]
        for record in lines
    ]
    assert values == [1.0, 2.0]


def test_write_snapshot_jsonl_accepts_streams():
    buf = io.StringIO()
    m.write_snapshot_jsonl(buf, {}, t=5.0)
    assert json.loads(buf.getvalue())["t"] == 5.0


def test_coerce_snapshot_passthrough_and_unwrap():
    reg = m.MetricsRegistry()
    reg.counter("repro_runs_total").inc()
    snap = reg.snapshot()
    assert m.coerce_snapshot(snap) == snap
    assert m.coerce_snapshot({"t": 1.0, "metrics": snap}) == snap


def test_coerce_snapshot_synthesizes_manifest_gauges():
    snap = m.coerce_snapshot({"n_fulfilled": 12, "total_gain": 3.5})
    assert set(snap) == {
        "repro_manifest_n_fulfilled",
        "repro_manifest_total_gain",
    }
    assert snap["repro_manifest_n_fulfilled"]["kind"] == "gauge"
    text = m.render_prometheus(snap)
    assert "repro_manifest_n_fulfilled 12" in text


def test_coerce_snapshot_rejects_garbage():
    with pytest.raises(ValueError):
        m.coerce_snapshot({"nested": {"not": "metrics"}})
    with pytest.raises(ValueError):
        m.coerce_snapshot({})
