"""Trace-file analysis: loading, filtering, summaries, Lemma 1 CDFs."""

import io
import math

import numpy as np
import pytest

from repro.obs import (
    delay_cdf_comparison,
    filter_events,
    lemma1_delay_cdf,
    load_events,
    summarize_events,
    write_events_csv,
    write_events_jsonl,
)
from repro.obs.analysis import TraceFileError


def fulfill(seq, t, item, delay, node=1):
    return {
        "seq": seq, "kind": "fulfill", "t": t, "item": item, "node": node,
        "server": 0, "delay": delay, "gain": 1.0, "counter": 1,
    }


SAMPLE = [
    {"seq": 0, "kind": "run_start", "t": 0.0, "n_nodes": 4, "n_items": 2,
     "duration": 100.0, "protocol": "OPT"},
    {"seq": 1, "kind": "alloc", "t": 0.0, "counts": [2, 1]},
    {"seq": 2, "kind": "request", "t": 5.0, "item": 0, "node": 1},
    fulfill(3, 7.0, item=0, delay=2.0),
    {"seq": 4, "kind": "request", "t": 8.0, "item": 1, "node": 2},
    {"seq": 5, "kind": "abandon", "t": 20.0, "item": 1, "node": 2,
     "created_at": 8.0},
    {"seq": 6, "kind": "run_end", "t": 100.0, "summary": {}},
]


def as_jsonl(events):
    stream = io.StringIO()
    write_events_jsonl(events, stream)
    stream.seek(0)
    return stream


# ----------------------------------------------------------------------
# loading / writing
# ----------------------------------------------------------------------
def test_jsonl_round_trip_and_validation():
    assert load_events(as_jsonl(SAMPLE), validate=True) == SAMPLE


def test_load_events_from_path(tmp_path):
    path = tmp_path / "t.jsonl"
    write_events_jsonl(SAMPLE, str(path))
    assert load_events(str(path)) == SAMPLE


def test_load_events_from_memory_sink_returns_copies():
    from repro.obs import MemorySink

    sink = MemorySink()
    for event in SAMPLE:
        sink.emit(dict(event))
    loaded = load_events(sink, validate=True)
    assert loaded == SAMPLE
    # Mutating the loaded events must not reach back into the sink.
    loaded[0]["kind"] = "mutated"
    assert sink.events[0]["kind"] == "run_start"


def test_load_events_reports_bad_line_number():
    stream = io.StringIO('{"seq": 0}\nnot json\n')
    with pytest.raises(TraceFileError, match="line 2"):
        load_events(stream)


def test_load_events_rejects_non_objects():
    with pytest.raises(TraceFileError, match="expected a JSON object"):
        load_events(io.StringIO("[1, 2]\n"))


def test_load_events_validate_flags_schema_violations():
    stream = io.StringIO('{"seq": 0, "kind": "request", "t": 1.0}\n')
    with pytest.raises(TraceFileError, match="line 1"):
        load_events(stream, validate=True)


def test_write_events_csv_union_header_and_nested_json(tmp_path):
    path = tmp_path / "t.csv"
    n = write_events_csv(SAMPLE, str(path))
    assert n == len(SAMPLE)
    lines = path.read_text().splitlines()
    header = lines[0].split(",")
    assert header[:3] == ["seq", "kind", "t"]
    assert "counts" in header and "delay" in header
    assert '"[2, 1]"' in lines[2] or "[2,1]" in lines[2].replace('"', "")


# ----------------------------------------------------------------------
# filtering / summarizing
# ----------------------------------------------------------------------
def test_filter_by_kind_item_and_time():
    assert filter_events(SAMPLE, kinds=["fulfill"]) == [SAMPLE[3]]
    assert filter_events(SAMPLE, item=1) == [SAMPLE[4], SAMPLE[5]]
    assert filter_events(SAMPLE, t_min=6.0, t_max=10.0) == [
        SAMPLE[3],
        SAMPLE[4],
    ]
    assert filter_events(SAMPLE, kinds=["request"], node=2) == [SAMPLE[4]]


def test_summarize_events():
    summary = summarize_events(SAMPLE)
    assert summary["n_events"] == len(SAMPLE)
    assert summary["protocol"] == "OPT"
    assert summary["t_last"] == 100.0
    assert summary["kind_counts"]["request"] == 2
    assert summary["delay"]["count"] == 1
    assert summary["delay"]["mean"] == 2.0
    assert summary["per_item"]["0"] == {"request": 1, "fulfill": 1}
    assert summary["per_item"]["1"] == {"request": 1, "abandon": 1}


def test_summarize_empty_trace():
    summary = summarize_events([])
    assert summary["n_events"] == 0
    assert summary["delay"] is None


# ----------------------------------------------------------------------
# Lemma 1 comparison
# ----------------------------------------------------------------------
def test_lemma1_delay_cdf_closed_form():
    values = lemma1_delay_cdf([0.0, 1.0], mu=0.5, x=2.0)
    assert values[0] == 0.0
    assert values[1] == pytest.approx(1.0 - math.exp(-1.0))


def test_lemma1_delay_cdf_validates_inputs():
    with pytest.raises(ValueError):
        lemma1_delay_cdf(1.0, mu=0.0, x=1.0)
    with pytest.raises(ValueError):
        lemma1_delay_cdf(1.0, mu=0.5, x=-1.0)


def exact_exponential_trace(rate, n, item=0, x=2):
    """FULFILL delays at the exact Exp(rate) quantiles (k-0.5)/n."""
    counts = [0] * (item + 1)
    counts[item] = x
    events = [{"seq": 0, "kind": "alloc", "t": 0.0, "counts": counts}]
    for k in range(1, n + 1):
        p = (k - 0.5) / n
        delay = -math.log(1.0 - p) / rate
        events.append(fulfill(k, t=delay, item=item, delay=delay))
    return events


def test_delay_cdf_comparison_matches_exact_exponential():
    mu, x, n = 0.05, 2, 20
    events = exact_exponential_trace(mu * x, n, x=x)
    report = delay_cdf_comparison(events, mu=mu)
    detail = report["items"]["0"]
    assert detail["x"] == x
    assert detail["n_samples"] == n
    assert detail["rate"] == pytest.approx(mu * x)
    # Quantile sampling at (k-0.5)/n makes both step edges miss by 0.5/n.
    assert detail["ks_statistic"] == pytest.approx(0.5 / n)
    assert report["max_ks"] == pytest.approx(0.5 / n)
    expected_mean = np.mean(detail["delays"])
    assert detail["mean_delay"] == pytest.approx(expected_mean)
    assert detail["predicted_mean_delay"] == pytest.approx(1.0 / (mu * x))


def test_delay_cdf_comparison_skips_thin_items():
    events = exact_exponential_trace(0.1, 3)
    report = delay_cdf_comparison(events, mu=0.05, min_samples=5)
    assert report["n_items_compared"] == 0
    assert report["skipped"] == [{"item": 0, "n_samples": 3}]


def test_delay_cdf_comparison_counts_override_and_items_filter():
    events = exact_exponential_trace(0.1, 10, x=2)
    report = delay_cdf_comparison(events, mu=0.05, counts=[4], items=[0])
    assert report["items"]["0"]["x"] == 4


def test_delay_cdf_comparison_requires_counts():
    events = [fulfill(0, 1.0, item=0, delay=1.0)]
    with pytest.raises(ValueError, match="no ALLOC event"):
        delay_cdf_comparison(events, mu=0.05)


def test_delay_cdf_comparison_skips_zero_replica_items():
    events = exact_exponential_trace(0.1, 10)
    report = delay_cdf_comparison(events, mu=0.05, counts=[0])
    assert report["n_items_compared"] == 0
    assert report["skipped"][0]["reason"] == "x_i == 0"
