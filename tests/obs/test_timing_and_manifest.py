"""The timing shim and the run-provenance manifest."""

import pytest

from repro.obs import RunManifest, Stopwatch, environment_provenance
from repro.obs import manifest as manifest_module


def test_stopwatch_measures_nonnegative_durations():
    with Stopwatch() as sw:
        sum(range(1000))
    assert sw.wall >= 0.0
    assert sw.cpu >= 0.0
    # Stopped values are frozen.
    assert sw.wall == sw.wall


def test_stopwatch_running_totals_before_stop():
    sw = Stopwatch()
    first = sw.wall
    sum(range(100000))
    assert sw.wall >= first


def test_stopwatch_stop_before_start_raises():
    sw = Stopwatch(autostart=False)
    assert sw.wall == 0.0
    assert sw.cpu == 0.0
    with pytest.raises(RuntimeError):
        sw.stop()


def test_stopwatch_sections_accumulate_and_bound_total():
    sw = Stopwatch()
    with sw.section("load"):
        sum(range(50000))
    with sw.section("run"):
        sum(range(50000))
    # Re-entering a named section accumulates rather than resets.
    with sw.section("run"):
        sum(range(50000))
    sw.stop()
    assert set(sw.sections) == {"load", "run"}
    assert all(value >= 0.0 for value in sw.sections.values())
    assert set(sw.cpu_sections) == {"load", "run"}
    # Sections cover disjoint spans of one run: their sum can never
    # exceed the stopwatch's total wall time.
    assert sum(sw.sections.values()) <= sw.wall + 1e-9


def test_stopwatch_sections_survive_nesting():
    sw = Stopwatch()
    with sw.section("outer"):
        with sw.section("inner"):
            sum(range(20000))
    sw.stop()
    assert sw.sections["outer"] >= sw.sections["inner"] - 1e-9
    assert sw.sections["inner"] >= 0.0
    assert sw.sections["outer"] <= sw.wall + 1e-9


def test_stopwatch_section_reraises_and_still_records():
    sw = Stopwatch()
    with pytest.raises(RuntimeError):
        with sw.section("broken"):
            raise RuntimeError("boom")
    assert sw.sections["broken"] >= 0.0


def test_environment_provenance_shape_and_caching():
    env = environment_provenance()
    assert set(env) == {"python", "platform", "git_revision", "packages"}
    assert "numpy" in env["packages"]
    # Cached per process, but each caller gets an independent copy.
    again = environment_provenance()
    assert again == env
    again["python"] = "tampered"
    assert environment_provenance()["python"] != "tampered"


def test_git_revision_none_on_failure(monkeypatch):
    def broken_run(*args, **kwargs):
        raise OSError("no git")

    monkeypatch.setattr(manifest_module.subprocess, "run", broken_run)
    assert manifest_module._git_revision() is None


def test_run_manifest_round_trip():
    manifest = RunManifest(
        config_fingerprint="ab12",
        seed=7,
        protocol="QCR",
        wall_s=1.5,
        cpu_s=1.4,
        n_events=100,
        phases={"run": 1.2, "settle": 0.1},
        metrics={"n_fulfilled": 90},
        extra={"trial": 3},
    )
    data = manifest.to_dict()
    assert data["config_fingerprint"] == "ab12"
    assert data["extra"] == {"trial": 3}
    assert data["phases"] == {"run": 1.2, "settle": 0.1}
    assert data["metrics"] == {"n_fulfilled": 90}
    assert RunManifest.from_dict(data) == manifest


def test_run_manifest_from_dict_ignores_unknown_keys():
    manifest = RunManifest.from_dict(
        {"config_fingerprint": "cd34", "future_field": True}
    )
    assert manifest.config_fingerprint == "cd34"
