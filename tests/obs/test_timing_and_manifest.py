"""The timing shim and the run-provenance manifest."""

import pytest

from repro.obs import RunManifest, Stopwatch, environment_provenance
from repro.obs import manifest as manifest_module


def test_stopwatch_measures_nonnegative_durations():
    with Stopwatch() as sw:
        sum(range(1000))
    assert sw.wall >= 0.0
    assert sw.cpu >= 0.0
    # Stopped values are frozen.
    assert sw.wall == sw.wall


def test_stopwatch_running_totals_before_stop():
    sw = Stopwatch()
    first = sw.wall
    sum(range(100000))
    assert sw.wall >= first


def test_stopwatch_stop_before_start_raises():
    sw = Stopwatch(autostart=False)
    assert sw.wall == 0.0
    assert sw.cpu == 0.0
    with pytest.raises(RuntimeError):
        sw.stop()


def test_environment_provenance_shape_and_caching():
    env = environment_provenance()
    assert set(env) == {"python", "platform", "git_revision", "packages"}
    assert "numpy" in env["packages"]
    # Cached per process, but each caller gets an independent copy.
    again = environment_provenance()
    assert again == env
    again["python"] = "tampered"
    assert environment_provenance()["python"] != "tampered"


def test_git_revision_none_on_failure(monkeypatch):
    def broken_run(*args, **kwargs):
        raise OSError("no git")

    monkeypatch.setattr(manifest_module.subprocess, "run", broken_run)
    assert manifest_module._git_revision() is None


def test_run_manifest_round_trip():
    manifest = RunManifest(
        config_fingerprint="ab12",
        seed=7,
        protocol="QCR",
        wall_s=1.5,
        cpu_s=1.4,
        n_events=100,
        extra={"trial": 3},
    )
    data = manifest.to_dict()
    assert data["config_fingerprint"] == "ab12"
    assert data["extra"] == {"trial": 3}
    assert RunManifest.from_dict(data) == manifest


def test_run_manifest_from_dict_ignores_unknown_keys():
    manifest = RunManifest.from_dict(
        {"config_fingerprint": "cd34", "future_field": True}
    )
    assert manifest.config_fingerprint == "cd34"
