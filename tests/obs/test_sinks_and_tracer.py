"""Sinks and the Tracer: emission, sequencing, lifecycle."""

import io
import json

import pytest

from repro.obs import JsonlSink, MemorySink, NullSink, Tracer, events


# ----------------------------------------------------------------------
# sinks
# ----------------------------------------------------------------------
def test_null_sink_is_inactive():
    sink = NullSink()
    assert sink.active is False
    sink.emit({"kind": "x"})  # swallowed, no error
    sink.flush()
    sink.close()


def test_memory_sink_unbounded():
    sink = MemorySink()
    for k in range(5):
        sink.emit({"seq": k})
    assert sink.n_emitted == 5
    assert len(sink) == 5
    assert [e["seq"] for e in sink.events] == [0, 1, 2, 3, 4]


def test_memory_sink_ring_keeps_most_recent():
    sink = MemorySink(capacity=3)
    for k in range(10):
        sink.emit({"seq": k})
    assert sink.n_emitted == 10
    assert [e["seq"] for e in sink.events] == [7, 8, 9]


def test_memory_sink_clear():
    sink = MemorySink()
    sink.emit({"seq": 0})
    sink.clear()
    assert len(sink) == 0
    assert sink.n_emitted == 0


def test_memory_sink_rejects_bad_capacity():
    with pytest.raises(ValueError):
        MemorySink(capacity=0)


def test_memory_sink_snapshot_copies_events():
    sink = MemorySink()
    sink.emit({"seq": 0, "kind": "x"})
    copies = sink.snapshot()
    copies[0]["kind"] = "mutated"
    copies.append({"seq": 1})
    # The buffer is untouched: snapshot() is the mutation-safe view,
    # unlike the aliased .events property.
    assert sink.events[0]["kind"] == "x"
    assert len(sink) == 1


def test_jsonl_sink_writes_compact_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    with JsonlSink(str(path)) as sink:
        sink.emit({"seq": 0, "kind": "run_start", "t": 0.0})
        sink.emit({"seq": 1, "kind": "request", "t": 1.5, "item": 3})
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    assert json.loads(lines[1]) == {
        "seq": 1,
        "kind": "request",
        "t": 1.5,
        "item": 3,
    }
    assert ": " not in lines[0]  # compact separators


def test_jsonl_sink_borrowed_stream_left_open():
    stream = io.StringIO()
    sink = JsonlSink(stream)
    sink.emit({"seq": 0})
    sink.close()
    assert not stream.closed
    assert json.loads(stream.getvalue()) == {"seq": 0}


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------
def test_tracer_assigns_monotonic_seq_and_stamps_fields():
    tracer = Tracer.in_memory()
    tracer.emit("request", 1.0, item=2, node=3)
    tracer.emit("fulfill", 2.5, item=2, node=3, server=1, delay=1.5,
                gain=1.0, counter=1)
    recorded = tracer.sink.events
    assert [e["seq"] for e in recorded] == [0, 1]
    assert recorded[0] == {
        "seq": 0, "kind": "request", "t": 1.0, "item": 2, "node": 3,
    }
    for event in recorded:
        events.validate_event(event)


def test_tracer_merges_meta_into_every_event():
    tracer = Tracer.in_memory(meta={"trial": 7, "protocol": "QCR"})
    tracer.emit("request", 0.5, item=0, node=1)
    (event,) = tracer.sink.events
    assert event["trial"] == 7
    assert event["protocol"] == "QCR"


def test_disabled_tracer_is_inactive():
    tracer = Tracer.disabled()
    assert tracer.active is False


def test_tracer_to_jsonl_round_trip(tmp_path):
    path = tmp_path / "t.jsonl"
    with Tracer.to_jsonl(str(path)) as tracer:
        assert tracer.active
        tracer.emit("recover", 3.0, node=4)
    event = json.loads(path.read_text())
    events.validate_event(event)
    assert event["kind"] == "recover"


# ----------------------------------------------------------------------
# event schema
# ----------------------------------------------------------------------
def test_validate_event_rejects_missing_universal_keys():
    with pytest.raises(ValueError, match="missing 't'"):
        events.validate_event({"seq": 0, "kind": "request"})


def test_validate_event_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown trace event kind"):
        events.validate_event({"seq": 0, "kind": "nope", "t": 0.0})


def test_validate_event_rejects_missing_payload_fields():
    with pytest.raises(ValueError, match="missing field"):
        events.validate_event(
            {"seq": 0, "kind": "fulfill", "t": 1.0, "item": 0, "node": 1}
        )


def test_every_kind_constant_has_a_schema():
    kinds = {
        getattr(events, name)
        for name in events.__all__
        if name.isupper() and isinstance(getattr(events, name), str)
        and name not in ("EVENT_FIELDS", "LIFECYCLE_KINDS")
    }
    assert kinds == set(events.EVENT_FIELDS)
