"""The structured experiment logger."""

import io

import pytest

from repro.obs import MemorySink, NullSink, get_logger, set_log_level, set_log_stream
from repro.obs.log import ObsLogger


@pytest.fixture(autouse=True)
def restore_log_state():
    yield
    set_log_level("info")
    set_log_stream(None)


def capture():
    stream = io.StringIO()
    set_log_stream(stream)
    return stream


def test_info_line_format():
    stream = capture()
    ObsLogger("repro.test").info("sweep done", runs=12, failures=0)
    assert stream.getvalue() == "[repro.test] sweep done runs=12 failures=0\n"


def test_non_info_levels_are_tagged():
    stream = capture()
    logger = ObsLogger("repro.test")
    logger.warning("slow run", wall_s=9.3)
    logger.error("boom")
    lines = stream.getvalue().splitlines()
    assert lines[0].startswith("[repro.test] WARNING slow run")
    assert lines[1] == "[repro.test] ERROR boom"


def test_level_threshold_drops_debug_by_default():
    stream = capture()
    logger = ObsLogger("repro.test")
    logger.debug("hidden")
    assert stream.getvalue() == ""
    set_log_level("debug")
    logger.debug("visible")
    assert "visible" in stream.getvalue()


def test_set_log_level_rejects_unknown():
    with pytest.raises(ValueError, match="unknown log level"):
        set_log_level("verbose")


def test_get_logger_returns_process_wide_instance():
    assert get_logger("repro.test.same") is get_logger("repro.test.same")


def test_sink_mirroring_records_structured_fields():
    capture()
    sink = MemorySink()
    logger = ObsLogger("repro.test", sink=sink)
    logger.info("point", index=3)
    (record,) = sink.events
    assert record == {
        "kind": "log",
        "level": "info",
        "logger": "repro.test",
        "message": "point",
        "index": 3,
    }


def test_sink_mirroring_ignores_level_threshold():
    """The trace keeps the full history even when the console is quiet."""
    capture()
    sink = MemorySink()
    logger = ObsLogger("repro.test", sink=sink)
    logger.debug("below console threshold")
    assert len(sink.events) == 1


def test_inactive_sink_not_attached():
    logger = ObsLogger("repro.test", sink=NullSink())
    assert logger.sink is None
    logger.attach_sink(MemorySink())
    assert logger.sink is not None
    logger.attach_sink(None)
    assert logger.sink is None
