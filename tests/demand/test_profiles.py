"""Unit tests for per-node demand profiles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.demand import clustered_profile, uniform_profile, validate_profile
from repro.errors import ConfigurationError


class TestUniformProfile:
    def test_shape_and_rows(self):
        pi = uniform_profile(4, 10)
        assert pi.shape == (4, 10)
        assert np.allclose(pi.sum(axis=1), 1.0)
        assert np.allclose(pi, 0.1)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            uniform_profile(0, 5)


class TestClusteredProfile:
    def test_rows_normalized(self):
        pi = clustered_profile(6, 9, n_groups=3, bias=5.0)
        assert np.allclose(pi.sum(axis=1), 1.0)

    def test_bias_favors_own_group(self):
        pi = clustered_profile(4, 4, n_groups=2, bias=4.0)
        # item 0 belongs to group 0 = clients 0, 2.
        assert pi[0, 0] > pi[0, 1]
        assert pi[0, 0] / pi[0, 1] == pytest.approx(4.0)

    def test_bias_one_is_uniform(self):
        pi = clustered_profile(4, 8, n_groups=2, bias=1.0)
        assert np.allclose(pi, uniform_profile(4, 8))

    def test_seeded_shuffle_is_deterministic(self):
        a = clustered_profile(8, 8, n_groups=2, bias=3.0, seed=5)
        b = clustered_profile(8, 8, n_groups=2, bias=3.0, seed=5)
        assert np.array_equal(a, b)

    def test_rejects_bad_groups(self):
        with pytest.raises(ConfigurationError):
            clustered_profile(4, 4, n_groups=0)
        with pytest.raises(ConfigurationError):
            clustered_profile(4, 4, n_groups=5)

    def test_rejects_bias_below_one(self):
        with pytest.raises(ConfigurationError):
            clustered_profile(4, 4, n_groups=2, bias=0.5)


class TestValidateProfile:
    def test_accepts_valid(self):
        pi = uniform_profile(3, 5)
        assert validate_profile(pi, 3, 5) is not None

    def test_rejects_wrong_shape(self):
        with pytest.raises(ConfigurationError):
            validate_profile(uniform_profile(3, 5), 3, 4)

    def test_rejects_negative_entries(self):
        pi = uniform_profile(2, 2)
        pi[0, 0] = -0.5
        pi[0, 1] = 1.5
        with pytest.raises(ConfigurationError):
            validate_profile(pi, 2, 2)

    def test_rejects_unnormalized_rows(self):
        pi = np.full((2, 2), 0.4)
        with pytest.raises(ConfigurationError):
            validate_profile(pi, 2, 2)
