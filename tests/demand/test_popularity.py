"""Unit tests for demand models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.demand import DemandModel
from repro.errors import ConfigurationError


class TestPareto:
    def test_total_rate(self):
        demand = DemandModel.pareto(10, omega=1.0, total_rate=3.0)
        assert demand.total_rate == pytest.approx(3.0)

    def test_decreasing_rates(self):
        demand = DemandModel.pareto(20, omega=1.2)
        assert np.all(np.diff(demand.rates) <= 0)

    def test_pareto_shape(self):
        demand = DemandModel.pareto(10, omega=2.0)
        # d_i ∝ i^-2 => d_1/d_3 = 9.
        assert demand.rates[0] / demand.rates[2] == pytest.approx(9.0)

    def test_omega_zero_is_uniform(self):
        demand = DemandModel.pareto(5, omega=0.0, total_rate=1.0)
        assert np.allclose(demand.rates, 0.2)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            DemandModel.pareto(0)
        with pytest.raises(ConfigurationError):
            DemandModel.pareto(5, omega=-1.0)


class TestBuilders:
    def test_uniform(self):
        demand = DemandModel.uniform(4, total_rate=2.0)
        assert np.allclose(demand.rates, 0.5)

    def test_geometric(self):
        demand = DemandModel.geometric(3, ratio=0.5, total_rate=7.0)
        assert demand.rates[0] / demand.rates[1] == pytest.approx(2.0)
        assert demand.total_rate == pytest.approx(7.0)

    def test_geometric_rejects_bad_ratio(self):
        with pytest.raises(ConfigurationError):
            DemandModel.geometric(3, ratio=1.5)

    def test_from_weights(self):
        demand = DemandModel.from_weights([3.0, 1.0], total_rate=8.0)
        assert demand.rates.tolist() == [6.0, 2.0]

    def test_from_weights_rejects_all_zero(self):
        with pytest.raises(ConfigurationError):
            DemandModel.from_weights([0.0, 0.0])

    def test_zero_weight_items_allowed(self):
        demand = DemandModel.from_weights([1.0, 0.0], total_rate=1.0)
        assert demand.rates[1] == 0.0


class TestProperties:
    def test_probabilities_sum_to_one(self):
        demand = DemandModel.pareto(13, omega=0.7)
        assert demand.probabilities.sum() == pytest.approx(1.0)

    def test_ranked_items(self):
        demand = DemandModel.from_weights([1.0, 5.0, 3.0])
        assert demand.ranked_items().tolist() == [1, 2, 0]

    def test_ranked_items_tie_break_by_id(self):
        demand = DemandModel.from_weights([2.0, 2.0, 1.0])
        assert demand.ranked_items().tolist() == [0, 1, 2]

    def test_scaled(self):
        demand = DemandModel.pareto(5, total_rate=1.0)
        doubled = demand.scaled(2.0)
        assert doubled.total_rate == pytest.approx(2.0)
        assert np.allclose(doubled.probabilities, demand.probabilities)

    def test_validation_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            DemandModel(rates=np.array([1.0, -0.1]))

    def test_validation_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            DemandModel(rates=np.array([]))
