"""Tests for request-schedule concatenation (dynamic-demand support)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.demand import DemandModel, RequestSchedule, generate_requests
from repro.errors import ConfigurationError


class TestConcatenate:
    def test_joins_epochs(self):
        head = DemandModel.pareto(4, omega=2.0, total_rate=2.0)
        tail = DemandModel(rates=head.rates[::-1].copy())
        first = generate_requests(head, 5, 100.0, seed=1)
        second = generate_requests(tail, 5, 50.0, seed=2)
        joined = RequestSchedule.concatenate([first, second])
        assert len(joined) == len(first) + len(second)
        assert joined.duration == pytest.approx(150.0)
        assert np.all(np.diff(joined.times) >= 0)

    def test_offsets_applied(self):
        a = RequestSchedule(
            times=np.array([1.0]), items=np.array([0]),
            nodes=np.array([0]), duration=10.0,
        )
        b = RequestSchedule(
            times=np.array([2.0]), items=np.array([1]),
            nodes=np.array([1]), duration=5.0,
        )
        joined = RequestSchedule.concatenate([a, b])
        assert joined.times.tolist() == [1.0, 12.0]

    def test_popularity_shift_visible(self):
        head = DemandModel.from_weights([10.0, 1.0], total_rate=5.0)
        tail = DemandModel.from_weights([1.0, 10.0], total_rate=5.0)
        joined = RequestSchedule.concatenate(
            [
                generate_requests(head, 3, 400.0, seed=3),
                generate_requests(tail, 3, 400.0, seed=4),
            ]
        )
        first_half = joined.sliced(0.0, 400.0).per_item_counts(2)
        second_half = joined.sliced(400.0, 800.0).per_item_counts(2)
        assert first_half[0] > first_half[1]
        assert second_half[1] > second_half[0]

    def test_empty_list_rejected(self):
        with pytest.raises(ConfigurationError):
            RequestSchedule.concatenate([])

    def test_single_schedule_identity(self):
        schedule = generate_requests(
            DemandModel.pareto(3), 2, 20.0, seed=5
        )
        joined = RequestSchedule.concatenate([schedule])
        assert np.array_equal(joined.times, schedule.times)
