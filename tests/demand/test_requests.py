"""Unit tests for request-schedule generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.demand import (
    DemandModel,
    RequestSchedule,
    clustered_profile,
    generate_requests,
)
from repro.errors import ConfigurationError


class TestGeneration:
    def test_expected_volume(self):
        demand = DemandModel.pareto(10, total_rate=2.0)
        schedule = generate_requests(demand, 20, duration=500.0, seed=3)
        # Poisson(1000): within 5 sigma.
        assert abs(len(schedule) - 1000) < 5 * np.sqrt(1000)

    def test_times_sorted_in_range(self):
        demand = DemandModel.pareto(5)
        schedule = generate_requests(demand, 4, duration=100.0, seed=1)
        assert np.all(np.diff(schedule.times) >= 0)
        assert schedule.times[0] >= 0
        assert schedule.times[-1] <= 100.0

    def test_item_popularity_respected(self):
        demand = DemandModel.from_weights([9.0, 1.0], total_rate=5.0)
        schedule = generate_requests(demand, 10, duration=2000.0, seed=2)
        counts = schedule.per_item_counts(2)
        assert counts[0] / counts[1] == pytest.approx(9.0, rel=0.2)

    def test_uniform_nodes(self):
        demand = DemandModel.pareto(3, total_rate=5.0)
        schedule = generate_requests(demand, 5, duration=2000.0, seed=4)
        node_counts = np.bincount(schedule.nodes, minlength=5)
        assert node_counts.min() > 0.7 * node_counts.mean()

    def test_profile_respected(self):
        demand = DemandModel.uniform(2, total_rate=10.0)
        pi = np.array([[1.0, 0.0], [0.0, 1.0]])
        schedule = generate_requests(
            demand, 2, duration=300.0, profile=pi, seed=5
        )
        for t, item, node in schedule:
            assert item == node

    def test_clustered_profile_integration(self):
        demand = DemandModel.pareto(6, total_rate=10.0)
        pi = clustered_profile(6, 6, n_groups=2, bias=50.0)
        schedule = generate_requests(
            demand, 6, duration=500.0, profile=pi, seed=6
        )
        same_group = sum(
            1 for _, item, node in schedule if item % 2 == node % 2
        )
        assert same_group / len(schedule) > 0.9

    def test_determinism(self):
        demand = DemandModel.pareto(4)
        a = generate_requests(demand, 3, duration=50.0, seed=11)
        b = generate_requests(demand, 3, duration=50.0, seed=11)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.items, b.items)
        assert np.array_equal(a.nodes, b.nodes)

    def test_rejects_bad_arguments(self):
        demand = DemandModel.pareto(4)
        with pytest.raises(ConfigurationError):
            generate_requests(demand, 0, duration=10.0)
        with pytest.raises(ConfigurationError):
            generate_requests(demand, 5, duration=0.0)


class TestSchedule:
    def make(self):
        return RequestSchedule(
            times=np.array([1.0, 2.0, 5.0]),
            items=np.array([0, 1, 0]),
            nodes=np.array([2, 0, 1]),
            duration=10.0,
        )

    def test_len_and_iter(self):
        schedule = self.make()
        assert len(schedule) == 3
        assert list(schedule)[1] == (2.0, 1, 0)

    def test_sliced(self):
        schedule = self.make().sliced(1.5, 5.0)
        assert len(schedule) == 1
        assert schedule.items.tolist() == [1]

    def test_per_item_counts(self):
        assert self.make().per_item_counts(3).tolist() == [2, 1, 0]

    def test_validation_unsorted(self):
        with pytest.raises(ConfigurationError):
            RequestSchedule(
                times=np.array([2.0, 1.0]),
                items=np.array([0, 0]),
                nodes=np.array([0, 0]),
                duration=5.0,
            )

    def test_validation_out_of_range(self):
        with pytest.raises(ConfigurationError):
            RequestSchedule(
                times=np.array([6.0]),
                items=np.array([0]),
                nodes=np.array([0]),
                duration=5.0,
            )

    def test_validation_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            RequestSchedule(
                times=np.array([1.0]),
                items=np.array([0, 1]),
                nodes=np.array([0]),
                duration=5.0,
            )


class TestChunkedGeneration:
    def test_default_path_unchanged(self):
        """chunk_target=None must stay byte-identical to the old path."""
        demand = DemandModel.pareto(8, total_rate=1.5)
        a = generate_requests(demand, 25, duration=200.0, seed=11)
        b = generate_requests(
            demand, 25, duration=200.0, seed=11, chunk_target=None
        )
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.items, b.items)
        assert np.array_equal(a.nodes, b.nodes)

    def test_chunked_is_valid_same_process(self):
        demand = DemandModel.pareto(8, total_rate=2.0)
        chunked = generate_requests(
            demand, 25, duration=400.0, seed=11, chunk_target=50
        )
        assert np.all(np.diff(chunked.times) >= 0)
        assert np.all((chunked.times >= 0) & (chunked.times <= 400.0))
        assert np.all((chunked.items >= 0) & (chunked.items < 8))
        assert np.all((chunked.nodes >= 0) & (chunked.nodes < 25))
        # a different realization of the same Poisson volume
        eager = generate_requests(demand, 25, duration=400.0, seed=11)
        expected = len(eager)
        assert abs(len(chunked) - expected) < 6 * np.sqrt(expected + 1)

    def test_chunked_deterministic(self):
        demand = DemandModel.pareto(5, total_rate=1.0)
        a = generate_requests(
            demand, 10, duration=100.0, seed=4, chunk_target=32
        )
        b = generate_requests(
            demand, 10, duration=100.0, seed=4, chunk_target=32
        )
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.items, b.items)
        assert np.array_equal(a.nodes, b.nodes)

    def test_chunked_respects_profile(self):
        demand = DemandModel.pareto(6, total_rate=2.0)
        profile = clustered_profile(
            n_items=6, n_clients=30, n_groups=3, seed=8
        )
        schedule = generate_requests(
            demand,
            30,
            duration=300.0,
            seed=9,
            profile=profile,
            chunk_target=64,
        )
        assert len(schedule) > 0
        assert np.all(schedule.nodes < 30)
