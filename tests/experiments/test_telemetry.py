"""Sweep instrumentation: telemetry records, progress, manifests, profiles."""

from __future__ import annotations

import io

import pytest

from repro.contacts import homogeneous_poisson_trace
from repro.demand import DemandModel
from repro.experiments import run_comparison
from repro.experiments.checkpoint import ComparisonCheckpoint
from repro.experiments.runner import RunTelemetry
from repro.obs.log import set_log_stream
from repro.protocols import prop_protocol, uni_protocol
from repro.sim import SimulationConfig
from repro.utility import StepUtility

N, I, RHO = 8, 6, 2
N_TRIALS = 3


@pytest.fixture(autouse=True)
def _many_cpus(monkeypatch):
    """Pretend the machine has 8 cores so ``n_workers=2`` tests stay
    on the pool path (the runner caps workers at ``os.cpu_count()``)."""
    import os

    monkeypatch.setattr(os, "cpu_count", lambda: 8)


def make_protocols(demand):
    return {
        "OPT": lambda tr, rq: prop_protocol(demand, tr.n_nodes, RHO),
        "UNI": lambda tr, rq: uni_protocol(demand, tr.n_nodes, RHO),
    }


@pytest.fixture
def setup():
    demand = DemandModel.pareto(I, omega=1.0, total_rate=2.0)
    config = SimulationConfig(n_items=I, rho=RHO, utility=StepUtility(5.0))
    return demand, config


def sweep(demand, config, **kwargs):
    return run_comparison(
        trace_factory=lambda seed: homogeneous_poisson_trace(
            N, 0.1, 120.0, seed=seed
        ),
        demand=demand,
        config=config,
        protocols=make_protocols(demand),
        n_trials=N_TRIALS,
        base_seed=11,
        **kwargs,
    )


class TestTelemetryRecords:
    def test_one_record_per_unit_in_trial_major_order(self, setup):
        demand, config = setup
        result = sweep(demand, config)
        assert len(result.telemetry) == N_TRIALS * 2
        order = [(r.trial, r.protocol) for r in result.telemetry]
        assert order == [
            (trial, name)
            for trial in range(N_TRIALS)
            for name in ("OPT", "UNI")
        ]
        for record in result.telemetry:
            assert record.status == "ok"
            assert record.wall_s >= 0.0
            assert record.cpu_s >= 0.0
            assert record.attempts == 1
            assert record.gain_rate is not None

    def test_parallel_telemetry_matches_serial_shape(self, setup):
        demand, config = setup
        serial = sweep(demand, config)
        parallel = sweep(demand, config, n_workers=2)
        assert [
            (r.trial, r.protocol, r.status) for r in serial.telemetry
        ] == [(r.trial, r.protocol, r.status) for r in parallel.telemetry]
        # Statistics stay bit-identical regardless of telemetry.
        for name in serial.stats:
            assert (
                serial.stats[name].gain_rates.tolist()
                == parallel.stats[name].gain_rates.tolist()
            )

    def test_to_dict_round_trip(self):
        record = RunTelemetry(
            trial=1, protocol="OPT", status="ok", wall_s=0.5, gain_rate=2.0
        )
        data = record.to_dict()
        assert data["trial"] == 1
        assert data["gain_rate"] == 2.0


class TestProgress:
    def test_callback_receives_every_unit(self, setup):
        demand, config = setup
        seen = []
        sweep(demand, config, progress=seen.append)
        assert len(seen) == N_TRIALS * 2
        assert [u["completed"] for u in seen] == list(
            range(1, N_TRIALS * 2 + 1)
        )
        for update in seen:
            assert update["total"] == N_TRIALS * 2
            assert update["status"] == "ok"
            assert update["elapsed_s"] >= 0.0

    def test_progress_true_logs_lines(self, setup):
        demand, config = setup
        stream = io.StringIO()
        set_log_stream(stream)
        try:
            sweep(demand, config, progress=True)
        finally:
            set_log_stream(None)
        lines = stream.getvalue().splitlines()
        assert len(lines) >= N_TRIALS * 2
        assert any("sweep complete" in line for line in lines)


class TestSweepManifest:
    def test_result_manifest_shape(self, setup):
        demand, config = setup
        result = sweep(demand, config)
        manifest = result.manifest
        assert manifest is not None
        assert manifest["config_fingerprint"] == config.fingerprint()
        assert manifest["base_seed"] == 11
        assert manifest["n_trials"] == N_TRIALS
        assert manifest["protocols"] == ["OPT", "UNI"]
        assert manifest["n_runs_executed"] == N_TRIALS * 2
        assert manifest["n_failures"] == 0
        assert manifest["wall_s"] >= 0.0
        assert "python" in manifest["environment"]

    def test_checkpoint_carries_manifest_and_resume_is_cached(
        self, setup, tmp_path
    ):
        demand, config = setup
        path = tmp_path / "sweep.ckpt"
        first = sweep(demand, config, checkpoint_path=str(path))
        stored = ComparisonCheckpoint.open(
            str(path),
            base_seed=11,
            n_trials=N_TRIALS,
            protocols=("OPT", "UNI"),
        )
        assert stored.manifest is not None
        assert (
            stored.manifest["config_fingerprint"]
            == first.manifest["config_fingerprint"]
        )
        resumed = sweep(demand, config, checkpoint_path=str(path))
        assert all(r.status == "cached" for r in resumed.telemetry)
        assert resumed.manifest["n_runs_executed"] == 0
        for name in first.stats:
            assert (
                first.stats[name].gain_rates.tolist()
                == resumed.stats[name].gain_rates.tolist()
            )


class TestProfiling:
    def test_serial_profile_dump(self, setup, tmp_path):
        demand, config = setup
        profile_dir = tmp_path / "profiles"
        sweep(demand, config, profile_dir=str(profile_dir))
        dumps = list(profile_dir.glob("serial-*.pstats"))
        assert len(dumps) == 1
        import pstats

        stats = pstats.Stats(str(dumps[0]))
        assert stats.total_calls > 0

    def test_parallel_profile_dump(self, setup, tmp_path):
        demand, config = setup
        profile_dir = tmp_path / "profiles"
        sweep(demand, config, n_workers=2, profile_dir=str(profile_dir))
        dumps = list(profile_dir.glob("worker-*.pstats"))
        assert dumps, "expected at least one worker profile"
