"""Tests for scenario builders and the standard protocol suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.contacts.synthetic import ConferenceTraceConfig, VehicularTraceConfig
from repro.errors import ConfigurationError
from repro.experiments import (
    default_qcr_config,
    conference_scenario,
    homogeneous_scenario,
    run_scenario,
    standard_protocols,
    vehicular_scenario,
)
from repro.utility import ExponentialUtility, PowerUtility, StepUtility

FAST_CONF = ConferenceTraceConfig(n_nodes=12, n_days=1)
FAST_VEH = VehicularTraceConfig(
    n_nodes=12, duration_hours=4.0, sample_interval_s=60.0
)


class TestBuilders:
    def test_homogeneous_defaults(self):
        scenario = homogeneous_scenario(StepUtility(5.0))
        assert scenario.n_nodes == 50
        assert not scenario.heterogeneous
        trace = scenario.trace_factory(0)
        assert trace.n_nodes == 50
        assert trace.duration == 5000.0

    def test_with_utility(self):
        scenario = homogeneous_scenario(StepUtility(5.0))
        other = scenario.with_utility(ExponentialUtility(0.1))
        assert isinstance(other.config.utility, ExponentialUtility)
        assert other.demand is scenario.demand

    def test_conference_variants(self):
        for variant in ("actual", "synthesized", "rate_matched"):
            scenario = conference_scenario(
                StepUtility(60.0), trace_config=FAST_CONF, variant=variant
            )
            trace = scenario.trace_factory(1)
            assert trace.n_nodes == 12
        with pytest.raises(ConfigurationError):
            conference_scenario(StepUtility(60.0), variant="bogus")

    def test_vehicular(self):
        scenario = vehicular_scenario(
            StepUtility(60.0), trace_config=FAST_VEH
        )
        assert scenario.heterogeneous
        assert scenario.mu_estimate > 0

    def test_trace_factories_deterministic(self):
        scenario = conference_scenario(
            StepUtility(60.0), trace_config=FAST_CONF
        )
        a = scenario.trace_factory(9)
        b = scenario.trace_factory(9)
        assert np.array_equal(a.times, b.times)


class TestDefaultQcrConfig:
    def test_scale_normalizes_typical_burst(self):
        """The damping keeps a typical fulfillment's expected replica
        burst at the target, across families."""
        for utility in (StepUtility(5.0), PowerUtility(0.0), PowerUtility(-1.0)):
            config = default_qcr_config(utility, 50, 0.05)
            burst = config.psi_scale * utility.psi(10.0, 50, 0.05)
            assert burst <= 0.15 + 1e-9

    def test_tiny_reactions_left_alone(self):
        # A long deadline makes psi exponentially small: no damping.
        config = default_qcr_config(StepUtility(500.0), 50, 0.05)
        assert config.psi_scale == 1.0

    def test_stronger_reactions_damped_more(self):
        mild = default_qcr_config(PowerUtility(0.0), 50, 0.05)
        strong = default_qcr_config(PowerUtility(-1.0), 50, 0.05)
        assert strong.psi_scale < mild.psi_scale < 1.0
        assert strong.max_mandates_per_request is not None


class TestStandardProtocols:
    def test_all_names_built(self):
        scenario = homogeneous_scenario(StepUtility(5.0), duration=100.0)
        suite = standard_protocols(
            scenario,
            include=("OPT", "QCR", "QCRWOM", "SQRT", "PROP", "UNI", "DOM", "PASSIVE"),
        )
        trace = scenario.trace_factory(0)
        for name, factory in suite.items():
            protocol = factory(trace, None)
            assert protocol is not None

    def test_unknown_name_rejected(self):
        scenario = homogeneous_scenario(StepUtility(5.0), duration=100.0)
        with pytest.raises(ConfigurationError):
            standard_protocols(scenario, include=("NOPE",))

    def test_heterogeneous_opt_uses_trace(self):
        scenario = conference_scenario(
            StepUtility(60.0), trace_config=FAST_CONF
        )
        suite = standard_protocols(scenario, include=("OPT",))
        trace = scenario.trace_factory(2)
        protocol = suite["OPT"](trace, None)
        assert protocol.name == "OPT"


class TestRunScenario:
    def test_small_end_to_end(self):
        scenario = homogeneous_scenario(
            StepUtility(5.0),
            n_nodes=10,
            n_items=6,
            rho=2,
            duration=300.0,
            total_demand=2.0,
            record_interval=None,
        )
        comparison = run_scenario(
            scenario, n_trials=2, include=("OPT", "QCR", "UNI")
        )
        losses = comparison.losses()
        assert losses["OPT"] == pytest.approx(0.0)
        assert set(losses) == {"OPT", "QCR", "UNI"}
