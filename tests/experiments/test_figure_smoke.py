"""Tiny-profile smoke tests for the simulation-backed figures.

The full regenerations live in ``benchmarks/``; these shrunken runs
guard the figure plumbing (series shapes, panel structure, rendering)
inside the fast test suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import EffortProfile, figure3, figure4, figure6

TINY = EffortProfile(
    label="tiny",
    n_trials=1,
    duration=300.0,
    power_alphas=(0.0,),
    step_taus=(10.0,),
    exp_nus=(0.1,),
)


@pytest.fixture(scope="module")
def fig3():
    return figure3(TINY)


class TestFigure3Smoke:
    def test_panels_shaped(self, fig3):
        assert set(fig3.expected_utility.series) == {
            "OPT",
            "UNI",
            "DOM",
            "QCRWOM",
            "QCR",
        }
        n_points = len(fig3.expected_utility.times)
        for series in fig3.expected_utility.series.values():
            assert len(series) == n_points

    def test_replica_panels_track_five_items(self, fig3):
        assert len(fig3.replicas_with_routing.series) == 5
        assert len(fig3.replicas_without_routing.series) == 5

    def test_static_references_flat(self, fig3):
        uni = fig3.expected_utility.series["UNI"]
        assert np.allclose(uni, uni[0])

    def test_render(self, fig3):
        text = fig3.render()
        assert "Figure 3(a)" in text
        assert "Figure 3(d)" in text


class TestFigure4Smoke:
    def test_structure(self):
        result = figure4(TINY)
        assert result.power_panel.x_values == (0.0,)
        assert result.step_panel.x_values == (10.0,)
        for panel in (result.power_panel, result.step_panel):
            assert set(panel.losses) == {
                "OPT",
                "QCR",
                "SQRT",
                "PROP",
                "UNI",
                "DOM",
            }
            assert panel.losses["OPT"][0] == pytest.approx(0.0)
        assert "Figure 4" in result.render()


class TestFigure6Smoke:
    def test_structure(self):
        result = figure6(TINY)
        for panel in (
            result.power_panel,
            result.step_panel,
            result.exponential_panel,
        ):
            assert len(panel.x_values) == 1
            assert all(len(v) == 1 for v in panel.losses.values())
        assert "vehicular" in result.render()
