"""Parallel runner determinism: n_workers must never change results.

The process pool is purely a wall-clock optimization; every test here
asserts *bit-identical* statistics between ``n_workers=4`` and the
serial path, including under per-trial fault schedules, skip-on-error
sweeps, and checkpoint/resume.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.contacts import homogeneous_poisson_trace
from repro.demand import DemandModel
from repro.errors import ConfigurationError
from repro.experiments import run_comparison
from repro.faults import FaultSchedule
from repro.protocols import prop_protocol, uni_protocol
from repro.sim import SimulationConfig
from repro.utility import StepUtility

N, I, RHO = 8, 6, 2
DURATION = 150.0

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel runner needs the fork start method",
)


@pytest.fixture(autouse=True)
def _many_cpus(monkeypatch):
    """Pretend the machine has 8 cores.

    The runner caps ``n_workers`` at ``os.cpu_count()``; on a 1-CPU CI
    box that would silently route every ``n_workers=4`` test through
    the serial path and stop exercising the pool.
    """
    import os

    monkeypatch.setattr(os, "cpu_count", lambda: 8)


def trace_factory(seed):
    return homogeneous_poisson_trace(N, 0.1, DURATION, seed=seed)


def make_protocols(demand):
    return {
        "OPT": lambda tr, rq: prop_protocol(demand, tr.n_nodes, RHO),
        "UNI": lambda tr, rq: uni_protocol(demand, tr.n_nodes, RHO),
    }


@pytest.fixture
def setup():
    demand = DemandModel.pareto(I, omega=1.0, total_rate=2.0)
    config = SimulationConfig(n_items=I, rho=RHO, utility=StepUtility(5.0))
    return demand, config


def sweep(demand, config, protocols, **kwargs):
    kwargs.setdefault("n_trials", 3)
    kwargs.setdefault("base_seed", 1)
    return run_comparison(
        trace_factory=trace_factory,
        demand=demand,
        config=config,
        protocols=protocols,
        **kwargs,
    )


def assert_identical(a, b):
    assert set(a.stats) == set(b.stats)
    for name in a.stats:
        assert np.array_equal(
            a.stats[name].gain_rates, b.stats[name].gain_rates
        ), name
        for x, y in zip(a.stats[name].results, b.stats[name].results):
            assert x.total_gain == y.total_gain
            assert x.n_fulfilled == y.n_fulfilled
            assert np.array_equal(x.final_counts, y.final_counts)


class TestParallelDeterminism:
    def test_pool_matches_serial(self, setup):
        demand, config = setup
        serial = sweep(demand, config, make_protocols(demand))
        parallel = sweep(demand, config, make_protocols(demand), n_workers=4)
        assert_identical(serial, parallel)

    def test_single_worker_means_serial(self, setup):
        demand, config = setup
        serial = sweep(demand, config, make_protocols(demand))
        one = sweep(demand, config, make_protocols(demand), n_workers=1)
        assert_identical(serial, one)

    def test_pool_matches_serial_under_per_trial_faults(self, setup):
        demand, config = setup
        faults = lambda trial: FaultSchedule.crash_wave(  # noqa: E731
            DURATION / 2, range(trial + 1), wipe_cache=True
        )
        serial = sweep(demand, config, make_protocols(demand), faults=faults)
        parallel = sweep(
            demand, config, make_protocols(demand), faults=faults, n_workers=4
        )
        assert_identical(serial, parallel)
        crashes = [r.n_crashes for r in parallel.stats["UNI"].results]
        assert crashes == [1, 2, 3]

    def test_invalid_worker_count_rejected(self, setup):
        demand, config = setup
        with pytest.raises(ConfigurationError, match="n_workers"):
            sweep(demand, config, make_protocols(demand), n_workers=0)


class TestParallelErrorPolicies:
    def test_skip_reports_same_failures_as_serial(self, setup):
        demand, config = setup

        def protocols():
            # Fails deterministically from the trial's trace realization,
            # so serial and parallel sweeps fail on the same runs.
            def moody(tr, rq):
                if len(tr) > 445:  # trips only on trial 0's realization
                    raise RuntimeError(f"dense trace ({len(tr)} contacts)")
                return uni_protocol(demand, tr.n_nodes, RHO)

            built = make_protocols(demand)
            built["MOODY"] = moody
            return built

        serial = sweep(demand, config, protocols(), on_error="skip")
        parallel = sweep(
            demand, config, protocols(), on_error="skip", n_workers=4
        )
        assert serial.failures  # the seeds above do produce odd traces
        assert len(serial.failures) < serial.n_trials
        assert [
            (f.trial, f.protocol, f.error, f.attempts)
            for f in parallel.failures
        ] == [
            (f.trial, f.protocol, f.error, f.attempts)
            for f in serial.failures
        ]
        assert_identical(serial, parallel)

    def test_raise_propagates_from_worker(self, setup):
        demand, config = setup
        protocols = make_protocols(demand)
        protocols["BAD"] = lambda tr, rq: (_ for _ in ()).throw(
            RuntimeError("boom")
        )
        with pytest.raises(RuntimeError, match="boom"):
            sweep(demand, config, protocols, n_workers=4)


class TestParallelCheckpoint:
    def test_parallel_resume_of_interrupted_serial_sweep(
        self, setup, tmp_path
    ):
        demand, config = setup
        path = tmp_path / "sweep.json"
        uninterrupted = sweep(demand, config, make_protocols(demand))

        calls = {"n": 0}

        def dying_uni(tr, rq):
            calls["n"] += 1
            if calls["n"] >= 2:  # die mid-sweep, after one UNI run
                raise KeyboardInterrupt
            return uni_protocol(demand, tr.n_nodes, RHO)

        protocols = make_protocols(demand)
        protocols["UNI"] = dying_uni
        with pytest.raises(KeyboardInterrupt):
            sweep(demand, config, protocols, checkpoint_path=path)
        assert path.exists()

        resumed = sweep(
            demand,
            config,
            make_protocols(demand),
            checkpoint_path=path,
            n_workers=4,
        )
        assert_identical(uninterrupted, resumed)

    def test_parallel_sweep_writes_complete_checkpoint(self, setup, tmp_path):
        demand, config = setup
        path = tmp_path / "sweep.json"
        first = sweep(
            demand, config, make_protocols(demand),
            checkpoint_path=path, n_workers=4,
        )

        def exploding(tr, rq):
            raise AssertionError("should have been loaded from checkpoint")

        reloaded = sweep(
            demand,
            config,
            {"OPT": exploding, "UNI": exploding},
            checkpoint_path=path,
        )
        assert_identical(first, reloaded)
