"""Fault-tolerant sweeps: on_error policies, checkpoints, stat guards."""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.contacts import homogeneous_poisson_trace
from repro.demand import DemandModel
from repro.errors import ConfigurationError, SimulationError
from repro.experiments import (
    AlgorithmStats,
    ComparisonCheckpoint,
    percentile_interval,
    result_from_dict,
    result_to_dict,
    run_comparison,
)
from repro.faults import FaultSchedule
from repro.protocols import prop_protocol, uni_protocol
from repro.sim import SimulationConfig
from repro.utility import StepUtility

N, I, RHO = 8, 6, 2
DURATION = 150.0


def trace_factory(seed):
    return homogeneous_poisson_trace(N, 0.1, DURATION, seed=seed)


def make_protocols(demand):
    return {
        "OPT": lambda tr, rq: prop_protocol(demand, tr.n_nodes, RHO),
        "UNI": lambda tr, rq: uni_protocol(demand, tr.n_nodes, RHO),
    }


@pytest.fixture
def setup():
    demand = DemandModel.pareto(I, omega=1.0, total_rate=2.0)
    config = SimulationConfig(n_items=I, rho=RHO, utility=StepUtility(5.0))
    return demand, config


def sweep(demand, config, protocols, **kwargs):
    kwargs.setdefault("n_trials", 3)
    kwargs.setdefault("base_seed", 1)
    return run_comparison(
        trace_factory=trace_factory,
        demand=demand,
        config=config,
        protocols=protocols,
        **kwargs,
    )


class TestOnErrorPolicies:
    def test_raise_is_default(self, setup):
        demand, config = setup
        protocols = make_protocols(demand)
        protocols["BAD"] = lambda tr, rq: (_ for _ in ()).throw(
            RuntimeError("boom")
        )
        with pytest.raises(RuntimeError, match="boom"):
            sweep(demand, config, protocols)

    def test_skip_reports_partial_results(self, setup):
        demand, config = setup
        calls = {"n": 0}

        def flaky(tr, rq):
            calls["n"] += 1
            if calls["n"] == 2:  # fail exactly on trial 1
                raise RuntimeError("boom")
            return uni_protocol(demand, tr.n_nodes, RHO)

        protocols = make_protocols(demand)
        protocols["FLAKY"] = flaky
        result = sweep(demand, config, protocols, on_error="skip")
        assert result.n_trials == 3
        assert result.stats["OPT"].n_trials == 3
        assert result.stats["FLAKY"].n_trials == 2
        (failure,) = result.failures
        assert failure.trial == 1
        assert failure.protocol == "FLAKY"
        assert failure.error == "RuntimeError: boom"
        assert failure.attempts == 1
        assert "failed runs (1):" in result.render()

    def test_skip_drops_fully_failed_protocol(self, setup):
        demand, config = setup
        protocols = make_protocols(demand)
        protocols["BAD"] = lambda tr, rq: (_ for _ in ()).throw(
            RuntimeError("boom")
        )
        result = sweep(demand, config, protocols, on_error="skip")
        assert "BAD" not in result.stats
        assert result.n_failures == 3
        assert np.isnan(result.normalized_loss("BAD"))

    def test_retry_recovers_transient_failures(self, setup):
        demand, config = setup
        attempts = {"n": 0}

        def flaky(tr, rq):
            attempts["n"] += 1
            if attempts["n"] % 2 == 1:  # every first attempt fails
                raise RuntimeError("transient")
            return uni_protocol(demand, tr.n_nodes, RHO)

        protocols = {"OPT": make_protocols(demand)["OPT"], "FLAKY": flaky}
        result = sweep(
            demand, config, protocols,
            on_error="retry", retry_backoff=0.0,
        )
        assert not result.failures
        assert result.stats["FLAKY"].n_trials == 3

    def test_retry_gives_up_after_max_retries(self, setup):
        demand, config = setup
        protocols = make_protocols(demand)
        protocols["BAD"] = lambda tr, rq: (_ for _ in ()).throw(
            RuntimeError("persistent")
        )
        result = sweep(
            demand, config, protocols,
            n_trials=1, on_error="retry", max_retries=2, retry_backoff=0.0,
        )
        (failure,) = result.failures
        assert failure.attempts == 3  # 1 initial + 2 retries

    def test_every_run_failing_raises(self, setup):
        demand, config = setup
        protocols = {
            "OPT": lambda tr, rq: (_ for _ in ()).throw(RuntimeError("boom"))
        }
        with pytest.raises(SimulationError, match="every run failed"):
            sweep(demand, config, protocols, on_error="skip")

    def test_invalid_policy_rejected(self, setup):
        demand, config = setup
        with pytest.raises(ConfigurationError, match="on_error"):
            sweep(demand, config, make_protocols(demand), on_error="ignore")

    def test_failure_error_text_is_byte_bounded(self, setup):
        """A pathological exception message must not bloat the records.

        Recursive reprs and deeply nested tracebacks can reach
        megabytes; everything persisted (checkpoints, queue failure
        files, telemetry) stores the TrialFailure error, so it is
        truncated to MAX_ERROR_BYTES at the source.
        """
        from repro.durable import MAX_ERROR_BYTES

        demand, config = setup
        protocols = make_protocols(demand)
        protocols["BAD"] = lambda tr, rq: (_ for _ in ()).throw(
            RuntimeError("corrupt state: " + "x" * (MAX_ERROR_BYTES * 8))
        )
        result = sweep(
            demand, config, protocols, n_trials=1, on_error="skip"
        )
        (failure,) = result.failures
        assert len(failure.error.encode("utf-8")) <= MAX_ERROR_BYTES
        assert failure.error.startswith("RuntimeError: corrupt state:")
        assert "truncated" in failure.error


class TestFaultsThreading:
    def test_shared_schedule_applies_to_every_run(self, setup):
        demand, config = setup
        faults = FaultSchedule.crash_wave(
            DURATION / 2, [0, 1], wipe_cache=False
        )
        result = sweep(demand, config, make_protocols(demand), faults=faults)
        for stats in result.stats.values():
            assert all(r.n_crashes == 2 for r in stats.results)

    def test_per_trial_factory(self, setup):
        demand, config = setup
        result = sweep(
            demand,
            config,
            make_protocols(demand),
            faults=lambda trial: FaultSchedule.crash_wave(
                DURATION / 2, range(trial + 1), wipe_cache=False
            ),
        )
        crashes = [r.n_crashes for r in result.stats["UNI"].results]
        assert crashes == [1, 2, 3]


class TestCheckpoint:
    def test_result_round_trips_exactly(self, setup):
        demand, config = setup
        result = sweep(
            demand,
            config,
            make_protocols(demand),
            n_trials=1,
            faults=FaultSchedule.crash_wave(50.0, [0], recover_at=60.0),
        )
        original = result.stats["UNI"].results[0]
        rebuilt = result_from_dict(result_to_dict(original))
        for spec in dataclasses.fields(original):
            x, y = getattr(original, spec.name), getattr(rebuilt, spec.name)
            if isinstance(x, np.ndarray):
                assert np.array_equal(x, y), spec.name
                assert x.dtype == y.dtype, spec.name
            elif isinstance(x, float) and np.isnan(x):
                assert np.isnan(y), spec.name
            else:
                assert x == y, spec.name

    def test_interrupted_sweep_resumes_identically(self, setup, tmp_path):
        demand, config = setup
        path = tmp_path / "sweep.json"
        uninterrupted = sweep(demand, config, make_protocols(demand))

        calls = {"n": 0}

        def dying_uni(tr, rq):
            calls["n"] += 1
            if calls["n"] >= 2:  # die on the second trial
                raise KeyboardInterrupt
            return uni_protocol(demand, tr.n_nodes, RHO)

        protocols = make_protocols(demand)
        protocols["UNI"] = dying_uni
        with pytest.raises(KeyboardInterrupt):
            sweep(demand, config, protocols, checkpoint_path=path)
        assert path.exists()

        resumed = sweep(
            demand, config, make_protocols(demand), checkpoint_path=path
        )
        for name in ("OPT", "UNI"):
            assert np.array_equal(
                resumed.stats[name].gain_rates,
                uninterrupted.stats[name].gain_rates,
            )

    def test_completed_sweep_is_not_resimulated(self, setup, tmp_path):
        demand, config = setup
        path = tmp_path / "sweep.json"
        first = sweep(demand, config, make_protocols(demand),
                      checkpoint_path=path)

        def exploding(tr, rq):
            raise AssertionError("should have been loaded from checkpoint")

        protocols = {"OPT": exploding, "UNI": exploding}
        reloaded = sweep(demand, config, protocols, checkpoint_path=path)
        assert np.array_equal(
            reloaded.stats["UNI"].gain_rates, first.stats["UNI"].gain_rates
        )

    def test_mismatched_sweep_identity_rejected(self, setup, tmp_path):
        demand, config = setup
        path = tmp_path / "sweep.json"
        sweep(demand, config, make_protocols(demand), checkpoint_path=path)
        with pytest.raises(ConfigurationError, match="different sweep"):
            sweep(
                demand, config, make_protocols(demand),
                base_seed=99, checkpoint_path=path,
            )

    def test_corrupt_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="unreadable"):
            ComparisonCheckpoint.open(
                path, base_seed=0, n_trials=1, protocols=["OPT"]
            )

    def test_corrupt_checkpoint_entry_rejected(self, tmp_path):
        """A damaged per-run entry fails at open(), not later in get()."""
        path = tmp_path / "entries.json"
        good = ComparisonCheckpoint(
            path, base_seed=0, n_trials=1, protocols=["OPT"]
        )
        good.save()
        data = json.loads(path.read_text())
        data["completed"] = {"0:OPT": "truncated garbage"}
        path.write_text(json.dumps(data))
        with pytest.raises(ConfigurationError, match="corrupt checkpoint entry"):
            ComparisonCheckpoint.open(
                path, base_seed=0, n_trials=1, protocols=["OPT"]
            )


class TestStatGuards:
    """Satellite: empty / all-NaN inputs fail loudly, not cryptically."""

    def test_percentile_interval_empty_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one value"):
            percentile_interval([])

    def test_percentile_interval_all_nan_rejected(self):
        with pytest.raises(ConfigurationError, match="all-NaN"):
            percentile_interval([float("nan"), float("nan")])

    def test_algorithm_stats_empty_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one trial"):
            AlgorithmStats(name="X", gain_rates=np.zeros(0), results=())

    def test_algorithm_stats_all_nan_rejected(self):
        with pytest.raises(ConfigurationError, match="all-NaN"):
            AlgorithmStats(
                name="X",
                gain_rates=np.array([float("nan")]),
                results=(),
            )
