"""Smoke and correctness tests for figure regeneration and reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    EffortProfile,
    figure1,
    figure2,
    recommended_timeout,
    render_loss_sweep,
    render_table,
)
from repro.experiments.profiles import current_profile
from repro.utility import ExponentialUtility, PowerUtility, StepUtility

TINY = EffortProfile(
    label="tiny",
    n_trials=1,
    duration=400.0,
    power_alphas=(0.0,),
    step_taus=(5.0,),
    exp_nus=(0.1,),
)


class TestFigure1:
    def test_panels_present(self):
        result = figure1(n_points=4)
        assert len(result.panels) == 3
        text = result.render()
        assert "advertising revenue" in text
        assert "waiting cost" in text

    def test_curves_monotone(self):
        result = figure1(n_points=20)
        for curves in result.panels.values():
            for name, values in curves.items():
                assert np.all(np.diff(values) <= 1e-9), name


class TestFigure2:
    def test_fitted_matches_closed_form(self):
        result = figure2(alphas=[-2.0, -0.5, 0.0, 1.0, 1.5])
        assert np.allclose(result.closed_form, result.fitted, atol=1e-3)

    def test_key_points(self):
        result = figure2(alphas=[0.0, 1.0])
        assert result.closed_form[0] == pytest.approx(0.5)  # sqrt law
        assert result.closed_form[1] == pytest.approx(1.0)  # proportional

    def test_render(self):
        text = figure2(alphas=[0.0]).render()
        assert "alpha" in text and "fitted" in text


class TestProfiles:
    def test_quick_and_full(self):
        quick = EffortProfile.quick()
        full = EffortProfile.full()
        assert quick.n_trials < full.n_trials
        assert quick.duration < full.duration
        assert len(quick.power_alphas) < len(full.power_alphas)

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        assert current_profile().label == "full"
        monkeypatch.setenv("REPRO_BENCH_SCALE", "quick")
        assert current_profile().label == "quick"
        monkeypatch.delenv("REPRO_BENCH_SCALE")
        assert current_profile().label == "quick"

    def test_bad_env_rejected(self, monkeypatch):
        from repro.errors import ConfigurationError

        monkeypatch.setenv("REPRO_BENCH_SCALE", "massive")
        with pytest.raises(ConfigurationError):
            current_profile()


class TestTimeouts:
    def test_step(self):
        assert recommended_timeout(StepUtility(3.0), 1e6) == 30.0

    def test_exponential(self):
        assert recommended_timeout(ExponentialUtility(0.1), 1e6) == 200.0

    def test_capped_by_duration(self):
        assert recommended_timeout(StepUtility(1000.0), 500.0) == 500.0

    def test_unbounded_costs_have_none(self):
        assert recommended_timeout(PowerUtility(0.0), 1e6) is None


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(
            ["name", "value"], [["a", 1.0], ["long-name", 123456.0]]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")

    def test_render_table_title(self):
        text = render_table(["x"], [[1.0]], title="demo")
        assert text.splitlines()[0] == "demo"

    def test_render_loss_sweep(self):
        text = render_loss_sweep(
            "tau", [1.0, 10.0], {"QCR": [-1.5, -0.25], "UNI": [-30.0, -2.0]}
        )
        assert "tau" in text
        assert "-1.50%" in text
        assert "-30.00%" in text
