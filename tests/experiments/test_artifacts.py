"""TrialArtifacts: memoized fingerprints, shared streams, spill handoff.

The amortization contract has two halves: each per-trial artifact is
computed *at most once* (the memo tests count underlying hash passes),
and reusing it never changes a single bit of any result (the sweep
tests compare shared/unshared and spilled/regenerated runs exactly).
"""

from __future__ import annotations

import multiprocessing
import os

import numpy as np
import pytest

from repro.contacts import homogeneous_poisson_trace
from repro.contacts.binary import binary_trace_metadata
from repro.demand import DemandModel, generate_requests
from repro.experiments import TrialArtifacts, run_comparison
from repro.experiments.artifacts import (
    SPILL_FINGERPRINT_KEY,
    load_spilled_trace,
    spill_trial_trace,
)
from repro.faults import FaultSchedule
from repro.protocols import prop_protocol, uni_protocol
from repro.sim import SimulationConfig
from repro.simcache import (
    fingerprint_faults,
    fingerprint_requests,
    fingerprint_trace,
    run_key,
)
from repro.utility import StepUtility

N, I, RHO = 6, 4, 2
DURATION = 80.0

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="executor backends need the fork start method",
)


def trace_factory(seed):
    return homogeneous_poisson_trace(N, 0.1, DURATION, seed=seed)


@pytest.fixture
def demand():
    return DemandModel.pareto(I, omega=1.0, total_rate=2.0)


@pytest.fixture
def config():
    return SimulationConfig(n_items=I, rho=RHO, utility=StepUtility(5.0))


@pytest.fixture
def protocols(demand):
    return {
        "OPT": lambda tr, rq: prop_protocol(demand, tr.n_nodes, RHO),
        "UNI": lambda tr, rq: uni_protocol(demand, tr.n_nodes, RHO),
    }


@pytest.fixture
def workload(demand):
    trace = trace_factory(3)
    requests = generate_requests(demand, trace.n_nodes, trace.duration, seed=4)
    return trace, requests


# ----------------------------------------------------------------------
# the memo: one hash pass per trial artifact, ever
# ----------------------------------------------------------------------
class TestFingerprintMemo:
    def test_one_hash_pass_per_artifact(self, workload, monkeypatch):
        trace, requests = workload
        faults = FaultSchedule.node_churn(
            trace.n_nodes,
            crash_rate=0.01,
            mean_downtime=10.0,
            duration=trace.duration,
            seed=5,
        )
        calls = {"trace": 0, "requests": 0, "faults": 0}

        import repro.experiments.artifacts as artifacts_mod

        def counting(kind, real):
            def wrapper(obj):
                calls[kind] += 1
                return real(obj)

            return wrapper

        monkeypatch.setattr(
            artifacts_mod,
            "fingerprint_trace",
            counting("trace", fingerprint_trace),
        )
        monkeypatch.setattr(
            artifacts_mod,
            "fingerprint_requests",
            counting("requests", fingerprint_requests),
        )
        monkeypatch.setattr(
            artifacts_mod,
            "fingerprint_faults",
            counting("faults", fingerprint_faults),
        )
        inputs = TrialArtifacts(trace, requests, 17, faults=faults)
        for _ in range(5):  # one probe per protocol in a 5-protocol sweep
            inputs.trace_fingerprint()
            inputs.requests_fingerprint()
            inputs.faults_fingerprint()
        assert calls == {"trace": 1, "requests": 1, "faults": 1}

    def test_preseeded_fingerprint_never_hashes(self, workload, monkeypatch):
        trace, requests = workload
        fp = fingerprint_trace(trace)

        import repro.experiments.artifacts as artifacts_mod

        def boom(_obj):
            raise AssertionError("spilled fingerprint must be trusted")

        monkeypatch.setattr(artifacts_mod, "fingerprint_trace", boom)
        inputs = TrialArtifacts(trace, requests, 17, trace_fingerprint=fp)
        assert inputs.trace_fingerprint() == fp

    def test_memoized_run_key_is_byte_identical(
        self, workload, config, demand
    ):
        trace, requests = workload
        protocol = uni_protocol(demand, trace.n_nodes, RHO)
        inputs = TrialArtifacts(trace, requests, 17)
        fresh = run_key(config, protocol, 17, trace, requests)
        memoized = run_key(
            config,
            protocol,
            17,
            trace,
            requests,
            trace_fingerprint=inputs.trace_fingerprint(),
            requests_fingerprint=inputs.requests_fingerprint(),
        )
        assert fresh == memoized


class TestEventStreamMemo:
    def test_stream_built_once_per_config(self, workload, config):
        trace, requests = workload
        inputs = TrialArtifacts(trace, requests, 17)
        first = inputs.event_stream(config)
        assert first is not None
        assert inputs.event_stream(config) is first

    def test_sharing_disabled_returns_none(self, workload, config):
        trace, requests = workload
        inputs = TrialArtifacts(
            trace, requests, 17, share_event_stream=False
        )
        assert inputs.event_stream(config) is None

    def test_memmapped_trace_never_materializes(
        self, workload, config, tmp_path
    ):
        trace, requests = workload
        path = tmp_path / "t.ctb"
        spill_trial_trace(trace, path)
        mapped, _fp = load_spilled_trace(path)
        inputs = TrialArtifacts(mapped, requests, 17)
        assert inputs.event_stream(config) is None

    def test_drop_releases_the_memo(self, workload, config):
        trace, requests = workload
        inputs = TrialArtifacts(trace, requests, 17)
        first = inputs.event_stream(config)
        inputs.drop_event_stream()
        rebuilt = inputs.event_stream(config)
        assert rebuilt is not None and rebuilt is not first


# ----------------------------------------------------------------------
# spill round trip
# ----------------------------------------------------------------------
class TestSpill:
    def test_round_trip_preserves_columns_and_fingerprint(
        self, workload, tmp_path
    ):
        trace, _ = workload
        fp = fingerprint_trace(trace)
        path = tmp_path / "trial-0.ctb"
        returned = spill_trial_trace(trace, path, trace_fingerprint=fp)
        assert returned == os.fspath(path)
        assert binary_trace_metadata(path) == {SPILL_FINGERPRINT_KEY: fp}
        loaded, loaded_fp = load_spilled_trace(path)
        assert loaded_fp == fp
        assert np.array_equal(np.asarray(loaded.times), trace.times)
        assert np.array_equal(np.asarray(loaded.node_a), trace.node_a)
        assert np.array_equal(np.asarray(loaded.node_b), trace.node_b)
        # the spilled bytes hash to the same content fingerprint
        assert fingerprint_trace(loaded) == fp

    def test_spill_without_fingerprint(self, workload, tmp_path):
        trace, _ = workload
        path = tmp_path / "bare.ctb"
        spill_trial_trace(trace, path)
        loaded, loaded_fp = load_spilled_trace(path)
        assert loaded_fp is None
        assert np.array_equal(np.asarray(loaded.times), trace.times)


# ----------------------------------------------------------------------
# sweep-level bit-identity: shared vs. unshared, spilled vs. regenerated
# ----------------------------------------------------------------------
def sweep(demand, config, protocols, **kwargs):
    kwargs.setdefault("run_cache", False)
    return run_comparison(
        trace_factory=trace_factory,
        demand=demand,
        config=config,
        protocols=protocols,
        n_trials=2,
        base_seed=11,
        **kwargs,
    )


def assert_identical(a, b):
    assert set(a.stats) == set(b.stats)
    for name in a.stats:
        assert np.array_equal(
            a.stats[name].gain_rates, b.stats[name].gain_rates
        ), name
        for x, y in zip(a.stats[name].results, b.stats[name].results):
            assert x.total_gain == y.total_gain
            assert x.n_fulfilled == y.n_fulfilled
            assert np.array_equal(x.final_counts, y.final_counts)


class TestSweepSharing:
    def test_shared_vs_unshared_serial(self, demand, config, protocols):
        shared = sweep(demand, config, protocols, share_event_streams=True)
        unshared = sweep(
            demand, config, protocols, share_event_streams=False
        )
        assert_identical(shared, unshared)
        assert shared.manifest["share_event_streams"] is True
        assert unshared.manifest["share_event_streams"] is False

    def test_shared_with_faults(self, demand, config, protocols):
        def faults(trial):
            return FaultSchedule.node_churn(
                N,
                crash_rate=0.01,
                mean_downtime=10.0,
                duration=DURATION,
                seed=100 + trial,
            )

        shared = sweep(
            demand, config, protocols, faults=faults,
            share_event_streams=True,
        )
        unshared = sweep(
            demand, config, protocols, faults=faults,
            share_event_streams=False,
        )
        assert_identical(shared, unshared)


@fork_only
class TestSpillHandoff:
    def test_pool_spill_matches_serial(
        self, demand, config, protocols, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        serial = sweep(demand, config, protocols)
        spilled = sweep(
            demand,
            config,
            protocols,
            n_workers=2,
            trial_spill_dir=tmp_path / "spills",
        )
        assert_identical(serial, spilled)
        assert spilled.manifest["n_spilled_trials"] == 2
        spill_files = sorted(os.listdir(tmp_path / "spills"))
        assert spill_files == ["trial-0.ctb", "trial-1.ctb"]
        for name in spill_files:
            meta = binary_trace_metadata(tmp_path / "spills" / name)
            assert meta == {}  # no cache -> no fingerprint spilled

    def test_pool_spill_carries_fingerprint_with_cache(
        self, demand, config, protocols, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        serial = sweep(demand, config, protocols)
        spilled = sweep(
            demand,
            config,
            protocols,
            n_workers=2,
            run_cache=tmp_path / "cache",
            trial_spill_dir=tmp_path / "spills",
        )
        assert_identical(serial, spilled)
        for name in sorted(os.listdir(tmp_path / "spills")):
            meta = binary_trace_metadata(tmp_path / "spills" / name)
            assert SPILL_FINGERPRINT_KEY in meta

    def test_workqueue_spill_matches_serial(
        self, demand, config, protocols, tmp_path
    ):
        serial = sweep(demand, config, protocols)
        spilled = sweep(
            demand,
            config,
            protocols,
            executor="workqueue",
            n_workers=2,
            trial_spill_dir=tmp_path / "spills",
        )
        assert_identical(serial, spilled)

    def test_serial_executor_never_spills(
        self, demand, config, protocols, tmp_path
    ):
        result = sweep(
            demand,
            config,
            protocols,
            trial_spill_dir=tmp_path / "spills",
        )
        assert result.manifest["n_spilled_trials"] == 0
        assert not (tmp_path / "spills").exists() or not os.listdir(
            tmp_path / "spills"
        )
