"""Tests for the multi-trial comparison runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.contacts import homogeneous_poisson_trace
from repro.demand import DemandModel
from repro.errors import ConfigurationError
from repro.experiments import percentile_interval, run_comparison
from repro.protocols import uni_protocol, prop_protocol
from repro.sim import SimulationConfig
from repro.utility import StepUtility

N, I, RHO = 8, 6, 2


def make_protocols(demand):
    return {
        "OPT": lambda tr, rq: prop_protocol(demand, tr.n_nodes, RHO),
        "UNI": lambda tr, rq: uni_protocol(demand, tr.n_nodes, RHO),
    }


@pytest.fixture
def setup():
    demand = DemandModel.pareto(I, omega=1.0, total_rate=2.0)
    config = SimulationConfig(n_items=I, rho=RHO, utility=StepUtility(5.0))
    return demand, config


class TestRunComparison:
    def test_basic_run(self, setup):
        demand, config = setup
        result = run_comparison(
            trace_factory=lambda seed: homogeneous_poisson_trace(
                N, 0.1, 150.0, seed=seed
            ),
            demand=demand,
            config=config,
            protocols=make_protocols(demand),
            n_trials=3,
            base_seed=1,
        )
        assert set(result.stats) == {"OPT", "UNI"}
        assert len(result.stats["OPT"].gain_rates) == 3
        assert result.normalized_loss("OPT") == pytest.approx(0.0)

    def test_losses_relative_to_baseline(self, setup):
        demand, config = setup
        result = run_comparison(
            trace_factory=lambda seed: homogeneous_poisson_trace(
                N, 0.1, 150.0, seed=seed
            ),
            demand=demand,
            config=config,
            protocols=make_protocols(demand),
            n_trials=2,
            base_seed=2,
        )
        losses = result.losses()
        opt = result.stats["OPT"].mean_gain_rate
        uni = result.stats["UNI"].mean_gain_rate
        assert losses["UNI"] == pytest.approx(100 * (uni - opt) / abs(opt))

    def test_deterministic(self, setup):
        demand, config = setup

        def run():
            return run_comparison(
                trace_factory=lambda seed: homogeneous_poisson_trace(
                    N, 0.1, 100.0, seed=seed
                ),
                demand=demand,
                config=config,
                protocols=make_protocols(demand),
                n_trials=2,
                base_seed=3,
            )

        a, b = run(), run()
        assert np.array_equal(
            a.stats["UNI"].gain_rates, b.stats["UNI"].gain_rates
        )

    def test_validation(self, setup):
        demand, config = setup
        with pytest.raises(ConfigurationError):
            run_comparison(
                trace_factory=lambda seed: homogeneous_poisson_trace(
                    N, 0.1, 100.0, seed=seed
                ),
                demand=demand,
                config=config,
                protocols=make_protocols(demand),
                n_trials=0,
            )
        with pytest.raises(ConfigurationError):
            run_comparison(
                trace_factory=lambda seed: homogeneous_poisson_trace(
                    N, 0.1, 100.0, seed=seed
                ),
                demand=demand,
                config=config,
                protocols=make_protocols(demand),
                n_trials=1,
                baseline="MISSING",
            )


class TestRender:
    def test_table_contents(self, setup):
        demand, config = setup
        result = run_comparison(
            trace_factory=lambda seed: homogeneous_poisson_trace(
                N, 0.1, 100.0, seed=seed
            ),
            demand=demand,
            config=config,
            protocols=make_protocols(demand),
            n_trials=2,
            base_seed=9,
        )
        text = result.render(title="demo")
        assert text.splitlines()[0] == "demo"
        assert "OPT" in text and "UNI" in text
        assert "vs OPT" in text


class TestPercentiles:
    def test_interval(self):
        lo, hi = percentile_interval(list(range(101)))
        assert lo == pytest.approx(5.0)
        assert hi == pytest.approx(95.0)

    def test_stats_interval(self, setup):
        demand, config = setup
        result = run_comparison(
            trace_factory=lambda seed: homogeneous_poisson_trace(
                N, 0.1, 100.0, seed=seed
            ),
            demand=demand,
            config=config,
            protocols=make_protocols(demand),
            n_trials=4,
            base_seed=4,
        )
        lo, hi = result.stats["UNI"].interval
        assert lo <= result.stats["UNI"].mean_gain_rate <= hi
