"""Content-addressed simulation run cache: keys, store, sweep reuse.

The cache contract has three legs:

* **identity** — a hit returns a ``SimulationResult`` bit-identical to
  the one that was stored; a second identical sweep performs *zero*
  simulations;
* **invalidation** — the key covers the engine code version, the config
  fingerprint, the seed, and the trace/request/fault content, so
  changing any of them is a miss;
* **robustness** — a corrupted entry is a logged miss, never a crash or
  a wrong result.
"""

from __future__ import annotations

import io
import os

import numpy as np
import pytest

from repro.contacts import homogeneous_poisson_trace
from repro.demand import DemandModel, generate_requests
from repro.experiments import result_to_dict, run_comparison
from repro.experiments import runner as runner_mod
from repro.faults import FaultSchedule
from repro.obs.log import set_log_stream
from repro.protocols import prop_protocol, uni_protocol
from repro.sim import SimulationConfig, simulate
from repro.simcache import (
    ENV_VAR,
    SimulationRunCache,
    UncacheableRunError,
    resolve_run_cache,
    run_key,
)
from repro.utility import StepUtility

N, I, RHO = 8, 6, 2
DURATION = 120.0


def workload(seed=3):
    demand = DemandModel.pareto(I, omega=1.0, total_rate=2.0)
    trace = homogeneous_poisson_trace(N, 0.1, DURATION, seed=seed)
    requests = generate_requests(demand, N, DURATION, seed=seed + 1)
    return demand, trace, requests


def config():
    return SimulationConfig(n_items=I, rho=RHO, utility=StepUtility(5.0))


def comparable(result):
    data = result_to_dict(result)
    data.pop("manifest", None)
    return data


def sweep(demand, config, cache, **kwargs):
    return run_comparison(
        trace_factory=lambda seed: homogeneous_poisson_trace(
            N, 0.1, DURATION, seed=seed
        ),
        demand=demand,
        config=config,
        protocols={
            "OPT": lambda tr, rq: prop_protocol(demand, tr.n_nodes, RHO),
            "UNI": lambda tr, rq: uni_protocol(demand, tr.n_nodes, RHO),
        },
        n_trials=2,
        base_seed=11,
        run_cache=cache,
        **kwargs,
    )


class TestRunKey:
    def test_deterministic_and_sensitive(self):
        demand, trace, requests = workload()
        protocol = prop_protocol(demand, N, RHO)
        key = run_key(config(), protocol, 5, trace, requests)
        assert key == run_key(config(), protocol, 5, trace, requests)
        assert key != run_key(config(), protocol, 6, trace, requests)
        other_cfg = SimulationConfig(
            n_items=I, rho=RHO, utility=StepUtility(9.0)
        )
        assert key != run_key(other_cfg, protocol, 5, trace, requests)

    def test_trace_and_fault_content_in_key(self):
        demand, trace, requests = workload()
        protocol = prop_protocol(demand, N, RHO)
        key = run_key(config(), protocol, 5, trace, requests)
        _, other_trace, _ = workload(seed=8)
        assert key != run_key(config(), protocol, 5, other_trace, requests)
        faults = FaultSchedule(drop_prob=0.2, seed=1)
        assert key != run_key(
            config(), protocol, 5, trace, requests, faults=faults
        )

    def test_engine_version_bump_changes_key(self, monkeypatch):
        import repro.sim.engine as engine_mod

        demand, trace, requests = workload()
        protocol = prop_protocol(demand, N, RHO)
        before = run_key(config(), protocol, 5, trace, requests)
        monkeypatch.setattr(
            engine_mod, "ENGINE_CODE_VERSION", "9999.99-test-bump"
        )
        after = run_key(config(), protocol, 5, trace, requests)
        assert before != after

    def test_callable_input_is_uncacheable(self):
        demand, trace, requests = workload()
        protocol = prop_protocol(demand, N, RHO)
        protocol.hook = lambda: None  # plain lambdas have no stable key
        with pytest.raises(UncacheableRunError):
            run_key(config(), protocol, 5, trace, requests)


class TestStore:
    def test_round_trip_is_bit_identical(self, tmp_path):
        demand, trace, requests = workload()
        result = simulate(
            trace, requests, config(), prop_protocol(demand, N, RHO), seed=5
        )
        cache = SimulationRunCache(tmp_path / "cache")
        cache.put("ab" + "0" * 62, result)
        loaded = cache.get("ab" + "0" * 62)
        assert loaded is not None
        assert comparable(loaded) == comparable(result)
        assert cache.stats.stores == 1 and cache.stats.hits == 1

    def test_missing_key_is_a_miss(self, tmp_path):
        cache = SimulationRunCache(tmp_path / "cache")
        assert cache.get("ff" + "0" * 62) is None
        assert cache.stats.misses == 1 and cache.stats.errors == 0

    def test_corrupted_entry_warns_and_misses(self, tmp_path):
        demand, trace, requests = workload()
        result = simulate(
            trace, requests, config(), prop_protocol(demand, N, RHO), seed=5
        )
        cache = SimulationRunCache(tmp_path / "cache")
        key = "cd" + "0" * 62
        cache.put(key, result)
        path = cache._entry_path(key)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{ this is not json")
        stream = io.StringIO()
        set_log_stream(stream)
        try:
            assert cache.get(key) is None
        finally:
            set_log_stream(None)
        assert cache.stats.errors == 1
        assert "corrupted cache entry" in stream.getvalue()

    def test_metrics_counters_mirror_stats(self, tmp_path):
        from repro.obs import metrics as obs_metrics

        obs_metrics.reset_registry()
        obs_metrics.set_enabled(True)
        try:
            demand, trace, requests = workload()
            result = simulate(
                trace, requests, config(), prop_protocol(demand, N, RHO),
                seed=5,
            )
            cache = SimulationRunCache(tmp_path / "cache")
            key = "ab" + "0" * 62
            cache.get(key)  # miss
            cache.put(key, result)  # store
            cache.get(key)  # hit
            with open(cache._entry_path(key), "w", encoding="utf-8") as fh:
                fh.write("{ torn")
            stream = io.StringIO()
            set_log_stream(stream)
            try:
                cache.get(key)  # corrupt
            finally:
                set_log_stream(None)
            snap = obs_metrics.registry().snapshot()
            by_outcome = {
                entry["labels"]["outcome"]: entry["value"]
                for entry in snap["repro_simcache_ops_total"]["series"]
            }
            assert by_outcome == {"miss": 1.0, "store": 1.0, "hit": 1.0,
                                  "corrupt": 1.0}
        finally:
            obs_metrics.set_enabled(None)
            obs_metrics.reset_registry()

    def test_metrics_disabled_registry_untouched(self, tmp_path):
        from repro.obs import metrics as obs_metrics

        obs_metrics.reset_registry()
        obs_metrics.set_enabled(False)
        try:
            cache = SimulationRunCache(tmp_path / "cache")
            assert cache.get("ff" + "0" * 62) is None
            assert len(obs_metrics.registry()) == 0
            assert cache.stats.misses == 1  # local stats still count
        finally:
            obs_metrics.set_enabled(None)

    def test_clear_and_info(self, tmp_path):
        demand, trace, requests = workload()
        result = simulate(
            trace, requests, config(), prop_protocol(demand, N, RHO), seed=5
        )
        cache = SimulationRunCache(tmp_path / "cache")
        cache.put("aa" + "0" * 62, result)
        cache.put("bb" + "0" * 62, result)
        assert len(cache) == 2
        assert cache.info()["n_entries"] == 2
        assert cache.clear() == 2
        assert len(cache) == 0


class TestResolve:
    def test_false_disables(self):
        assert resolve_run_cache(False) is None

    def test_env_unset_disables(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_run_cache(None) is None

    def test_env_off_values_disable(self, monkeypatch):
        for value in ("0", "off", "false", "no", ""):
            monkeypatch.setenv(ENV_VAR, value)
            assert resolve_run_cache(None) is None

    def test_env_path_enables_there(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_VAR, str(tmp_path / "c"))
        cache = resolve_run_cache(None)
        assert cache is not None
        assert cache.root == str(tmp_path / "c")

    def test_explicit_path_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_VAR, "off")
        cache = resolve_run_cache(tmp_path / "mine")
        assert cache is not None and cache.root == str(tmp_path / "mine")

    def test_instance_passes_through(self, tmp_path):
        cache = SimulationRunCache(tmp_path)
        assert resolve_run_cache(cache) is cache


class TestSweepCaching:
    def test_second_sweep_runs_zero_simulations(self, monkeypatch, tmp_path):
        demand = DemandModel.pareto(I, omega=1.0, total_rate=2.0)
        cache = SimulationRunCache(tmp_path / "cache")

        calls = {"n": 0}
        real_simulate = runner_mod.simulate

        def counting_simulate(*args, **kwargs):
            calls["n"] += 1
            return real_simulate(*args, **kwargs)

        monkeypatch.setattr(runner_mod, "simulate", counting_simulate)

        first = sweep(demand, config(), cache)
        assert calls["n"] == 4  # 2 trials x 2 protocols
        assert cache.stats.hits == 0 and cache.stats.misses == 4
        assert all(t.status == "ok" for t in first.telemetry)
        assert first.manifest["run_cache"]["misses"] == 4

        second = sweep(demand, config(), cache)
        assert calls["n"] == 4  # unchanged: every unit was a cache hit
        assert cache.stats.hits == 4
        assert all(t.status == "cached" for t in second.telemetry)
        assert second.manifest["run_cache"]["hits"] == 4
        for name in first.stats:
            assert np.array_equal(
                first.stats[name].gain_rates, second.stats[name].gain_rates
            )

    def test_engine_version_bump_invalidates_sweep(
        self, monkeypatch, tmp_path
    ):
        import repro.sim.engine as engine_mod

        demand = DemandModel.pareto(I, omega=1.0, total_rate=2.0)
        cache = SimulationRunCache(tmp_path / "cache")
        sweep(demand, config(), cache)
        assert cache.stats.misses == 4

        monkeypatch.setattr(
            engine_mod, "ENGINE_CODE_VERSION", "9999.99-test-bump"
        )
        again = sweep(demand, config(), cache)
        assert cache.stats.hits == 0
        assert cache.stats.misses == 8
        assert all(t.status == "ok" for t in again.telemetry)

    def test_no_cache_leaves_manifest_clean(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        demand = DemandModel.pareto(I, omega=1.0, total_rate=2.0)
        result = sweep(demand, config(), None)
        assert "run_cache" not in result.manifest


class TestWorkerCap:
    def test_workers_capped_at_cpu_count(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        demand = DemandModel.pareto(I, omega=1.0, total_rate=2.0)
        stream = io.StringIO()
        set_log_stream(stream)
        try:
            result = sweep(demand, config(), None, n_workers=4)
        finally:
            set_log_stream(None)
        assert result.manifest["n_workers"] == 2
        assert "capping sweep workers" in stream.getvalue()

    def test_single_effective_worker_bypasses_pool(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)

        def no_pool(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("pool must not be used with 1 worker")

        monkeypatch.setattr(runner_mod, "_run_units_parallel", no_pool)
        demand = DemandModel.pareto(I, omega=1.0, total_rate=2.0)
        result = sweep(demand, config(), None, n_workers=4)
        assert result.manifest["n_workers"] == 1
