"""CLI smoke tests (fast subcommands only)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestCli:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "max relative error" in out

    def test_figure_1(self, capsys):
        assert main(["figure", "1"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_figure_2(self, capsys):
        assert main(["figure", "2"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_allocate(self, capsys):
        assert main(
            ["allocate", "--utility", "power", "--param", "0", "--top", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "greedy x_i" in out

    def test_simulate(self, capsys):
        assert main(
            [
                "simulate",
                "--protocol",
                "UNI",
                "--nodes",
                "10",
                "--items",
                "8",
                "--duration",
                "150",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "gain_rate" in out

    def test_trace_generation(self, capsys, tmp_path):
        output = tmp_path / "t.csv"
        assert main(
            [
                "trace",
                "poisson",
                "--nodes",
                "8",
                "--duration",
                "50",
                "--output",
                str(output),
            ]
        ) == 0
        assert output.exists()
        from repro.contacts import load_csv

        trace = load_csv(output)
        assert trace.n_nodes == 8

    def test_simulate_with_trace_and_manifest(self, capsys, tmp_path):
        trace_path = tmp_path / "run.jsonl"
        manifest_path = tmp_path / "manifest.json"
        assert main(
            [
                "simulate",
                "--protocol",
                "OPT",
                "--nodes",
                "10",
                "--items",
                "8",
                "--duration",
                "150",
                "--trace-out",
                str(trace_path),
                "--manifest-out",
                str(manifest_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "trace events" in out
        lines = trace_path.read_text().splitlines()
        assert json.loads(lines[0])["kind"] == "run_start"
        assert json.loads(lines[-1])["kind"] == "run_end"
        manifest = json.loads(manifest_path.read_text())
        assert manifest["protocol"] == "OPT"
        assert "config_fingerprint" in manifest

    @pytest.fixture
    def recorded_trace(self, tmp_path):
        path = tmp_path / "run.jsonl"
        assert main(
            [
                "simulate",
                "--protocol",
                "OPT",
                "--nodes",
                "15",
                "--items",
                "8",
                "--duration",
                "400",
                "--trace-out",
                str(path),
            ]
        ) == 0
        return path

    def test_trace_summary(self, capsys, recorded_trace):
        capsys.readouterr()
        assert main(["trace", "summary", str(recorded_trace), "--validate"]) == 0
        out = capsys.readouterr().out
        assert "event kind" in out
        assert "fulfill" in out

    def test_trace_summary_json(self, capsys, recorded_trace):
        capsys.readouterr()
        assert main(["trace", "summary", str(recorded_trace), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["protocol"] == "OPT"
        assert summary["kind_counts"]["run_start"] == 1

    def test_trace_filter(self, capsys, recorded_trace, tmp_path):
        out_path = tmp_path / "filtered.jsonl"
        assert main(
            [
                "trace",
                "filter",
                str(recorded_trace),
                "--kind",
                "fulfill",
                "--output",
                str(out_path),
            ]
        ) == 0
        events = [
            json.loads(line) for line in out_path.read_text().splitlines()
        ]
        assert events
        assert all(e["kind"] == "fulfill" for e in events)

    def test_trace_convert_csv(self, capsys, recorded_trace, tmp_path):
        out_path = tmp_path / "events.csv"
        assert main(
            ["trace", "convert", str(recorded_trace), str(out_path)]
        ) == 0
        header = out_path.read_text().splitlines()[0]
        assert header.startswith("seq,kind,t")

    def test_trace_cdf(self, capsys, recorded_trace):
        capsys.readouterr()
        assert main(
            ["trace", "cdf", str(recorded_trace), "--mu", "0.05"]
        ) == 0
        out = capsys.readouterr().out
        assert "Lemma 1" in out
        assert "max KS" in out

    def test_trace_cdf_missing_file(self, capsys):
        assert main(["trace", "cdf", "no-such.jsonl", "--mu", "0.05"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_trace_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["trace"])

    def test_churn(self, capsys):
        assert main(
            [
                "churn",
                "--nodes",
                "10",
                "--items",
                "8",
                "--duration",
                "300",
                "--crash-time",
                "100",
                "--recover-time",
                "150",
                "--record-interval",
                "50",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "crash wave: 5/10 nodes at t=100" in out
        assert "replica-count timeline" in out
        assert "OPT" in out and "QCR" in out

    def test_churn_bad_crash_fraction_rejected(self, capsys):
        assert main(["churn", "--crash-fraction", "1.5"]) == 1
        assert "--crash-fraction" in capsys.readouterr().err

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["bogus"])


class TestSweepCli:
    def sweep_args(self, queue):
        return [
            "sweep", "start", queue,
            "--utility", "step", "--param", "5",
            "--nodes", "6", "--items", "4", "--rho", "2",
            "--duration", "60",
            "--trials", "1", "--seed", "3",
            "--protocols", "OPT", "UNI",
            "--workers", "1", "--ttl", "5", "--no-cache",
        ]

    def test_start_then_status_then_resume(self, capsys, tmp_path):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("workqueue spawner needs fork")
        queue = str(tmp_path / "queue")
        assert main(self.sweep_args(queue)) == 0
        out = capsys.readouterr().out
        assert "distributed sweep" in out
        assert "work-unit attribution" in out
        assert "published" in out

        assert main(["sweep", "status", queue]) == 0
        out = capsys.readouterr().out
        assert "2 units, 2 published, 0 quarantined, 0 pending" in out
        assert "unit_publish=2" in out

        # A lost result file is the only thing re-executed on resume.
        import os

        results = os.path.join(queue, "results")
        victim = sorted(os.listdir(results))[0]
        os.remove(os.path.join(results, victim))
        assert main(
            ["sweep", "resume", queue, "--workers", "1", "--no-cache"]
        ) == 0
        out = capsys.readouterr().out
        assert "work-unit attribution" in out
        assert main(["sweep", "status", queue]) == 0
        assert "2 published" in capsys.readouterr().out

    def test_resume_of_non_queue_directory_fails(self, capsys, tmp_path):
        assert main(["sweep", "resume", str(tmp_path)]) == 1
        assert "not a sweep queue" in capsys.readouterr().err

    def test_start_with_metrics_out_then_watch_and_convert(
        self, capsys, tmp_path
    ):
        import multiprocessing

        from repro.obs import metrics as obs_metrics

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("workqueue spawner needs fork")
        queue = str(tmp_path / "queue")
        series = str(tmp_path / "metrics.jsonl")
        try:
            assert main(
                self.sweep_args(queue) + ["--metrics-out", series]
            ) == 0
        finally:
            obs_metrics.set_enabled(None)
            obs_metrics.reset_registry()
        out = capsys.readouterr().out
        assert "metrics snapshot appended" in out

        assert main(["sweep", "watch", queue, "--once"]) == 0
        out = capsys.readouterr().out
        assert "2 published" in out
        assert "workers (" in out
        assert "published by worker:" in out

        assert main(["metrics", series]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_dist_queue_units gauge" in out
        assert 'repro_dist_queue_units{state="published"} 2' in out

        converted = str(tmp_path / "snap.prom")
        assert main(["metrics", series, "-o", converted]) == 0
        assert "wrote prometheus snapshot" in capsys.readouterr().out
        with open(converted, encoding="utf-8") as handle:
            assert "# TYPE" in handle.read()
        assert main(["metrics", series, "--format", "json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert "repro_dist_queue_units" in parsed

    def test_metrics_on_non_snapshot_fails(self, capsys, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"nested": {"not": "metrics"}}')
        assert main(["metrics", str(path)]) == 1
        assert "metrics snapshot" in capsys.readouterr().err
