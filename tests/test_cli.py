"""CLI smoke tests (fast subcommands only)."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "max relative error" in out

    def test_figure_1(self, capsys):
        assert main(["figure", "1"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_figure_2(self, capsys):
        assert main(["figure", "2"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_allocate(self, capsys):
        assert main(
            ["allocate", "--utility", "power", "--param", "0", "--top", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "greedy x_i" in out

    def test_simulate(self, capsys):
        assert main(
            [
                "simulate",
                "--protocol",
                "UNI",
                "--nodes",
                "10",
                "--items",
                "8",
                "--duration",
                "150",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "gain_rate" in out

    def test_trace_generation(self, capsys, tmp_path):
        output = tmp_path / "t.csv"
        assert main(
            [
                "trace",
                "poisson",
                "--nodes",
                "8",
                "--duration",
                "50",
                "--output",
                str(output),
            ]
        ) == 0
        assert output.exists()
        from repro.contacts import load_csv

        trace = load_csv(output)
        assert trace.n_nodes == 8

    def test_churn(self, capsys):
        assert main(
            [
                "churn",
                "--nodes",
                "10",
                "--items",
                "8",
                "--duration",
                "300",
                "--crash-time",
                "100",
                "--recover-time",
                "150",
                "--record-interval",
                "50",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "crash wave: 5/10 nodes at t=100" in out
        assert "replica-count timeline" in out
        assert "OPT" in out and "QCR" in out

    def test_churn_bad_crash_fraction_rejected(self, capsys):
        assert main(["churn", "--crash-fraction", "1.5"]) == 1
        assert "--crash-fraction" in capsys.readouterr().err

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["bogus"])
