"""The pre-merged event stream: ordering properties and the frozen
reference engine's equivalence to the optimized one."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.contacts import ContactTrace, homogeneous_poisson_trace
from repro.demand import DemandModel, RequestSchedule, generate_requests
from repro.experiments import result_to_dict
from repro.faults import FaultEvent, FaultSchedule
from repro.protocols import (
    QCR,
    PassiveReplication,
    ReplicationProtocol,
    uni_protocol,
)
from repro.sim import Simulation, SimulationConfig
from repro.sim._reference import ReferenceSimulation
from repro.sim.engine import EVENT_CONTACT, EVENT_FAULT, EVENT_REQUEST
from repro.utility import StepUtility

N_NODES, N_ITEMS, RHO = 6, 5, 2
UTILITY = StepUtility(8.0)


# ----------------------------------------------------------------------
# property: the merged stream is the three sorted streams, interleaved
# with the fault -> request -> contact tie rule
# ----------------------------------------------------------------------
@st.composite
def colliding_workloads(draw):
    """Workloads drawn on a coarse time grid so same-time ties abound."""
    grid = [float(g) for g in range(11)]
    contact_times = sorted(
        draw(st.lists(st.sampled_from(grid), min_size=1, max_size=15))
    )
    request_times = sorted(
        draw(st.lists(st.sampled_from(grid), min_size=0, max_size=15))
    )
    fault_times = sorted(
        draw(st.lists(st.sampled_from(grid), min_size=0, max_size=6))
    )
    return contact_times, request_times, fault_times


def build_sim(contact_times, request_times, fault_times):
    duration = 10.0
    trace = ContactTrace(
        times=np.array(contact_times),
        node_a=np.zeros(len(contact_times), dtype=np.int64),
        node_b=np.ones(len(contact_times), dtype=np.int64),
        n_nodes=N_NODES,
        duration=duration,
    )
    requests = RequestSchedule(
        times=np.array(request_times),
        items=np.zeros(len(request_times), dtype=np.int64),
        nodes=np.full(len(request_times), 2, dtype=np.int64),
        duration=duration,
    )
    faults = FaultSchedule(
        events=tuple(
            FaultEvent(time=t, kind="crash", node=3) for t in fault_times
        )
    )
    config = SimulationConfig(n_items=N_ITEMS, rho=RHO, utility=UTILITY)
    return Simulation(
        trace, requests, config, PassiveReplication(), seed=0, faults=faults
    )


@settings(max_examples=60, deadline=None)
@given(workload=colliding_workloads())
def test_merged_stream_ordering(workload):
    contact_times, request_times, fault_times = workload
    sim = build_sim(*workload)
    times = sim._event_times
    kinds = sim._event_kinds

    # Complete: every source event appears exactly once.
    assert len(times) == len(contact_times) + len(request_times) + len(
        fault_times
    )
    assert [
        t for t, k in zip(times, kinds) if k == EVENT_CONTACT
    ] == contact_times
    assert [
        t for t, k in zip(times, kinds) if k == EVENT_REQUEST
    ] == request_times
    assert [
        t for t, k in zip(times, kinds) if k == EVENT_FAULT
    ] == fault_times

    # Sorted by time; ties resolved fault < request < contact.
    for k in range(1, len(times)):
        assert times[k - 1] <= times[k]
        if times[k - 1] == times[k]:
            assert kinds[k - 1] <= kinds[k]


class _OneCopyAtNode1(ReplicationProtocol):
    """Static protocol: item 0 lives only at node 1, nothing else."""

    name = "ONECOPY"

    def initialize(self, sim):
        allocation = np.zeros(
            (sim.config.n_items, sim.n_servers), dtype=np.int64
        )
        allocation[0, 1] = 1
        sim.set_initial_allocation(allocation)


def test_same_time_fault_applies_before_contact():
    # A crash at t=5 must pre-empt the t=5 contact: the crashed node
    # cannot serve, so the request stays outstanding.
    duration = 10.0
    trace = ContactTrace(
        times=np.array([5.0]),
        node_a=np.array([0]),
        node_b=np.array([1]),
        n_nodes=3,
        duration=duration,
    )
    requests = RequestSchedule(
        times=np.array([1.0]),
        items=np.array([0]),
        nodes=np.array([0]),
        duration=duration,
    )
    config = SimulationConfig(n_items=2, rho=1, utility=UTILITY)
    faults = FaultSchedule(
        events=(FaultEvent(time=5.0, kind="crash", node=1),)
    )
    sim = Simulation(
        trace, requests, config, _OneCopyAtNode1(), seed=0, faults=faults
    )
    assert 0 in sim.nodes[1].cache
    result = sim.run()
    assert result.n_fulfilled == 0


# ----------------------------------------------------------------------
# the frozen pre-optimization engine stays bit-identical
# ----------------------------------------------------------------------
def run_both(protocol_builder, *, request_timeout=None, faults=None, seed=3):
    demand = DemandModel.pareto(N_ITEMS, omega=1.0, total_rate=2.0)
    trace = homogeneous_poisson_trace(N_NODES, 0.15, 200.0, seed=seed)
    requests = generate_requests(demand, N_NODES, 200.0, seed=seed + 1)
    config = SimulationConfig(
        n_items=N_ITEMS,
        rho=RHO,
        utility=UTILITY,
        request_timeout=request_timeout,
        record_interval=50.0,
    )
    results = []
    for cls in (Simulation, ReferenceSimulation):
        protocol = protocol_builder(demand)
        sim = cls(
            trace, requests, config, protocol, seed=seed + 2, faults=faults
        )
        results.append(sim.run())
    return results


@pytest.mark.parametrize(
    "builder",
    [
        pytest.param(lambda d: uni_protocol(d, N_NODES, RHO), id="uni"),
        pytest.param(lambda d: PassiveReplication(), id="passive"),
        pytest.param(lambda d: QCR(UTILITY, 0.15), id="qcr"),
    ],
)
def test_reference_engine_equivalence(builder):
    optimized, reference = run_both(builder)
    assert result_to_dict(optimized) == result_to_dict(reference)


def test_reference_engine_equivalence_with_timeout_and_faults():
    faults = FaultSchedule.crash_wave(
        100.0, [0, 1], recover_at=150.0, wipe_cache=True
    )
    optimized, reference = run_both(
        lambda d: QCR(UTILITY, 0.15), request_timeout=25.0, faults=faults
    )
    assert result_to_dict(optimized) == result_to_dict(reference)
