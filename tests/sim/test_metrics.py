"""Unit tests for the metrics collector and result record."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.metrics import MetricsCollector


def make_collector(**overrides):
    defaults = dict(
        duration=100.0,
        n_items=4,
        window_length=10.0,
        record_interval=25.0,
        track_items=(0, 2),
    )
    defaults.update(overrides)
    return MetricsCollector(**defaults)


class TestCollector:
    def test_window_binning(self):
        collector = make_collector()
        collector.record_fulfillment(5.0, 1.0, 2.0)
        collector.record_fulfillment(15.0, 1.0, 3.0)
        collector.record_fulfillment(15.5, 1.0, 1.0)
        assert collector.window_gains[0] == pytest.approx(2.0)
        assert collector.window_gains[1] == pytest.approx(4.0)
        assert collector.window_fulfillments[1] == 2

    def test_event_at_horizon_clamped_to_last_window(self):
        collector = make_collector()
        collector.record_fulfillment(100.0, 1.0, 5.0)
        assert collector.window_gains[-1] == pytest.approx(5.0)

    def test_abandonment_binning(self):
        collector = make_collector()
        collector.record_abandonment(42.0, -1.5)
        assert collector.window_gains[4] == pytest.approx(-1.5)
        assert collector.total_gain == pytest.approx(-1.5)

    def test_snapshot_tracking(self):
        collector = make_collector()
        counts = np.array([3, 1, 4, 1])
        collector.record_snapshot(0.0, counts, None)
        collector.record_snapshot(25.0, counts * 2, np.array([0, 0, 1, 0]))
        result = collector.build_result(counts, n_unfulfilled=0)
        assert result.snapshot_counts.shape == (2, 4)
        assert result.snapshot_tracked.shape == (2, 2)
        assert result.snapshot_tracked[0].tolist() == [3, 4]

    def test_snapshots_are_copies(self):
        collector = make_collector()
        counts = np.array([1, 1, 1, 1])
        collector.record_snapshot(0.0, counts, None)
        counts[0] = 99
        assert collector.snapshot_counts[0][0] == 1

    def test_preallocated_buffer_values_unchanged(self):
        # The snapshot store is a preallocated 2-D buffer; recorded
        # values must be exactly what a list of copies would have held.
        collector = make_collector()
        expected = []
        rng = np.random.default_rng(7)
        for k in range(5):
            counts = rng.integers(0, 10, size=4)
            expected.append(counts.copy())
            collector.record_snapshot(25.0 * k, counts, None)
        assert np.array_equal(collector.snapshot_counts, np.stack(expected))
        tracked = np.stack(expected)[:, [0, 2]]
        assert np.array_equal(collector.snapshot_tracked, tracked)
        result = collector.build_result(expected[-1], n_unfulfilled=0)
        assert np.array_equal(result.snapshot_counts, np.stack(expected))
        assert np.array_equal(result.snapshot_tracked, tracked)

    def test_buffer_grows_past_expected_capacity(self):
        # duration/record_interval predicts 100/25 + 2 = 6 snapshots;
        # recording far more must transparently grow the buffer.
        collector = make_collector()
        n = 50
        for k in range(n):
            collector.record_snapshot(
                2.0 * k, np.array([k, 0, k, 0]), np.array([k, 0, 0, 0])
            )
        assert collector.snapshot_counts.shape == (n, 4)
        assert collector.snapshot_counts[:, 0].tolist() == list(range(n))
        assert collector.snapshot_tracked[:, 0].tolist() == list(range(n))
        assert len(collector.snapshot_mandates) == n

    def test_record_interval_longer_than_duration(self):
        # The capacity formula must still allow the t=0 snapshot plus
        # the horizon flush (duration // record_interval == 0).
        collector = make_collector(record_interval=250.0)
        collector.record_snapshot(0.0, np.array([1, 1, 1, 1]), None)
        collector.record_snapshot(100.0, np.array([2, 2, 2, 2]), None)
        result = collector.build_result(np.array([2, 2, 2, 2]), 0)
        assert result.snapshot_counts.shape == (2, 4)
        assert result.snapshot_times.tolist() == [0.0, 100.0]

    @pytest.mark.parametrize(
        "bad", [0.0, -5.0, math.nan, math.inf, -math.inf]
    )
    def test_invalid_record_interval_rejected(self, bad):
        with pytest.raises(ConfigurationError, match="record_interval"):
            make_collector(record_interval=bad)

    def test_tiny_record_interval_capacity(self):
        # Very fine sampling must not overflow the preallocated buffer.
        collector = make_collector(record_interval=1.0)
        for k in range(102):
            collector.record_snapshot(float(k), np.array([1, 1, 1, 1]), None)
        assert collector.snapshot_counts.shape[0] == 102

    def test_empty_run(self):
        collector = make_collector()
        result = collector.build_result(np.zeros(4, dtype=np.int64), 0)
        assert result.n_fulfilled == 0
        assert math.isnan(result.mean_delay)
        assert math.isnan(result.fulfillment_ratio)
        assert result.snapshot_counts.shape == (0, 4)
        assert result.snapshot_mandates is None


class TestResult:
    def build(self):
        collector = make_collector()
        collector.record_generated()
        collector.record_generated()
        collector.record_fulfillment(10.0, 4.0, 1.0)
        return collector.build_result(np.array([1, 1, 1, 1]), n_unfulfilled=1)

    def test_gain_rate(self):
        result = self.build()
        assert result.gain_rate == pytest.approx(1.0 / 100.0)

    def test_fulfillment_ratio(self):
        result = self.build()
        assert result.fulfillment_ratio == pytest.approx(0.5)

    def test_summary_keys(self):
        summary = self.build().summary()
        assert {"gain_rate", "mean_delay", "n_generated"} <= set(summary)

    def test_delay_percentiles(self):
        collector = make_collector()
        for delay in range(1, 101):
            collector.record_fulfillment(1.0, float(delay), 0.0)
        result = collector.build_result(np.zeros(4, dtype=np.int64), 0)
        assert result.median_delay == pytest.approx(50.5)
        assert result.p95_delay == pytest.approx(95.05)
