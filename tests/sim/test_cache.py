"""Unit tests for the fixed-capacity cache with sticky slots."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import Cache


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestBasics:
    def test_empty(self):
        cache = Cache(3)
        assert len(cache) == 0
        assert not cache.is_full
        assert 5 not in cache

    def test_add_until_full(self):
        cache = Cache(2)
        cache.add(1)
        cache.add(2)
        assert cache.is_full
        with pytest.raises(SimulationError):
            cache.add(3)

    def test_add_idempotent(self):
        cache = Cache(2)
        cache.add(1)
        cache.add(1)
        assert len(cache) == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(SimulationError):
            Cache(0)

    def test_items_snapshot(self):
        cache = Cache(3)
        cache.add(1)
        cache.add(2)
        snapshot = cache.items()
        snapshot.add(99)
        assert 99 not in cache


class TestInsert:
    def test_insert_into_space(self, rng):
        cache = Cache(2)
        assert cache.insert(7, rng) is None
        assert 7 in cache

    def test_insert_existing_noop(self, rng):
        cache = Cache(2)
        cache.add(7)
        assert cache.insert(7, rng) is None
        assert len(cache) == 1

    def test_insert_evicts_when_full(self, rng):
        cache = Cache(2)
        cache.add(1)
        cache.add(2)
        victim = cache.insert(3, rng)
        assert victim in (1, 2)
        assert 3 in cache
        assert len(cache) == 2

    def test_eviction_uniform(self):
        rng = np.random.default_rng(42)
        victims = {1: 0, 2: 0, 3: 0}
        for _ in range(600):
            cache = Cache(3)
            for item in (1, 2, 3):
                cache.add(item)
            victims[cache.insert(4, rng)] += 1
        for count in victims.values():
            assert 130 < count < 270  # roughly uniform thirds


class TestSticky:
    def test_pin_inserts(self):
        cache = Cache(2, sticky=9)
        assert 9 in cache
        assert cache.sticky == 9

    def test_sticky_never_evicted(self, rng):
        cache = Cache(2, sticky=9)
        cache.add(1)
        for item in range(100, 130):
            cache.insert(item, rng)
        assert 9 in cache

    def test_all_sticky_refuses_insert(self, rng):
        cache = Cache(1, sticky=9)
        assert cache.insert(5, rng) is None
        assert 5 not in cache
        assert 9 in cache

    def test_pin_existing_item(self, rng):
        cache = Cache(2)
        cache.add(3)
        cache.pin(3)
        cache.add(4)
        for item in range(10, 40):
            cache.insert(item, rng)
        assert 3 in cache

    def test_repin_demotes_old_sticky(self, rng):
        cache = Cache(2, sticky=1)
        cache.pin(2)
        assert cache.sticky == 2
        # item 1 is now evictable.
        evicted = set()
        for item in range(10, 60):
            victim = cache.insert(item, rng)
            if victim is not None:
                evicted.add(victim)
        assert 1 in evicted
        assert 2 in cache

    def test_pin_into_full_cache_raises(self):
        cache = Cache(1)
        cache.add(1)
        with pytest.raises(SimulationError):
            cache.pin(2)


class TestFillRandom:
    def test_fills_free_slots(self, rng):
        cache = Cache(4, sticky=0)
        added = cache.fill_random(range(1, 10), rng)
        assert len(cache) == 4
        assert len(added) == 3
        assert all(a in cache for a in added)

    def test_no_duplicates(self, rng):
        cache = Cache(4)
        cache.add(2)
        added = cache.fill_random([2, 3], rng)
        assert added == [3]

    def test_candidates_exhausted(self, rng):
        cache = Cache(5)
        added = cache.fill_random([1, 2], rng)
        assert sorted(added) == [1, 2]
        assert len(cache) == 2


@settings(max_examples=50, deadline=None)
@given(
    operations=st.lists(
        st.integers(min_value=0, max_value=19), min_size=1, max_size=60
    ),
    capacity=st.integers(min_value=1, max_value=5),
    sticky=st.integers(min_value=0, max_value=19),
)
def test_invariants_under_random_operations(operations, capacity, sticky):
    """Size never exceeds capacity; sticky item never disappears."""
    rng = np.random.default_rng(7)
    cache = Cache(capacity, sticky=sticky)
    for item in operations:
        cache.insert(item, rng)
        assert len(cache) <= capacity
        assert sticky in cache
        # internal consistency: eviction list matches item set
        assert set(cache._evictable) | {sticky} == cache.items()
