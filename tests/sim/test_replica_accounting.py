"""Direct unit tests for Simulation.insert_copy / remove_copy accounting.

The global replica-count vector ``sim.counts`` must mirror the union of
all server caches at all times — every code path (insertion, eviction,
pinned-slot refusal, removal) has to keep the two in sync, because QCR's
reaction function and the metrics snapshots both read ``counts``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.contacts import homogeneous_poisson_trace
from repro.demand import DemandModel, generate_requests
from repro.protocols import QCR
from repro.sim import Simulation, SimulationConfig
from repro.utility import StepUtility


def build_sim(n_items=6, rho=2, n_nodes=8, servers=None, seed=4):
    demand = DemandModel.pareto(n_items, total_rate=1.0)
    trace = homogeneous_poisson_trace(n_nodes, 0.1, 100.0, seed=2)
    requests = generate_requests(demand, n_nodes, 100.0, seed=3)
    config = SimulationConfig(
        n_items=n_items, rho=rho, utility=StepUtility(5.0), servers=servers
    )
    return Simulation(
        trace, requests, config, QCR(config.utility, 0.1), seed=seed
    )


def counts_from_caches(sim) -> np.ndarray:
    """Recompute the replica counts by scanning every cache."""
    counts = np.zeros(sim.config.n_items, dtype=np.int64)
    for node in sim.nodes:
        if node.cache is not None:
            for item in node.cache:
                counts[item] += 1
    return counts


@pytest.fixture
def sim():
    return build_sim()


class TestInsertCopy:
    def test_insert_into_free_slot_increments_count(self, sim):
        node = next(n for n in sim.nodes if n.cache is not None)
        evictable = next(i for i in node.cache if i != node.cache.sticky)
        assert sim.remove_copy(node, evictable)  # open a slot
        missing = next(i for i in range(6) if i not in node.cache)
        before = sim.counts.copy()
        assert sim.insert_copy(node, missing)
        assert sim.counts[missing] == before[missing] + 1
        assert sim.counts.sum() == before.sum() + 1
        np.testing.assert_array_equal(sim.counts, counts_from_caches(sim))

    def test_insert_into_full_cache_accounts_eviction(self, sim):
        node = next(n for n in sim.nodes if n.cache is not None)
        assert node.cache.is_full
        missing = next(i for i in range(6) if i not in node.cache)
        before = sim.counts.copy()
        held_before = node.cache.items()
        assert sim.insert_copy(node, missing)
        (victim,) = held_before - node.cache.items()
        assert sim.counts[missing] == before[missing] + 1
        assert sim.counts[victim] == before[victim] - 1
        assert sim.counts.sum() == before.sum()  # one in, one out
        np.testing.assert_array_equal(sim.counts, counts_from_caches(sim))

    def test_insert_present_item_is_a_noop(self, sim):
        node = next(n for n in sim.nodes if n.cache is not None)
        held = next(iter(node.cache))
        before = sim.counts.copy()
        assert not sim.insert_copy(node, held)
        np.testing.assert_array_equal(sim.counts, before)

    def test_insert_at_non_server_refused(self):
        sim = build_sim(servers=(0, 1, 2, 3))
        client = sim.nodes[7]
        assert client.cache is None
        before = sim.counts.copy()
        assert not sim.insert_copy(client, 0)
        np.testing.assert_array_equal(sim.counts, before)

    def test_all_slots_pinned_refused(self):
        # rho=1 makes the sticky replica the whole cache: insertion must
        # be refused and the counts untouched.
        sim = build_sim(n_items=4, rho=1, seed=5)
        node = next(
            n for n in sim.nodes
            if n.cache is not None and n.cache.sticky is not None
        )
        assert node.cache.is_full and len(node.cache) == 1
        missing = next(i for i in range(4) if i not in node.cache)
        before = sim.counts.copy()
        assert not sim.insert_copy(node, missing)
        assert missing not in node.cache
        np.testing.assert_array_equal(sim.counts, before)
        np.testing.assert_array_equal(sim.counts, counts_from_caches(sim))


class TestRemoveCopy:
    def test_remove_decrements_count(self, sim):
        node = next(
            n for n in sim.nodes
            if n.cache is not None
            and any(i != n.cache.sticky for i in n.cache)
        )
        item = next(i for i in node.cache if i != node.cache.sticky)
        before = sim.counts.copy()
        assert sim.remove_copy(node, item)
        assert sim.counts[item] == before[item] - 1
        np.testing.assert_array_equal(sim.counts, counts_from_caches(sim))

    def test_remove_sticky_refused(self, sim):
        node = next(
            n for n in sim.nodes
            if n.cache is not None and n.cache.sticky is not None
        )
        sticky = node.cache.sticky
        before = sim.counts.copy()
        assert not sim.remove_copy(node, sticky)
        assert sticky in node.cache
        np.testing.assert_array_equal(sim.counts, before)

    def test_remove_absent_refused(self, sim):
        node = next(n for n in sim.nodes if n.cache is not None)
        missing = next(i for i in range(6) if i not in node.cache)
        before = sim.counts.copy()
        assert not sim.remove_copy(node, missing)
        np.testing.assert_array_equal(sim.counts, before)


class TestCountConsistency:
    def test_random_op_sequence_stays_consistent(self):
        """Hammer insert/remove randomly; counts always match the caches."""
        sim = build_sim(n_items=10, rho=3, n_nodes=10, seed=11)
        rng = np.random.default_rng(12)
        servers = [n for n in sim.nodes if n.cache is not None]
        for _ in range(300):
            node = servers[int(rng.integers(len(servers)))]
            item = int(rng.integers(10))
            if rng.random() < 0.5:
                sim.insert_copy(node, item)
            else:
                sim.remove_copy(node, item)
            assert (sim.counts >= 0).all()
        np.testing.assert_array_equal(sim.counts, counts_from_caches(sim))
        # Sticky replicas can never disappear.
        assert (sim.counts > 0).all()
