"""The streamed (chunked / memory-mapped) event pipeline.

The engine must produce bit-identical results whether the merged event
stream is materialized eagerly or merged chunk by chunk from
NumPy-backed columns — including with faults and JSONL-style tracing
active at the same time — and its run-phase Python-heap peak must be
bounded by the merge chunk, not the trace length.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.contacts import (
    homogeneous_poisson_trace,
    load_binary,
    save_binary,
)
from repro.demand import DemandModel, generate_requests
from repro.experiments import result_to_dict
from repro.faults import FaultSchedule
from repro.obs import Tracer
from repro.protocols import QCR, PassiveReplication, uni_protocol
from repro.sim import Simulation, SimulationConfig
from repro.utility import StepUtility

N_NODES, N_ITEMS, RHO = 8, 6, 2
UTILITY = StepUtility(8.0)


def make_inputs(seed=3, duration=200.0, rate=0.15, n_nodes=N_NODES):
    demand = DemandModel.pareto(N_ITEMS, omega=1.0, total_rate=2.0)
    trace = homogeneous_poisson_trace(n_nodes, rate, duration, seed=seed)
    requests = generate_requests(demand, n_nodes, duration, seed=seed + 1)
    config = SimulationConfig(
        n_items=N_ITEMS, rho=RHO, utility=UTILITY, record_interval=50.0
    )
    return demand, trace, requests, config


def run_one(trace, requests, config, protocol, **kwargs):
    sim = Simulation(trace, requests, config, protocol, seed=5, **kwargs)
    return sim, sim.run()


def comparable(result):
    d = result_to_dict(result)
    d.pop("manifest", None)
    return d


class TestChunkedIdentity:
    @pytest.mark.parametrize("chunk_events", [1, 7, 64, 4096])
    def test_chunked_matches_eager(self, chunk_events):
        demand, trace, requests, config = make_inputs()
        faults = FaultSchedule.crash_wave(
            80.0, [0, 1], recover_at=120.0, wipe_cache=True
        )
        _, eager = run_one(
            trace, requests, config, QCR(UTILITY, 0.15), faults=faults
        )
        sim, chunked = run_one(
            trace,
            requests,
            config,
            QCR(UTILITY, 0.15),
            faults=faults,
            chunk_events=chunk_events,
        )
        assert sim._streamed
        assert comparable(eager) == comparable(chunked)

    def test_memmap_trace_streams_automatically(self, tmp_path):
        demand, trace, requests, config = make_inputs()
        save_binary(trace, tmp_path / "t.ctb")
        mm = load_binary(tmp_path / "t.ctb")
        assert isinstance(mm.times, np.memmap)
        _, eager = run_one(
            trace, requests, config, uni_protocol(demand, N_NODES, RHO)
        )
        sim, streamed = run_one(
            mm, requests, config, uni_protocol(demand, N_NODES, RHO)
        )
        assert sim._streamed
        assert comparable(eager) == comparable(streamed)

    def test_chunked_with_faults_and_tracing(self):
        """Faults + live tracing + chunking together change nothing."""
        demand, trace, requests, config = make_inputs()
        faults = FaultSchedule.crash_wave(
            60.0, [2], recover_at=90.0, wipe_cache=False
        )

        def traced_run(**kwargs):
            tracer = Tracer.in_memory()
            _, result = run_one(
                trace,
                requests,
                config,
                QCR(UTILITY, 0.15),
                faults=faults,
                tracer=tracer,
                **kwargs,
            )
            return result, tracer.sink.events

        eager_result, eager_events = traced_run()
        chunked_result, chunked_events = traced_run(chunk_events=37)
        assert comparable(eager_result) == comparable(chunked_result)
        assert eager_events == chunked_events

    def test_chunked_passive_protocol(self):
        demand, trace, requests, config = make_inputs()
        _, eager = run_one(trace, requests, config, PassiveReplication())
        _, chunked = run_one(
            trace, requests, config, PassiveReplication(), chunk_events=11
        )
        assert comparable(eager) == comparable(chunked)


class TestBoundedMemory:
    def test_run_peak_bounded_by_chunk_not_trace(self, tmp_path):
        """4x the contacts must not mean 4x the streamed run-phase heap.

        The request schedule is held fixed so metrics growth (delays,
        windows) cannot mask the comparison; only the contact columns
        scale.  An eager run would materialize the full merged stream,
        so its peak scales with the trace — the streamed run's peak must
        stay pinned to the chunk size instead.
        """
        demand = DemandModel.pareto(N_ITEMS, omega=1.0, total_rate=0.5)
        config = SimulationConfig(
            n_items=N_ITEMS, rho=RHO, utility=UTILITY, record_interval=None
        )
        requests = generate_requests(demand, 30, 100.0, seed=9)

        def streamed_peak(rate):
            path = tmp_path / f"trace-{rate}.ctb"
            trace = homogeneous_poisson_trace(
                30, rate, 100.0, seed=7, out=path, chunk_target=4096
            )
            protocol = uni_protocol(demand, 30, RHO)
            sim = Simulation(
                trace,
                requests,
                config,
                protocol,
                seed=5,
                chunk_events=4096,
            )
            tracemalloc.start()
            try:
                sim.run()
                _, peak = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()
            return len(trace), peak

        small_events, small_peak = streamed_peak(0.5)
        large_events, large_peak = streamed_peak(2.0)
        assert large_events > 3 * small_events
        # Identical chunk size -> comparable peak; allow generous slack
        # for allocator noise, but nowhere near the 4x event growth.
        assert large_peak < 2.0 * small_peak
