"""Prebuilt (trial-shared) event streams: bit-identity and validation.

The sweep amortization layer merges each trial's contact/request/fault
events once and hands the read-only stream to every protocol's run.
The engine treats a prebuilt stream as untrusted input — it validates
object identity and config equivalence before using it — and the
results must be bit-identical to an inline merge in every mode: plain,
faulted, traced (JSONL), metrics-enabled, and against the streamed
chunked pipeline.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.contacts import homogeneous_poisson_trace, load_binary, save_binary
from repro.demand import DemandModel, generate_requests
from repro.errors import ConfigurationError
from repro.experiments import (
    homogeneous_scenario,
    result_to_dict,
    standard_protocols,
)
from repro.faults import FaultSchedule
from repro.obs import metrics as obs_metrics
from repro.obs.sinks import JsonlSink, MemorySink
from repro.obs.tracer import Tracer
from repro.sim import SimulationConfig, build_event_stream, simulate
from repro.sim.engine import Simulation
from repro.utility import StepUtility

PROTOCOL_NAMES = ("OPT", "QCR", "SQRT", "PROP", "UNI")


@pytest.fixture(scope="module")
def scenario():
    return homogeneous_scenario(
        StepUtility(8.0), duration=120.0, record_interval=30.0
    )


@pytest.fixture(scope="module")
def workload(scenario):
    trace = scenario.trace_factory(5)
    requests = generate_requests(
        scenario.demand, trace.n_nodes, trace.duration, seed=6
    )
    return trace, requests


@pytest.fixture(scope="module")
def faults(workload):
    trace, _ = workload
    return FaultSchedule.node_churn(
        trace.n_nodes,
        crash_rate=0.01,
        mean_downtime=15.0,
        duration=trace.duration,
        seed=9,
    )


def run_pair(scenario, trace, requests, name, *, faults=None, tracer=None):
    """One protocol run with a prebuilt stream and one without."""
    factory = standard_protocols(scenario, include=(name,))[name]
    stream = build_event_stream(trace, requests, scenario.config, faults)

    def once(prebuilt, trc):
        return simulate(
            trace,
            requests,
            scenario.config,
            factory(trace, requests),
            seed=7,
            faults=faults,
            tracer=trc,
            prebuilt_events=prebuilt,
        )

    return once(None, tracer[0] if tracer else None), once(
        stream, tracer[1] if tracer else None
    )


def assert_results_identical(a, b):
    da, db = result_to_dict(a), result_to_dict(b)
    da.pop("manifest", None)
    db.pop("manifest", None)
    assert da == db


@pytest.mark.parametrize("name", PROTOCOL_NAMES)
def test_prebuilt_plain_bit_identical(scenario, workload, name):
    fresh, prebuilt = run_pair(scenario, *workload, name)
    assert_results_identical(fresh, prebuilt)


@pytest.mark.parametrize("name", PROTOCOL_NAMES)
def test_prebuilt_faulted_bit_identical(scenario, workload, faults, name):
    fresh, prebuilt = run_pair(scenario, *workload, name, faults=faults)
    assert_results_identical(fresh, prebuilt)


def test_prebuilt_traced_jsonl_with_metrics(
    scenario, workload, faults, tmp_path
):
    """The gnarliest mode: faults + JSONL tracing + metrics collection.

    Both the results and the emitted JSONL event sequences must match
    byte for byte (modulo nothing — the tracer's view of the event
    order is exactly what the prebuilt merge must reproduce).
    """
    obs_metrics.reset_registry()
    obs_metrics.set_enabled(True)
    try:
        fresh_path = tmp_path / "fresh.jsonl"
        pre_path = tmp_path / "prebuilt.jsonl"
        with open(fresh_path, "w") as fh, open(pre_path, "w") as ph:
            fresh, prebuilt = run_pair(
                scenario,
                *workload,
                "QCR",
                faults=faults,
                tracer=(Tracer(JsonlSink(fh)), Tracer(JsonlSink(ph))),
            )
        assert_results_identical(fresh, prebuilt)
        fresh_events = [
            json.loads(line) for line in fresh_path.read_text().splitlines()
        ]
        pre_events = [
            json.loads(line) for line in pre_path.read_text().splitlines()
        ]
        assert fresh_events == pre_events
        assert fresh_events  # the tracer actually saw the run
    finally:
        obs_metrics.reset_registry()
        obs_metrics.set_enabled(None)


def test_prebuilt_matches_streamed_chunked_path(scenario, workload):
    """An eager prebuilt run equals the chunked streamed pipeline."""
    trace, requests = workload
    factory = standard_protocols(scenario, include=("UNI",))["UNI"]
    stream = build_event_stream(trace, requests, scenario.config)
    prebuilt = simulate(
        trace,
        requests,
        scenario.config,
        factory(trace, requests),
        seed=7,
        prebuilt_events=stream,
    )
    streamed = simulate(
        trace,
        requests,
        scenario.config,
        factory(trace, requests),
        seed=7,
        chunk_events=256,
    )
    assert_results_identical(prebuilt, streamed)


def test_prebuilt_stream_is_reusable_and_read_only(scenario, workload):
    """One stream serves many runs; event columns are not mutated."""
    trace, requests = workload
    stream = build_event_stream(trace, requests, scenario.config)
    before = stream.event_times.copy()
    results = []
    for name in ("OPT", "UNI"):
        factory = standard_protocols(scenario, include=(name,))[name]
        for _ in range(2):
            results.append(
                simulate(
                    trace,
                    requests,
                    scenario.config,
                    factory(trace, requests),
                    seed=7,
                    prebuilt_events=stream,
                )
            )
    assert np.array_equal(stream.event_times, before)
    assert_results_identical(results[0], results[1])
    assert_results_identical(results[2], results[3])


# ----------------------------------------------------------------------
# validation: the engine trusts nothing about a prebuilt stream
# ----------------------------------------------------------------------
def make_sim(scenario, trace, requests, stream, **kwargs):
    factory = standard_protocols(scenario, include=("UNI",))["UNI"]
    return Simulation(
        trace,
        requests,
        scenario.config,
        factory(trace, requests),
        seed=7,
        prebuilt_events=stream,
        **kwargs,
    )


def test_prebuilt_rejects_foreign_trace(scenario, workload):
    trace, requests = workload
    other_trace = scenario.trace_factory(99)
    stream = build_event_stream(other_trace, requests, scenario.config)
    with pytest.raises(ConfigurationError, match="trace"):
        make_sim(scenario, trace, requests, stream)


def test_prebuilt_rejects_foreign_requests(scenario, workload):
    trace, requests = workload
    other_requests = generate_requests(
        scenario.demand, trace.n_nodes, trace.duration, seed=99
    )
    stream = build_event_stream(trace, other_requests, scenario.config)
    with pytest.raises(ConfigurationError, match="request"):
        make_sim(scenario, trace, requests, stream)


def test_prebuilt_rejects_foreign_faults(scenario, workload, faults):
    trace, requests = workload
    stream = build_event_stream(trace, requests, scenario.config, faults)
    factory = standard_protocols(scenario, include=("UNI",))["UNI"]
    with pytest.raises(ConfigurationError, match="fault"):
        Simulation(
            trace,
            requests,
            scenario.config,
            factory(trace, requests),
            seed=7,
            faults=None,
            prebuilt_events=stream,
        )


def test_prebuilt_rejects_config_mismatch(scenario, workload):
    trace, requests = workload
    other_config = SimulationConfig(
        n_items=scenario.config.n_items,
        rho=scenario.config.rho,
        utility=StepUtility(99.0),
    )
    stream = build_event_stream(trace, requests, other_config)
    with pytest.raises(ConfigurationError, match="config"):
        make_sim(scenario, trace, requests, stream)


def test_prebuilt_rejects_missing_payloads_for_plain_run(scenario, workload):
    trace, requests = workload
    stream = build_event_stream(
        trace, requests, scenario.config, payloads=False
    )
    with pytest.raises(ConfigurationError, match="payload"):
        make_sim(scenario, trace, requests, stream)


def test_payloadless_stream_fine_for_traced_run(scenario, workload):
    """Traced runs never consume payload columns, so a payload-free
    stream is sufficient — and payload-bearing streams are a superset
    accepted everywhere."""
    trace, requests = workload
    stream = build_event_stream(
        trace, requests, scenario.config, payloads=False
    )
    sink = MemorySink()
    sim = make_sim(scenario, trace, requests, stream, tracer=Tracer(sink))
    sim.run()
    assert sink.n_emitted > 0


def test_prebuilt_with_chunk_events_is_an_error(scenario, workload):
    trace, requests = workload
    stream = build_event_stream(trace, requests, scenario.config)
    with pytest.raises(ConfigurationError, match="chunk_events"):
        make_sim(scenario, trace, requests, stream, chunk_events=256)


def test_payload_stream_with_faults_is_an_error(scenario, workload, faults):
    trace, requests = workload
    with pytest.raises(ConfigurationError, match="payload"):
        build_event_stream(
            trace, requests, scenario.config, faults, payloads=True
        )


def test_memmap_trace_runs_streamed_with_prebuilt_rejected(
    scenario, workload, tmp_path
):
    """A memory-mapped trace selects the streamed pipeline, which has
    no eager prebuilt form — combining them must fail loudly rather
    than silently materialize the merge."""
    trace, requests = workload
    path = tmp_path / "trace.ctb"
    save_binary(trace, path)
    mapped = load_binary(path, mmap=True)
    stream = build_event_stream(trace, requests, scenario.config)
    factory = standard_protocols(scenario, include=("UNI",))["UNI"]
    with pytest.raises(ConfigurationError):
        Simulation(
            mapped,
            requests,
            scenario.config,
            factory(mapped, requests),
            seed=7,
            prebuilt_events=stream,
        )
