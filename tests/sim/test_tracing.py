"""Engine tracing: event schema, accounting identities, zero overhead.

The tentpole guarantees under test:

* a traced run emits schema-valid, sequenced lifecycle events whose
  counts reconcile exactly with the aggregate metrics;
* tracing changes nothing observable — traced and untraced runs (and
  the frozen reference engine) produce identical results modulo the
  manifest, which is provenance metadata by design;
* a disabled tracer costs nothing: the engine drops its reference, the
  static-protocol contact fast path stays on, and no manifest is
  collected unless asked for.
"""

from __future__ import annotations

import pytest

from repro.contacts import homogeneous_poisson_trace
from repro.demand import DemandModel, generate_requests
from repro.experiments import result_to_dict
from repro.faults import FaultSchedule
from repro.obs import MemorySink, NullSink, Tracer, events
from repro.protocols import QCR, uni_protocol
from repro.sim import Simulation, SimulationConfig, simulate
from repro.sim._reference import ReferenceSimulation
from repro.utility import StepUtility

N_NODES, N_ITEMS, RHO = 8, 5, 2
UTILITY = StepUtility(8.0)


def workload(seed=3, duration=300.0):
    demand = DemandModel.pareto(N_ITEMS, omega=1.0, total_rate=2.0)
    trace = homogeneous_poisson_trace(N_NODES, 0.12, duration, seed=seed)
    requests = generate_requests(demand, N_NODES, duration, seed=seed + 1)
    return demand, trace, requests


def config(**overrides):
    params = dict(
        n_items=N_ITEMS, rho=RHO, utility=UTILITY, record_interval=50.0
    )
    params.update(overrides)
    return SimulationConfig(**params)


def run_traced(protocol_builder, *, cfg=None, faults=None, seed=3):
    demand, trace, requests = workload(seed=seed)
    tracer = Tracer.in_memory()
    sim = Simulation(
        trace,
        requests,
        cfg or config(),
        protocol_builder(demand),
        seed=seed + 2,
        faults=faults,
        tracer=tracer,
    )
    result = sim.run()
    return result, tracer.sink.events, sim


# ----------------------------------------------------------------------
# schema and framing
# ----------------------------------------------------------------------
def test_traced_run_emits_schema_valid_sequenced_events():
    result, trace_events, _ = run_traced(lambda d: QCR(UTILITY, 0.12))
    assert len(trace_events) > 10
    for event in trace_events:
        events.validate_event(event)
    assert [e["seq"] for e in trace_events] == list(range(len(trace_events)))
    assert trace_events[0]["kind"] == events.RUN_START
    assert trace_events[1]["kind"] == events.ALLOC
    assert trace_events[-1]["kind"] == events.RUN_END
    assert trace_events[0]["protocol"] == "QCR"
    assert sum(trace_events[1]["counts"]) <= N_NODES * RHO


def test_run_end_summary_matches_result():
    result, trace_events, _ = run_traced(lambda d: QCR(UTILITY, 0.12))
    summary = trace_events[-1]["summary"]
    assert summary["n_generated"] == result.n_generated
    assert summary["total_gain"] == pytest.approx(result.total_gain)
    assert summary["gain_rate"] == pytest.approx(result.gain_rate)


# ----------------------------------------------------------------------
# lifecycle accounting reconciles with the aggregate metrics
# ----------------------------------------------------------------------
def kind_counts(trace_events):
    counts = {}
    for event in trace_events:
        counts[event["kind"]] = counts.get(event["kind"], 0) + 1
    return counts


def test_lifecycle_counts_reconcile_with_metrics():
    faults = FaultSchedule.crash_wave(
        120.0, [0, 1], recover_at=180.0, wipe_cache=True
    )
    result, trace_events, _ = run_traced(
        lambda d: QCR(UTILITY, 0.12),
        cfg=config(request_timeout=20.0),
        faults=faults,
    )
    counts = kind_counts(trace_events)
    assert counts.get(events.FULFILL, 0) == (
        result.n_fulfilled - result.n_immediate
    )
    assert counts.get(events.IMMEDIATE, 0) == result.n_immediate
    assert counts.get(events.ABANDON, 0) == result.n_expired
    assert counts.get(events.UNFULFILLED, 0) == result.n_unfulfilled
    assert counts.get(events.OFFLINE, 0) == result.n_requests_offline
    assert counts.get(events.CRASH, 0) == result.n_crashes
    assert counts.get(events.RECOVER, 0) == result.n_recoveries
    assert counts.get(events.LOST, 0) == result.n_requests_lost
    # Every request left the system exactly one way.
    n_requests = counts.get(events.REQUEST, 0)
    assert n_requests == (
        counts.get(events.FULFILL, 0)
        + counts.get(events.ABANDON, 0)
        + counts.get(events.LOST, 0)
        + counts.get(events.UNFULFILLED, 0)
    )


def test_fulfill_delays_are_consistent():
    _, trace_events, _ = run_traced(lambda d: QCR(UTILITY, 0.12))
    fulfills = [e for e in trace_events if e["kind"] == events.FULFILL]
    assert fulfills
    for event in fulfills:
        assert event["delay"] >= 0.0
        assert event["counter"] >= 1
        assert 0 <= event["item"] < N_ITEMS


# ----------------------------------------------------------------------
# tracing is observationally free
# ----------------------------------------------------------------------
def comparable(result):
    data = result_to_dict(result)
    data.pop("manifest", None)
    return data


@pytest.mark.parametrize(
    "builder",
    [
        pytest.param(lambda d: uni_protocol(d, N_NODES, RHO), id="static"),
        pytest.param(lambda d: QCR(UTILITY, 0.12), id="qcr"),
    ],
)
def test_traced_equals_untraced(builder):
    demand, trace, requests = workload()
    untraced = Simulation(
        trace, requests, config(), builder(demand), seed=5
    ).run()
    traced, _, _ = run_traced(builder, seed=3)
    # Same seeds: reconstruct with the same seed for a fair comparison.
    traced = Simulation(
        trace,
        requests,
        config(),
        builder(demand),
        seed=5,
        tracer=Tracer.in_memory(),
    ).run()
    assert untraced.manifest is None
    assert traced.manifest is not None
    assert comparable(untraced) == comparable(traced)


def test_traced_engine_matches_frozen_reference():
    demand, trace, requests = workload()
    reference = ReferenceSimulation(
        trace, requests, config(), QCR(UTILITY, 0.12), seed=5
    ).run()
    traced = Simulation(
        trace,
        requests,
        config(),
        QCR(UTILITY, 0.12),
        seed=5,
        tracer=Tracer.in_memory(),
    ).run()
    assert comparable(reference) == comparable(traced)


def test_identical_runs_produce_identical_traces():
    _, first, _ = run_traced(lambda d: QCR(UTILITY, 0.12))
    _, second, _ = run_traced(lambda d: QCR(UTILITY, 0.12))
    assert first == second


# ----------------------------------------------------------------------
# disabled tracer: the satellite fast-path guarantees
# ----------------------------------------------------------------------
def test_disabled_tracer_resolves_to_none():
    demand, trace, requests = workload()
    for tracer in (None, Tracer.disabled(), Tracer(NullSink())):
        sim = Simulation(
            trace,
            requests,
            config(),
            uni_protocol(demand, N_NODES, RHO),
            seed=5,
            tracer=tracer,
        )
        assert sim.tracer is None
        assert sim._hook_free_contact  # PR 2 static-protocol fast path
        assert sim.run().manifest is None


def test_active_tracer_keeps_static_fast_path():
    """SEEN is a query edge, not a raw contact: the no-outstanding
    no-op short-circuit survives tracing."""
    demand, trace, requests = workload()
    sim = Simulation(
        trace,
        requests,
        config(),
        uni_protocol(demand, N_NODES, RHO),
        seed=5,
        tracer=Tracer.in_memory(),
    )
    assert sim.tracer is not None
    assert sim._hook_free_contact
    sim.run()


def test_null_sink_never_receives_events():
    demand, trace, requests = workload()
    sink = NullSink()
    emitted = []
    sink.emit = lambda event: emitted.append(event)  # type: ignore
    Simulation(
        trace,
        requests,
        config(),
        QCR(UTILITY, 0.12),
        seed=5,
        tracer=Tracer(sink),
    ).run()
    assert emitted == []


# ----------------------------------------------------------------------
# manifests
# ----------------------------------------------------------------------
def test_manifest_opt_in_without_tracer():
    demand, trace, requests = workload()
    result = simulate(
        trace,
        requests,
        config(),
        uni_protocol(demand, N_NODES, RHO),
        seed=5,
        manifest=True,
    )
    manifest = result.manifest
    assert manifest is not None
    assert manifest["config_fingerprint"] == config().fingerprint()
    assert manifest["seed"] == 5
    assert manifest["protocol"] == "UNI"
    assert manifest["wall_s"] >= 0.0
    assert manifest["cpu_s"] >= 0.0
    assert manifest["n_events"] == len(trace.times) + len(requests.times)
    assert "python" in manifest["environment"]


def test_simulate_accepts_tracer():
    demand, trace, requests = workload()
    sink = MemorySink()
    result = simulate(
        trace,
        requests,
        config(),
        QCR(UTILITY, 0.12),
        seed=5,
        tracer=Tracer(sink),
    )
    assert sink.n_emitted > 0
    assert result.manifest is not None


def test_config_fingerprint_is_stable_and_semantic():
    base = config()
    assert base.fingerprint() == config().fingerprint()
    assert base.fingerprint() != config(rho=RHO + 1).fingerprint()
    assert len(base.fingerprint()) == 16
