"""Property-based engine invariants over random workloads (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.contacts import bernoulli_slot_trace, homogeneous_poisson_trace
from repro.demand import DemandModel, generate_requests
from repro.protocols import QCR, PassiveReplication, QCRConfig, uni_protocol
from repro.sim import Simulation, SimulationConfig, simulate
from repro.utility import StepUtility

N_NODES, N_ITEMS, RHO = 6, 5, 2


@st.composite
def workloads(draw):
    trace_seed = draw(st.integers(min_value=0, max_value=10_000))
    request_seed = draw(st.integers(min_value=0, max_value=10_000))
    sim_seed = draw(st.integers(min_value=0, max_value=10_000))
    rate = draw(st.floats(min_value=0.02, max_value=0.3))
    demand_rate = draw(st.floats(min_value=0.1, max_value=2.0))
    protocol_kind = draw(st.sampled_from(["qcr", "qcrwom", "passive", "uni"]))
    return trace_seed, request_seed, sim_seed, rate, demand_rate, protocol_kind


def build(workload):
    trace_seed, request_seed, sim_seed, rate, demand_rate, kind = workload
    duration = 120.0
    utility = StepUtility(8.0)
    demand = DemandModel.pareto(N_ITEMS, omega=1.0, total_rate=demand_rate)
    trace = homogeneous_poisson_trace(N_NODES, rate, duration, seed=trace_seed)
    requests = generate_requests(demand, N_NODES, duration, seed=request_seed)
    config = SimulationConfig(
        n_items=N_ITEMS, rho=RHO, utility=utility, record_interval=30.0
    )
    if kind == "qcr":
        protocol = QCR(utility, rate)
    elif kind == "qcrwom":
        protocol = QCR(utility, rate, QCRConfig(mandate_routing=False))
    elif kind == "passive":
        protocol = PassiveReplication()
    else:
        protocol = uni_protocol(demand, N_NODES, RHO)
    return Simulation(trace, requests, config, protocol, seed=sim_seed)


@settings(max_examples=40, deadline=None)
@given(workload=workloads())
def test_replica_accounting_consistent(workload):
    """The engine's counts vector always equals the caches' contents."""
    sim = build(workload)
    result = sim.run()
    recounted = np.zeros(N_ITEMS, dtype=np.int64)
    for node in sim.nodes:
        if node.cache is None:
            continue
        for item in node.cache:
            recounted[item] += 1
    assert np.array_equal(result.final_counts, recounted)
    assert np.array_equal(sim.counts, recounted)


@settings(max_examples=40, deadline=None)
@given(workload=workloads())
def test_bookkeeping_identities(workload):
    """Generated = fulfilled(non-immediate) + expired + outstanding +
    skipped; gains decompose over windows."""
    sim = build(workload)
    result = sim.run()
    outstanding = sum(node.n_outstanding() for node in sim.nodes)
    assert result.n_generated == (
        result.n_fulfilled
        + result.n_skipped_self
        + result.n_expired
        + outstanding
    )
    assert result.n_unfulfilled == outstanding
    assert result.window_gains.sum() == pytest.approx(result.total_gain)
    assert result.window_fulfillments.sum() == result.n_fulfilled
    assert len(result.delays) == result.n_fulfilled
    assert np.all(result.delays >= 0)


@settings(max_examples=30, deadline=None)
@given(workload=workloads())
def test_caches_never_overflow(workload):
    sim = build(workload)
    sim.run()
    for node in sim.nodes:
        if node.cache is not None:
            assert len(node.cache) <= RHO


def test_slotted_trace_matches_continuous():
    """Paper §3.4: discrete-time dynamics approach the continuous model.

    Run the same workload on a Poisson trace and on a fine-grained
    slotted Bernoulli trace with matching rate; average utilities agree.
    """
    utility = StepUtility(8.0)
    demand = DemandModel.pareto(10, omega=1.0, total_rate=3.0)
    duration, rate = 1500.0, 0.08
    config = SimulationConfig(n_items=10, rho=2, utility=utility)
    gains = {}
    for label, trace in (
        (
            "continuous",
            homogeneous_poisson_trace(20, rate, duration, seed=1),
        ),
        (
            "slotted",
            bernoulli_slot_trace(
                20, rate, delta=0.25, n_slots=int(duration / 0.25), seed=2
            ),
        ),
    ):
        requests = generate_requests(demand, 20, duration, seed=3)
        result = simulate(
            trace, requests, config, QCR(utility, rate), seed=4
        )
        gains[label] = result.gain_rate
    assert gains["slotted"] == pytest.approx(gains["continuous"], rel=0.1)
