"""Pin the NodeState/Request surface: dead helpers stay dead.

``NodeState.pop_requests`` and ``Request.age`` were removed as unused;
nothing in the hot path or the protocol API needs them.  These tests
fail if someone reintroduces them without a caller.
"""

from __future__ import annotations

from repro.sim.node import NodeState, Request


def test_removed_helpers_stay_removed():
    assert not hasattr(NodeState, "pop_requests")
    assert not hasattr(Request, "age")


def test_outstanding_request_lifecycle():
    node = NodeState(0, is_server=True, is_client=True, capacity=2)
    node.add_request(Request(item=3, node=0, created_at=1.0))
    node.add_request(Request(item=3, node=0, created_at=2.0))
    assert node.n_outstanding() == 2
    assert [r.created_at for r in node.outstanding[3]] == [1.0, 2.0]
    assert all(r.counter == 0 for r in node.outstanding[3])
