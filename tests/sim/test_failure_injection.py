"""Tests for the failure-injection API (discard / remove_copy / delays)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.contacts import homogeneous_poisson_trace
from repro.demand import DemandModel, generate_requests
from repro.protocols import QCR
from repro.sim import Cache, Simulation, SimulationConfig, simulate
from repro.utility import StepUtility


class TestCacheDiscard:
    def test_discard_present(self):
        cache = Cache(3)
        cache.add(1)
        assert cache.discard(1)
        assert 1 not in cache

    def test_discard_absent(self):
        cache = Cache(3)
        assert not cache.discard(7)

    def test_discard_sticky_refused(self):
        cache = Cache(3, sticky=2)
        assert not cache.discard(2)
        assert 2 in cache

    def test_discard_keeps_invariants(self):
        rng = np.random.default_rng(1)
        cache = Cache(3, sticky=0)
        cache.add(1)
        cache.add(2)
        cache.discard(1)
        cache.insert(5, rng)
        assert set(cache._evictable) | {0} == cache.items()


class TestRemoveCopy:
    @pytest.fixture
    def sim(self):
        demand = DemandModel.pareto(6, total_rate=1.0)
        trace = homogeneous_poisson_trace(8, 0.1, 100.0, seed=2)
        requests = generate_requests(demand, 8, 100.0, seed=3)
        config = SimulationConfig(n_items=6, rho=2, utility=StepUtility(5.0))
        return Simulation(trace, requests, config, QCR(config.utility, 0.1), seed=4)

    def test_counts_updated(self, sim):
        node = next(
            n for n in sim.nodes
            if n.cache is not None
            and any(i != n.cache.sticky for i in n.cache)
        )
        item = next(i for i in node.cache if i != node.cache.sticky)
        before = sim.counts[item]
        assert sim.remove_copy(node, item)
        assert sim.counts[item] == before - 1

    def test_remove_absent_false(self, sim):
        node = sim.nodes[0]
        missing = next(i for i in range(6) if not node.has_item(i))
        assert not sim.remove_copy(node, missing)

    def test_system_recovers_after_mass_failure(self):
        """Knock every non-sticky replica out at t=0; QCR rebuilds."""
        demand = DemandModel.pareto(8, total_rate=4.0)
        trace = homogeneous_poisson_trace(12, 0.1, 600.0, seed=5)
        requests = generate_requests(demand, 12, 600.0, seed=6)
        config = SimulationConfig(
            n_items=8, rho=2, utility=StepUtility(5.0), record_interval=50.0
        )
        sim = Simulation(trace, requests, config, QCR(config.utility, 0.1), seed=7)
        for node in sim.nodes:
            if node.cache is None:
                continue
            for item in list(node.cache.items()):
                sim.remove_copy(node, item)
        assert sim.counts.sum() == 8  # only sticky copies survive
        result = sim.run()
        # Replication refills the global cache substantially.
        assert result.final_counts.sum() > 16


class TestDelaysExposed:
    def test_delays_match_summary(self):
        demand = DemandModel.pareto(6, total_rate=2.0)
        trace = homogeneous_poisson_trace(10, 0.1, 300.0, seed=8)
        requests = generate_requests(demand, 10, 300.0, seed=9)
        config = SimulationConfig(n_items=6, rho=2, utility=StepUtility(5.0))
        result = simulate(trace, requests, config, QCR(config.utility, 0.1), seed=10)
        assert len(result.delays) == result.n_fulfilled
        assert result.mean_delay == pytest.approx(result.delays.mean())
