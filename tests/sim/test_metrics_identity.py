"""Metrics collection must never change what a run computes.

The metrics plane's core invariant: a metrics-enabled run is
bit-identical to a disabled one — across the plain fast paths, fault
injection, and tracing — because aggregation only *observes* the hot
loops.  Also covers what enabling buys: per-chunk counters that
reconcile exactly with the run's event count, and manifests carrying
the phase-timing breakdown plus an embedded metrics snapshot.
"""

from __future__ import annotations

import pytest

from repro.contacts import homogeneous_poisson_trace
from repro.demand import DemandModel, generate_requests
from repro.experiments import result_to_dict
from repro.faults import FaultSchedule
from repro.obs import Tracer
from repro.obs import metrics as obs_metrics
from repro.protocols import QCR, uni_protocol
from repro.sim import Simulation, SimulationConfig
from repro.utility import StepUtility

N_NODES, N_ITEMS, RHO = 10, 6, 2
DURATION = 300.0


@pytest.fixture(autouse=True)
def _fresh_registry():
    obs_metrics.reset_registry()
    obs_metrics.set_enabled(None)
    yield
    obs_metrics.reset_registry()
    obs_metrics.set_enabled(None)


def workload(seed=5):
    demand = DemandModel.pareto(N_ITEMS, omega=1.0, total_rate=2.0)
    trace = homogeneous_poisson_trace(N_NODES, 0.12, DURATION, seed=seed)
    requests = generate_requests(demand, N_NODES, DURATION, seed=seed + 1)
    return demand, trace, requests


def run_once(*, metrics_on, protocol="qcr", faults=None, traced=False):
    obs_metrics.reset_registry()
    obs_metrics.set_enabled(metrics_on)
    demand, trace, requests = workload()
    config = SimulationConfig(
        n_items=N_ITEMS,
        rho=RHO,
        utility=StepUtility(8.0),
        record_interval=50.0,
    )
    if protocol == "qcr":
        proto = QCR(StepUtility(8.0), 0.12)
    else:
        proto = uni_protocol(demand, N_NODES, RHO)
    sim = Simulation(
        trace,
        requests,
        config,
        proto,
        seed=11,
        faults=faults,
        tracer=Tracer.in_memory() if traced else None,
        collect_manifest=True,
    )
    return sim.run()


def strip_manifest(result):
    data = result_to_dict(result)
    data.pop("manifest", None)
    return data


@pytest.mark.parametrize("protocol", ["qcr", "uni"])
def test_metrics_on_off_bit_identical(protocol):
    on = run_once(metrics_on=True, protocol=protocol)
    off = run_once(metrics_on=False, protocol=protocol)
    assert strip_manifest(on) == strip_manifest(off)


def test_metrics_on_off_bit_identical_with_faults():
    faults = FaultSchedule.node_churn(
        N_NODES,
        crash_rate=0.02,
        mean_downtime=40.0,
        duration=DURATION,
        seed=9,
    ) + FaultSchedule(drop_prob=0.2, seed=13)
    on = run_once(metrics_on=True, faults=faults)
    off = run_once(metrics_on=False, faults=faults)
    assert strip_manifest(on) == strip_manifest(off)


def test_metrics_on_off_bit_identical_while_traced():
    on = run_once(metrics_on=True, traced=True)
    off = run_once(metrics_on=False, traced=True)
    assert strip_manifest(on) == strip_manifest(off)


def test_chunk_counters_reconcile_with_event_count():
    result = run_once(metrics_on=True)
    snap = obs_metrics.registry().snapshot()
    n_events = result.manifest["n_events"]
    total = snap["repro_sim_chunk_events_total"]["series"][0]["value"]
    assert total == n_events
    hist = snap["repro_sim_chunk_events"]["series"][0]
    assert hist["sum"] == pytest.approx(float(n_events))
    assert hist["count"] == snap["repro_sim_chunks_total"]["series"][0]["value"]
    runs = snap["repro_sim_runs_total"]["series"][0]
    assert runs["labels"] == {"protocol": "QCR"}
    assert runs["value"] == 1.0


def test_manifest_carries_phases_and_metrics():
    result = run_once(metrics_on=True)
    manifest = result.manifest
    assert set(manifest["phases"]) >= {"merge", "run", "settle"}
    assert all(value >= 0.0 for value in manifest["phases"].values())
    # "merge" happens at construction time, before run()'s wall timer
    # starts; the in-run phases must fit inside the recorded wall time.
    in_run = manifest["phases"]["run"] + manifest["phases"]["settle"]
    assert in_run <= manifest["wall_s"] + 1e-6
    summary = manifest["metrics"]
    assert summary["n_events"] == manifest["n_events"]
    assert summary["n_fulfilled"] == result.n_fulfilled
    assert summary["final_replicas"] == int(result.final_counts.sum())


def test_manifest_summary_present_even_when_metrics_disabled():
    result = run_once(metrics_on=False)
    # The embedded per-run summary rides the manifest (provenance),
    # not the registry, so it survives disabled collection...
    assert result.manifest["metrics"]["n_fulfilled"] == result.n_fulfilled
    assert result.manifest["phases"]
    # ...while the process registry stays untouched.
    assert len(obs_metrics.registry()) == 0


def test_replica_counters_track_accounting():
    result = run_once(metrics_on=True)
    snap = obs_metrics.registry().snapshot()
    adds = snap["repro_sim_replica_adds_total"]["series"][0]["value"]
    drops = snap["repro_sim_replica_drops_total"]["series"][0]["value"]
    assert adds >= 0.0 and drops >= 0.0
    # Net adds minus drops lands exactly on the final replica total
    # minus what the initial allocation placed.
    initial = result.manifest["metrics"]["final_replicas"] - (adds - drops)
    assert initial >= 0
