"""Array-backed engine vs. frozen reference under full instrumentation.

The optimized engine picks one of three hot loops at run time: plain
(no tracer, no faults), faults-only, or fully traced.  Earlier identity
tests pin tracing-only and faults-only; these pin the *combined* mode —
a fault schedule (crashes, recoveries, drops, replica losses) active at
the same time as JSONL tracing — which exercises the dynamic
meeting-count bookkeeping and the tracer hooks together.  Every mode
must match :class:`~repro.sim._reference.ReferenceSimulation` bit for
bit.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.contacts import homogeneous_poisson_trace
from repro.demand import DemandModel, generate_requests
from repro.faults import FaultEvent, FaultSchedule
from repro.obs import Tracer
from repro.protocols import QCR, PassiveReplication, prop_protocol
from repro.sim import Simulation, SimulationConfig
from repro.sim._reference import ReferenceSimulation
from repro.utility import StepUtility

N_NODES, N_ITEMS, RHO = 10, 6, 2
DURATION = 400.0
UTILITY = StepUtility(10.0)


def workload(seed=3):
    demand = DemandModel.pareto(N_ITEMS, omega=1.0, total_rate=2.0)
    trace = homogeneous_poisson_trace(N_NODES, 0.1, DURATION, seed=seed)
    requests = generate_requests(demand, N_NODES, DURATION, seed=seed + 1)
    return demand, trace, requests


def config(**overrides):
    params = dict(
        n_items=N_ITEMS, rho=RHO, utility=UTILITY, record_interval=50.0
    )
    params.update(overrides)
    return SimulationConfig(**params)


def make_faults():
    """A schedule mixing every fault kind plus random drops."""
    events = (
        FaultEvent(time=80.0, kind="crash", node=1),
        FaultEvent(time=120.0, kind="recover", node=1),
        FaultEvent(time=150.0, kind="crash", node=4),
        FaultEvent(time=200.0, kind="replica_loss", node=2),
    )
    return FaultSchedule(events=events, drop_prob=0.2, seed=17)


def assert_identical(a, b):
    """Field-by-field bitwise equality, ignoring the run manifest."""
    for f in dataclasses.fields(a):
        if f.name == "manifest":
            continue
        x, y = getattr(a, f.name), getattr(b, f.name)
        if isinstance(x, np.ndarray):
            assert np.array_equal(x, y), f.name
        elif isinstance(x, float) and np.isnan(x):
            assert np.isnan(y), f.name
        else:
            assert x == y, f.name


BUILDERS = [
    pytest.param(
        lambda demand: prop_protocol(demand, N_NODES, RHO), id="opt"
    ),
    pytest.param(lambda demand: QCR(UTILITY, 0.12), id="qcr"),
    pytest.param(lambda demand: PassiveReplication(), id="passive"),
]


@pytest.mark.parametrize("builder", BUILDERS)
def test_faults_and_jsonl_tracing_bit_identical(builder, tmp_path):
    demand, trace, requests = workload()

    def run(cls, trace_path):
        with Tracer.to_jsonl(
            str(trace_path), meta={"engine": cls.__name__}
        ) as tracer:
            sim = cls(
                trace,
                requests,
                config(),
                builder(demand),
                seed=7,
                faults=make_faults(),
                tracer=tracer,
            )
            return sim.run()

    reference = run(ReferenceSimulation, tmp_path / "ref.jsonl")
    optimized = run(Simulation, tmp_path / "opt.jsonl")
    assert_identical(reference, optimized)
    assert reference.n_crashes == optimized.n_crashes


@pytest.mark.parametrize("builder", BUILDERS)
def test_faults_and_tracing_stream_is_deterministic(builder, tmp_path):
    """Two identically-seeded faulted+traced runs write the same JSONL
    stream, and the stream actually records the fault activity (the
    combined mode is exercised, not silently routed past the tracer)."""
    demand, trace, requests = workload()

    def lines(name):
        path = tmp_path / name
        with Tracer.to_jsonl(str(path)) as tracer:
            Simulation(
                trace,
                requests,
                config(),
                builder(demand),
                seed=7,
                faults=make_faults(),
                tracer=tracer,
            ).run()
        with open(path, "r", encoding="utf-8") as handle:
            return [json.loads(line) for line in handle]

    first = lines("first.jsonl")
    second = lines("second.jsonl")
    assert first == second
    kinds = {event["kind"] for event in first}
    assert "fault" in kinds or "contact_drop" in kinds


@pytest.mark.parametrize("builder", BUILDERS)
def test_faults_only_bit_identical(builder):
    """The faults-only loop (lazy meeting counts) matches the reference."""
    demand, trace, requests = workload(seed=9)
    results = []
    for cls in (ReferenceSimulation, Simulation):
        sim = cls(
            trace,
            requests,
            config(request_timeout=60.0),
            builder(demand),
            seed=11,
            faults=make_faults(),
        )
        results.append(sim.run())
    assert_identical(results[0], results[1])


def test_occupancy_consistent_after_faulted_run():
    """Replica counts derived from caches equal the engine's counters
    after a run that crashed, recovered, and lost replicas."""
    demand, trace, requests = workload(seed=5)
    sim = Simulation(
        trace,
        requests,
        config(),
        QCR(UTILITY, 0.12),
        seed=7,
        faults=make_faults(),
    )
    sim.run()
    recount = np.zeros(N_ITEMS, dtype=np.int64)
    for node in sim.nodes:
        if node.cache is not None:
            for item in node.cache.items():
                recount[item] += 1
    assert np.array_equal(recount, sim.counts)
