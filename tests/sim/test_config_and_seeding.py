"""Tests for SimulationConfig validation and initial-cache seeding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim import SimulationConfig, assign_sticky, seed_allocation
from repro.utility import StepUtility


def config(**overrides):
    defaults = dict(n_items=10, rho=3, utility=StepUtility(5.0))
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestConfig:
    def test_defaults(self):
        cfg = config()
        assert cfg.self_request_policy == "immediate"
        assert cfg.unfulfilled_policy == "truncate"
        assert cfg.request_timeout is None

    def test_server_client_resolution(self):
        cfg = config()
        assert cfg.server_ids(5).tolist() == [0, 1, 2, 3, 4]
        cfg2 = config(servers=(1, 3), clients=(0, 2, 4))
        assert cfg2.server_ids(5).tolist() == [1, 3]
        assert cfg2.client_ids(5).tolist() == [0, 2, 4]

    def test_out_of_range_ids_rejected(self):
        cfg = config(servers=(7,))
        with pytest.raises(ConfigurationError):
            cfg.server_ids(5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            config(n_items=0)
        with pytest.raises(ConfigurationError):
            config(rho=0)
        with pytest.raises(ConfigurationError):
            config(self_request_policy="noop")
        with pytest.raises(ConfigurationError):
            config(unfulfilled_policy="explode")
        with pytest.raises(ConfigurationError):
            config(record_interval=0.0)
        with pytest.raises(ConfigurationError):
            config(request_timeout=-1.0)
        with pytest.raises(ConfigurationError):
            config(window_length=0.0)
        with pytest.raises(ConfigurationError):
            config(track_items=(99,))


class TestSnapshotLoopGuards:
    """Regression: record_interval <= 0 (or NaN) must be rejected.

    ``record_interval=0`` would make ``Simulation.run``'s snapshot loop
    (``while t >= next_snapshot: next_snapshot += record_interval``)
    spin forever; NaN compares False against everything and would
    silently disable snapshots.  Both must fail fast at config time.
    """

    @pytest.mark.parametrize("value", [0.0, -1.0, float("nan"), float("inf")])
    def test_bad_record_interval_rejected(self, value):
        with pytest.raises(ConfigurationError, match="record_interval"):
            config(record_interval=value)

    @pytest.mark.parametrize("value", [0.0, -3.0, float("nan"), float("inf")])
    def test_bad_window_length_rejected(self, value):
        with pytest.raises(ConfigurationError, match="window_length"):
            config(window_length=value)

    @pytest.mark.parametrize("value", [0.0, -1.0, float("nan"), float("inf")])
    def test_bad_request_timeout_rejected(self, value):
        with pytest.raises(ConfigurationError, match="request_timeout"):
            config(request_timeout=value)

    def test_tiny_positive_interval_terminates(self):
        """A legal (small) interval runs to completion — no spin."""
        from repro.contacts import homogeneous_poisson_trace
        from repro.demand import DemandModel, generate_requests
        from repro.protocols import uni_protocol
        from repro.sim import simulate

        demand = DemandModel.pareto(4, total_rate=1.0)
        trace = homogeneous_poisson_trace(6, 0.1, 20.0, seed=1)
        requests = generate_requests(demand, 6, 20.0, seed=2)
        result = simulate(
            trace,
            requests,
            config(n_items=4, rho=2, record_interval=0.5),
            uni_protocol(demand, 6, 2),
            seed=3,
        )
        assert len(result.snapshot_times) == 41  # t = 0, 0.5, ..., 20


class TestSticky:
    def test_each_item_assigned(self):
        owners = assign_sticky(10, np.arange(5), rho=3, seed=1)
        assert owners.shape == (10,)
        assert set(owners.tolist()) <= set(range(5))

    def test_balanced_assignment(self):
        owners = assign_sticky(10, np.arange(5), rho=2, seed=2)
        counts = np.bincount(owners, minlength=5)
        assert counts.max() == 2

    def test_capacity_check(self):
        with pytest.raises(ConfigurationError):
            assign_sticky(10, np.arange(2), rho=3, seed=3)

    def test_subset_of_servers(self):
        servers = np.array([3, 5, 9])
        owners = assign_sticky(3, servers, rho=1, seed=4)
        assert set(owners.tolist()) == {3, 5, 9}


class TestSeedAllocation:
    def test_shape_and_capacity(self):
        allocation, sticky = seed_allocation(10, np.arange(5), rho=3, seed=5)
        assert allocation.shape == (10, 5)
        assert np.all(allocation.sum(axis=0) <= 3)

    def test_sticky_copies_present(self):
        allocation, sticky = seed_allocation(10, np.arange(5), rho=3, seed=6)
        for item, owner in enumerate(sticky):
            assert allocation[item, owner] == 1

    def test_caches_filled(self):
        allocation, _ = seed_allocation(10, np.arange(5), rho=3, seed=7)
        # with 10 candidate items per server, every slot can be filled.
        assert np.all(allocation.sum(axis=0) == 3)

    def test_deterministic(self):
        a, sa = seed_allocation(8, np.arange(4), rho=2, seed=8)
        b, sb = seed_allocation(8, np.arange(4), rho=2, seed=8)
        assert np.array_equal(a, b)
        assert np.array_equal(sa, sb)

    def test_explicit_sticky_owner(self):
        sticky = np.array([2, 2, 0])
        allocation, owners = seed_allocation(
            3, np.arange(3), rho=2, seed=9, sticky_owner=sticky
        )
        assert np.array_equal(owners, sticky)
        assert allocation[0, 2] == 1
        assert allocation[2, 0] == 1
