"""Engine semantics tests: fulfillment, counters, policies, snapshots.

These tests drive the simulator with hand-crafted traces and request
schedules so every gain and counter value can be verified by hand.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.contacts import ContactTrace
from repro.demand import RequestSchedule
from repro.errors import ConfigurationError, SimulationError
from repro.protocols import StaticAllocation
from repro.protocols.base import ReplicationProtocol
from repro.sim import Simulation, SimulationConfig, simulate
from repro.utility import PowerUtility, StepUtility


def trace_of(events, n_nodes=3, duration=100.0):
    if events:
        times, a, b = zip(*events)
    else:
        times, a, b = (), (), ()
    return ContactTrace(
        times=np.asarray(times, dtype=float),
        node_a=np.asarray(a, dtype=np.int64),
        node_b=np.asarray(b, dtype=np.int64),
        n_nodes=n_nodes,
        duration=duration,
    )


def requests_of(events, duration=100.0):
    if events:
        times, items, nodes = zip(*events)
    else:
        times, items, nodes = (), (), ()
    return RequestSchedule(
        times=np.asarray(times, dtype=float),
        items=np.asarray(items, dtype=np.int64),
        nodes=np.asarray(nodes, dtype=np.int64),
        duration=duration,
    )


def static_protocol(allocation):
    return StaticAllocation(allocation=np.asarray(allocation, dtype=np.int8))


def base_config(**overrides):
    defaults = dict(
        n_items=2, rho=1, utility=StepUtility(10.0), window_length=10.0
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestFulfillment:
    def test_single_fulfillment_gain(self):
        # Node 1 holds item 0; node 0 requests it at t=1, meets node 1 at t=4.
        allocation = [[0, 1, 0], [0, 0, 0]]
        trace = trace_of([(4.0, 0, 1)])
        requests = requests_of([(1.0, 0, 0)])
        result = simulate(
            trace, requests, base_config(), static_protocol(allocation), seed=1
        )
        assert result.n_fulfilled == 1
        assert result.total_gain == pytest.approx(1.0)  # 3 < tau
        assert result.mean_delay == pytest.approx(3.0)

    def test_gain_uses_age(self):
        allocation = [[0, 1, 0], [0, 0, 0]]
        trace = trace_of([(20.0, 0, 1)])
        requests = requests_of([(1.0, 0, 0)])
        config = base_config(utility=PowerUtility(0.0))  # h = -t
        result = simulate(
            trace, requests, config, static_protocol(allocation), seed=1
        )
        assert result.total_gain == pytest.approx(-19.0)

    def test_step_deadline_missed_gains_zero(self):
        allocation = [[0, 1, 0], [0, 0, 0]]
        trace = trace_of([(50.0, 0, 1)])
        requests = requests_of([(1.0, 0, 0)])
        result = simulate(
            trace, requests, base_config(), static_protocol(allocation), seed=1
        )
        assert result.n_fulfilled == 1
        assert result.total_gain == pytest.approx(0.0)

    def test_meeting_without_item_no_fulfillment(self):
        allocation = [[0, 0, 1], [0, 0, 0]]  # only node 2 has item 0
        trace = trace_of([(4.0, 0, 1)])
        requests = requests_of([(1.0, 0, 0)])
        result = simulate(
            trace, requests, base_config(), static_protocol(allocation), seed=1
        )
        assert result.n_fulfilled == 0
        assert result.n_unfulfilled == 1

    def test_both_directions_served(self):
        # Node 0 holds item 0, node 1 holds item 1; they request each
        # other's item and meet once.
        allocation = [[1, 0, 0], [0, 1, 0]]
        trace = trace_of([(5.0, 0, 1)])
        requests = requests_of([(1.0, 1, 0), (2.0, 0, 1)])
        result = simulate(
            trace, requests, base_config(), static_protocol(allocation), seed=1
        )
        assert result.n_fulfilled == 2

    def test_multiple_requests_same_item(self):
        allocation = [[0, 1, 0], [0, 0, 0]]
        trace = trace_of([(6.0, 0, 1)])
        requests = requests_of([(1.0, 0, 0), (2.0, 0, 0)])
        result = simulate(
            trace, requests, base_config(), static_protocol(allocation), seed=1
        )
        assert result.n_fulfilled == 2
        assert sorted(
            round(d, 6) for d in (result.mean_delay * 2 - 4.0, 4.0)
        )  # delays 5 and 4

    def test_window_gains(self):
        allocation = [[0, 1, 0], [0, 0, 0]]
        trace = trace_of([(35.0, 0, 1)])
        requests = requests_of([(30.0, 0, 0)])
        result = simulate(
            trace, requests, base_config(), static_protocol(allocation), seed=1
        )
        assert result.window_gains[3] == pytest.approx(1.0)
        assert result.window_gains[:3].sum() == 0.0


class TestSelfRequests:
    def test_immediate_policy(self):
        allocation = [[1, 0, 0], [0, 0, 0]]
        trace = trace_of([])
        requests = requests_of([(1.0, 0, 0)])
        result = simulate(
            trace, requests, base_config(), static_protocol(allocation), seed=1
        )
        assert result.n_immediate == 1
        assert result.total_gain == pytest.approx(1.0)  # h(0+)

    def test_skip_policy(self):
        allocation = [[1, 0, 0], [0, 0, 0]]
        config = base_config(self_request_policy="skip")
        result = simulate(
            trace_of([]),
            requests_of([(1.0, 0, 0)]),
            config,
            static_protocol(allocation),
            seed=1,
        )
        assert result.n_skipped_self == 1
        assert result.total_gain == 0.0

    def test_immediate_with_infinite_h0_raises(self):
        allocation = [[1, 0, 0], [0, 0, 0]]
        config = base_config(utility=PowerUtility(1.5))
        with pytest.raises(SimulationError):
            simulate(
                trace_of([]),
                requests_of([(1.0, 0, 0)]),
                config,
                static_protocol(allocation),
                seed=1,
            )


class TestEndOfRun:
    def test_truncate_policy_credits_partial_cost(self):
        config = base_config(utility=PowerUtility(0.0))  # h = -t
        result = simulate(
            trace_of([], duration=50.0),
            requests_of([(10.0, 0, 0)], duration=50.0),
            config,
            static_protocol([[0, 0, 1], [0, 0, 0]]),
            seed=1,
        )
        assert result.n_unfulfilled == 1
        assert result.total_gain == pytest.approx(-40.0)

    def test_ignore_policy(self):
        config = base_config(
            utility=PowerUtility(0.0), unfulfilled_policy="ignore"
        )
        result = simulate(
            trace_of([], duration=50.0),
            requests_of([(10.0, 0, 0)], duration=50.0),
            config,
            static_protocol([[0, 0, 1], [0, 0, 0]]),
            seed=1,
        )
        assert result.total_gain == 0.0


class TestTimeout:
    def test_expired_requests_dropped(self):
        # Request at t=1; node 1 (with the item) met only at t=50,
        # after the 20-unit timeout has passed (purge happens on the
        # earlier t=30 meeting with empty-handed node 2).
        allocation = [[0, 1, 0], [0, 0, 0]]
        config = base_config(request_timeout=20.0)
        trace = trace_of([(30.0, 0, 2), (50.0, 0, 1)])
        requests = requests_of([(1.0, 0, 0)])
        result = simulate(
            trace, requests, config, static_protocol(allocation), seed=1
        )
        assert result.n_expired == 1
        assert result.n_fulfilled == 0

    def test_fresh_requests_kept(self):
        allocation = [[0, 1, 0], [0, 0, 0]]
        config = base_config(request_timeout=20.0)
        trace = trace_of([(5.0, 0, 2), (8.0, 0, 1)])
        requests = requests_of([(1.0, 0, 0)])
        result = simulate(
            trace, requests, config, static_protocol(allocation), seed=1
        )
        assert result.n_expired == 0
        assert result.n_fulfilled == 1


class TestSnapshotsAndCounts:
    def test_snapshots_recorded(self):
        allocation = [[0, 1, 0], [1, 0, 0]]
        config = base_config(record_interval=25.0, track_items=(0,))
        result = simulate(
            trace_of([]),
            requests_of([]),
            config,
            static_protocol(allocation),
            seed=1,
        )
        assert len(result.snapshot_times) == 5  # t = 0, 25, 50, 75, 100
        assert np.all(result.snapshot_counts == [1, 1])
        assert result.snapshot_tracked.shape == (5, 1)

    def test_static_allocation_never_changes(self, small_trace, small_requests, small_demand):
        from repro.allocation import place_copies

        counts = np.array([2, 2, 2, 1, 1, 1, 1, 0], dtype=np.int64)
        allocation = place_copies(counts, 10, 2, seed=3)
        config = SimulationConfig(
            n_items=8, rho=2, utility=StepUtility(5.0), record_interval=50.0
        )
        result = simulate(
            small_trace,
            small_requests,
            config,
            static_protocol(allocation),
            seed=4,
        )
        assert np.all(result.final_counts == counts)
        assert np.all(result.snapshot_counts == counts)


class TestValidation:
    def test_requests_beyond_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate(
                trace_of([], duration=10.0),
                requests_of([(5.0, 0, 0)], duration=50.0),
                base_config(),
                static_protocol([[0, 0, 0], [0, 0, 0]]),
            )

    def test_protocol_must_initialize(self):
        class Lazy(ReplicationProtocol):
            name = "lazy"

            def initialize(self, sim):
                pass  # never sets an allocation

        with pytest.raises(SimulationError):
            Simulation(
                trace_of([]), requests_of([]), base_config(), Lazy()
            )

    def test_non_client_requests_rejected(self):
        config = base_config(clients=(0,))
        with pytest.raises(ConfigurationError):
            simulate(
                trace_of([]),
                requests_of([(1.0, 0, 2)]),
                config,
                static_protocol([[0, 0, 0], [0, 0, 0]]),
            )

    def test_overfull_allocation_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate(
                trace_of([]),
                requests_of([]),
                base_config(rho=1),
                static_protocol([[1, 0, 0], [1, 0, 0]]),  # node 0 has 2 > rho
            )


class TestDeterminism:
    def test_same_seed_same_result(self, small_trace, small_requests):
        from repro.protocols import QCR

        config = SimulationConfig(n_items=8, rho=2, utility=StepUtility(5.0))
        a = simulate(
            small_trace, small_requests, config, QCR(config.utility, 0.1), seed=9
        )
        b = simulate(
            small_trace, small_requests, config, QCR(config.utility, 0.1), seed=9
        )
        assert a.total_gain == b.total_gain
        assert np.array_equal(a.final_counts, b.final_counts)

    def test_dedicated_servers_only_serve(self):
        """Clients that are not servers never store content."""
        from repro.protocols import QCR

        config = SimulationConfig(
            n_items=2,
            rho=2,
            utility=StepUtility(10.0),
            servers=(0,),
            clients=(1, 2),
        )
        trace = trace_of([(1.0, 0, 1), (2.0, 1, 2), (3.0, 0, 2)])
        requests = requests_of([(0.5, 0, 1), (0.5, 1, 2)])
        sim = Simulation(trace, requests, config, QCR(config.utility, 0.1), seed=2)
        result = sim.run()
        assert sim.nodes[1].cache is None
        assert sim.nodes[2].cache is None
        assert result.n_fulfilled == 2  # both served by node 0
