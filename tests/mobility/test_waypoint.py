"""Unit tests for random-waypoint mobility."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mobility import RandomWaypointModel


def model(**overrides):
    defaults = dict(
        width=1000.0, height=800.0, speed_min=5.0, speed_max=10.0
    )
    defaults.update(overrides)
    return RandomWaypointModel(**defaults)


class TestValidation:
    def test_rejects_bad_area(self):
        with pytest.raises(ConfigurationError):
            model(width=0.0)

    def test_rejects_bad_speeds(self):
        with pytest.raises(ConfigurationError):
            model(speed_min=0.0)
        with pytest.raises(ConfigurationError):
            model(speed_min=10.0, speed_max=5.0)

    def test_rejects_bad_pauses(self):
        with pytest.raises(ConfigurationError):
            model(pause_min=5.0, pause_max=1.0)

    def test_rejects_bad_home_std(self):
        with pytest.raises(ConfigurationError):
            model(home_std=0.0)


class TestPositions:
    def test_shape(self):
        times = np.linspace(0, 100, 11)
        positions = model().sample_positions(4, times, seed=1)
        assert positions.shape == (11, 4, 2)

    def test_within_bounds(self):
        times = np.linspace(0, 500, 100)
        positions = model().sample_positions(6, times, seed=2)
        assert positions[..., 0].min() >= 0
        assert positions[..., 0].max() <= 1000.0
        assert positions[..., 1].min() >= 0
        assert positions[..., 1].max() <= 800.0

    def test_speed_bounded(self):
        times = np.linspace(0, 200, 401)  # dt = 0.5
        positions = model().sample_positions(3, times, seed=3)
        steps = np.diff(positions, axis=0)
        speeds = np.hypot(steps[..., 0], steps[..., 1]) / 0.5
        # Displacement speed never exceeds speed_max (pauses allow less).
        assert speeds.max() <= 10.0 + 1e-9

    def test_pause_produces_stationary_spells(self):
        paused = model(pause_min=20.0, pause_max=30.0)
        times = np.linspace(0, 500, 501)
        positions = paused.sample_positions(2, times, seed=4)
        steps = np.hypot(*np.moveaxis(np.diff(positions, axis=0), -1, 0))
        assert (steps < 1e-9).any()

    def test_determinism(self):
        times = np.linspace(0, 50, 20)
        a = model().sample_positions(3, times, seed=5)
        b = model().sample_positions(3, times, seed=5)
        assert np.array_equal(a, b)

    def test_home_zone_confines_movement(self):
        homebound = model(home_std=30.0, width=10000.0, height=10000.0)
        times = np.linspace(0, 2000, 200)
        positions = homebound.sample_positions(5, times, seed=6)
        for node in range(5):
            track = positions[:, node]
            spread = track.std(axis=0).max()
            assert spread < 200.0  # stays near home, not area-wide

    def test_rejects_bad_times(self):
        with pytest.raises(ConfigurationError):
            model().sample_positions(2, np.array([]), seed=1)
        with pytest.raises(ConfigurationError):
            model().sample_positions(2, np.array([3.0, 1.0]), seed=1)
        with pytest.raises(ConfigurationError):
            model().sample_positions(0, np.array([0.0, 1.0]), seed=1)
