"""Unit tests for proximity contact extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mobility import extract_contacts


def positions_from_distances(distances):
    """Two nodes on the x-axis at the given separations per step."""
    frames = []
    for d in distances:
        frames.append([[0.0, 0.0], [d, 0.0]])
    return np.asarray(frames)


class TestExtraction:
    def test_encounter_start_detected(self):
        positions = positions_from_distances([500, 150, 100, 150, 500])
        times = np.arange(5.0)
        trace = extract_contacts(positions, times, radius=200.0)
        assert len(trace) == 1
        assert trace.times[0] == 1.0

    def test_separate_encounters_counted(self):
        positions = positions_from_distances([500, 100, 500, 100, 500])
        trace = extract_contacts(positions, np.arange(5.0), radius=200.0)
        assert len(trace) == 2
        assert trace.times.tolist() == [1.0, 3.0]

    def test_continuous_proximity_single_event(self):
        positions = positions_from_distances([100, 120, 90, 110])
        trace = extract_contacts(positions, np.arange(4.0), radius=200.0)
        assert len(trace) == 1
        assert trace.times[0] == 0.0  # in range at the first sample

    def test_boundary_inclusive(self):
        positions = positions_from_distances([300, 200])
        trace = extract_contacts(positions, np.arange(2.0), radius=200.0)
        assert len(trace) == 1

    def test_three_nodes_pairwise(self):
        frames = np.array(
            [
                [[0, 0], [1000, 0], [0, 1000]],
                [[0, 0], [80, 0], [0, 80]],  # d(1,2) = 113 > radius
            ],
            dtype=float,
        )
        trace = extract_contacts(frames, np.array([0.0, 1.0]), radius=100.0)
        pairs = set(zip(trace.node_a.tolist(), trace.node_b.tolist()))
        assert pairs == {(0, 1), (0, 2)}

    def test_duration_is_last_sample(self):
        positions = positions_from_distances([500, 500])
        trace = extract_contacts(positions, np.array([0.0, 7.5]), radius=10.0)
        assert trace.duration == 7.5
        assert len(trace) == 0

    def test_validation(self):
        good = positions_from_distances([1, 2])
        with pytest.raises(ConfigurationError):
            extract_contacts(good, np.array([0.0, 1.0]), radius=0.0)
        with pytest.raises(ConfigurationError):
            extract_contacts(good, np.array([0.0]), radius=1.0)
        with pytest.raises(ConfigurationError):
            extract_contacts(good[..., :1], np.array([0.0, 1.0]), radius=1.0)
