"""Tests for count quantization and server placement."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation import (
    counts_of_allocation,
    place_copies,
    quantize_counts,
)
from repro.errors import AllocationError


class TestQuantize:
    def test_exact_integers_unchanged(self):
        counts = quantize_counts(np.array([3.0, 2.0, 1.0]), 6, 10)
        assert counts.tolist() == [3, 2, 1]

    def test_largest_remainder(self):
        counts = quantize_counts(np.array([2.6, 2.4, 1.0]), 6, 10)
        assert counts.tolist() == [3, 2, 1]

    def test_respects_cap(self):
        counts = quantize_counts(np.array([9.9, 0.1]), 10, 5)
        assert counts.max() <= 5
        assert counts.sum() == 10

    def test_oversubscribed_trimmed(self):
        counts = quantize_counts(np.array([4.0, 4.0]), 6, 10)
        assert counts.sum() == 6

    def test_impossible_budget_rejected(self):
        with pytest.raises(AllocationError):
            quantize_counts(np.array([1.0, 1.0]), 11, 5)

    def test_negative_rejected(self):
        with pytest.raises(AllocationError):
            quantize_counts(np.array([-1.0, 2.0]), 1, 5)

    @settings(max_examples=60, deadline=None)
    @given(
        fractions=st.lists(
            st.floats(min_value=0.0, max_value=8.0), min_size=2, max_size=10
        ),
    )
    def test_sum_preserved(self, fractions):
        fractional = np.asarray(fractions)
        budget = int(round(fractional.sum()))
        budget = min(budget, len(fractions) * 8)
        counts = quantize_counts(fractional, budget, 8)
        assert counts.sum() == budget
        assert counts.max() <= 8
        assert counts.min() >= 0
        # Rounding moves each entry by less than 1 except cap effects.
        assert np.all(np.abs(counts - fractional) <= len(fractions))


class TestPlacement:
    def test_feasible_placement(self):
        counts = np.array([4, 3, 2, 1], dtype=np.int64)
        allocation = place_copies(counts, n_servers=5, rho=2, seed=1)
        assert allocation.shape == (4, 5)
        assert np.array_equal(counts_of_allocation(allocation), counts)
        assert allocation.sum(axis=0).max() <= 2

    def test_full_caches(self):
        counts = np.array([5, 5], dtype=np.int64)
        allocation = place_copies(counts, n_servers=5, rho=2, seed=2)
        assert np.all(allocation.sum(axis=0) == 2)

    def test_item_cap_validated(self):
        with pytest.raises(AllocationError):
            place_copies(np.array([6]), n_servers=5, rho=2)

    def test_capacity_validated(self):
        with pytest.raises(AllocationError):
            place_copies(np.array([5, 5, 5]), n_servers=5, rho=2)

    def test_deterministic_with_seed(self):
        counts = np.array([3, 2, 2], dtype=np.int64)
        a = place_copies(counts, 4, 2, seed=3)
        b = place_copies(counts, 4, 2, seed=3)
        assert np.array_equal(a, b)

    @settings(max_examples=80, deadline=None)
    @given(
        raw=st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=12),
        rho=st.integers(min_value=1, max_value=4),
    )
    def test_random_instances_feasible(self, raw, rho):
        n_servers = 6
        counts = np.asarray(raw, dtype=np.int64)
        if counts.sum() > rho * n_servers:
            # Scale down to a feasible total.
            while counts.sum() > rho * n_servers:
                counts[int(np.argmax(counts))] -= 1
        allocation = place_copies(counts, n_servers, rho, seed=0)
        assert np.array_equal(counts_of_allocation(allocation), counts)
        assert allocation.sum(axis=0).max() <= rho
        assert np.isin(allocation, (0, 1)).all()
