"""Tests for the heterogeneous (lazy submodular) greedy — the OPT baseline."""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest

from repro.allocation import (
    HeterogeneousProblem,
    greedy_heterogeneous,
    greedy_homogeneous,
    heterogeneous_welfare,
)
from repro.demand import DemandModel
from repro.errors import ConfigurationError
from repro.utility import PowerUtility, StepUtility


def homogeneous_matrix(n, mu, *, zero_diag=False):
    rates = np.full((n, n), mu)
    if zero_diag:
        np.fill_diagonal(rates, 0.0)
    return rates


class TestAgainstHomogeneous:
    def test_matches_homogeneous_greedy_welfare(self):
        """On homogeneous inputs the submodular greedy recovers the exact
        Theorem-2 optimum."""
        n, mu, rho = 8, 0.1, 2
        demand = DemandModel.pareto(6, omega=1.0)
        utility = StepUtility(4.0)
        problem = HeterogeneousProblem(
            demand=demand,
            utility=utility,
            rate_matrix=homogeneous_matrix(n, mu, zero_diag=True),
            rho=rho,
            server_of_client=np.arange(n),
        )
        result = greedy_heterogeneous(problem)
        exact = greedy_homogeneous(
            demand, utility, mu, n, rho, pure_p2p=True, n_clients=n
        )
        assert result.welfare == pytest.approx(exact.welfare, rel=1e-9)

    def test_dedicated_case(self):
        n_servers, n_clients, mu = 5, 4, 0.2
        demand = DemandModel.pareto(4)
        utility = StepUtility(3.0)
        problem = HeterogeneousProblem(
            demand=demand,
            utility=utility,
            rate_matrix=np.full((n_servers, n_clients), mu),
            rho=1,
        )
        result = greedy_heterogeneous(problem)
        exact = greedy_homogeneous(demand, utility, mu, n_servers, 1)
        assert result.welfare == pytest.approx(exact.welfare, rel=1e-9)


class TestGuarantee:
    def brute_force(self, problem):
        """Exhaustive optimum over feasible allocations (tiny instances)."""
        demand = problem.demand
        n_items, n_servers = demand.n_items, problem.n_servers
        cells = [(i, m) for i in range(n_items) for m in range(n_servers)]
        budget = problem.rho * n_servers
        best = -np.inf
        for size in range(budget + 1):
            for chosen in combinations(cells, size):
                loads = np.zeros(n_servers, dtype=int)
                allocation = np.zeros((n_items, n_servers), dtype=np.int8)
                feasible = True
                for i, m in chosen:
                    loads[m] += 1
                    if loads[m] > problem.rho:
                        feasible = False
                        break
                    allocation[i, m] = 1
                if not feasible:
                    continue
                value = heterogeneous_welfare(
                    allocation,
                    demand,
                    problem.utility,
                    problem.rate_matrix,
                    server_of_client=problem.server_of_client,
                    rate_floor=problem.rate_floor,
                )
                best = max(best, value)
        return best

    def test_greedy_within_bound_random_instances(self):
        rng = np.random.default_rng(17)
        for _ in range(5):
            rates = rng.uniform(0.0, 0.5, size=(3, 3))
            demand = DemandModel.from_weights(rng.uniform(0.2, 3.0, size=3))
            problem = HeterogeneousProblem(
                demand=demand,
                utility=StepUtility(float(rng.uniform(1.0, 10.0))),
                rate_matrix=rates,
                rho=1,
            )
            greedy_value = greedy_heterogeneous(problem).welfare
            optimum = self.brute_force(problem)
            assert greedy_value >= (1 - 1 / np.e) * optimum - 1e-9
            assert greedy_value <= optimum + 1e-9


class TestBehaviour:
    def test_respects_capacity(self):
        demand = DemandModel.pareto(5)
        problem = HeterogeneousProblem(
            demand=demand,
            utility=StepUtility(5.0),
            rate_matrix=np.full((4, 4), 0.1),
            rho=2,
        )
        allocation = greedy_heterogeneous(problem).allocation
        assert allocation.sum(axis=0).max() <= 2

    def test_places_near_demand(self):
        """Copies go to servers that actually meet the requesting clients."""
        demand = DemandModel.from_weights([1.0])
        rates = np.array(
            [[1.0, 1.0], [0.01, 0.01], [0.01, 0.01]]
        )  # server 0 meets everyone
        problem = HeterogeneousProblem(
            demand=demand, utility=StepUtility(2.0), rate_matrix=rates, rho=1
        )
        allocation = greedy_heterogeneous(problem).allocation
        assert allocation[0, 0] == 1

    def test_rate_floor_keeps_unbounded_costs_finite(self):
        demand = DemandModel.pareto(3)
        rates = np.zeros((3, 3))
        rates[0, 0] = 0.5
        problem = HeterogeneousProblem(
            demand=demand,
            utility=PowerUtility(0.0),
            rate_matrix=rates,
            rho=1,
            rate_floor=0.01,
        )
        result = greedy_heterogeneous(problem)
        assert np.isfinite(result.welfare)

    def test_lazy_evaluations_bounded(self):
        demand = DemandModel.pareto(6)
        problem = HeterogeneousProblem(
            demand=demand,
            utility=StepUtility(5.0),
            rate_matrix=np.random.default_rng(3).uniform(0, 0.3, (6, 6)),
            rho=2,
        )
        result = greedy_heterogeneous(problem)
        # Never more than (initial full scan + per-acceptance rescans of
        # every cell) — the lazy heap should stay well under the naive
        # O(selections * cells) bound.
        n_cells = 6 * 6
        assert result.evaluations <= n_cells * (problem.rho * 6 + 1)

    def test_validation(self):
        demand = DemandModel.pareto(3)
        with pytest.raises(ConfigurationError):
            HeterogeneousProblem(
                demand=demand,
                utility=StepUtility(1.0),
                rate_matrix=np.ones((2, 2)),
                rho=0,
            )
        with pytest.raises(ConfigurationError):
            HeterogeneousProblem(
                demand=demand,
                utility=PowerUtility(1.5),  # infinite h(0+)
                rate_matrix=np.ones((2, 2)),
                rho=1,
                server_of_client=np.arange(2),
            )
