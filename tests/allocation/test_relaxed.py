"""Tests for the relaxed solver and the Property-1 balance condition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocation import (
    balance_report,
    balance_values,
    power_law_counts,
    solve_relaxed,
)
from repro.demand import DemandModel
from repro.errors import ConfigurationError
from repro.utility import (
    ExponentialUtility,
    NegLogUtility,
    PowerUtility,
    StepUtility,
)

MU = 0.05


@pytest.fixture
def demand():
    return DemandModel.pareto(20, omega=1.0, total_rate=1.0)


class TestSolveRelaxed:
    @pytest.mark.parametrize(
        "utility",
        [
            StepUtility(3.0),
            ExponentialUtility(0.2),
            PowerUtility(0.5),
            PowerUtility(-1.0),
            NegLogUtility(),
        ],
        ids=lambda u: u.name,
    )
    def test_budget_met(self, demand, utility):
        result = solve_relaxed(demand, utility, MU, 50, budget=100.0)
        assert result.counts.sum() == pytest.approx(100.0, rel=1e-6)
        assert np.all(result.counts >= 0)
        assert np.all(result.counts <= 50)

    @pytest.mark.parametrize(
        "utility",
        [StepUtility(3.0), ExponentialUtility(0.2), PowerUtility(0.5)],
        ids=lambda u: u.name,
    )
    def test_balance_condition(self, demand, utility):
        """Property 1: d_i phi(x_i) equal on the interior."""
        result = solve_relaxed(demand, utility, MU, 50, budget=100.0)
        report = balance_report(result.counts, demand, utility, MU, 50)
        assert report.is_balanced(rtol=1e-4)

    def test_matches_closed_form_power_law(self, demand):
        """Figure 2: x_i ∝ d_i^(1/(2-alpha))."""
        for alpha in (-1.0, 0.0, 0.5):
            utility = PowerUtility(alpha)
            solved = solve_relaxed(demand, utility, MU, 100, budget=200.0)
            closed = power_law_counts(demand, alpha, 200.0, 100)
            assert np.allclose(solved.counts, closed, rtol=1e-5, atol=1e-5)

    def test_neglog_proportional(self, demand):
        """alpha = 1: the optimum is proportional to demand."""
        solved = solve_relaxed(demand, NegLogUtility(), MU, 200, budget=100.0)
        expected = demand.probabilities * 100.0
        assert np.allclose(solved.counts, expected, rtol=1e-5)

    def test_step_boundary_items(self):
        """Very impatient step: tail items get (almost) nothing."""
        demand = DemandModel.pareto(20, omega=2.0)
        utility = StepUtility(0.2)
        result = solve_relaxed(demand, utility, MU, 10, budget=30.0)
        assert result.counts[0] > result.counts[-1]
        assert result.counts[-1] == pytest.approx(0.0, abs=1e-6)

    def test_upper_boundary_respected(self):
        demand = DemandModel.from_weights([100.0, 1.0, 1.0])
        utility = PowerUtility(1.5)
        result = solve_relaxed(demand, utility, MU, 4, budget=8.0)
        assert result.counts[0] == pytest.approx(4.0, abs=1e-6)

    def test_multiplier_positive(self, demand):
        result = solve_relaxed(demand, StepUtility(3.0), MU, 50, budget=100.0)
        assert result.multiplier > 0

    def test_validation(self, demand):
        with pytest.raises(ConfigurationError):
            solve_relaxed(demand, StepUtility(1.0), -0.1, 50, budget=10.0)
        with pytest.raises(ConfigurationError):
            solve_relaxed(demand, StepUtility(1.0), MU, 50, budget=0.0)
        with pytest.raises(ConfigurationError):
            solve_relaxed(demand, StepUtility(1.0), MU, 2, budget=1000.0)


class TestBalanceDiagnostics:
    def test_balance_values(self, demand):
        utility = StepUtility(3.0)
        counts = np.full(20, 5.0)
        values = balance_values(counts, demand, utility, MU)
        assert values.shape == (20,)
        # Uniform counts: balance value proportional to demand.
        assert values[0] / values[1] == pytest.approx(
            demand.rates[0] / demand.rates[1]
        )

    def test_uniform_allocation_unbalanced(self, demand):
        report = balance_report(
            np.full(20, 5.0), demand, StepUtility(3.0), MU, 50
        )
        assert not report.is_balanced(rtol=0.01)

    def test_boundary_items_reported(self):
        demand = DemandModel.from_weights([100.0, 1.0, 0.0])
        utility = PowerUtility(1.5)
        counts = solve_relaxed(demand, utility, MU, 4, budget=8.0).counts
        report = balance_report(counts, demand, utility, MU, 4)
        assert 0 in report.at_upper
        assert 2 in report.at_zero
