"""Tests for the Theorem-2 greedy: exactness, complexity contract, caps."""

from __future__ import annotations

from itertools import product

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation import greedy_homogeneous, homogeneous_welfare
from repro.demand import DemandModel
from repro.errors import ConfigurationError
from repro.utility import ExponentialUtility, PowerUtility, StepUtility


def brute_force(demand, utility, mu, n_servers, budget, **kwargs):
    """Exhaustive search over integer allocations (tiny instances only)."""
    best_value, best_counts = -np.inf, None
    n = demand.n_items
    for combo in product(range(min(budget, n_servers) + 1), repeat=n):
        if sum(combo) != budget:
            continue
        value = homogeneous_welfare(
            np.asarray(combo, dtype=float), demand, utility, mu, n_servers, **kwargs
        )
        if value > best_value:
            best_value, best_counts = value, combo
    return best_value, best_counts


class TestExactness:
    @pytest.mark.parametrize(
        "utility",
        [StepUtility(2.0), StepUtility(30.0), ExponentialUtility(0.3), PowerUtility(0.5)],
        ids=lambda u: u.name,
    )
    def test_matches_brute_force(self, utility):
        demand = DemandModel.from_weights([5.0, 2.0, 1.0, 0.5])
        result = greedy_homogeneous(
            demand, utility, 0.1, n_servers=4, rho=1, budget=4
        )
        best_value, _ = brute_force(demand, utility, 0.1, 4, 4)
        assert result.welfare == pytest.approx(best_value, rel=1e-12)

    def test_matches_brute_force_pure_p2p(self):
        demand = DemandModel.from_weights([4.0, 1.0, 1.0])
        utility = StepUtility(5.0)
        result = greedy_homogeneous(
            demand, utility, 0.1, n_servers=3, rho=2,
            pure_p2p=True, n_clients=3,
        )
        best_value, _ = brute_force(
            demand, utility, 0.1, 3, 6, pure_p2p=True, n_clients=3
        )
        assert result.welfare == pytest.approx(best_value, rel=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(
        weights=st.lists(
            st.floats(min_value=0.1, max_value=10.0), min_size=3, max_size=3
        ),
        tau=st.floats(min_value=0.5, max_value=50.0),
    )
    def test_random_instances_match_brute_force(self, weights, tau):
        demand = DemandModel.from_weights(weights)
        utility = StepUtility(tau)
        result = greedy_homogeneous(
            demand, utility, 0.1, n_servers=3, rho=1, budget=3
        )
        best_value, _ = brute_force(demand, utility, 0.1, 3, 3)
        assert result.welfare == pytest.approx(best_value, rel=1e-10)


class TestConstraints:
    def test_budget_respected(self):
        demand = DemandModel.pareto(10)
        result = greedy_homogeneous(demand, StepUtility(5.0), 0.05, 8, 3)
        assert result.total_copies == 24

    def test_per_item_cap(self):
        demand = DemandModel.from_weights([100.0, 0.001])
        result = greedy_homogeneous(demand, StepUtility(1.0), 0.5, 4, 3)
        assert result.counts.max() <= 4

    def test_budget_capped_by_capacity(self):
        demand = DemandModel.pareto(2)
        result = greedy_homogeneous(
            demand, StepUtility(5.0), 0.05, n_servers=3, rho=5
        )
        # Only 2 items * 3 servers = 6 possible copies.
        assert result.total_copies == 6

    def test_unbounded_cost_gives_every_item_a_copy(self):
        """With waiting costs, a zero-replica item costs -inf; greedy
        must give every item at least one copy first."""
        demand = DemandModel.pareto(10, omega=2.0)
        result = greedy_homogeneous(demand, PowerUtility(0.0), 0.05, 20, 1)
        assert result.counts.min() >= 1

    def test_skewed_for_time_critical(self):
        demand = DemandModel.pareto(10, omega=1.0)
        impatient = greedy_homogeneous(demand, PowerUtility(1.9), 0.05, 20, 2)
        patient = greedy_homogeneous(demand, PowerUtility(-1.0), 0.05, 20, 2)
        # More impatient -> more copies of the top item (Figure 2 trend).
        assert impatient.counts[0] > patient.counts[0]
        # Patient allocations are closer to uniform.
        assert patient.counts.std() < impatient.counts.std()

    def test_validation(self):
        demand = DemandModel.pareto(3)
        with pytest.raises(ConfigurationError):
            greedy_homogeneous(demand, StepUtility(1.0), 0.05, 0, 1)
        with pytest.raises(ConfigurationError):
            greedy_homogeneous(demand, StepUtility(1.0), 0.05, 5, 1, budget=-1)


class TestAgainstRelaxed:
    def test_integer_welfare_at_most_relaxed(self):
        """The relaxed optimum upper-bounds the integer optimum."""
        from repro.allocation import solve_relaxed

        demand = DemandModel.pareto(10)
        utility = ExponentialUtility(0.2)
        mu, n_servers, rho = 0.05, 10, 2
        greedy = greedy_homogeneous(demand, utility, mu, n_servers, rho)
        relaxed = solve_relaxed(
            demand, utility, mu, n_servers, budget=float(rho * n_servers)
        )
        relaxed_welfare = homogeneous_welfare(
            relaxed.counts, demand, utility, mu, n_servers
        )
        assert greedy.welfare <= relaxed_welfare + 1e-9
        # And rounding the relaxed solution cannot beat the exact greedy.
        rounded = np.floor(relaxed.counts)
        rounded_welfare = homogeneous_welfare(
            rounded, demand, utility, mu, n_servers
        )
        assert rounded_welfare <= greedy.welfare + 1e-9
