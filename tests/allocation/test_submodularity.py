"""Property-based verification of Theorem 1: welfare is submodular.

The welfare, viewed as a set function over (item, server) placements, must
exhibit diminishing returns for *arbitrary* heterogeneous contact
intensities, demand profiles, and mixed client/server populations — that
is exactly Theorem 1, and the reason the greedy OPT baseline carries a
(1 - 1/e) guarantee.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation import heterogeneous_welfare
from repro.demand import DemandModel
from repro.utility import ExponentialUtility, PowerUtility, StepUtility

N_ITEMS, N_SERVERS, N_CLIENTS = 3, 4, 3


def utilities():
    return st.sampled_from(
        [
            StepUtility(2.0),
            StepUtility(20.0),
            ExponentialUtility(0.4),
            PowerUtility(1.5),
        ]
    )


@st.composite
def instances(draw):
    utility = draw(utilities())
    rate_values = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0),
            min_size=N_SERVERS * N_CLIENTS,
            max_size=N_SERVERS * N_CLIENTS,
        )
    )
    rates = np.asarray(rate_values).reshape(N_SERVERS, N_CLIENTS)
    demand_weights = draw(
        st.lists(
            st.floats(min_value=0.05, max_value=5.0),
            min_size=N_ITEMS,
            max_size=N_ITEMS,
        )
    )
    demand = DemandModel.from_weights(demand_weights)
    subset_bits = draw(
        st.lists(st.booleans(), min_size=N_ITEMS * N_SERVERS, max_size=N_ITEMS * N_SERVERS)
    )
    extra_bits = draw(
        st.lists(st.booleans(), min_size=N_ITEMS * N_SERVERS, max_size=N_ITEMS * N_SERVERS)
    )
    element = draw(st.integers(min_value=0, max_value=N_ITEMS * N_SERVERS - 1))
    return utility, rates, demand, subset_bits, extra_bits, element


def welfare_of(bits, demand, utility, rates):
    # NOTE: Theorem 1 holds for the exact welfare; a rate *floor* breaks
    # submodularity (a tiny added rate can be absorbed by the floor on a
    # small set but not on a large one), so the practical floored greedy
    # is heuristic while this test verifies the theorem itself.
    allocation = np.asarray(bits, dtype=np.int8).reshape(N_ITEMS, N_SERVERS)
    return heterogeneous_welfare(allocation, demand, utility, rates)


@settings(max_examples=120, deadline=None)
@given(instance=instances())
def test_diminishing_returns(instance):
    """f(A + e) - f(A) >= f(B + e) - f(B) for A subset of B."""
    utility, rates, demand, subset_bits, extra_bits, element = instance
    small = list(subset_bits)
    large = [a or b for a, b in zip(subset_bits, extra_bits)]
    if small[element] or large[element]:
        small[element] = False
        large[element] = False
    small_plus = list(small)
    small_plus[element] = True
    large_plus = list(large)
    large_plus[element] = True

    gain_small = welfare_of(small_plus, demand, utility, rates) - welfare_of(
        small, demand, utility, rates
    )
    gain_large = welfare_of(large_plus, demand, utility, rates) - welfare_of(
        large, demand, utility, rates
    )
    assert gain_small >= gain_large - 1e-9


@settings(max_examples=60, deadline=None)
@given(instance=instances())
def test_monotonicity(instance):
    """Adding a replica never decreases welfare."""
    utility, rates, demand, subset_bits, _extra, element = instance
    base = list(subset_bits)
    base[element] = False
    added = list(base)
    added[element] = True
    assert welfare_of(added, demand, utility, rates) >= welfare_of(
        base, demand, utility, rates
    ) - 1e-9


@settings(max_examples=40, deadline=None)
@given(instance=instances())
def test_submodular_with_client_servers(instance):
    """Theorem 1 holds for mixed client/server populations too."""
    utility, rates, demand, subset_bits, extra_bits, element = instance
    if not utility.finite_at_zero:
        return  # dedicated-node only
    square = np.zeros((N_SERVERS, N_SERVERS))
    square[:, :N_CLIENTS] = rates
    square = (square + square.T) / 2
    np.fill_diagonal(square, 0.0)
    mapping = np.arange(N_SERVERS)

    def f(bits):
        allocation = np.asarray(bits, dtype=np.int8).reshape(
            N_ITEMS, N_SERVERS
        )
        return heterogeneous_welfare(
            allocation,
            demand,
            utility,
            square,
            server_of_client=mapping,
            rate_floor=0.0,
        )

    small = list(subset_bits)
    large = [a or b for a, b in zip(subset_bits, extra_bits)]
    small[element] = False
    large[element] = False
    small_plus, large_plus = list(small), list(large)
    small_plus[element] = True
    large_plus[element] = True
    assert f(small_plus) - f(small) >= f(large_plus) - f(large) - 1e-9
