"""Tests for the Eq. (7) mean-field replica dynamics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocation import (
    dynamics_equilibrium,
    replica_dynamics,
    solve_relaxed,
)
from repro.demand import DemandModel
from repro.errors import ConfigurationError
from repro.utility import ExponentialUtility, PowerUtility, StepUtility

MU, S, RHO = 0.05, 50, 5


@pytest.fixture
def demand():
    return DemandModel.pareto(10, omega=1.0, total_rate=1.0)


class TestEquilibrium:
    @pytest.mark.parametrize(
        "utility",
        [StepUtility(5.0), ExponentialUtility(0.2), PowerUtility(0.0)],
        ids=lambda u: u.name,
    )
    def test_converges_to_relaxed_optimum(self, demand, utility):
        """Property 2: the QCR fluid limit settles at the Property-1 point.

        The *shape* (normalized allocation) converges quickly; the total
        mass approaches capacity only at the reaction rate, which is
        exponentially small for well-replicated deadline utilities — so
        the shape is what we assert tightly.
        """
        from repro.allocation import balance_report, solve_relaxed

        x0 = np.full(10, RHO * S / 10.0)
        result = replica_dynamics(
            x0, demand, utility, MU, S, RHO, t_end=50000.0
        )
        final = result.final_counts
        # The final state satisfies the Property-1 balance condition...
        report = balance_report(final, demand, utility, MU, S)
        assert report.is_balanced(rtol=5e-3)
        # ...and matches the relaxed optimum at its (slowly converging)
        # total mass.
        reference = solve_relaxed(
            demand, utility, MU, S, budget=float(final.sum())
        ).counts
        assert np.allclose(final, reference, rtol=5e-3, atol=1e-3)

    def test_total_mass_driven_to_capacity(self, demand):
        """Eq. (7) drives the total replica count to rho * |S|."""
        utility = PowerUtility(0.0)  # strong reaction at every state
        x0 = np.full(10, 1.0)  # under-filled cache
        result = replica_dynamics(
            x0, demand, utility, MU, S, RHO, t_end=30000.0
        )
        assert result.final_counts.sum() == pytest.approx(RHO * S, rel=1e-3)

    def test_psi_scale_changes_speed_not_equilibrium(self, demand):
        utility = ExponentialUtility(0.2)
        x0 = np.full(10, RHO * S / 10.0)
        slow = replica_dynamics(
            x0, demand, utility, MU, S, RHO, t_end=50000.0, psi_scale=0.5
        )
        fast = replica_dynamics(
            x0, demand, utility, MU, S, RHO, t_end=25000.0, psi_scale=1.0
        )
        assert np.allclose(slow.final_counts, fast.final_counts, rtol=1e-2)

    def test_equilibrium_is_fixed_point(self, demand):
        utility = StepUtility(5.0)
        equilibrium = dynamics_equilibrium(demand, utility, MU, S, RHO)
        result = replica_dynamics(
            equilibrium, demand, utility, MU, S, RHO, t_end=5000.0
        )
        assert np.allclose(result.final_counts, equilibrium, rtol=1e-4)


class TestValidation:
    def test_rejects_zero_initial(self, demand):
        with pytest.raises(ConfigurationError):
            replica_dynamics(
                np.zeros(10), demand, StepUtility(1.0), MU, S, RHO, 100.0
            )

    def test_rejects_wrong_shape(self, demand):
        with pytest.raises(ConfigurationError):
            replica_dynamics(
                np.ones(3), demand, StepUtility(1.0), MU, S, RHO, 100.0
            )

    def test_rejects_bad_horizon(self, demand):
        with pytest.raises(ConfigurationError):
            replica_dynamics(
                np.ones(10), demand, StepUtility(1.0), MU, S, RHO, 0.0
            )

    def test_trajectory_shape(self, demand):
        result = replica_dynamics(
            np.ones(10), demand, StepUtility(5.0), MU, S, RHO, 100.0, n_eval=30
        )
        assert result.trajectory.shape == (30, 10)
        assert len(result.times) == 30
