"""Unit tests for social-welfare computation (Eqs. 1-5, Lemma 1)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.allocation import (
    heterogeneous_welfare,
    homogeneous_welfare,
    homogeneous_welfare_discrete,
    item_gain_function,
)
from repro.demand import DemandModel, uniform_profile
from repro.errors import AllocationError, ConfigurationError
from repro.utility import ExponentialUtility, PowerUtility, StepUtility


@pytest.fixture
def demand():
    return DemandModel.pareto(4, omega=1.0, total_rate=1.0)


class TestHomogeneous:
    def test_step_closed_form(self, demand):
        """Eq. (3) with step utility: sum d_i (1 - exp(-mu tau x_i))."""
        utility = StepUtility(2.0)
        mu = 0.1
        counts = np.array([3, 2, 1, 0], dtype=float)
        expected = sum(
            d * (1 - math.exp(-mu * 2.0 * x))
            for d, x in zip(demand.rates, counts)
        )
        value = homogeneous_welfare(counts, demand, utility, mu, 10)
        assert value == pytest.approx(expected)

    def test_more_copies_never_hurt(self, demand):
        utility = ExponentialUtility(0.5)
        base = np.array([1, 1, 1, 1], dtype=float)
        more = np.array([2, 1, 1, 1], dtype=float)
        assert homogeneous_welfare(
            more, demand, utility, 0.1, 10
        ) >= homogeneous_welfare(base, demand, utility, 0.1, 10)

    def test_concavity_in_counts(self, demand):
        """Theorem 2: U is concave in the replica counts."""
        utility = StepUtility(5.0)
        x = np.array([2.0, 3.0, 1.0, 4.0])
        y = np.array([4.0, 1.0, 3.0, 2.0])
        mid = (x + y) / 2
        u_mid = homogeneous_welfare(mid, demand, utility, 0.1, 10)
        u_avg = 0.5 * (
            homogeneous_welfare(x, demand, utility, 0.1, 10)
            + homogeneous_welfare(y, demand, utility, 0.1, 10)
        )
        assert u_mid >= u_avg - 1e-12

    def test_pure_p2p_adds_immediate_gain(self, demand):
        utility = StepUtility(5.0)
        counts = np.array([2, 2, 2, 2], dtype=float)
        dedicated = homogeneous_welfare(counts, demand, utility, 0.1, 10)
        pure = homogeneous_welfare(
            counts, demand, utility, 0.1, 10, pure_p2p=True, n_clients=10
        )
        assert pure > dedicated  # own-cache hits gain h(0+) instantly

    def test_pure_p2p_requires_finite_h0(self, demand):
        with pytest.raises(ConfigurationError):
            homogeneous_welfare(
                np.ones(4),
                demand,
                PowerUtility(1.5),
                0.1,
                10,
                pure_p2p=True,
                n_clients=10,
            )

    def test_count_floor(self, demand):
        utility = PowerUtility(0.0)
        counts = np.array([2, 2, 2, 0], dtype=float)
        assert homogeneous_welfare(counts, demand, utility, 0.1, 10) == -math.inf
        floored = homogeneous_welfare(
            counts, demand, utility, 0.1, 10, count_floor=0.5
        )
        assert math.isfinite(floored)

    def test_shape_validation(self, demand):
        with pytest.raises(AllocationError):
            homogeneous_welfare(np.ones(3), demand, StepUtility(1.0), 0.1, 10)
        with pytest.raises(AllocationError):
            homogeneous_welfare(
                np.full(4, 11.0), demand, StepUtility(1.0), 0.1, 10
            )


class TestDiscrete:
    def test_converges_to_continuous(self, demand):
        utility = ExponentialUtility(0.3)
        counts = np.array([3, 2, 1, 1])
        mu = 0.1
        continuous = homogeneous_welfare(
            counts.astype(float), demand, utility, mu, 10
        )
        discrete = homogeneous_welfare_discrete(
            counts, demand, utility, mu, 10, delta=0.01
        )
        assert discrete == pytest.approx(continuous, rel=5e-3)

    def test_pure_p2p_discrete(self, demand):
        utility = StepUtility(5.0)
        counts = np.array([2, 2, 2, 2])
        dedicated = homogeneous_welfare_discrete(
            counts, demand, utility, 0.1, 10, delta=0.1
        )
        pure = homogeneous_welfare_discrete(
            counts,
            demand,
            utility,
            0.1,
            10,
            delta=0.1,
            pure_p2p=True,
            n_clients=10,
        )
        assert pure > dedicated

    def test_rejects_bad_slot_probability(self, demand):
        with pytest.raises(ConfigurationError):
            homogeneous_welfare_discrete(
                np.ones(4, dtype=int), demand, StepUtility(1.0), 2.0, 10, delta=1.0
            )


class TestHeterogeneous:
    def test_matches_homogeneous_on_uniform_matrix(self, demand):
        """Lemma 1 reduces to Eq. (3) when mu_{m,n} = mu."""
        utility = StepUtility(3.0)
        mu = 0.2
        n_servers, n_clients = 6, 5
        rates = np.full((n_servers, n_clients), mu)
        allocation = np.zeros((4, n_servers), dtype=np.int8)
        allocation[0, :3] = 1
        allocation[1, 3:5] = 1
        allocation[2, 5] = 1
        counts = allocation.sum(axis=1).astype(float)
        hom = homogeneous_welfare(counts, demand, utility, mu, n_servers)
        het = heterogeneous_welfare(allocation, demand, utility, rates)
        assert het == pytest.approx(hom)

    def test_own_copy_gains_h0(self, demand):
        utility = StepUtility(3.0)
        n = 4
        rates = np.full((n, n), 0.1)
        np.fill_diagonal(rates, 0.0)
        allocation = np.zeros((4, n), dtype=np.int8)
        allocation[0, 0] = 1
        without_mapping = heterogeneous_welfare(
            allocation, demand, utility, rates
        )
        with_mapping = heterogeneous_welfare(
            allocation,
            demand,
            utility,
            rates,
            server_of_client=np.arange(n),
        )
        assert with_mapping > without_mapping

    def test_profile_weighting(self, demand):
        utility = StepUtility(3.0)
        n_servers, n_clients = 3, 2
        rates = np.array([[0.5, 0.0], [0.5, 0.0], [0.5, 0.0]])
        allocation = np.zeros((4, n_servers), dtype=np.int8)
        allocation[0] = 1
        # All demand for item 0 arises at client 0 (well-connected).
        pi = uniform_profile(4, 2)
        pi[0] = [1.0, 0.0]
        concentrated = heterogeneous_welfare(
            allocation, demand, utility, rates, pi=pi
        )
        uniform = heterogeneous_welfare(allocation, demand, utility, rates)
        assert concentrated > uniform

    def test_rate_floor(self, demand):
        utility = PowerUtility(0.0)
        rates = np.zeros((2, 2))
        allocation = np.zeros((4, 2), dtype=np.int8)
        value = heterogeneous_welfare(
            allocation, demand, utility, rates, rate_floor=0.01
        )
        assert math.isfinite(value)

    def test_binary_validation(self, demand):
        rates = np.full((3, 3), 0.1)
        allocation = np.zeros((4, 3))
        allocation[0, 0] = 2
        with pytest.raises(AllocationError):
            heterogeneous_welfare(allocation, demand, StepUtility(1.0), rates)

    def test_infinite_h0_with_client_servers_rejected(self, demand):
        rates = np.full((4, 4), 0.1)
        np.fill_diagonal(rates, 0.0)
        allocation = np.zeros((4, 4), dtype=np.int8)
        with pytest.raises(ConfigurationError):
            heterogeneous_welfare(
                allocation,
                demand,
                PowerUtility(1.5),
                rates,
                server_of_client=np.arange(4),
            )


class TestItemGainFunction:
    def test_scalar_and_array(self):
        gain = item_gain_function(StepUtility(2.0), 0.1)
        scalar = gain(3.0)
        array = gain(np.array([3.0, 5.0]))
        assert isinstance(scalar, float)
        assert array.shape == (2,)
        assert array[0] == pytest.approx(scalar)

    def test_pure_requires_clients(self):
        with pytest.raises(ConfigurationError):
            item_gain_function(StepUtility(2.0), 0.1, pure_p2p=True)
