"""Tests for closed-form target allocations (UNI/SQRT/PROP/DOM, Figure 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocation import (
    dominant_counts,
    power_allocation_exponent,
    power_law_counts,
    proportional_counts,
    sqrt_counts,
    uniform_counts,
    weighted_counts,
)
from repro.demand import DemandModel
from repro.errors import AllocationError, ConfigurationError


@pytest.fixture
def demand():
    return DemandModel.pareto(10, omega=1.0, total_rate=2.0)


class TestExponent:
    def test_figure2_values(self):
        assert power_allocation_exponent(0.0) == pytest.approx(0.5)
        assert power_allocation_exponent(1.0) == pytest.approx(1.0)
        assert power_allocation_exponent(1.5) == pytest.approx(2.0)
        assert power_allocation_exponent(-2.0) == pytest.approx(0.25)

    def test_rejects_alpha_ge_2(self):
        with pytest.raises(ConfigurationError):
            power_allocation_exponent(2.0)


class TestWeightedCounts:
    def test_sums_to_budget(self, demand):
        counts = weighted_counts(demand.rates, 40.0, 10.0)
        assert counts.sum() == pytest.approx(40.0)

    def test_water_filling_caps(self):
        counts = weighted_counts(np.array([100.0, 1.0, 1.0]), 12.0, 5.0)
        assert counts[0] == pytest.approx(5.0)
        assert counts.sum() == pytest.approx(12.0)
        assert counts[1] == pytest.approx(3.5)

    def test_budget_exceeding_capacity_rejected(self):
        with pytest.raises(AllocationError):
            weighted_counts(np.ones(3), 100.0, 5.0)

    def test_zero_weights_absorb_leftovers(self):
        counts = weighted_counts(np.array([1.0, 0.0, 0.0]), 6.0, 4.0)
        assert counts[0] == pytest.approx(4.0)
        assert counts.sum() == pytest.approx(6.0)


class TestStandardAllocations:
    def test_uniform(self, demand):
        counts = uniform_counts(10, 50.0, 25.0)
        assert np.allclose(counts, 5.0)

    def test_proportional(self, demand):
        counts = proportional_counts(demand, 50.0, 50.0)
        assert counts[0] / counts[1] == pytest.approx(
            demand.rates[0] / demand.rates[1]
        )

    def test_sqrt(self, demand):
        counts = sqrt_counts(demand, 50.0, 50.0)
        assert counts[0] / counts[1] == pytest.approx(
            np.sqrt(demand.rates[0] / demand.rates[1])
        )

    def test_power_law_special_cases(self, demand):
        assert np.allclose(
            power_law_counts(demand, 0.0, 30.0, 50.0),
            sqrt_counts(demand, 30.0, 50.0),
        )
        assert np.allclose(
            power_law_counts(demand, 1.0, 30.0, 50.0),
            proportional_counts(demand, 30.0, 50.0),
        )

    def test_dominant(self, demand):
        counts = dominant_counts(demand, rho=3, n_servers=7)
        assert counts[:3].tolist() == [7.0, 7.0, 7.0]
        assert counts[3:].sum() == 0.0

    def test_dominant_validation(self, demand):
        with pytest.raises(AllocationError):
            dominant_counts(demand, rho=0, n_servers=5)
        with pytest.raises(AllocationError):
            dominant_counts(demand, rho=11, n_servers=5)

    def test_skew_ordering(self, demand):
        """UNI flattest, then SQRT, then PROP, then DOM (Section 4.2)."""
        budget, cap = 40.0, 20.0
        uni = uniform_counts(10, budget, cap)
        sqrt = sqrt_counts(demand, budget, cap)
        prop = proportional_counts(demand, budget, cap)
        assert uni.std() < sqrt.std() < prop.std()
