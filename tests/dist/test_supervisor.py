"""Supervision under a fake clock: reaping, quarantine, degradation."""

from __future__ import annotations

import pytest

from repro.dist import FakeClock, QueueWorker, Supervisor, WorkQueue
from repro.dist.executors import make_unit_records
from repro.errors import ConfigurationError, SimulationError

from .conftest import make_spec, make_units

TTL = 30.0
IDENTITY = {"base_seed": 7, "n_trials": 2}


def make_queue(tmp_path, protocols, *, clock, **kwargs):
    units = make_unit_records(make_units(protocols), list(protocols))
    kwargs.setdefault("ttl", TTL)
    return WorkQueue.create(
        tmp_path / "q", units, identity=dict(IDENTITY), clock=clock, **kwargs
    )


def failing_spawn(index):
    raise OSError("fork: resource temporarily unavailable")


def make_supervisor(queue, spec, *, clock, **kwargs):
    kwargs.setdefault("n_workers", 2)
    kwargs.setdefault("spawn", failing_spawn)
    return Supervisor(queue, spec=spec, clock=clock, **kwargs)


@pytest.fixture
def clock():
    return FakeClock(start=1000.0)


class TestReaping:
    def test_expired_lease_is_reaped_and_requeued(
        self, tmp_path, demand, config, protocols, clock
    ):
        queue = make_queue(tmp_path, protocols, clock=clock)
        spec = make_spec(demand, config, protocols)
        supervisor = make_supervisor(queue, spec, clock=clock)
        unit = queue.unit_ids[0]
        queue.leases.try_claim(unit, "ghost", 1)  # worker that got SIGKILLed

        assert supervisor.reap_expired() == []  # still live: nothing to do
        clock.advance(TTL + 1.0)
        assert supervisor.reap_expired() == [unit]

        assert queue.leases.read(unit) is None
        assert queue.requeues(unit) == 1
        kinds = [e["kind"] for e in queue.read_events()]
        assert kinds == ["unit_expire", "unit_requeue"]
        assert unit in queue.claimable_units()

    def test_reap_after_publish_does_not_requeue(
        self, tmp_path, demand, config, protocols, clock
    ):
        """A worker that died between publishing and releasing its lease."""
        queue = make_queue(tmp_path, protocols, clock=clock)
        spec = make_spec(demand, config, protocols)
        worker = QueueWorker(queue, spec, "w0", clock=clock)
        assert worker.run_one()
        unit = queue.unit_ids[0]
        queue.leases.try_claim(unit, "ghost", 2)  # crash re-ran a done unit
        clock.advance(TTL + 1.0)

        supervisor = make_supervisor(queue, spec, clock=clock)
        assert supervisor.reap_expired() == []  # reaped but NOT requeued
        assert queue.requeues(unit) == 0
        assert "unit_requeue" not in [
            e["kind"] for e in queue.read_events()
        ]


class TestQuarantine:
    def test_budget_exhausted_unit_is_parked(
        self, tmp_path, demand, config, protocols, clock
    ):
        queue = make_queue(tmp_path, protocols, clock=clock, max_claims=2)
        spec = make_spec(demand, config, protocols)
        supervisor = make_supervisor(queue, spec, clock=clock)
        unit = queue.unit_ids[0]
        queue.record_failure(unit, worker="w0", claim=1, error="poison A")
        queue.record_failure(unit, worker="w1", claim=2, error="poison B")

        assert supervisor.quarantine_exhausted() == [unit]
        info = queue.read_quarantine(unit)
        assert info["reason"] == "poison B"  # the freshest failure
        assert queue.is_done(unit)
        assert "unit_quarantine" in [e["kind"] for e in queue.read_events()]

    def test_within_budget_unit_is_left_alone(
        self, tmp_path, demand, config, protocols, clock
    ):
        queue = make_queue(tmp_path, protocols, clock=clock, max_claims=3)
        spec = make_spec(demand, config, protocols)
        supervisor = make_supervisor(queue, spec, clock=clock)
        queue.record_failure(
            queue.unit_ids[0], worker="w0", claim=1, error="flaky"
        )
        assert supervisor.quarantine_exhausted() == []

    def test_in_flight_final_claim_defers_quarantine(
        self, tmp_path, demand, config, protocols, clock
    ):
        queue = make_queue(tmp_path, protocols, clock=clock, max_claims=1)
        spec = make_spec(demand, config, protocols)
        supervisor = make_supervisor(queue, spec, clock=clock)
        unit = queue.unit_ids[0]
        queue.record_requeue(unit)  # budget spent ...
        queue.leases.try_claim(unit, "w1", 1)  # ... but a claim is live
        assert supervisor.quarantine_exhausted() == []
        clock.advance(TTL + 1.0)  # the claim died too
        assert supervisor.quarantine_exhausted() == [unit]


class TestDegradation:
    def test_spawn_failures_back_off_exponentially(
        self, tmp_path, demand, config, protocols, clock
    ):
        queue = make_queue(tmp_path, protocols, clock=clock)
        spec = make_spec(demand, config, protocols)
        supervisor = make_supervisor(
            queue, spec, clock=clock, spawn_backoff=0.25, spawn_max_backoff=1.0
        )
        supervisor._manage_workers()
        assert supervisor.spawn_failures == 1
        assert supervisor._next_spawn_at == clock.now() + 0.25
        clock.advance(0.3)
        supervisor._manage_workers()
        assert supervisor.spawn_failures == 2
        assert supervisor._next_spawn_at == clock.now() + 0.5
        clock.advance(10.0)
        supervisor._manage_workers()
        assert supervisor._next_spawn_at == clock.now() + 1.0  # capped

    def test_fully_degraded_supervisor_finishes_inline(
        self, tmp_path, demand, config, protocols, clock
    ):
        queue = make_queue(tmp_path, protocols, clock=clock)
        spec = make_spec(demand, config, protocols)
        supervisor = make_supervisor(queue, spec, clock=clock)
        supervisor.run()

        assert queue.complete()
        assert all(queue.has_result(unit) for unit in queue.unit_ids)
        assert supervisor.spawn_failures >= 1
        assert supervisor.inline_units == len(queue.unit_ids)
        workers = {
            queue.read_result(unit)["worker"] for unit in queue.unit_ids
        }
        assert workers == {"supervisor-inline"}

    def test_inline_execution_quarantines_poison_units(
        self, tmp_path, demand, config, protocols, clock
    ):
        def poison(tr, rq):
            raise RuntimeError("corrupted protocol input")

        protocols = dict(protocols, BAD=poison)
        queue = make_queue(tmp_path, protocols, clock=clock, max_claims=2)
        spec = make_spec(demand, config, protocols)
        supervisor = make_supervisor(queue, spec, clock=clock)
        supervisor.run()

        assert queue.complete()  # the poison unit never wedged the sweep
        bad = [u for u in queue.unit_ids if u.endswith("-p002")]
        good = [u for u in queue.unit_ids if not u.endswith("-p002")]
        assert all(queue.is_quarantined(unit) for unit in bad)
        assert all(queue.has_result(unit) for unit in good)
        for unit in bad:
            info = queue.read_quarantine(unit)
            assert "corrupted protocol input" in info["reason"]
            assert info["claims_used"] == 2


class TestRaisePolicy:
    def test_step_raises_on_recorded_failure(
        self, tmp_path, demand, config, protocols, clock
    ):
        queue = make_queue(tmp_path, protocols, clock=clock)
        spec = make_spec(demand, config, protocols, on_error="raise")
        supervisor = make_supervisor(
            queue, spec, clock=clock, on_error="raise"
        )
        queue.record_failure(
            queue.unit_ids[0], worker="w0", claim=1, error="boom"
        )
        with pytest.raises(SimulationError, match="boom"):
            supervisor.step()


def test_invalid_worker_count_rejected(
    tmp_path, demand, config, protocols, clock
):
    queue = make_queue(tmp_path, protocols, clock=clock)
    spec = make_spec(demand, config, protocols)
    with pytest.raises(ConfigurationError, match="n_workers"):
        Supervisor(queue, spec=spec, n_workers=0, clock=clock)
