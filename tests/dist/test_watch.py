"""Worker metrics frames and the read-side fleet dashboard."""

from __future__ import annotations

import io
import json
import os

from repro.dist import FakeClock, QueueWorker, WorkQueue
from repro.dist.executors import make_unit_records
from repro.dist.watch import (
    fleet_snapshot,
    read_worker_metrics,
    render_fleet,
    watch,
)
from repro.obs import events as ev

from .conftest import make_spec, make_units

IDENTITY = {"base_seed": 7, "n_trials": 2, "protocols": ["OPT", "UNI"]}


def make_queue(root, protocols, *, clock=None, **kwargs):
    units = make_unit_records(make_units(protocols), list(protocols))
    return WorkQueue.create(
        root, units, identity=dict(IDENTITY), clock=clock, **kwargs
    )


def write_frame(queue, worker, t, **counters):
    """A handmade worker metrics frame, as QueueWorker would publish."""
    path = os.path.join(queue.root, "metrics", f"{worker}.json")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    payload = {
        "worker": worker,
        "host": "testhost",
        "pid": 4242,
        "t": t,
        "units_done": counters.get("units_done", 0),
        "units_failed": counters.get("units_failed", 0),
        "claims": counters.get("claims", 0),
        "lease_renewals": counters.get("lease_renewals", 0),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


# ----------------------------------------------------------------------
# worker-side publication
# ----------------------------------------------------------------------
class TestWorkerMetricsPublication:
    def test_worker_publishes_frames_and_events(
        self, tmp_path, demand, config, protocols
    ):
        queue = make_queue(tmp_path / "q", protocols)
        spec = make_spec(demand, config, protocols)
        QueueWorker(queue, spec, "w0").run()
        frames = read_worker_metrics(queue.root)
        assert len(frames) == 1
        frame = frames[0]
        assert frame["worker"] == "w0"
        assert frame["pid"] == os.getpid()
        assert frame["units_done"] == 4
        assert frame["units_failed"] == 0
        assert frame["claims"] == 4
        snapshots = [
            event
            for event in queue.read_events()
            if event["kind"] == ev.METRICS_SNAPSHOT
        ]
        assert len(snapshots) == 4
        assert snapshots[-1]["units_done"] == 4
        assert snapshots[-1]["worker"] == "w0"

    def test_corrupt_frames_are_skipped(self, tmp_path, protocols):
        queue = make_queue(tmp_path / "q", protocols)
        write_frame(queue, "w0", 1.0)
        bad = os.path.join(queue.root, "metrics", "w1.json")
        with open(bad, "w", encoding="utf-8") as handle:
            handle.write("{torn")
        frames = read_worker_metrics(queue.root)
        assert [frame["worker"] for frame in frames] == ["w0"]

    def test_no_metrics_dir_is_empty(self, tmp_path, protocols):
        queue = make_queue(tmp_path / "q", protocols)
        assert read_worker_metrics(queue.root) == []


# ----------------------------------------------------------------------
# fleet snapshots (fake clock throughout: deterministic ages/windows)
# ----------------------------------------------------------------------
class TestFleetSnapshot:
    def test_counts_liveness_throughput_eta(self, tmp_path, protocols):
        clock = FakeClock(start=1000.0)
        queue = make_queue(tmp_path / "q", protocols, clock=clock, ttl=10.0)
        # Two publishes inside the window, attributed to w0.
        queue.log_event(ev.UNIT_PUBLISH, unit="t00000-p000", worker="w0")
        clock.advance(30.0)
        queue.log_event(ev.UNIT_PUBLISH, unit="t00000-p001", worker="w0")
        # w0 refreshed recently; w1 went quiet past the TTL.
        write_frame(queue, "w0", clock.now() - 1.0, units_done=2, claims=2)
        write_frame(queue, "w1", clock.now() - 50.0, units_done=0)
        snap = fleet_snapshot(queue, window_s=60.0)
        assert snap.n_units == 4
        assert snap.published == 0  # events logged, results not written
        assert snap.pending == 4
        assert snap.recent_publishes == 2
        assert snap.throughput_per_min == 2.0
        assert snap.eta_s == 4 * 60.0 / 2
        views = {view.worker: view for view in snap.workers}
        assert views["w0"].alive is True
        assert views["w1"].alive is False
        assert views["w0"].units_done == 2
        assert snap.attribution == {"w0": 2}

    def test_quiet_worker_with_live_lease_counts_alive(
        self, tmp_path, protocols
    ):
        clock = FakeClock(start=500.0)
        queue = make_queue(tmp_path / "q", protocols, clock=clock, ttl=10.0)
        queue.leases.try_claim("t00000-p000", "w9", 1)
        # Frame far older than the TTL, but the lease is being renewed.
        write_frame(queue, "w9", clock.now() - 100.0)
        snap = fleet_snapshot(queue)
        (view,) = snap.workers
        assert view.alive is True

    def test_eta_unknown_without_recent_publishes(self, tmp_path, protocols):
        clock = FakeClock(start=0.0)
        queue = make_queue(tmp_path / "q", protocols, clock=clock)
        snap = fleet_snapshot(queue, window_s=60.0)
        assert snap.eta_s is None
        assert snap.throughput_per_min == 0.0


class TestRender:
    def test_render_plain_text_frame(self, tmp_path, protocols):
        clock = FakeClock(start=100.0)
        queue = make_queue(tmp_path / "q", protocols, clock=clock, ttl=10.0)
        write_frame(queue, "w0", 99.5, units_done=1, claims=2)
        text = render_fleet(fleet_snapshot(queue))
        assert "4 total | 0 published | 0 quarantined | 4 pending" in text
        assert "w0" in text and "alive" in text
        assert "done=1" in text and "claims=2" in text
        # Plain text only: no ANSI escapes, no cursor control.
        assert "\x1b" not in text


class TestWatchLoop:
    def test_once_renders_one_frame_and_logs_refresh(
        self, tmp_path, protocols
    ):
        clock = FakeClock(start=0.0)
        queue = make_queue(tmp_path / "q", protocols, clock=clock)
        out = io.StringIO()
        frames = watch(queue, once=True, stream=out, watcher="watch-test")
        assert frames == 1
        assert "queue " in out.getvalue()
        refreshes = [
            event
            for event in queue.read_events()
            if event["kind"] == ev.WATCH_REFRESH
        ]
        assert len(refreshes) == 1
        assert refreshes[0]["watcher"] == "watch-test"
        assert refreshes[0]["pending"] == 4

    def test_loop_stops_at_max_frames_on_fake_clock(
        self, tmp_path, protocols
    ):
        clock = FakeClock(start=0.0)
        queue = make_queue(tmp_path / "q", protocols, clock=clock)
        out = io.StringIO()
        frames = watch(
            queue, interval=5.0, max_frames=3, stream=out, watcher="w"
        )
        assert frames == 3
        assert clock.sleeps == [5.0, 5.0]

    def test_loop_exits_when_queue_completes(
        self, tmp_path, demand, config, protocols
    ):
        clock = FakeClock(start=0.0)
        queue = make_queue(tmp_path / "q", protocols, clock=clock)
        spec = make_spec(demand, config, protocols)
        QueueWorker(queue, spec, "w0").run()
        out = io.StringIO()
        frames = watch(queue, stream=out, max_frames=10, watcher="w")
        assert frames == 1  # first frame already sees completion
        assert "complete" in out.getvalue()
