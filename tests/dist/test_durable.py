"""Crash-durable file primitives: atomicity, budgets, append semantics."""

from __future__ import annotations

import json
import os

import pytest

from repro.durable import (
    MAX_ERROR_BYTES,
    append_line,
    atomic_write_json,
    atomic_write_text,
    fsync_directory,
    truncate_error_text,
)


class TestAtomicWrites:
    def test_text_roundtrip(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "hello")
        assert path.read_text() == "hello"

    def test_replaces_existing_content(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "out.json"
        payload = {"a": 1, "b": [1.5, None, "x"]}
        atomic_write_json(path, payload)
        assert json.loads(path.read_text()) == payload

    def test_no_temp_file_left_behind(self, tmp_path):
        atomic_write_text(tmp_path / "out.txt", "data")
        atomic_write_json(tmp_path / "out.json", {"k": "v"}, fsync=False)
        names = sorted(os.listdir(tmp_path))
        assert names == ["out.json", "out.txt"]

    def test_write_failure_cleans_up_and_raises(self, tmp_path):
        missing_dir = tmp_path / "nope" / "out.txt"
        with pytest.raises(OSError):
            atomic_write_text(missing_dir, "data")
        assert not (tmp_path / "nope").exists()

    def test_fsync_directory_tolerates_missing_path(self, tmp_path):
        fsync_directory(tmp_path / "does-not-exist")  # must not raise


class TestTruncateErrorText:
    def test_within_budget_passes_through(self):
        assert truncate_error_text("short error") == "short error"

    def test_over_budget_is_bounded_with_marker(self):
        huge = "x" * (MAX_ERROR_BYTES * 10)
        bounded = truncate_error_text(huge)
        assert len(bounded.encode("utf-8")) <= MAX_ERROR_BYTES
        assert "truncated" in bounded
        assert bounded.startswith("x")

    def test_multibyte_text_never_splits_a_codepoint(self):
        huge = "é" * MAX_ERROR_BYTES  # 2 UTF-8 bytes each
        bounded = truncate_error_text(huge)
        assert len(bounded.encode("utf-8")) <= MAX_ERROR_BYTES
        bounded.encode("utf-8").decode("utf-8")  # round-trips cleanly

    def test_custom_budget(self):
        bounded = truncate_error_text("y" * 500, budget=128)
        assert len(bounded.encode("utf-8")) <= 128
        assert "truncated" in bounded


class TestAppendLine:
    def test_appends_newline_terminated_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append_line(path, "one")
        append_line(path, "two\n")  # trailing newline not doubled
        assert path.read_text() == "one\ntwo\n"

    def test_creates_missing_file(self, tmp_path):
        path = tmp_path / "fresh.jsonl"
        append_line(path, "first", fsync=True)
        assert path.read_text() == "first\n"
