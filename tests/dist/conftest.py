"""Shared tiny-sweep fixtures for the distributed-backend tests."""

from __future__ import annotations

import pytest

from repro.contacts import homogeneous_poisson_trace
from repro.demand import DemandModel
from repro.dist import SweepSpec
from repro.protocols import prop_protocol, uni_protocol
from repro.sim import SimulationConfig
from repro.utility import StepUtility

N, I, RHO = 6, 4, 2
DURATION = 80.0


def trace_factory(seed):
    return homogeneous_poisson_trace(N, 0.1, DURATION, seed=seed)


@pytest.fixture
def demand():
    return DemandModel.pareto(I, omega=1.0, total_rate=2.0)


@pytest.fixture
def config():
    return SimulationConfig(n_items=I, rho=RHO, utility=StepUtility(5.0))


@pytest.fixture
def protocols(demand):
    return {
        "OPT": lambda tr, rq: prop_protocol(demand, tr.n_nodes, RHO),
        "UNI": lambda tr, rq: uni_protocol(demand, tr.n_nodes, RHO),
    }


def make_spec(demand, config, protocols, **overrides) -> SweepSpec:
    """A minimal but fully real execution recipe for direct dist tests."""
    fields = dict(
        trace_factory=trace_factory,
        demand=demand,
        config=config,
        protocols=protocols,
        n_clients=None,
        faults=None,
        on_error="skip",
        attempts_per_run=1,
        retry_backoff=0.0,
        max_backoff=0.0,
        profile_dir=None,
        cache=None,
        base_seed=7,
        n_trials=2,
    )
    fields.update(overrides)
    return SweepSpec(**fields)


def make_units(protocols, n_trials=2):
    """Handmade (trial, protocol, seeds...) units with a fixed seed walk."""
    return [
        (trial, name, 100 + trial, 200 + trial, 300 + trial)
        for trial in range(n_trials)
        for name in protocols
    ]
