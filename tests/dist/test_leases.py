"""Lease protocol under a fake clock: claims, renewal, expiry, reaping."""

from __future__ import annotations

import dataclasses

import pytest

from repro.dist import FakeClock, LeaseManager

TTL = 30.0


@pytest.fixture
def clock():
    return FakeClock(start=1000.0)


@pytest.fixture
def manager(tmp_path, clock):
    return LeaseManager(tmp_path / "leases", ttl=TTL, clock=clock)


class TestClaims:
    def test_claim_records_holder_and_deadline(self, manager, clock):
        lease = manager.try_claim("u1", "w0", 1)
        assert lease is not None
        assert lease.worker == "w0"
        assert lease.claim == 1
        assert lease.acquired_at == clock.now()
        assert lease.deadline == clock.now() + TTL

    def test_second_claim_loses(self, manager):
        assert manager.try_claim("u1", "w0", 1) is not None
        assert manager.try_claim("u1", "w1", 1) is None

    def test_claims_on_distinct_units_coexist(self, manager):
        assert manager.try_claim("u1", "w0", 1) is not None
        assert manager.try_claim("u2", "w1", 1) is not None
        assert {lease.unit for lease in manager.active()} == {"u1", "u2"}

    def test_no_staging_litter_after_claims(self, manager, tmp_path):
        manager.try_claim("u1", "w0", 1)
        manager.try_claim("u1", "w1", 1)  # lost race
        names = sorted(p.name for p in (tmp_path / "leases").iterdir())
        assert names == ["u1.json"]

    def test_invalid_ttl_rejected(self, tmp_path, clock):
        with pytest.raises(ValueError, match="ttl"):
            LeaseManager(tmp_path / "x", ttl=0.0, clock=clock)


class TestRenewalAndExpiry:
    def test_fresh_lease_is_live(self, manager, clock):
        lease = manager.try_claim("u1", "w0", 1)
        clock.advance(TTL - 0.5)
        assert not manager.is_stale(lease)

    def test_lease_expires_after_ttl(self, manager, clock):
        lease = manager.try_claim("u1", "w0", 1)
        clock.advance(TTL + 0.5)
        assert manager.is_stale(lease)

    def test_renewal_extends_the_deadline(self, manager, clock):
        lease = manager.try_claim("u1", "w0", 1)
        clock.advance(TTL - 1.0)
        renewed = manager.renew(lease)
        assert renewed is not None
        assert renewed.deadline == clock.now() + TTL
        clock.advance(TTL - 1.0)  # past the original deadline
        assert not manager.is_stale(manager.read("u1"))

    def test_renewal_after_reap_returns_none(self, manager, clock):
        lease = manager.try_claim("u1", "w0", 1)
        clock.advance(TTL + 1.0)
        assert [r.unit for r in manager.reap_stale()] == ["u1"]
        assert manager.renew(lease) is None

    def test_renewal_after_takeover_returns_none(self, manager, clock):
        lease = manager.try_claim("u1", "w0", 1)
        clock.advance(TTL + 1.0)
        manager.reap_stale()
        assert manager.try_claim("u1", "w1", 2) is not None
        assert manager.renew(lease) is None  # w0 must not steal back


class TestReaping:
    def test_reap_stale_only_removes_expired(self, manager, clock):
        manager.try_claim("old", "w0", 1)
        clock.advance(TTL + 1.0)
        fresh = manager.try_claim("fresh", "w1", 1)
        reaped = manager.reap_stale()
        assert [lease.unit for lease in reaped] == ["old"]
        assert manager.read("old") is None
        assert manager.read("fresh") == fresh

    def test_corrupt_lease_reads_as_stale_sentinel(self, manager, tmp_path):
        (tmp_path / "leases" / "u1.json").write_text("{torn")
        lease = manager.read("u1")
        assert lease.worker == "<corrupt>"
        assert manager.is_stale(lease)
        assert [r.unit for r in manager.reap_stale()] == ["u1"]
        assert manager.read("u1") is None


class TestRelease:
    def test_release_if_held_by_holder(self, manager):
        lease = manager.try_claim("u1", "w0", 1)
        assert manager.release_if_held(lease) is True
        assert manager.read("u1") is None

    def test_release_if_held_spares_new_holder(self, manager, clock):
        lease = manager.try_claim("u1", "w0", 1)
        clock.advance(TTL + 1.0)
        manager.reap_stale()
        takeover = manager.try_claim("u1", "w1", 2)
        assert manager.release_if_held(lease) is False
        assert manager.read("u1") == takeover

    def test_release_of_absent_lease_is_noop(self, manager):
        lease = manager.try_claim("u1", "w0", 1)
        manager.release(lease)
        manager.release(lease)  # idempotent
        assert manager.release_if_held(lease) is False


def test_lease_roundtrips_through_dict(manager):
    lease = manager.try_claim("u1", "w0", 3)
    clone = type(lease).from_dict(lease.to_dict())
    assert dataclasses.asdict(clone) == dataclasses.asdict(lease)
