"""The executor seam: resolution rules, identity, unit mapping."""

from __future__ import annotations

import pytest

from repro.dist import (
    ProcessPoolExecutor,
    SerialExecutor,
    WorkQueueExecutor,
    resolve_executor,
)
from repro.dist.executors import ENV_VAR, make_unit_records
from repro.errors import ConfigurationError

from .conftest import make_spec, make_units


class TestResolveExecutor:
    def test_none_defers_to_historical_behavior(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_executor(None) is None

    def test_env_var_selects_a_backend(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "serial")
        assert isinstance(resolve_executor(None), SerialExecutor)

    def test_names_resolve_case_insensitively(self):
        assert isinstance(resolve_executor("Serial"), SerialExecutor)
        pool = resolve_executor("process", n_workers=3)
        assert isinstance(pool, ProcessPoolExecutor)
        assert pool.n_workers == 3
        queue = resolve_executor("workqueue", n_workers=4)
        assert isinstance(queue, WorkQueueExecutor)
        assert queue.n_workers == 4

    def test_instances_pass_through(self):
        executor = SerialExecutor()
        assert resolve_executor(executor) is executor

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown executor"):
            resolve_executor("threads")

    def test_non_string_setting_rejected(self):
        with pytest.raises(ConfigurationError, match="executor"):
            resolve_executor(42)  # type: ignore[arg-type]


class TestConstruction:
    def test_pool_rejects_invalid_worker_count(self):
        with pytest.raises(ConfigurationError, match="n_workers"):
            ProcessPoolExecutor(0)

    def test_workqueue_rejects_invalid_worker_count(self):
        with pytest.raises(ConfigurationError, match="n_workers"):
            WorkQueueExecutor(n_workers=0)


class TestSweepSpec:
    def test_identity_is_the_sweeps_fingerprint(self, demand, config, protocols):
        spec = make_spec(demand, config, protocols)
        identity = spec.identity()
        assert identity["base_seed"] == 7
        assert identity["n_trials"] == 2
        assert identity["protocols"] == ["OPT", "UNI"]
        assert identity["config_fingerprint"] == config.fingerprint()

    def test_identity_ignores_execution_policy(self, demand, config, protocols):
        a = make_spec(demand, config, protocols, on_error="skip")
        b = make_spec(demand, config, protocols, on_error="raise")
        assert a.identity() == b.identity()


def test_make_unit_records_maps_trial_major(protocols):
    records = make_unit_records(make_units(protocols), list(protocols))
    assert [r.unit for r in records] == [
        "t00000-p000", "t00000-p001", "t00001-p000", "t00001-p001",
    ]
    assert [r.protocol for r in records] == ["OPT", "UNI", "OPT", "UNI"]
    assert records[2].seeds == (101, 201, 301)
