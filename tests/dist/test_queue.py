"""Work-queue state machine: identity, claims budget, durable results."""

from __future__ import annotations

import json

import pytest

from repro.dist import FakeClock, QueueWorker, WorkQueue
from repro.dist.executors import make_unit_records
from repro.errors import ConfigurationError

from .conftest import make_spec, make_units

IDENTITY = {"base_seed": 7, "n_trials": 2, "protocols": ["OPT", "UNI"]}


def make_queue(root, protocols, *, clock=None, **kwargs):
    units = make_unit_records(make_units(protocols), list(protocols))
    return WorkQueue.create(
        root, units, identity=dict(IDENTITY), clock=clock, **kwargs
    )


class TestCreateAndAttach:
    def test_create_lays_out_units(self, tmp_path, protocols):
        queue = make_queue(tmp_path / "q", protocols)
        assert queue.unit_ids == [
            "t00000-p000", "t00000-p001", "t00001-p000", "t00001-p001",
        ]
        record = queue.read_unit("t00001-p001")
        assert (record.trial, record.protocol) == (1, "UNI")
        assert record.seeds == (101, 201, 301)

    def test_attach_to_matching_queue_preserves_results(
        self, tmp_path, protocols
    ):
        first = make_queue(tmp_path / "q", protocols)
        again = make_queue(tmp_path / "q", protocols)
        assert again.unit_ids == first.unit_ids

    def test_attach_to_mismatched_identity_refuses(self, tmp_path, protocols):
        make_queue(tmp_path / "q", protocols)
        units = make_unit_records(make_units(protocols), list(protocols))
        with pytest.raises(ConfigurationError, match="different sweep"):
            WorkQueue.create(
                tmp_path / "q", units, identity={**IDENTITY, "base_seed": 8}
            )

    def test_open_of_non_queue_directory_refuses(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not a sweep queue"):
            WorkQueue.open(tmp_path)

    def test_invalid_max_claims_rejected(self, tmp_path, protocols):
        with pytest.raises(ConfigurationError, match="max_claims"):
            make_queue(tmp_path / "q", protocols, max_claims=0)


class TestClaimsBudget:
    def test_budget_sums_requeues_and_failures(self, tmp_path, protocols):
        queue = make_queue(tmp_path / "q", protocols)
        unit = queue.unit_ids[0]
        assert queue.claims_used(unit) == 0
        queue.record_requeue(unit)
        queue.record_failure(unit, worker="w0", claim=2, error="boom")
        assert queue.requeues(unit) == 1
        assert queue.failure_count(unit) == 1
        assert queue.claims_used(unit) == 2

    def test_budget_exhausted_unit_not_claimable(self, tmp_path, protocols):
        queue = make_queue(tmp_path / "q", protocols, max_claims=2)
        unit = queue.unit_ids[0]
        queue.record_failure(unit, worker="w0", claim=1, error="a")
        queue.record_failure(unit, worker="w0", claim=2, error="b")
        assert unit not in queue.claimable_units()

    def test_live_lease_excludes_unit(self, tmp_path, protocols):
        clock = FakeClock()
        queue = make_queue(tmp_path / "q", protocols, clock=clock, ttl=30.0)
        unit = queue.unit_ids[0]
        queue.leases.try_claim(unit, "w0", 1)
        assert unit not in queue.claimable_units()
        clock.advance(31.0)  # stale lease no longer blocks claiming
        assert unit in queue.claimable_units()

    def test_claimable_rotates_by_offset(self, tmp_path, protocols):
        queue = make_queue(tmp_path / "q", protocols)
        assert queue.claimable_units(0)[0] == queue.unit_ids[0]
        assert queue.claimable_units(2)[0] == queue.unit_ids[2]
        assert set(queue.claimable_units(2)) == set(queue.unit_ids)


class TestResults:
    def test_publish_roundtrip_via_worker(
        self, tmp_path, demand, config, protocols
    ):
        queue = make_queue(tmp_path / "q", protocols)
        spec = make_spec(demand, config, protocols)
        worker = QueueWorker(queue, spec, "w0")
        assert worker.run_one() is True
        unit = queue.unit_ids[0]
        payload = queue.read_result(unit)
        assert payload is not None
        assert payload["worker"] == "w0"
        assert payload["claim"] == 1
        assert payload["result"]["total_gain"] >= 0.0
        assert queue.is_done(unit)
        assert queue.leases.read(unit) is None  # released after publish

    def test_corrupt_result_is_discarded(self, tmp_path, protocols):
        queue = make_queue(tmp_path / "q", protocols)
        unit = queue.unit_ids[0]
        path = tmp_path / "q" / "results" / f"{unit}.json"
        path.write_text("{torn")
        assert queue.read_result(unit) is None
        assert not path.exists()
        assert not queue.is_done(unit)

    def test_wrong_format_result_is_discarded(self, tmp_path, protocols):
        queue = make_queue(tmp_path / "q", protocols)
        unit = queue.unit_ids[0]
        path = tmp_path / "q" / "results" / f"{unit}.json"
        path.write_text(json.dumps({"format": "other", "result": {}}))
        assert queue.read_result(unit) is None


class TestQuarantine:
    def test_quarantine_completes_a_unit(self, tmp_path, protocols):
        queue = make_queue(tmp_path / "q", protocols)
        unit = queue.unit_ids[0]
        queue.record_failure(unit, worker="w0", claim=1, error="poison")
        queue.quarantine(unit, "poison")
        info = queue.read_quarantine(unit)
        assert info["reason"] == "poison"
        assert info["claims_used"] == 1
        assert info["failures"][0]["error"] == "poison"
        assert queue.is_done(unit)
        assert unit not in queue.claimable_units()

    def test_complete_requires_every_unit_done(self, tmp_path, protocols):
        queue = make_queue(tmp_path / "q", protocols)
        assert not queue.complete()
        for unit in queue.unit_ids:
            queue.quarantine(unit, "parked")
        assert queue.complete()


class TestEvents:
    def test_log_event_validates_and_appends(self, tmp_path, protocols):
        queue = make_queue(tmp_path / "q", protocols)
        queue.log_event("unit_claim", unit="u", worker="w0", claim=1)
        queue.log_event("unit_publish", unit="u", worker="w0")
        events = queue.read_events()
        assert [e["kind"] for e in events] == ["unit_claim", "unit_publish"]
        assert [e["seq"] for e in events] == [0, 1]

    def test_invalid_event_kind_rejected(self, tmp_path, protocols):
        queue = make_queue(tmp_path / "q", protocols)
        with pytest.raises(ValueError, match="kind"):
            queue.log_event("not_a_kind", unit="u")

    def test_torn_final_line_tolerated(self, tmp_path, protocols):
        queue = make_queue(tmp_path / "q", protocols)
        queue.log_event("unit_publish", unit="u", worker="w0")
        with open(tmp_path / "q" / "events.jsonl", "a") as handle:
            handle.write('{"kind": "unit_cl')  # SIGKILL mid-append
        assert [e["kind"] for e in queue.read_events()] == ["unit_publish"]

    def test_status_counts(self, tmp_path, protocols):
        queue = make_queue(tmp_path / "q", protocols)
        queue.quarantine(queue.unit_ids[0], "parked")
        status = queue.status()
        assert status["n_units"] == 4
        assert status["quarantined"] == 1
        assert status["pending"] == 3
        assert status["live_leases"] == []
