"""The workqueue backend end to end: bit-identity, crashes, resume.

The chaos test here is the backbone of the fault-tolerance story: a
worker is SIGKILLed mid-sweep and the sweep must still finish with
statistics bit-identical to serial execution, with the crash visible in
the lifecycle event log (``unit_expire`` / ``unit_requeue``).
"""

from __future__ import annotations

import multiprocessing
import os
import signal

import numpy as np
import pytest

from repro.contacts import homogeneous_poisson_trace
from repro.experiments import run_comparison
from repro.dist import WorkQueueExecutor
from repro.protocols import uni_protocol

from .conftest import DURATION, N, RHO, trace_factory

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the workqueue backend's in-process spawner needs fork",
)


def sweep(demand, config, protocols, **kwargs):
    kwargs.setdefault("n_trials", 2)
    kwargs.setdefault("base_seed", 11)
    return run_comparison(
        trace_factory=trace_factory,
        demand=demand,
        config=config,
        protocols=protocols,
        run_cache=False,
        **kwargs,
    )


def assert_identical(a, b):
    assert set(a.stats) == set(b.stats)
    for name in a.stats:
        assert np.array_equal(
            a.stats[name].gain_rates, b.stats[name].gain_rates
        ), name
        for x, y in zip(a.stats[name].results, b.stats[name].results):
            assert x.total_gain == y.total_gain
            assert x.n_fulfilled == y.n_fulfilled
            assert np.array_equal(x.final_counts, y.final_counts)


class TestBitIdentity:
    def test_workqueue_matches_serial(self, demand, config, protocols):
        serial = sweep(demand, config, protocols, executor="serial")
        queued = sweep(
            demand, config, protocols, executor="workqueue", n_workers=2
        )
        assert_identical(serial, queued)

    def test_manifest_attributes_every_unit(self, demand, config, protocols):
        result = sweep(
            demand, config, protocols, executor="workqueue", n_workers=2
        )
        dist = result.manifest["dist"]
        assert dist["backend"] == "workqueue"
        assert len(dist["units"]) == 2 * len(protocols)
        for info in dist["units"].values():
            assert info["status"] == "published"
            assert info["worker"]
            assert info["claim"] >= 1
        assert dist["events"]["unit_publish"] == len(dist["units"])
        workers = {r.worker for r in result.telemetry}
        assert workers <= {"w0", "w1", "supervisor-inline"}
        assert workers  # attribution flows into telemetry too


class TestChaos:
    def test_sigkilled_worker_is_absorbed(
        self, tmp_path, demand, config, protocols
    ):
        """SIGKILL a live worker mid-sweep; completion stays bit-identical."""
        marker = str(tmp_path / "killed-once")
        parent = os.getpid()

        def assassin_uni(tr, rq):
            if os.getpid() != parent:
                try:  # exactly one worker process dies, mid-claim
                    fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                except FileExistsError:
                    pass
                else:
                    os.close(fd)
                    os.kill(os.getpid(), signal.SIGKILL)
            return uni_protocol(demand, tr.n_nodes, RHO)

        serial = sweep(demand, config, protocols, executor="serial")
        chaos_protocols = dict(protocols, UNI=assassin_uni)
        result = sweep(
            demand,
            config,
            chaos_protocols,
            executor=WorkQueueExecutor(n_workers=2, ttl=2.0),
        )

        assert os.path.exists(marker)  # a worker really was killed
        assert not result.failures
        assert_identical(serial, result)
        dist = result.manifest["dist"]
        assert dist["events"].get("unit_expire", 0) >= 1
        assert dist["events"].get("unit_requeue", 0) >= 1
        assert all(
            info["status"] == "published" for info in dist["units"].values()
        )
        recovered = [
            info
            for info in dist["units"].values()
            if info["requeues"] >= 1
        ]
        assert recovered  # the killed unit is visibly re-claimed
        assert all(info["claim"] >= 2 for info in recovered)


class TestResume:
    def test_lost_result_is_reexecuted_on_attach(
        self, tmp_path, demand, config, protocols
    ):
        root = tmp_path / "queue"
        first = sweep(
            demand,
            config,
            protocols,
            executor=WorkQueueExecutor(str(root), n_workers=1, ttl=5.0),
        )
        results_dir = root / "results"
        victim = sorted(results_dir.iterdir())[0]
        victim.unlink()

        resumed = sweep(
            demand,
            config,
            protocols,
            executor=WorkQueueExecutor(str(root), n_workers=1, ttl=5.0),
        )
        assert_identical(first, resumed)
        # Exactly one extra publish: only the lost unit was re-executed.
        from repro.dist import WorkQueue

        events = WorkQueue.open(str(root)).read_events()
        publishes = [e for e in events if e["kind"] == "unit_publish"]
        assert len(publishes) == 2 * len(protocols) + 1
