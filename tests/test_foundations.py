"""Tests for the foundation modules: errors, types, reporting helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    AllocationError,
    ConfigurationError,
    ReproError,
    SimulationError,
    TraceFormatError,
    UtilityDomainError,
)
from repro.experiments.reporting import format_value
from repro.types import as_rng


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_type",
        [
            ConfigurationError,
            TraceFormatError,
            AllocationError,
            UtilityDomainError,
            SimulationError,
        ],
    )
    def test_all_derive_from_base(self, error_type):
        assert issubclass(error_type, ReproError)

    def test_value_errors_catchable_as_valueerror(self):
        """Validation errors double as ValueError for ergonomic catching."""
        for error_type in (
            ConfigurationError,
            TraceFormatError,
            AllocationError,
            UtilityDomainError,
        ):
            assert issubclass(error_type, ValueError)

    def test_simulation_error_is_runtime(self):
        assert issubclass(SimulationError, RuntimeError)

    def test_library_raises_its_own_types(self):
        from repro import DemandModel

        with pytest.raises(ReproError):
            DemandModel.pareto(0)


class TestAsRng:
    def test_from_int(self):
        rng = as_rng(42)
        assert isinstance(rng, np.random.Generator)

    def test_from_none(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(1)
        assert as_rng(rng) is rng

    def test_same_seed_same_stream(self):
        assert as_rng(7).random() == as_rng(7).random()


class TestFormatValue:
    def test_nan_and_inf(self):
        assert format_value(float("nan")) == "nan"
        assert format_value(float("inf")) == "inf"
        assert format_value(float("-inf")) == "-inf"

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_regular(self):
        assert format_value(3.14159, precision=3) == "3.14"

    def test_large_and_tiny(self):
        assert "e" in format_value(1.23e12) or "E" in format_value(1.23e12)
        assert format_value(1.2e-9) != "0"


class TestPackageSurface:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_main_module_importable(self):
        import repro.__main__  # noqa: F401
