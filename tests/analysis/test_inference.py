"""Effect inference and witness traces over the ``fixpkg`` fixture."""

from pathlib import Path

import pytest

from repro.analysis.callgraph import build_call_graph
from repro.analysis.effects import DYNAMIC, UNSEEDED_RNG, WALL_CLOCK
from repro.analysis.inference import infer_effects, witness_trace
from repro.analysis.program import Program

FIXPKG = Path(__file__).parent / "fixtures" / "fixpkg"


@pytest.fixture(scope="module")
def analyzed():
    graph = build_call_graph(Program.load(FIXPKG))
    return graph, infer_effects(graph)


def effects_of(analyzed, qname):
    _, summaries = analyzed
    return summaries[qname].effects


def test_leaf_effect(analyzed):
    assert effects_of(analyzed, "fixpkg.core:read_clock") == {WALL_CLOCK}


def test_effect_propagates_through_call(analyzed):
    assert effects_of(analyzed, "fixpkg.core:tick") == {WALL_CLOCK}


def test_cycle_reaches_fixed_point_as_pure(analyzed):
    # ping/pong only call each other; the fixed point must terminate
    # with both pure rather than looping or leaking DYNAMIC.
    assert effects_of(analyzed, "fixpkg.core:ping") == frozenset()
    assert effects_of(analyzed, "fixpkg.core:pong") == frozenset()


def test_cha_dispatch_taints_caller(analyzed):
    assert UNSEEDED_RNG in effects_of(analyzed, "fixpkg.shapes:Base.run")
    assert UNSEEDED_RNG in effects_of(analyzed, "fixpkg.shapes:drive")


def test_partial_propagates_effect(analyzed):
    assert effects_of(analyzed, "fixpkg.partials:use_partial") == {
        WALL_CLOCK
    }


def test_dynamic_call_is_top(analyzed):
    assert DYNAMIC in effects_of(analyzed, "fixpkg.dyn:invoke")


def test_declared_effects_override_inference(analyzed):
    # trusted_now calls time.time() but declares purity.
    assert effects_of(analyzed, "fixpkg.declared:trusted_now") == frozenset()


def test_witness_trace_follows_dispatch_chain(analyzed):
    graph, summaries = analyzed
    trace = witness_trace(
        graph, summaries, "fixpkg.shapes:drive", UNSEEDED_RNG
    )
    symbols = [step.symbol for step in trace]
    assert symbols[0] == "fixpkg.shapes.drive"
    assert "fixpkg.shapes.Base.run" in symbols
    assert "fixpkg.shapes.Sub.hook" in symbols
    assert len(trace) >= 3


def test_witness_trace_crosses_module_boundary(analyzed):
    graph, summaries = analyzed
    trace = witness_trace(
        graph, summaries, "fixpkg.partials:use_partial", WALL_CLOCK
    )
    files = {Path(step.path).name for step in trace}
    assert {"partials.py", "core.py"} <= files
