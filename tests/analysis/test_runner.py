"""Report rendering, the baseline ratchet, and CLI exit codes."""

import argparse
import json
from pathlib import Path

import pytest

from repro.analysis.baseline import (
    load_baseline,
    split_by_baseline,
    update_baseline,
)
from repro.analysis.cli import add_analyze_arguments, cmd_analyze
from repro.analysis.findings import AnalysisFinding, PathStep
from repro.analysis.runner import CHECKS, run_analysis
from repro.errors import ConfigurationError

FIXPKG = Path(__file__).parent / "fixtures" / "fixpkg"


def make_finding(message, path="pkg/mod.py", code="RPA001"):
    return AnalysisFinding(
        path=path,
        line=3,
        col=0,
        code=code,
        message=message,
        hint="",
        trace=(
            PathStep(path=path, line=3, symbol="pkg.mod.f", note="calls g"),
            PathStep(path=path, line=9, symbol="pkg.mod.g", note="leaf"),
        ),
    )


# ----------------------------------------------------------------------
# baseline ratchet
# ----------------------------------------------------------------------
def test_first_adoption_writes_current_findings(tmp_path):
    path = tmp_path / "baseline.json"
    finding = make_finding("clock reaches surface f")
    kept = update_baseline(path, [finding])
    assert kept == {finding.fingerprint()}
    assert load_baseline(path) == kept


def test_baseline_only_shrinks(tmp_path):
    path = tmp_path / "baseline.json"
    old = make_finding("old finding, since fixed")
    still = make_finding("still present")
    update_baseline(path, [old, still])
    # Next run: `old` fixed, a brand-new finding appeared.  The ratchet
    # drops the fixed entry and refuses to admit the new one.
    new = make_finding("new finding, must fail CI")
    kept = update_baseline(path, [still, new])
    assert kept == {still.fingerprint()}


def test_split_by_baseline_partitions(tmp_path):
    known = make_finding("known")
    fresh = make_finding("fresh")
    new, baselined = split_by_baseline(
        [known, fresh], frozenset({known.fingerprint()})
    )
    assert new == [fresh]
    assert baselined == [known]


def test_fingerprint_is_line_free():
    a = make_finding("same message")
    b = AnalysisFinding(
        path=a.path, line=99, col=7, code=a.code, message=a.message
    )
    assert a.fingerprint() == b.fingerprint()


def test_malformed_baseline_raises(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"fingerprints": "oops"}))
    with pytest.raises(ConfigurationError):
        load_baseline(path)


# ----------------------------------------------------------------------
# renderers
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fixpkg_report():
    return run_analysis(str(FIXPKG))


def test_render_json_shape(fixpkg_report):
    payload = json.loads(fixpkg_report.render_json())
    assert payload["tool"] == "repro-analyze"
    assert payload["n_modules"] == len(list(FIXPKG.glob("*.py")))
    assert isinstance(payload["findings"], list)


def test_render_sarif_shape(fixpkg_report):
    sarif = json.loads(fixpkg_report.render_sarif())
    assert sarif["version"] == "2.1.0"
    driver = sarif["runs"][0]["tool"]["driver"]
    assert driver["name"] == "repro-analyze"
    assert {rule["id"] for rule in driver["rules"]} == set(CHECKS)
    for result in sarif["runs"][0]["results"]:
        assert result["ruleId"] in CHECKS
        assert "reproAnalyze/v1" in result["partialFingerprints"]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def parse_args(argv):
    parser = argparse.ArgumentParser()
    add_analyze_arguments(parser)
    return parser.parse_args(argv)


def test_cli_clean_run_exits_zero(capsys):
    # The fixture package has no surfaces, dist tree, or event
    # registry, so every checker comes back clean.
    code = cmd_analyze(parse_args([str(FIXPKG), "--baseline", ""]))
    assert code == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_cli_list_checks(capsys):
    code = cmd_analyze(parse_args(["--list-checks"]))
    assert code == 0
    out = capsys.readouterr().out
    for check in CHECKS:
        assert check in out


def test_cli_update_baseline_requires_baseline_path(capsys):
    code = cmd_analyze(
        parse_args([str(FIXPKG), "--baseline", "", "--update-baseline"])
    )
    assert code == 2
