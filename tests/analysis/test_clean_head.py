"""The shipped tree must satisfy its own whole-program analysis.

Mirrors ``tests/lint/test_clean_head.py``: ``repro analyze src/repro``
is clean at HEAD with an *empty* committed baseline — every genuine
finding was fixed, every false positive suppressed inline with a
justification, nothing ratcheted away.
"""

from pathlib import Path

import pytest

from repro.analysis.runner import run_analysis
from repro.analysis.surfaces import collect_surfaces

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "analysis-baseline.json"


@pytest.fixture(scope="module")
def report():
    return run_analysis(str(SRC), baseline_path=BASELINE)


def test_src_repro_is_analysis_clean(report):
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.ok, f"repro analyze found violations at HEAD:\n{rendered}"
    # Clean means *clean*: no errors, no dead-registry warnings either.
    assert not report.findings, rendered
    assert not report.parse_errors


def test_committed_baseline_is_empty(report):
    assert BASELINE.is_file()
    assert report.baselined == []


def test_analysis_is_not_vacuous(report):
    # Guard against the analyzer silently seeing an empty world.
    assert report.n_modules >= 100
    assert report.n_functions >= 700
    assert report.graph is not None and report.summaries is not None
    surfaces = collect_surfaces(report.graph)
    assert len(surfaces) >= 30
    # Spot-check two load-bearing summaries: the engine hot loop is
    # pure, and the durable write primitive is atomic (not raw).
    run_plain = report.summaries["repro.sim.engine:Simulation._run_plain"]
    assert run_plain.effects == frozenset()
    atomic = report.summaries["repro.durable:atomic_write_text"]
    assert "FS_WRITE_ATOMIC" in atomic.effects
    assert "FS_WRITE" not in atomic.effects
