"""Call-graph builder tests over the ``fixpkg`` fixture package."""

from pathlib import Path

import pytest

from repro.analysis.callgraph import build_call_graph
from repro.analysis.program import Program

FIXPKG = Path(__file__).parent / "fixtures" / "fixpkg"


@pytest.fixture(scope="module")
def graph():
    return build_call_graph(Program.load(FIXPKG))


def targets_of(graph, qname):
    """Union of resolved targets across all of *qname*'s call sites."""
    out = set()
    for site in graph.calls.get(qname, []):
        out.update(site.targets)
    return out


def test_functions_and_methods_discovered(graph):
    expected = {
        "fixpkg.core:read_clock",
        "fixpkg.core:tick",
        "fixpkg.core:ping",
        "fixpkg.core:pong",
        "fixpkg.shapes:Base.hook",
        "fixpkg.shapes:Base.run",
        "fixpkg.shapes:Sub.hook",
        "fixpkg.shapes:drive",
        "fixpkg.partials:use_partial",
        "fixpkg.reexport:call_reexport",
        "fixpkg.reexport:call_via_module",
        "fixpkg.dyn:invoke",
        "fixpkg.declared:trusted_now",
    }
    assert expected <= set(graph.functions)


def test_recursion_cycle_edges(graph):
    assert "fixpkg.core:pong" in targets_of(graph, "fixpkg.core:ping")
    assert "fixpkg.core:ping" in targets_of(graph, "fixpkg.core:pong")


def test_self_call_dispatches_over_hierarchy(graph):
    # Base.run calls self.hook(); CHA must include the Sub override.
    hooks = targets_of(graph, "fixpkg.shapes:Base.run")
    assert "fixpkg.shapes:Base.hook" in hooks
    assert "fixpkg.shapes:Sub.hook" in hooks


def test_annotated_parameter_resolves_receiver(graph):
    assert "fixpkg.shapes:Base.run" in targets_of(
        graph, "fixpkg.shapes:drive"
    )


def test_partial_resolves_to_bound_callable(graph):
    assert "fixpkg.core:read_clock" in targets_of(
        graph, "fixpkg.partials:use_partial"
    )


def test_reexport_through_package_init(graph):
    # `from . import tock` and `fixpkg.tock` both follow the __init__
    # alias back to fixpkg.core:tick.
    assert "fixpkg.core:tick" in targets_of(
        graph, "fixpkg.reexport:call_reexport"
    )
    assert "fixpkg.core:tick" in targets_of(
        graph, "fixpkg.reexport:call_via_module"
    )


def test_parameter_call_is_dynamic(graph):
    sites = graph.calls["fixpkg.dyn:invoke"]
    assert any(site.dynamic for site in sites)


def test_declared_effects_parsed_from_decorator(graph):
    info = graph.functions["fixpkg.declared:trusted_now"]
    assert info.declared == frozenset()


def test_class_hierarchy_navigation(graph):
    assert graph.ancestors("fixpkg.shapes:Sub") == ["fixpkg.shapes:Base"]
    assert graph.descendants("fixpkg.shapes:Base") == ["fixpkg.shapes:Sub"]
