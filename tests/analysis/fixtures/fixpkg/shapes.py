"""Method resolution: CHA dispatch over a small hierarchy.

``Base.run`` calls ``self.hook()`` — the analyzer must consider every
override in the hierarchy, so the unseeded draw in ``Sub.hook`` taints
``Base.run`` and, through the annotated parameter, ``drive``.
"""

import random


class Base:
    def hook(self):
        return 0

    def run(self):
        return self.hook()


class Sub(Base):
    def hook(self):
        return random.random()


def drive(shape: Base):
    return shape.run()
