"""Call-graph fixture package — parsed by the analyzer, never imported.

Exercises the resolution features the builder must get right: import
re-exports (``tock`` below), recursion cycles, class-hierarchy method
dispatch, ``functools.partial``, declared-effect overrides, and the
conservative dynamic-call fallback.
"""

from .core import tick as tock

__all__ = ["tock"]
