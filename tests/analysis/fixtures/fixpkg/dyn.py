"""Calling a parameter cannot be resolved: conservative DYNAMIC top."""


def invoke(callback):
    return callback()
