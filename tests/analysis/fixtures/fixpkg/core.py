"""Effect leaves and a two-function recursion cycle."""

import time


def read_clock():
    return time.time()


def tick():
    return read_clock()


def ping(n):
    if n <= 0:
        return 0
    return pong(n - 1)


def pong(n):
    return ping(n - 1)
