"""Calls through the package ``__init__`` re-export resolve fully."""

import fixpkg

from . import tock


def call_reexport():
    return tock()


def call_via_module():
    return fixpkg.tock()
