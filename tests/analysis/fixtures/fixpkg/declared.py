"""``@declared_effects`` pins a function's summary, overriding leaves."""

import time

from repro.analysis.annotations import declared_effects


@declared_effects()
def trusted_now():
    return time.time()
