"""``functools.partial`` resolves to its bound callable."""

import functools

from .core import read_clock


def use_partial():
    bound = functools.partial(read_clock)
    return bound()
