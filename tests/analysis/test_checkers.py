"""Seeded regression tests: inject a defect, expect exactly one finding.

Each test runs the whole-program analyzer over the *real* ``src/repro``
tree with one synthetic defect spliced in via ``source_overrides`` —
proof that each checker actually fires, with the full inter-procedural
propagation path, and that everything it reports at HEAD (nothing) is
because the tree is clean, not because the checker is blind.
"""

from pathlib import Path

from repro.analysis.runner import run_analysis

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"

#: A wall-clock leaf in one module...
_CLOCK_HELPER = '''\
import time


def stamp():
    return time.time()
'''

#: ...reached from a protocol hook (an RPA001 surface) in another.
_CLOCK_PROTOCOL = '''\
from ._fx_clock import stamp
from .base import ReplicationProtocol


class WallClockProtocol(ReplicationProtocol):
    name = "FXCLOCK"

    def initialize(self, sim):
        pass

    def on_fulfill(self, sim, t, requester, provider, item, counter):
        stamp()
'''

_RAW_SINK = '''\
import json


def dump_state(path, payload):
    with open(path, "w") as handle:
        json.dump(payload, handle)
'''

_BOGUS_EMIT = '''\
from ..obs.tracer import Tracer


def emit_bogus(tracer: Tracer, t: float) -> None:
    tracer.emit("totally_unknown_kind", t)
'''


def analyze(overrides, code):
    return run_analysis(
        str(SRC), select=[code], source_overrides=overrides
    )


def test_rpa001_clock_in_protocol_hook_crosses_modules():
    report = analyze(
        {
            "repro.protocols._fx_clock": _CLOCK_HELPER,
            "repro.protocols._fx_proto": _CLOCK_PROTOCOL,
        },
        "RPA001",
    )
    # The hook itself is flagged — and so is every engine surface the
    # protocol dispatches from (CHA: the engine calls
    # self.protocol.on_fulfill, so the injected override taints it).
    assert report.findings, "checker did not fire"
    assert all(f.code == "RPA001" for f in report.findings)
    hook = [
        f
        for f in report.findings
        if "WallClockProtocol.on_fulfill" in f.message
    ]
    assert len(hook) == 1, [f.render() for f in report.findings]
    finding = hook[0]
    # The propagation path is the deliverable: hook -> helper -> leaf,
    # spanning the module boundary between the two injected files.
    assert len(finding.trace) >= 2
    files = {step.path for step in finding.trace}
    assert len(files) >= 2
    assert "time.time" in finding.trace[-1].note
    # Every finding — including the tainted engine surfaces — traces
    # back to the one injected leaf.
    for f in report.findings:
        assert "_fx_clock" in f.trace[-1].path, f.render()


def test_rpa002_raw_write_in_dist():
    report = analyze({"repro.dist._fx_sink": _RAW_SINK}, "RPA002")
    assert len(report.findings) == 1, [
        f.render() for f in report.findings
    ]
    finding = report.findings[0]
    assert finding.code == "RPA002"
    assert "_fx_sink" in finding.path
    assert "raw filesystem write" in finding.message


def test_rpa003_unknown_event_kind():
    report = analyze({"repro.sim._fx_emit": _BOGUS_EMIT}, "RPA003")
    assert len(report.findings) == 1, [
        f.render() for f in report.findings
    ]
    finding = report.findings[0]
    assert finding.code == "RPA003"
    assert "totally_unknown_kind" in finding.message
    assert "_fx_emit" in finding.path


def test_injected_defects_do_not_leak_into_other_checks():
    # The three injections are defect-specific: each trips exactly its
    # own checker and nothing else.
    report = run_analysis(
        str(SRC),
        source_overrides={
            "repro.dist._fx_sink": _RAW_SINK,
            "repro.sim._fx_emit": _BOGUS_EMIT,
        },
    )
    codes = sorted(f.code for f in report.findings)
    assert codes == ["RPA002", "RPA003"], [
        f.render() for f in report.findings
    ]
