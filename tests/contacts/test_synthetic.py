"""Tests for the synthetic conference / vehicular / memoryless traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.contacts import pair_rate_matrix, summarize
from repro.contacts.synthetic import (
    ConferenceTraceConfig,
    VehicularTraceConfig,
    conference_trace,
    homogenized_poisson,
    rate_matched_poisson,
    vehicular_trace,
)
from repro.errors import ConfigurationError

SMALL_CONF = ConferenceTraceConfig(n_nodes=20, n_days=2)
SMALL_VEH = VehicularTraceConfig(
    n_nodes=15, duration_hours=6.0, sample_interval_s=60.0
)


@pytest.fixture(scope="module")
def conf_trace():
    return conference_trace(SMALL_CONF, seed=42)


@pytest.fixture(scope="module")
def veh_trace():
    return vehicular_trace(SMALL_VEH, seed=42)


class TestConferenceTrace:
    def test_duration(self, conf_trace):
        assert conf_trace.duration == SMALL_CONF.duration == 2 * 1440.0

    def test_volume_near_target(self, conf_trace):
        expected = SMALL_CONF.mean_pair_rate * conf_trace.n_pairs * conf_trace.duration
        assert 0.5 * expected < len(conf_trace) < 2.0 * expected

    def test_heterogeneous_rates(self, conf_trace):
        assert summarize(conf_trace).rate_cv > 0.5

    def test_bursty(self, conf_trace):
        assert summarize(conf_trace).burstiness > 0.15

    def test_diurnal_cycle(self, conf_trace):
        hours = (conf_trace.times % 1440.0) / 60.0
        day = np.sum((hours >= 8) & (hours < 20))
        night = len(conf_trace) - day
        # Daytime occupies half the day but should carry most contacts.
        assert day > 5 * night

    def test_determinism(self):
        a = conference_trace(SMALL_CONF, seed=5)
        b = conference_trace(SMALL_CONF, seed=5)
        assert np.array_equal(a.times, b.times)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ConferenceTraceConfig(n_nodes=1)
        with pytest.raises(ConfigurationError):
            ConferenceTraceConfig(night_activity=0.0)
        with pytest.raises(ConfigurationError):
            ConferenceTraceConfig(pareto_shape=1.0)
        with pytest.raises(ConfigurationError):
            ConferenceTraceConfig(day_start=1000.0, day_end=500.0)


class TestConferenceEdgeCases:
    def test_always_active_profile(self):
        config = ConferenceTraceConfig(
            n_nodes=10, n_days=1, day_start=0.0, day_end=1440.0
        )
        trace = conference_trace(config, seed=1)
        # No diurnal gating: event volume still near target.
        expected = config.mean_pair_rate * trace.n_pairs * trace.duration
        assert 0.4 * expected < len(trace) < 2.5 * expected

    def test_homogeneous_sociability(self):
        config = ConferenceTraceConfig(n_nodes=20, sociability_sigma=0.0)
        trace = conference_trace(config, seed=2)
        # Without sociability spread, pair rates are homogeneous.
        assert summarize(trace).rate_cv < 0.6

    def test_single_day(self):
        config = ConferenceTraceConfig(n_nodes=10, n_days=1)
        trace = conference_trace(config, seed=3)
        assert trace.duration == 1440.0


class TestVehicularTrace:
    def test_duration_in_minutes(self, veh_trace):
        assert veh_trace.duration == pytest.approx(360.0)

    def test_nonempty(self, veh_trace):
        assert len(veh_trace) > 10

    def test_heterogeneous(self, veh_trace):
        assert summarize(veh_trace).rate_cv > 0.5

    def test_determinism(self):
        a = vehicular_trace(SMALL_VEH, seed=9)
        b = vehicular_trace(SMALL_VEH, seed=9)
        assert np.array_equal(a.times, b.times)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            VehicularTraceConfig(n_nodes=1)
        with pytest.raises(ConfigurationError):
            VehicularTraceConfig(contact_radius_m=0.0)


class TestMemorylessControls:
    def test_rate_matched_preserves_rates(self, conf_trace):
        control = rate_matched_poisson(conf_trace, seed=1)
        original = pair_rate_matrix(conf_trace)
        matched = pair_rate_matrix(control)
        # Aggregate rate preserved closely; per-pair correlated.
        assert matched.sum() == pytest.approx(original.sum(), rel=0.1)
        iu = np.triu_indices(conf_trace.n_nodes, k=1)
        correlation = np.corrcoef(original[iu], matched[iu])[0, 1]
        assert correlation > 0.9

    def test_rate_matched_removes_burstiness(self, conf_trace):
        control = rate_matched_poisson(conf_trace, seed=2)
        assert summarize(control).burstiness < summarize(conf_trace).burstiness

    def test_homogenized_removes_heterogeneity(self, conf_trace):
        control = homogenized_poisson(conf_trace, seed=3)
        stats = summarize(control)
        assert stats.rate_cv < 0.5
        assert abs(stats.burstiness) < 0.1
        assert stats.mean_pair_rate == pytest.approx(
            conf_trace.mean_pair_rate, rel=0.1
        )

    def test_duration_override(self, conf_trace):
        control = homogenized_poisson(conf_trace, seed=4, duration=500.0)
        assert control.duration == 500.0
