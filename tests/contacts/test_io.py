"""Round-trip tests for contact-trace file formats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.contacts import (
    ContactTrace,
    load_csv,
    load_jsonl,
    save_csv,
    save_jsonl,
)
from repro.errors import TraceFormatError


@pytest.fixture
def trace():
    return ContactTrace(
        times=np.array([0.5, 1.25, 1.25, 9.75]),
        node_a=np.array([0, 1, 0, 2]),
        node_b=np.array([1, 2, 3, 3]),
        n_nodes=4,
        duration=10.0,
    )


def assert_traces_equal(a: ContactTrace, b: ContactTrace) -> None:
    assert a.n_nodes == b.n_nodes
    assert a.duration == b.duration
    assert np.array_equal(a.times, b.times)
    assert np.array_equal(a.node_a, b.node_a)
    assert np.array_equal(a.node_b, b.node_b)


class TestCsv:
    def test_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        save_csv(trace, path)
        assert_traces_equal(trace, load_csv(path))

    def test_round_trip_empty(self, tmp_path):
        empty = ContactTrace(
            times=np.array([]),
            node_a=np.array([], dtype=np.int64),
            node_b=np.array([], dtype=np.int64),
            n_nodes=5,
            duration=3.0,
        )
        path = tmp_path / "empty.csv"
        save_csv(empty, path)
        assert_traces_equal(empty, load_csv(path))

    def test_missing_metadata_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,node_a,node_b\n1.0,0,1\n")
        with pytest.raises(TraceFormatError):
            load_csv(path)

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad2.csv"
        path.write_text("# n_nodes=2\n# duration=5.0\n1.0,0\n")
        with pytest.raises(TraceFormatError):
            load_csv(path)

    def test_exact_float_preservation(self, tmp_path):
        # repr round-trip keeps full float precision.
        trace = ContactTrace(
            times=np.array([0.1 + 0.2]),
            node_a=np.array([0]),
            node_b=np.array([1]),
            n_nodes=2,
            duration=1.0,
        )
        path = tmp_path / "precise.csv"
        save_csv(trace, path)
        assert load_csv(path).times[0] == trace.times[0]


class TestJsonl:
    def test_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_jsonl(trace, path)
        assert_traces_equal(trace, load_jsonl(path))

    def test_header_required(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('[1.0, 0, 1]\n')
        with pytest.raises(TraceFormatError):
            load_jsonl(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceFormatError):
            load_jsonl(path)

    def test_formats_interchangeable(self, trace, tmp_path):
        csv_path = tmp_path / "a.csv"
        jsonl_path = tmp_path / "a.jsonl"
        save_csv(trace, csv_path)
        save_jsonl(trace, jsonl_path)
        assert_traces_equal(load_csv(csv_path), load_jsonl(jsonl_path))


def _corrupt_line(path, line_number: int, replacement: str) -> None:
    """Replace one line of a written fixture with corrupt content."""
    lines = path.read_text().splitlines()
    lines[line_number - 1] = replacement
    path.write_text("\n".join(lines) + "\n")


class TestCorruptCsv:
    """A valid fixture with one corrupted row must fail with location info."""

    @pytest.fixture
    def path(self, trace, tmp_path):
        p = tmp_path / "trace.csv"
        save_csv(trace, p)
        return p  # rows are lines 4-7 (after two headers + column row)

    @pytest.mark.parametrize(
        "row, match",
        [
            ("oops,0,1", "non-numeric"),
            ("1.0,zero,1", "non-numeric"),
            ("1.0,0,", "non-numeric"),
            ("nan,0,1", "finite"),
            ("inf,0,1", "finite"),
            ("-1.0,0,1", "finite"),
            ("1.0,-1,1", "negative node id"),
            ("1.0,0,-2", "negative node id"),
            ("1.0,4,1", "out of range"),
            ("1.0,0,99", "out of range"),
        ],
    )
    def test_corrupt_row_rejected(self, path, row, match):
        _corrupt_line(path, 5, row)
        with pytest.raises(TraceFormatError, match=match):
            load_csv(path)

    def test_error_names_offending_line(self, path):
        _corrupt_line(path, 6, "bad,0,1")
        with pytest.raises(TraceFormatError, match=r":6:"):
            load_csv(path)

    def test_non_numeric_metadata_rejected(self, path):
        _corrupt_line(path, 1, "# n_nodes=many")
        with pytest.raises(TraceFormatError, match="n_nodes"):
            load_csv(path)

    def test_uncorrupted_fixture_still_loads(self, trace, path):
        assert_traces_equal(trace, load_csv(path))


class TestCorruptJsonl:
    """A valid fixture with one corrupted line must fail with location info."""

    @pytest.fixture
    def path(self, trace, tmp_path):
        p = tmp_path / "trace.jsonl"
        save_jsonl(trace, p)
        return p  # records are lines 2-5 (after the header object)

    @pytest.mark.parametrize(
        "line, match",
        [
            ("[1.0, 0", "invalid JSON"),
            ('{"t": 1.0}', "triple"),
            ("[1.0, 0, 1, 2]", "triple"),
            ('["one", 0, 1]', "non-numeric"),
            ("[1.0, null, 1]", "non-numeric"),
            ("[NaN, 0, 1]", "finite"),
            ("[-0.5, 0, 1]", "finite"),
            ("[1.0, 1.5, 2]", "non-integer node id"),
            ("[1.0, -3, 1]", "negative node id"),
            ("[1.0, 0, 4]", "out of range"),
        ],
    )
    def test_corrupt_record_rejected(self, path, line, match):
        _corrupt_line(path, 3, line)
        with pytest.raises(TraceFormatError, match=match):
            load_jsonl(path)

    def test_error_names_offending_line(self, path):
        _corrupt_line(path, 4, "not json")
        with pytest.raises(TraceFormatError, match=r":4:"):
            load_jsonl(path)

    def test_corrupt_header_rejected(self, path):
        _corrupt_line(path, 1, "{broken")
        with pytest.raises(TraceFormatError, match="invalid JSON header"):
            load_jsonl(path)

    def test_non_numeric_header_fields_rejected(self, path):
        _corrupt_line(
            path,
            1,
            '{"format": "repro-contact-trace", "version": 1,'
            ' "n_nodes": "lots", "duration": 10.0}',
        )
        with pytest.raises(TraceFormatError, match="numeric n_nodes"):
            load_jsonl(path)

    def test_uncorrupted_fixture_still_loads(self, trace, path):
        assert_traces_equal(trace, load_jsonl(path))
