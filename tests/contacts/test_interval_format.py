"""Tests for the CRAWDAD/Haggle interval-format loader."""

from __future__ import annotations

import numpy as np
import pytest

from repro.contacts import load_interval_format
from repro.errors import TraceFormatError


def write(tmp_path, text, name="contacts.dat"):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestLoadIntervalFormat:
    def test_basic(self, tmp_path):
        path = write(
            tmp_path,
            "1 2 100 160\n"
            "2 3 130 190\n"
            "1 2 400 420\n",
        )
        trace = load_interval_format(path)
        assert trace.n_nodes == 3
        assert len(trace) == 3
        # Times re-based to the earliest start.
        assert trace.times.tolist() == [0.0, 30.0, 300.0]
        assert trace.duration == pytest.approx(320.0)

    def test_dense_relabeling(self, tmp_path):
        path = write(tmp_path, "21 71 0 10\n71 35 5 15\n")
        trace = load_interval_format(path)
        assert trace.n_nodes == 3
        assert set(trace.node_a.tolist()) | set(trace.node_b.tolist()) == {
            0,
            1,
            2,
        }

    def test_time_scale(self, tmp_path):
        path = write(tmp_path, "1 2 0 600\n1 2 1200 1260\n")
        trace = load_interval_format(path, time_scale=1 / 60.0)
        assert trace.times.tolist() == [0.0, 20.0]
        assert trace.duration == pytest.approx(21.0)

    def test_comments_and_blank_lines(self, tmp_path):
        path = write(
            tmp_path, "# haggle export\n\n1 2 0 5\n# trailing\n2 3 1 6\n"
        )
        assert len(load_interval_format(path)) == 2

    def test_extra_columns_ignored(self, tmp_path):
        path = write(tmp_path, "1 2 0 5 17 bluetooth\n")
        assert len(load_interval_format(path)) == 1

    def test_self_sightings_dropped(self, tmp_path):
        path = write(tmp_path, "1 1 0 5\n1 2 0 5\n")
        trace = load_interval_format(path)
        assert len(trace) == 1
        assert trace.n_nodes == 2

    def test_unsorted_input_sorted(self, tmp_path):
        path = write(tmp_path, "1 2 50 60\n2 3 10 20\n")
        trace = load_interval_format(path)
        assert np.all(np.diff(trace.times) >= 0)

    def test_malformed_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError):
            load_interval_format(write(tmp_path, "1 2 0\n"))
        with pytest.raises(TraceFormatError):
            load_interval_format(write(tmp_path, "a b 0 5\n"))
        with pytest.raises(TraceFormatError):
            load_interval_format(write(tmp_path, "1 2 10 5\n"))
        with pytest.raises(TraceFormatError):
            load_interval_format(write(tmp_path, "# only comments\n"))

    def test_bad_scale_rejected(self, tmp_path):
        path = write(tmp_path, "1 2 0 5\n")
        with pytest.raises(TraceFormatError):
            load_interval_format(path, time_scale=0.0)

    def test_feeds_paper_preprocessing(self, tmp_path):
        """The loaded trace supports the paper's best-covered filtering."""
        from repro.contacts import select_best_covered

        lines = []
        for k in range(12):
            lines.append(f"1 2 {10 * k} {10 * k + 5}")  # busy pair
        lines.append("3 4 5 9")
        path = write(tmp_path, "\n".join(lines) + "\n")
        trace = load_interval_format(path)
        kept = select_best_covered(trace, 2)
        assert kept.n_nodes == 2
        assert len(kept) == 12
