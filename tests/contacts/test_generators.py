"""Tests for Poisson / slotted contact generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.contacts import (
    bernoulli_slot_trace,
    heterogeneous_poisson_trace,
    homogeneous_poisson_trace,
    pair_rate_matrix,
)
from repro.contacts.poisson import _pair_from_index
from repro.errors import ConfigurationError


class TestPairIndexing:
    def test_bijection(self):
        n = 9
        n_pairs = n * (n - 1) // 2
        a, b = _pair_from_index(np.arange(n_pairs), n)
        pairs = set(zip(a.tolist(), b.tolist()))
        assert len(pairs) == n_pairs
        assert all(0 <= x < y < n for x, y in pairs)

    def test_first_and_last(self):
        a, b = _pair_from_index(np.array([0, 5]), 4)
        assert (a[0], b[0]) == (0, 1)
        assert (a[1], b[1]) == (2, 3)


class TestHomogeneousPoisson:
    def test_volume(self):
        trace = homogeneous_poisson_trace(20, rate=0.1, duration=100.0, seed=1)
        expected = 0.1 * 190 * 100
        assert abs(len(trace) - expected) < 5 * np.sqrt(expected)

    def test_pairs_uniform(self):
        trace = homogeneous_poisson_trace(6, rate=1.0, duration=500.0, seed=2)
        counts = trace.pair_counts()[np.triu_indices(6, k=1)]
        assert counts.min() > 0.8 * counts.mean()

    def test_determinism(self):
        a = homogeneous_poisson_trace(5, 0.2, 50.0, seed=7)
        b = homogeneous_poisson_trace(5, 0.2, 50.0, seed=7)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.node_a, b.node_a)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            homogeneous_poisson_trace(1, 0.1, 10.0)
        with pytest.raises(ConfigurationError):
            homogeneous_poisson_trace(5, -0.1, 10.0)
        with pytest.raises(ConfigurationError):
            homogeneous_poisson_trace(5, 0.1, 0.0)


class TestHeterogeneousPoisson:
    def test_rates_recovered(self):
        rates = np.zeros((4, 4))
        rates[0, 1] = rates[1, 0] = 2.0
        rates[2, 3] = rates[3, 2] = 0.5
        trace = heterogeneous_poisson_trace(rates, duration=1000.0, seed=3)
        estimated = pair_rate_matrix(trace)
        assert estimated[0, 1] == pytest.approx(2.0, rel=0.1)
        assert estimated[2, 3] == pytest.approx(0.5, rel=0.2)
        assert estimated[0, 2] == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            heterogeneous_poisson_trace(np.ones((3, 2)), 10.0)
        asym = np.zeros((3, 3))
        asym[0, 1] = 1.0
        with pytest.raises(ConfigurationError):
            heterogeneous_poisson_trace(asym, 10.0)
        diag = np.zeros((3, 3))
        diag[0, 0] = 1.0
        with pytest.raises(ConfigurationError):
            heterogeneous_poisson_trace(diag, 10.0)
        with pytest.raises(ConfigurationError):
            heterogeneous_poisson_trace(np.zeros((3, 3)), 10.0)


class TestBernoulliSlots:
    def test_times_on_slot_boundaries(self):
        trace = bernoulli_slot_trace(10, rate=0.2, delta=0.5, n_slots=50, seed=4)
        remainder = np.mod(trace.times, 0.5)
        assert np.allclose(np.minimum(remainder, 0.5 - remainder), 0.0)

    def test_volume(self):
        trace = bernoulli_slot_trace(10, rate=0.2, delta=0.1, n_slots=2000, seed=5)
        expected = 45 * 0.02 * 2000
        assert abs(len(trace) - expected) < 5 * np.sqrt(expected)

    def test_pairs_distinct_within_slot(self):
        trace = bernoulli_slot_trace(6, rate=1.0, delta=0.5, n_slots=100, seed=6)
        for t in np.unique(trace.times):
            mask = trace.times == t
            pairs = list(
                zip(trace.node_a[mask].tolist(), trace.node_b[mask].tolist())
            )
            assert len(pairs) == len(set(pairs))

    def test_rejects_probability_above_one(self):
        with pytest.raises(ConfigurationError):
            bernoulli_slot_trace(5, rate=3.0, delta=0.5, n_slots=10)

    def test_slotted_approaches_poisson(self):
        """Discrete-time model converges to continuous (Section 3.4)."""
        slotted = bernoulli_slot_trace(
            15, rate=0.1, delta=0.02, n_slots=20000, seed=7
        )
        poisson = homogeneous_poisson_trace(15, 0.1, 400.0, seed=8)
        assert len(slotted) == pytest.approx(len(poisson), rel=0.1)
