"""Tests for Poisson / slotted contact generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.contacts import (
    bernoulli_slot_trace,
    heterogeneous_poisson_trace,
    homogeneous_poisson_trace,
    pair_rate_matrix,
)
from repro.contacts.poisson import _pair_from_index
from repro.errors import ConfigurationError


class TestPairIndexing:
    def test_bijection(self):
        n = 9
        n_pairs = n * (n - 1) // 2
        a, b = _pair_from_index(np.arange(n_pairs), n)
        pairs = set(zip(a.tolist(), b.tolist()))
        assert len(pairs) == n_pairs
        assert all(0 <= x < y < n for x, y in pairs)

    def test_first_and_last(self):
        a, b = _pair_from_index(np.array([0, 5]), 4)
        assert (a[0], b[0]) == (0, 1)
        assert (a[1], b[1]) == (2, 3)


class TestHomogeneousPoisson:
    def test_volume(self):
        trace = homogeneous_poisson_trace(20, rate=0.1, duration=100.0, seed=1)
        expected = 0.1 * 190 * 100
        assert abs(len(trace) - expected) < 5 * np.sqrt(expected)

    def test_pairs_uniform(self):
        trace = homogeneous_poisson_trace(6, rate=1.0, duration=500.0, seed=2)
        counts = trace.pair_counts()[np.triu_indices(6, k=1)]
        assert counts.min() > 0.8 * counts.mean()

    def test_determinism(self):
        a = homogeneous_poisson_trace(5, 0.2, 50.0, seed=7)
        b = homogeneous_poisson_trace(5, 0.2, 50.0, seed=7)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.node_a, b.node_a)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            homogeneous_poisson_trace(1, 0.1, 10.0)
        with pytest.raises(ConfigurationError):
            homogeneous_poisson_trace(5, -0.1, 10.0)
        with pytest.raises(ConfigurationError):
            homogeneous_poisson_trace(5, 0.1, 0.0)


class TestHeterogeneousPoisson:
    def test_rates_recovered(self):
        rates = np.zeros((4, 4))
        rates[0, 1] = rates[1, 0] = 2.0
        rates[2, 3] = rates[3, 2] = 0.5
        trace = heterogeneous_poisson_trace(rates, duration=1000.0, seed=3)
        estimated = pair_rate_matrix(trace)
        assert estimated[0, 1] == pytest.approx(2.0, rel=0.1)
        assert estimated[2, 3] == pytest.approx(0.5, rel=0.2)
        assert estimated[0, 2] == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            heterogeneous_poisson_trace(np.ones((3, 2)), 10.0)
        asym = np.zeros((3, 3))
        asym[0, 1] = 1.0
        with pytest.raises(ConfigurationError):
            heterogeneous_poisson_trace(asym, 10.0)
        diag = np.zeros((3, 3))
        diag[0, 0] = 1.0
        with pytest.raises(ConfigurationError):
            heterogeneous_poisson_trace(diag, 10.0)
        with pytest.raises(ConfigurationError):
            heterogeneous_poisson_trace(np.zeros((3, 3)), 10.0)


class TestBernoulliSlots:
    def test_times_on_slot_boundaries(self):
        trace = bernoulli_slot_trace(10, rate=0.2, delta=0.5, n_slots=50, seed=4)
        remainder = np.mod(trace.times, 0.5)
        assert np.allclose(np.minimum(remainder, 0.5 - remainder), 0.0)

    def test_volume(self):
        trace = bernoulli_slot_trace(10, rate=0.2, delta=0.1, n_slots=2000, seed=5)
        expected = 45 * 0.02 * 2000
        assert abs(len(trace) - expected) < 5 * np.sqrt(expected)

    def test_pairs_distinct_within_slot(self):
        trace = bernoulli_slot_trace(6, rate=1.0, delta=0.5, n_slots=100, seed=6)
        for t in np.unique(trace.times):
            mask = trace.times == t
            pairs = list(
                zip(trace.node_a[mask].tolist(), trace.node_b[mask].tolist())
            )
            assert len(pairs) == len(set(pairs))

    def test_rejects_probability_above_one(self):
        with pytest.raises(ConfigurationError):
            bernoulli_slot_trace(5, rate=3.0, delta=0.5, n_slots=10)

    def test_slotted_approaches_poisson(self):
        """Discrete-time model converges to continuous (Section 3.4)."""
        slotted = bernoulli_slot_trace(
            15, rate=0.1, delta=0.02, n_slots=20000, seed=7
        )
        poisson = homogeneous_poisson_trace(15, 0.1, 400.0, seed=8)
        assert len(slotted) == pytest.approx(len(poisson), rel=0.1)


class TestPairIndexClosedForm:
    """The closed-form inverse must match naive enumeration exactly."""

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8, 17, 50, 127, 200])
    def test_matches_naive_enumeration(self, n):
        naive = [(a, b) for a in range(n) for b in range(a + 1, n)]
        n_pairs = n * (n - 1) // 2
        assert len(naive) == n_pairs
        got_a, got_b = _pair_from_index(np.arange(n_pairs), n)
        assert list(zip(got_a.tolist(), got_b.tolist())) == naive

    def test_random_large_indices(self):
        n = 10**6
        n_pairs = n * (n - 1) // 2
        rng = np.random.default_rng(11)
        index = rng.integers(0, n_pairs, size=20000)
        # include both extremes and the triangular-number boundaries
        # where the float square root is most likely to land one off
        t = np.arange(1, 2000, dtype=np.int64)
        boundaries = n_pairs - 1 - t * (t + 1) // 2
        index = np.concatenate(
            ([0, 1, n_pairs - 2, n_pairs - 1], boundaries, index)
        )
        a, b = _pair_from_index(index, n)
        assert np.all((0 <= a) & (a < b) & (b < n))
        # invert: index of pair (a, b) in row-major upper-triangle order
        offsets = a * (2 * n - a - 1) // 2
        assert np.array_equal(offsets + (b - a - 1), index)

    def test_scalar_index(self):
        a, b = _pair_from_index(np.int64(0), 5)
        assert (int(a), int(b)) == (0, 1)


class TestStreamedGeneration:
    def test_homogeneous_streamed_round_trip(self, tmp_path):
        out = tmp_path / "h.ctb"
        trace = homogeneous_poisson_trace(
            15, 0.2, 80.0, seed=3, out=out, chunk_target=64
        )
        assert isinstance(trace.times, np.memmap)
        assert trace.n_nodes == 15
        assert trace.duration == 80.0
        expected = 0.2 * 105 * 80
        assert abs(len(trace) - expected) < 5 * np.sqrt(expected)
        assert np.all(np.diff(np.asarray(trace.times)) >= 0)
        assert np.all(np.asarray(trace.node_a) < np.asarray(trace.node_b))

    def test_streamed_deterministic(self, tmp_path):
        a = homogeneous_poisson_trace(
            8, 0.3, 60.0, seed=5, out=tmp_path / "a.ctb", chunk_target=100
        )
        b = homogeneous_poisson_trace(
            8, 0.3, 60.0, seed=5, out=tmp_path / "b.ctb", chunk_target=100
        )
        assert np.array_equal(np.asarray(a.times), np.asarray(b.times))
        assert np.array_equal(np.asarray(a.node_a), np.asarray(b.node_a))
        assert np.array_equal(np.asarray(a.node_b), np.asarray(b.node_b))

    def test_heterogeneous_streamed_round_trip(self, tmp_path):
        rng = np.random.default_rng(2)
        rates = rng.uniform(0.1, 0.7, size=(6, 6))
        rates = np.triu(rates, k=1)
        rates = rates + rates.T
        eager = heterogeneous_poisson_trace(rates, duration=100.0, seed=9)
        streamed = heterogeneous_poisson_trace(
            rates,
            duration=100.0,
            seed=9,
            out=tmp_path / "h.ctb",
            chunk_target=50,
        )
        assert isinstance(streamed.times, np.memmap)
        # chunked draws are a different realization of the same process
        assert abs(len(streamed) - len(eager)) < 6 * np.sqrt(len(eager) + 1)
        assert np.all(np.asarray(streamed.node_a) < np.asarray(streamed.node_b))
