"""The binary on-disk trace format: round-trips, memmaps, corruption."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.contacts import (
    BinaryTraceWriter,
    ContactTrace,
    detect_trace_format,
    homogeneous_poisson_trace,
    is_binary_trace,
    load_binary,
    load_contact_trace,
    load_csv,
    save_binary,
    save_csv,
    save_jsonl,
)
from repro.errors import TraceFormatError
from repro.simcache import run_key  # noqa: F401 - import check only
from repro.simcache.fingerprint import fingerprint_trace


@pytest.fixture
def trace():
    return homogeneous_poisson_trace(12, 0.2, 50.0, seed=4)


def assert_traces_equal(a: ContactTrace, b: ContactTrace) -> None:
    assert a.n_nodes == b.n_nodes
    assert a.duration == b.duration
    assert np.array_equal(np.asarray(a.times), np.asarray(b.times))
    assert np.array_equal(np.asarray(a.node_a), np.asarray(b.node_a))
    assert np.array_equal(np.asarray(a.node_b), np.asarray(b.node_b))


class TestRoundTrip:
    def test_save_load(self, trace, tmp_path):
        path = tmp_path / "t.ctb"
        save_binary(trace, path)
        assert is_binary_trace(path)
        assert_traces_equal(trace, load_binary(path))

    def test_memmap_by_default(self, trace, tmp_path):
        path = tmp_path / "t.ctb"
        save_binary(trace, path)
        loaded = load_binary(path)
        assert isinstance(loaded.times, np.memmap)
        assert isinstance(loaded.node_a, np.memmap)
        ram = load_binary(path, mmap=False)
        assert not isinstance(ram.times, np.memmap)
        assert_traces_equal(loaded, ram)

    def test_empty_trace(self, tmp_path):
        empty = ContactTrace(
            times=np.array([]),
            node_a=np.array([], dtype=np.int64),
            node_b=np.array([], dtype=np.int64),
            n_nodes=3,
            duration=5.0,
        )
        path = tmp_path / "empty.ctb"
        save_binary(empty, path)
        assert_traces_equal(empty, load_binary(path))

    def test_chunked_write_equals_single_write(self, trace, tmp_path):
        one = tmp_path / "one.ctb"
        many = tmp_path / "many.ctb"
        save_binary(trace, one, chunk_events=len(trace) + 1)
        save_binary(trace, many, chunk_events=7)
        a, b = load_binary(one), load_binary(many)
        assert_traces_equal(a, b)
        assert fingerprint_trace(a) == fingerprint_trace(b)

    def test_float_duration_round_trips_exactly(self, tmp_path):
        duration = 0.1 + 0.2  # not exactly representable in decimal
        t = ContactTrace(
            times=np.array([0.05]),
            node_a=np.array([0]),
            node_b=np.array([1]),
            n_nodes=2,
            duration=duration,
        )
        path = tmp_path / "f.ctb"
        save_binary(t, path)
        assert load_binary(path).duration == duration


class TestFingerprint:
    def test_binary_fingerprint_matches_csv_source(self, trace, tmp_path):
        """simcache must treat a converted trace as the same input."""
        csv_path = tmp_path / "t.csv"
        save_csv(trace, csv_path)
        from_csv = load_csv(csv_path)
        bin_path = tmp_path / "t.ctb"
        save_binary(from_csv, bin_path)
        assert fingerprint_trace(load_binary(bin_path)) == fingerprint_trace(
            from_csv
        )


class TestWriter:
    def test_rejects_out_of_order_chunks(self, tmp_path):
        with BinaryTraceWriter(
            tmp_path / "w.ctb", n_nodes=4, duration=10.0
        ) as writer:
            writer.append(
                np.array([2.0]), np.array([0]), np.array([1])
            )
            with pytest.raises(TraceFormatError, match="non-decreasing"):
                writer.append(
                    np.array([1.0]), np.array([0]), np.array([1])
                )

    def test_rejects_bad_ids_and_self_contacts(self, tmp_path):
        writer = BinaryTraceWriter(
            tmp_path / "w.ctb", n_nodes=4, duration=10.0
        )
        with pytest.raises(TraceFormatError, match="self-contacts"):
            writer.append(np.array([1.0]), np.array([2]), np.array([2]))
        with pytest.raises(TraceFormatError, match="n_nodes"):
            writer.append(np.array([1.0]), np.array([0]), np.array([9]))

    def test_canonicalizes_pair_order(self, tmp_path):
        path = tmp_path / "w.ctb"
        with BinaryTraceWriter(path, n_nodes=4, duration=10.0) as writer:
            writer.append(np.array([1.0]), np.array([3]), np.array([0]))
        loaded = load_binary(path)
        assert int(loaded.node_a[0]) == 0
        assert int(loaded.node_b[0]) == 3

    def test_aborted_write_leaves_no_header(self, tmp_path):
        path = tmp_path / "w.ctb"
        try:
            with BinaryTraceWriter(path, n_nodes=4, duration=10.0) as writer:
                writer.append(
                    np.array([1.0]), np.array([0]), np.array([1])
                )
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert not is_binary_trace(path)
        with pytest.raises(TraceFormatError, match="header"):
            load_binary(path)


class TestCorruption:
    @pytest.fixture
    def path(self, trace, tmp_path):
        p = tmp_path / "t.ctb"
        save_binary(trace, p)
        return p

    def test_truncated_column_rejected(self, path):
        column = path / "times.f8"
        data = column.read_bytes()
        column.write_bytes(data[:-8])
        with pytest.raises(TraceFormatError, match="expected"):
            load_binary(path)

    def test_invalid_header_json_rejected(self, path):
        (path / "header.json").write_text("{not json")
        with pytest.raises(TraceFormatError, match="JSON"):
            load_binary(path)

    def test_wrong_format_name_rejected(self, path):
        header = json.loads((path / "header.json").read_text())
        header["format"] = "something-else"
        (path / "header.json").write_text(json.dumps(header))
        with pytest.raises(TraceFormatError, match="header"):
            load_binary(path)

    def test_unsorted_column_content_rejected(self, path, trace):
        times = np.fromfile(path / "times.f8", dtype="<f8")
        times[0], times[-1] = times[-1], times[0]
        times.tofile(path / "times.f8")
        with pytest.raises(TraceFormatError, match="sorted"):
            load_binary(path)
        # validate=False trusts the columns and loads anyway
        assert len(load_binary(path, validate=False)) == len(trace)


class TestDetection:
    def test_detects_all_formats(self, trace, tmp_path):
        save_csv(trace, tmp_path / "t.csv")
        save_jsonl(trace, tmp_path / "t.jsonl")
        save_binary(trace, tmp_path / "t.ctb")
        assert detect_trace_format(tmp_path / "t.csv") == "csv"
        assert detect_trace_format(tmp_path / "t.jsonl") == "jsonl"
        assert detect_trace_format(tmp_path / "t.ctb") == "binary"

    def test_unknown_content_is_none(self, tmp_path):
        blob = tmp_path / "x.bin"
        blob.write_bytes(os.urandom(64))
        assert detect_trace_format(blob) is None

    def test_load_contact_trace_dispatches(self, trace, tmp_path):
        save_csv(trace, tmp_path / "t.csv")
        save_binary(trace, tmp_path / "t.ctb")
        assert_traces_equal(trace, load_contact_trace(tmp_path / "t.csv"))
        assert_traces_equal(trace, load_contact_trace(tmp_path / "t.ctb"))

    def test_load_contact_trace_rejects_unknown(self, tmp_path):
        blob = tmp_path / "x.bin"
        blob.write_bytes(os.urandom(64))
        with pytest.raises(TraceFormatError):
            load_contact_trace(blob)

    def test_missing_path_is_an_error_not_unrecognized(self, tmp_path):
        missing = tmp_path / "nope.csv"
        with pytest.raises(TraceFormatError, match="no such file"):
            detect_trace_format(missing)
        with pytest.raises(TraceFormatError, match="no such file"):
            load_contact_trace(missing)


class TestIterChunks:
    def test_chunks_partition_trace(self, trace):
        chunks = list(trace.iter_chunks(7))
        assert sum(len(c) for c in chunks) == len(trace)
        rejoined = np.concatenate([np.asarray(c.times) for c in chunks])
        assert np.array_equal(rejoined, np.asarray(trace.times))
        for chunk in chunks:
            assert chunk.n_nodes == trace.n_nodes
            assert chunk.duration == trace.duration

    def test_chunks_are_views(self, trace, tmp_path):
        save_binary(trace, tmp_path / "t.ctb")
        mm = load_binary(tmp_path / "t.ctb")
        for chunk in mm.iter_chunks(11):
            assert np.shares_memory(chunk.times, mm.times)
            assert np.shares_memory(chunk.node_a, mm.node_a)

    def test_chunk_size_validated(self, trace):
        with pytest.raises(TraceFormatError):
            next(trace.iter_chunks(0))
