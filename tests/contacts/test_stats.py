"""Unit tests for trace statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.contacts import (
    ContactTrace,
    burstiness,
    homogeneous_poisson_trace,
    inter_contact_times,
    pair_rate_matrix,
    select_best_covered,
    summarize,
)
from repro.errors import TraceFormatError


def line_trace():
    """Node 0 meets node 1 at t=1,3,6; node 2 meets node 3 at t=2."""
    return ContactTrace(
        times=np.array([1.0, 2.0, 3.0, 6.0]),
        node_a=np.array([0, 2, 0, 0]),
        node_b=np.array([1, 3, 1, 1]),
        n_nodes=4,
        duration=10.0,
    )


class TestPairRates:
    def test_matrix_values(self):
        rates = pair_rate_matrix(line_trace())
        assert rates[0, 1] == pytest.approx(0.3)
        assert rates[2, 3] == pytest.approx(0.1)
        assert rates[0, 2] == 0.0
        assert np.array_equal(rates, rates.T)

    def test_poisson_rates_recovered(self):
        trace = homogeneous_poisson_trace(20, rate=0.2, duration=500.0, seed=9)
        rates = pair_rate_matrix(trace)
        upper = rates[np.triu_indices(20, k=1)]
        assert upper.mean() == pytest.approx(0.2, rel=0.05)


class TestInterContact:
    def test_single_pair(self):
        gaps = inter_contact_times(line_trace(), pair=(0, 1))
        assert gaps.tolist() == [2.0, 3.0]

    def test_pair_order_irrelevant(self):
        a = inter_contact_times(line_trace(), pair=(0, 1))
        b = inter_contact_times(line_trace(), pair=(1, 0))
        assert np.array_equal(a, b)

    def test_pooled_excludes_cross_pair_gaps(self):
        gaps = inter_contact_times(line_trace())
        # only the (0,1) pair has >= 2 contacts.
        assert sorted(gaps.tolist()) == [2.0, 3.0]

    def test_poisson_gaps_memoryless(self):
        trace = homogeneous_poisson_trace(5, rate=0.5, duration=2000.0, seed=3)
        gaps = inter_contact_times(trace)
        assert abs(burstiness(gaps)) < 0.05


class TestBurstiness:
    def test_regular_train_negative(self):
        assert burstiness(np.ones(100)) == pytest.approx(-1.0)

    def test_exponential_near_zero(self):
        rng = np.random.default_rng(0)
        gaps = rng.exponential(1.0, size=20000)
        assert abs(burstiness(gaps)) < 0.02

    def test_heavy_tail_positive(self):
        rng = np.random.default_rng(0)
        gaps = rng.pareto(1.3, size=20000)
        assert burstiness(gaps) > 0.3

    def test_needs_two_gaps(self):
        with pytest.raises(TraceFormatError):
            burstiness(np.array([1.0]))


class TestSummarize:
    def test_fields(self):
        stats = summarize(line_trace())
        assert stats.n_nodes == 4
        assert stats.n_events == 4
        assert stats.disconnected_pair_fraction == pytest.approx(4 / 6)

    def test_homogeneous_trace_low_cv(self):
        trace = homogeneous_poisson_trace(30, rate=0.3, duration=300.0, seed=4)
        stats = summarize(trace)
        assert stats.rate_cv < 0.3
        assert abs(stats.burstiness) < 0.05


class TestSelectBestCovered:
    def test_keeps_most_active(self):
        trace = line_trace()
        kept = select_best_covered(trace, 2)
        # nodes 0 and 1 have 3 contacts each.
        assert kept.n_nodes == 2
        assert len(kept) == 3

    def test_bounds_checked(self):
        with pytest.raises(TraceFormatError):
            select_best_covered(line_trace(), 1)
        with pytest.raises(TraceFormatError):
            select_best_covered(line_trace(), 9)
