"""Unit tests for the ContactTrace container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.contacts import ContactTrace
from repro.errors import TraceFormatError


def make_trace():
    return ContactTrace(
        times=np.array([1.0, 2.0, 3.0, 7.0]),
        node_a=np.array([0, 2, 0, 1]),
        node_b=np.array([1, 1, 2, 3]),
        n_nodes=4,
        duration=10.0,
    )


class TestConstruction:
    def test_basic(self):
        trace = make_trace()
        assert len(trace) == 4
        assert trace.n_pairs == 6

    def test_canonical_pair_order(self):
        trace = ContactTrace(
            times=np.array([1.0]),
            node_a=np.array([3]),
            node_b=np.array([1]),
            n_nodes=4,
            duration=2.0,
        )
        assert trace.node_a[0] == 1
        assert trace.node_b[0] == 3

    def test_empty_trace_allowed(self):
        trace = ContactTrace(
            times=np.array([]),
            node_a=np.array([], dtype=np.int64),
            node_b=np.array([], dtype=np.int64),
            n_nodes=3,
            duration=5.0,
        )
        assert len(trace) == 0

    def test_rejects_unsorted(self):
        with pytest.raises(TraceFormatError):
            ContactTrace(
                times=np.array([2.0, 1.0]),
                node_a=np.array([0, 0]),
                node_b=np.array([1, 1]),
                n_nodes=2,
                duration=5.0,
            )

    def test_rejects_self_contact(self):
        with pytest.raises(TraceFormatError):
            ContactTrace(
                times=np.array([1.0]),
                node_a=np.array([1]),
                node_b=np.array([1]),
                n_nodes=3,
                duration=5.0,
            )

    def test_rejects_out_of_range_ids(self):
        with pytest.raises(TraceFormatError):
            ContactTrace(
                times=np.array([1.0]),
                node_a=np.array([0]),
                node_b=np.array([5]),
                n_nodes=3,
                duration=5.0,
            )

    def test_rejects_times_past_duration(self):
        with pytest.raises(TraceFormatError):
            ContactTrace(
                times=np.array([6.0]),
                node_a=np.array([0]),
                node_b=np.array([1]),
                n_nodes=2,
                duration=5.0,
            )

    def test_rejects_single_node(self):
        with pytest.raises(TraceFormatError):
            ContactTrace(
                times=np.array([]),
                node_a=np.array([], dtype=np.int64),
                node_b=np.array([], dtype=np.int64),
                n_nodes=1,
                duration=5.0,
            )


class TestTransformations:
    def test_sliced(self):
        trace = make_trace().sliced(2.0, 8.0)
        assert len(trace) == 3
        assert trace.times[0] == pytest.approx(0.0)
        assert trace.duration == pytest.approx(6.0)

    def test_sliced_rejects_bad_window(self):
        with pytest.raises(TraceFormatError):
            make_trace().sliced(5.0, 3.0)

    def test_select_nodes_relabels(self):
        trace = make_trace().select_nodes([0, 1, 3])
        # kept events: (0,1) at t=1, (1,3) at t=7 -> relabeled (1,2).
        assert len(trace) == 2
        assert trace.n_nodes == 3
        assert trace.node_a.tolist() == [0, 1]
        assert trace.node_b.tolist() == [1, 2]

    def test_select_nodes_requires_two(self):
        with pytest.raises(TraceFormatError):
            make_trace().select_nodes([2])

    def test_time_scaled(self):
        trace = make_trace().time_scaled(2.0)
        assert trace.times[0] == pytest.approx(2.0)
        assert trace.duration == pytest.approx(20.0)
        assert trace.mean_pair_rate == pytest.approx(
            make_trace().mean_pair_rate / 2.0
        )

    def test_concatenate(self):
        trace = make_trace()
        joined = ContactTrace.concatenate([trace, trace])
        assert len(joined) == 8
        assert joined.duration == pytest.approx(20.0)
        assert joined.times[4] == pytest.approx(11.0)

    def test_concatenate_rejects_mismatched_nodes(self):
        other = ContactTrace(
            times=np.array([0.5]),
            node_a=np.array([0]),
            node_b=np.array([1]),
            n_nodes=2,
            duration=1.0,
        )
        with pytest.raises(TraceFormatError):
            ContactTrace.concatenate([make_trace(), other])


class TestSummaries:
    def test_pair_counts_symmetric(self):
        counts = make_trace().pair_counts()
        assert np.array_equal(counts, counts.T)
        assert counts[0, 1] == 1
        assert counts[1, 2] == 1
        assert counts.sum() == 2 * 4

    def test_node_contact_counts(self):
        counts = make_trace().node_contact_counts()
        assert counts.tolist() == [2, 3, 2, 1]

    def test_mean_pair_rate(self):
        trace = make_trace()
        assert trace.mean_pair_rate == pytest.approx(4 / (6 * 10.0))

    def test_iteration_yields_python_types(self):
        t, a, b = next(iter(make_trace()))
        assert isinstance(t, float)
        assert isinstance(a, int)
        assert isinstance(b, int)
