"""Unit tests for the ContactTrace container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.contacts import ContactTrace
from repro.errors import TraceFormatError


def make_trace():
    return ContactTrace(
        times=np.array([1.0, 2.0, 3.0, 7.0]),
        node_a=np.array([0, 2, 0, 1]),
        node_b=np.array([1, 1, 2, 3]),
        n_nodes=4,
        duration=10.0,
    )


class TestConstruction:
    def test_basic(self):
        trace = make_trace()
        assert len(trace) == 4
        assert trace.n_pairs == 6

    def test_canonical_pair_order(self):
        trace = ContactTrace(
            times=np.array([1.0]),
            node_a=np.array([3]),
            node_b=np.array([1]),
            n_nodes=4,
            duration=2.0,
        )
        assert trace.node_a[0] == 1
        assert trace.node_b[0] == 3

    def test_empty_trace_allowed(self):
        trace = ContactTrace(
            times=np.array([]),
            node_a=np.array([], dtype=np.int64),
            node_b=np.array([], dtype=np.int64),
            n_nodes=3,
            duration=5.0,
        )
        assert len(trace) == 0

    def test_rejects_unsorted(self):
        with pytest.raises(TraceFormatError):
            ContactTrace(
                times=np.array([2.0, 1.0]),
                node_a=np.array([0, 0]),
                node_b=np.array([1, 1]),
                n_nodes=2,
                duration=5.0,
            )

    def test_rejects_self_contact(self):
        with pytest.raises(TraceFormatError):
            ContactTrace(
                times=np.array([1.0]),
                node_a=np.array([1]),
                node_b=np.array([1]),
                n_nodes=3,
                duration=5.0,
            )

    def test_rejects_out_of_range_ids(self):
        with pytest.raises(TraceFormatError):
            ContactTrace(
                times=np.array([1.0]),
                node_a=np.array([0]),
                node_b=np.array([5]),
                n_nodes=3,
                duration=5.0,
            )

    def test_rejects_times_past_duration(self):
        with pytest.raises(TraceFormatError):
            ContactTrace(
                times=np.array([6.0]),
                node_a=np.array([0]),
                node_b=np.array([1]),
                n_nodes=2,
                duration=5.0,
            )

    def test_rejects_single_node(self):
        with pytest.raises(TraceFormatError):
            ContactTrace(
                times=np.array([]),
                node_a=np.array([], dtype=np.int64),
                node_b=np.array([], dtype=np.int64),
                n_nodes=1,
                duration=5.0,
            )


class TestTransformations:
    def test_sliced(self):
        trace = make_trace().sliced(2.0, 8.0)
        assert len(trace) == 3
        assert trace.times[0] == pytest.approx(0.0)
        assert trace.duration == pytest.approx(6.0)

    def test_sliced_rejects_bad_window(self):
        with pytest.raises(TraceFormatError):
            make_trace().sliced(5.0, 3.0)

    def test_select_nodes_relabels(self):
        trace = make_trace().select_nodes([0, 1, 3])
        # kept events: (0,1) at t=1, (1,3) at t=7 -> relabeled (1,2).
        assert len(trace) == 2
        assert trace.n_nodes == 3
        assert trace.node_a.tolist() == [0, 1]
        assert trace.node_b.tolist() == [1, 2]

    def test_select_nodes_requires_two(self):
        with pytest.raises(TraceFormatError):
            make_trace().select_nodes([2])

    def test_time_scaled(self):
        trace = make_trace().time_scaled(2.0)
        assert trace.times[0] == pytest.approx(2.0)
        assert trace.duration == pytest.approx(20.0)
        assert trace.mean_pair_rate == pytest.approx(
            make_trace().mean_pair_rate / 2.0
        )

    def test_concatenate(self):
        trace = make_trace()
        joined = ContactTrace.concatenate([trace, trace])
        assert len(joined) == 8
        assert joined.duration == pytest.approx(20.0)
        assert joined.times[4] == pytest.approx(11.0)

    def test_concatenate_rejects_mismatched_nodes(self):
        other = ContactTrace(
            times=np.array([0.5]),
            node_a=np.array([0]),
            node_b=np.array([1]),
            n_nodes=2,
            duration=1.0,
        )
        with pytest.raises(TraceFormatError):
            ContactTrace.concatenate([make_trace(), other])


class TestSummaries:
    def test_pair_counts_symmetric(self):
        counts = make_trace().pair_counts()
        assert np.array_equal(counts, counts.T)
        assert counts[0, 1] == 1
        assert counts[1, 2] == 1
        assert counts.sum() == 2 * 4

    def test_node_contact_counts(self):
        counts = make_trace().node_contact_counts()
        assert counts.tolist() == [2, 3, 2, 1]

    def test_mean_pair_rate(self):
        trace = make_trace()
        assert trace.mean_pair_rate == pytest.approx(4 / (6 * 10.0))

    def test_iteration_yields_python_types(self):
        t, a, b = next(iter(make_trace()))
        assert isinstance(t, float)
        assert isinstance(a, int)
        assert isinstance(b, int)


class TestMemmapViews:
    """Trace transformations on memory-mapped columns.

    ``sliced``/``iter_chunks`` must stay zero-copy views into the
    backing file; relabeling/scaling transforms must materialize only
    their (small) outputs; and none of them may write through to disk.
    """

    @pytest.fixture
    def mapped(self, tmp_path):
        from repro.contacts import (
            homogeneous_poisson_trace,
            load_binary,
            save_binary,
        )

        trace = homogeneous_poisson_trace(10, 0.3, 60.0, seed=13)
        save_binary(trace, tmp_path / "t.ctb")
        return tmp_path / "t.ctb", load_binary(tmp_path / "t.ctb")

    def test_sliced_views_node_columns(self, mapped):
        """Only the (re-based) window times are materialized."""
        _, mm = mapped
        window = mm.sliced(10.0, 40.0)
        assert len(window) > 0
        assert np.shares_memory(window.node_a, mm.node_a)
        assert np.shares_memory(window.node_b, mm.node_b)
        # the time column is re-based to 0, so it is a fresh array of
        # window length, never a copy of the full mapped column
        assert not np.shares_memory(window.times, mm.times)
        assert len(window.times) < len(mm.times)

    def test_select_nodes_copies_only_subset(self, mapped):
        _, mm = mapped
        sub = mm.select_nodes([0, 1, 2, 3])
        assert sub.n_nodes == 4
        assert len(sub) < len(mm)
        assert not np.shares_memory(sub.times, mm.times)

    def test_transforms_leave_backing_file_untouched(self, mapped):
        path, mm = mapped
        before = (path / "times.f8").read_bytes()
        scaled = mm.time_scaled(2.0)
        assert scaled.duration == 2.0 * mm.duration
        mm.sliced(0.0, 30.0)
        mm.select_nodes([0, 1, 2])
        from repro.contacts import ContactTrace, load_binary

        ContactTrace.concatenate([mm.sliced(0.0, 30.0)])
        assert (path / "times.f8").read_bytes() == before
        reread = load_binary(path)
        assert np.array_equal(np.asarray(reread.times), np.asarray(mm.times))

    def test_memmap_columns_are_read_only(self, mapped):
        _, mm = mapped
        with pytest.raises(ValueError):
            mm.times[0] = -1.0

    def test_concatenate_materializes_plain_arrays(self, mapped):
        from repro.contacts import ContactTrace

        _, mm = mapped
        first = mm.sliced(0.0, 30.0)
        second = mm.sliced(30.0, 60.0)
        joined = ContactTrace.concatenate([first, second])
        assert len(joined) == len(first) + len(second)
        assert not isinstance(np.asarray(joined.times), np.memmap)

    def test_time_scaled_matches_eager(self, mapped):
        _, mm = mapped
        eager = ContactTrace(
            times=np.asarray(mm.times).copy(),
            node_a=np.asarray(mm.node_a).copy(),
            node_b=np.asarray(mm.node_b).copy(),
            n_nodes=mm.n_nodes,
            duration=mm.duration,
        )
        a = mm.time_scaled(1.5)
        b = eager.time_scaled(1.5)
        assert np.array_equal(np.asarray(a.times), np.asarray(b.times))
