"""Unit tests for composite and tabulated delay-utilities."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import UtilityDomainError
from repro.utility import (
    ExponentialUtility,
    MixtureUtility,
    ScaledUtility,
    ShiftedUtility,
    StepUtility,
    TabulatedUtility,
)


class TestScaledUtility:
    def test_scales_everything(self):
        base = ExponentialUtility(0.5)
        scaled = ScaledUtility(base, 3.0)
        assert scaled(2.0) == pytest.approx(3.0 * base(2.0))
        assert scaled.h0 == pytest.approx(3.0 * base.h0)
        assert scaled.expected_gain(1.0) == pytest.approx(
            3.0 * base.expected_gain(1.0)
        )
        assert scaled.phi(2.0, 0.1) == pytest.approx(3.0 * base.phi(2.0, 0.1))

    def test_phi_inverse_round_trip(self):
        scaled = ScaledUtility(ExponentialUtility(0.5), 3.0)
        x = 4.0
        assert scaled.phi_inverse(scaled.phi(x, 0.05), 0.05) == pytest.approx(x)

    def test_scaling_does_not_change_optimal_shape(self):
        # psi is scaled by the same constant, so the equilibrium condition
        # d_i phi(x_i) = const selects the same allocation.
        base = ExponentialUtility(0.5)
        scaled = ScaledUtility(base, 7.0)
        ratio = scaled.phi(1.0, 0.05) / base.phi(1.0, 0.05)
        assert scaled.phi(9.0, 0.05) / base.phi(9.0, 0.05) == pytest.approx(
            ratio
        )

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(UtilityDomainError):
            ScaledUtility(StepUtility(1.0), 0.0)


class TestShiftedUtility:
    def test_shifts_h_but_not_phi(self):
        base = StepUtility(2.0)
        shifted = ShiftedUtility(base, 5.0)
        assert shifted(1.0) == pytest.approx(base(1.0) + 5.0)
        assert shifted.h0 == pytest.approx(6.0)
        assert shifted.phi(3.0, 0.05) == pytest.approx(base.phi(3.0, 0.05))

    def test_expected_gain_shifted(self):
        base = StepUtility(2.0)
        shifted = ShiftedUtility(base, -1.0)
        assert shifted.expected_gain(0.7) == pytest.approx(
            base.expected_gain(0.7) - 1.0
        )

    def test_gain_never(self):
        shifted = ShiftedUtility(StepUtility(1.0), 2.0)
        assert shifted.gain_never == pytest.approx(2.0)


class TestMixtureUtility:
    def test_average_of_components(self):
        mix = MixtureUtility(
            [(0.25, StepUtility(1.0)), (0.75, ExponentialUtility(1.0))]
        )
        t = 0.5
        expected = 0.25 * 1.0 + 0.75 * math.exp(-0.5)
        assert mix(t) == pytest.approx(expected)

    def test_expected_gain_linear(self):
        step = StepUtility(2.0)
        exp = ExponentialUtility(0.5)
        mix = MixtureUtility([(0.5, step), (0.5, exp)])
        rate = 0.8
        assert mix.expected_gain(rate) == pytest.approx(
            0.5 * step.expected_gain(rate) + 0.5 * exp.expected_gain(rate)
        )

    def test_phi_linear(self):
        step = StepUtility(2.0)
        exp = ExponentialUtility(0.5)
        mix = MixtureUtility([(0.3, step), (0.7, exp)])
        assert mix.phi(4.0, 0.05) == pytest.approx(
            0.3 * step.phi(4.0, 0.05) + 0.7 * exp.phi(4.0, 0.05)
        )

    def test_generic_phi_inverse_works(self):
        mix = MixtureUtility(
            [(0.5, StepUtility(2.0)), (0.5, ExponentialUtility(0.5))]
        )
        x = 6.0
        value = mix.phi(x, 0.05)
        assert mix.phi_inverse(value, 0.05) == pytest.approx(x, rel=1e-6)

    def test_differential_combines(self):
        mix = MixtureUtility(
            [(0.5, StepUtility(2.0)), (0.5, ExponentialUtility(0.5))]
        )
        measure = mix.differential
        assert len(measure.atoms) == 1
        assert measure.atoms[0].mass == pytest.approx(0.5)
        assert measure.total_mass() == pytest.approx(1.0, rel=1e-8)

    def test_rejects_empty_or_bad_weights(self):
        with pytest.raises(UtilityDomainError):
            MixtureUtility([])
        with pytest.raises(UtilityDomainError):
            MixtureUtility([(0.0, StepUtility(1.0))])


class TestTabulatedUtility:
    def make(self):
        return TabulatedUtility([0.0, 1.0, 3.0], [1.0, 0.4, 0.0])

    def test_interpolation(self):
        u = self.make()
        assert u(0.5) == pytest.approx(0.7)
        assert u(2.0) == pytest.approx(0.2)
        assert u(10.0) == pytest.approx(0.0)  # constant beyond last knot

    def test_limits(self):
        u = self.make()
        assert u.h0 == 1.0
        assert u.gain_never == 0.0

    def test_laplace_against_quadrature(self):
        from repro.utility.base import DelayUtility

        u = self.make()
        for rate in (0.3, 1.0, 4.0):
            numeric = u.differential.laplace(rate)
            assert u.laplace_c(rate) == pytest.approx(numeric, rel=1e-7)

    def test_phi_against_quadrature(self):
        from repro.utility.base import DelayUtility

        u = self.make()
        for x in (0.0, 1.0, 6.0):
            numeric = DelayUtility.phi(u, x, 0.8)
            assert u.phi(x, 0.8) == pytest.approx(numeric, rel=1e-7)

    def test_expected_gain_consistent(self):
        u = self.make()
        rate = 1.2
        assert u.expected_gain(rate) == pytest.approx(
            u.h0 - u.laplace_c(rate), rel=1e-9
        )

    def test_validation(self):
        with pytest.raises(UtilityDomainError):
            TabulatedUtility([0.0], [1.0])  # too few samples
        with pytest.raises(UtilityDomainError):
            TabulatedUtility([0.5, 1.0], [1.0, 0.5])  # must start at 0
        with pytest.raises(UtilityDomainError):
            TabulatedUtility([0.0, 1.0], [0.5, 1.0])  # increasing
        with pytest.raises(UtilityDomainError):
            TabulatedUtility([0.0, 0.0], [1.0, 0.5])  # not increasing times

    def test_survey_shaped_curve_usable_in_qcr_pipeline(self):
        # A "measured impatience" curve still yields a usable reaction fn.
        u = TabulatedUtility(
            [0.0, 5.0, 15.0, 60.0], [1.0, 0.9, 0.35, 0.0]
        )
        psi_values = [u.psi(y, 50, 0.05) for y in (2.0, 10.0, 40.0)]
        assert all(v >= 0 for v in psi_values)
        assert any(v > 0 for v in psi_values)
