"""Unit tests for the concrete delay-utility families (Table 1)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import UtilityDomainError
from repro.utility import (
    ExponentialUtility,
    NegLogUtility,
    PowerUtility,
    StepUtility,
    power_family,
)


class TestStepUtility:
    def test_values(self):
        u = StepUtility(2.0)
        assert u(1.0) == 1.0
        assert u(2.0) == 1.0  # inclusive deadline
        assert u(2.0001) == 0.0

    def test_vectorized(self):
        u = StepUtility(1.0)
        values = u(np.array([0.5, 1.0, 1.5]))
        assert values.tolist() == [1.0, 1.0, 0.0]

    def test_limits(self):
        u = StepUtility(3.0)
        assert u.h0 == 1.0
        assert u.gain_never == 0.0

    def test_expected_gain_closed_form(self):
        u = StepUtility(3.0)
        assert u.expected_gain(0.5) == pytest.approx(1 - math.exp(-1.5))

    def test_expected_gain_edge_rates(self):
        u = StepUtility(3.0)
        assert u.expected_gain(0.0) == 0.0
        assert u.expected_gain(math.inf) == 1.0

    def test_phi_closed_form(self):
        u = StepUtility(2.0)
        mu = 0.1
        assert u.phi(4.0, mu) == pytest.approx(0.2 * math.exp(-0.8))

    def test_phi_inverse_round_trip(self):
        u = StepUtility(2.0)
        for x in (0.5, 3.0, 12.0):
            assert u.phi_inverse(u.phi(x, 0.05), 0.05) == pytest.approx(x)

    def test_phi_inverse_saturates_at_zero(self):
        u = StepUtility(2.0)
        assert u.phi_inverse(1e9, 0.05) == 0.0

    def test_rejects_bad_tau(self):
        with pytest.raises(UtilityDomainError):
            StepUtility(0.0)

    def test_differential_is_single_atom(self):
        u = StepUtility(1.5)
        measure = u.differential
        assert measure.density is None
        assert len(measure.atoms) == 1
        assert measure.atoms[0].location == 1.5
        assert measure.atoms[0].mass == 1.0


class TestExponentialUtility:
    def test_values(self):
        u = ExponentialUtility(0.5)
        assert u(2.0) == pytest.approx(math.exp(-1.0))

    def test_limits(self):
        u = ExponentialUtility(1.0)
        assert u.h0 == 1.0
        assert u.gain_never == 0.0

    def test_expected_gain_closed_form(self):
        u = ExponentialUtility(2.0)
        # E[exp(-nu Y)] = rate/(rate+nu).
        assert u.expected_gain(3.0) == pytest.approx(3.0 / 5.0)

    def test_phi_closed_form(self):
        u = ExponentialUtility(2.0)
        assert u.phi(1.0, 0.5) == pytest.approx(0.5 * 2.0 / (2.0 + 0.5) ** 2)

    def test_phi_inverse_round_trip(self):
        u = ExponentialUtility(0.3)
        for x in (0.1, 2.0, 40.0):
            assert u.phi_inverse(u.phi(x, 0.05), 0.05) == pytest.approx(x)

    def test_psi_matches_table1_form(self):
        # psi(y) = 1/(nu*y/(mu*S) + 2 + mu*S/(nu*y)).
        nu, mu, s = 0.7, 0.05, 50
        u = ExponentialUtility(nu)
        for y in (1.0, 5.0, 30.0):
            expected = 1.0 / (
                nu * y / (mu * s) + 2.0 + mu * s / (nu * y)
            )
            assert u.psi(y, s, mu) == pytest.approx(expected)

    def test_rejects_bad_nu(self):
        with pytest.raises(UtilityDomainError):
            ExponentialUtility(-1.0)


class TestPowerUtility:
    def test_waiting_cost_values(self):
        u = PowerUtility(0.0)  # h(t) = -t
        assert u(3.0) == pytest.approx(-3.0)
        assert u.h0 == 0.0
        assert u.gain_never == -math.inf

    def test_time_critical_values(self):
        u = PowerUtility(1.5)  # h(t) = 2/sqrt(t)
        assert u(4.0) == pytest.approx(1.0)
        assert u.h0 == math.inf
        assert u.gain_never == 0.0
        assert not u.finite_at_zero

    def test_monotone_decreasing(self):
        for alpha in (-2.0, -0.5, 0.0, 0.5, 1.5, 1.9):
            u = power_family(alpha)
            times = np.linspace(0.1, 10.0, 50)
            values = np.asarray(u(times))
            assert np.all(np.diff(values) <= 1e-12), alpha

    def test_expected_gain_closed_form(self):
        # alpha=0: E[-Y] = -1/rate.
        u = PowerUtility(0.0)
        assert u.expected_gain(0.25) == pytest.approx(-4.0)

    def test_expected_gain_alpha_half(self):
        # alpha=0.5: h=-2 sqrt(t); E[sqrt(Y)] = Gamma(1.5)/sqrt(rate).
        u = PowerUtility(0.5)
        rate = 2.0
        expected = -2.0 * math.gamma(1.5) / math.sqrt(rate)
        assert u.expected_gain(rate) == pytest.approx(expected)

    def test_phi_closed_form(self):
        u = PowerUtility(0.0)
        # phi(x) = 1/(mu x^2) at alpha=0.
        assert u.phi(4.0, 0.05) == pytest.approx(1 / (0.05 * 16.0))

    def test_phi_at_zero_is_infinite(self):
        assert PowerUtility(0.5).phi(0.0, 1.0) == math.inf

    def test_phi_inverse_round_trip(self):
        for alpha in (-1.0, 0.0, 0.5, 1.5):
            u = PowerUtility(alpha)
            for x in (0.5, 7.0):
                assert u.phi_inverse(u.phi(x, 0.05), 0.05) == pytest.approx(x)

    def test_alpha_domain(self):
        with pytest.raises(UtilityDomainError):
            PowerUtility(2.0)
        with pytest.raises(UtilityDomainError):
            PowerUtility(1.0)

    def test_laplace_infinite_for_alpha_ge_1(self):
        assert PowerUtility(1.5).laplace_c(1.0) == math.inf

    def test_laplace_closed_form_alpha_below_1(self):
        u = PowerUtility(0.5)
        rate = 2.0
        assert u.laplace_c(rate) == pytest.approx(
            math.gamma(0.5) * rate**-0.5
        )


class TestNegLogUtility:
    def test_values(self):
        u = NegLogUtility()
        assert u(1.0) == 0.0
        assert u(math.e) == pytest.approx(-1.0)

    def test_expected_gain(self):
        u = NegLogUtility()
        # E[-ln Y] = gamma + ln(rate).
        assert u.expected_gain(1.0) == pytest.approx(0.5772156649, rel=1e-6)

    def test_phi_is_reciprocal(self):
        u = NegLogUtility()
        assert u.phi(5.0, 0.3) == pytest.approx(0.2)

    def test_psi_is_constant(self):
        # Constant reaction = proportional (passive) replication optimal.
        u = NegLogUtility()
        values = [u.psi(y, 50, 0.05) for y in (1.0, 10.0, 100.0)]
        assert max(values) == pytest.approx(min(values))

    def test_power_family_dispatch(self):
        assert isinstance(power_family(1.0), NegLogUtility)
        assert isinstance(power_family(0.5), PowerUtility)


class TestCommonBehaviour:
    @pytest.mark.parametrize(
        "utility",
        [
            StepUtility(2.0),
            ExponentialUtility(0.5),
            PowerUtility(0.5),
            PowerUtility(-1.0),
            NegLogUtility(),
        ],
        ids=lambda u: u.name,
    )
    def test_expected_gain_increases_with_rate(self, utility):
        rates = [0.01, 0.1, 1.0, 10.0]
        gains = [utility.expected_gain(r) for r in rates]
        assert all(a <= b + 1e-12 for a, b in zip(gains, gains[1:]))

    @pytest.mark.parametrize(
        "utility",
        [
            StepUtility(2.0),
            ExponentialUtility(0.5),
            PowerUtility(0.5),
            NegLogUtility(),
        ],
        ids=lambda u: u.name,
    )
    def test_phi_decreases_with_x(self, utility):
        values = [utility.phi(x, 0.05) for x in (0.5, 1.0, 5.0, 20.0)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_negative_rate_rejected(self):
        with pytest.raises(UtilityDomainError):
            StepUtility(1.0).expected_gain(-0.1)

    def test_psi_rejects_bad_arguments(self):
        u = StepUtility(1.0)
        with pytest.raises(UtilityDomainError):
            u.psi(0.0, 50, 0.05)
        with pytest.raises(UtilityDomainError):
            u.psi(5.0, 0, 0.05)
