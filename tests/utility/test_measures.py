"""Unit tests for the differential-measure machinery."""

from __future__ import annotations

import math

import pytest

from repro.utility.measures import Atom, DifferentialMeasure


class TestAtom:
    def test_rejects_negative_location(self):
        with pytest.raises(ValueError):
            Atom(-1.0, 1.0)

    def test_rejects_negative_mass(self):
        with pytest.raises(ValueError):
            Atom(1.0, -0.5)


class TestDifferentialMeasure:
    def test_requires_density_or_atoms(self):
        with pytest.raises(ValueError):
            DifferentialMeasure()

    def test_atom_only_laplace(self):
        measure = DifferentialMeasure(atoms=(Atom(2.0, 3.0),))
        assert measure.laplace(0.5) == pytest.approx(3.0 * math.exp(-1.0))

    def test_atom_outside_upper_excluded(self):
        measure = DifferentialMeasure(atoms=(Atom(2.0, 1.0),))
        assert measure.total_mass(upper=1.0) == 0.0
        assert measure.total_mass(upper=3.0) == 1.0

    def test_density_total_mass(self):
        # Density nu*exp(-nu*t) has total mass 1.
        measure = DifferentialMeasure(density=lambda t: 2.0 * math.exp(-2.0 * t))
        assert measure.total_mass() == pytest.approx(1.0, rel=1e-8)

    def test_density_plus_atom(self):
        measure = DifferentialMeasure(
            density=lambda t: math.exp(-t), atoms=(Atom(1.0, 0.5),)
        )
        assert measure.total_mass() == pytest.approx(1.5, rel=1e-8)

    def test_laplace_rejects_negative_rate(self):
        measure = DifferentialMeasure(atoms=(Atom(1.0, 1.0),))
        with pytest.raises(ValueError):
            measure.laplace(-1.0)

    def test_scaled(self):
        measure = DifferentialMeasure(
            density=lambda t: math.exp(-t), atoms=(Atom(1.0, 2.0),)
        )
        doubled = measure.scaled(2.0)
        assert doubled.total_mass() == pytest.approx(
            2.0 * measure.total_mass(), rel=1e-8
        )

    def test_scaled_rejects_negative(self):
        measure = DifferentialMeasure(atoms=(Atom(1.0, 1.0),))
        with pytest.raises(ValueError):
            measure.scaled(-1.0)

    def test_combine_sums_masses(self):
        first = DifferentialMeasure(density=lambda t: math.exp(-t))
        second = DifferentialMeasure(atoms=(Atom(0.5, 0.25),))
        combined = DifferentialMeasure.combine([first, second])
        assert combined.total_mass() == pytest.approx(1.25, rel=1e-8)

    def test_combine_empty_rejected(self):
        with pytest.raises(ValueError):
            DifferentialMeasure.combine([])

    def test_integrate_weight(self):
        # integral of t * 1{t<=2} Dirac(2) = 2 * mass.
        measure = DifferentialMeasure(atoms=(Atom(2.0, 0.5),))
        assert measure.integrate(lambda t: t) == pytest.approx(1.0)

    def test_breakpoints_improve_panels(self):
        # A piecewise-constant density integrated exactly when split.
        def density(t: float) -> float:
            return 1.0 if t < 1.0 else 0.0

        measure = DifferentialMeasure(
            density=density, breakpoints=(1.0,)
        )
        assert measure.integrate(lambda t: 1.0, upper=5.0) == pytest.approx(
            1.0, rel=1e-9
        )
