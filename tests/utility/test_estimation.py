"""Tests for delay-utility estimation from feedback (paper future work)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import UtilityDomainError
from repro.utility import (
    ExponentialUtility,
    FeedbackSample,
    StepUtility,
    estimate_consumption_curve,
    pava_decreasing,
    synthesize_feedback,
)


class TestPava:
    def test_already_monotone_unchanged(self):
        values = np.array([0.9, 0.7, 0.4, 0.1])
        fitted = pava_decreasing(values, np.ones(4))
        assert np.allclose(fitted, values)

    def test_single_violation_pooled(self):
        fitted = pava_decreasing(
            np.array([0.5, 0.8, 0.2]), np.ones(3)
        )
        assert fitted[0] == pytest.approx(0.65)
        assert fitted[1] == pytest.approx(0.65)
        assert fitted[2] == pytest.approx(0.2)

    def test_weights_respected(self):
        fitted = pava_decreasing(
            np.array([0.0, 1.0]), np.array([1.0, 3.0])
        )
        assert np.allclose(fitted, 0.75)

    def test_validation(self):
        with pytest.raises(UtilityDomainError):
            pava_decreasing(np.array([1.0]), np.array([0.0]))
        with pytest.raises(UtilityDomainError):
            pava_decreasing(np.array([1.0, 2.0]), np.array([1.0]))

    @settings(max_examples=80, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=25
        )
    )
    def test_output_monotone_and_mean_preserving(self, values):
        arr = np.asarray(values)
        fitted = pava_decreasing(arr, np.ones(len(arr)))
        assert np.all(np.diff(fitted) <= 1e-12)
        assert fitted.mean() == pytest.approx(arr.mean(), abs=1e-9)
        # Fit stays within the data range.
        assert fitted.min() >= arr.min() - 1e-12
        assert fitted.max() <= arr.max() + 1e-12


class TestEstimation:
    def test_recovers_exponential_curve(self):
        truth = ExponentialUtility(0.2)
        samples = synthesize_feedback(truth, 20000, delay_scale=8.0, seed=1)
        estimate = estimate_consumption_curve(samples, n_bins=15)
        for t in (1.0, 3.0, 8.0, 15.0):
            assert float(estimate(t)) == pytest.approx(
                float(truth(t)), abs=0.06
            )

    def test_recovers_step_deadline_roughly(self):
        truth = StepUtility(5.0)
        samples = synthesize_feedback(truth, 20000, delay_scale=6.0, seed=2)
        estimate = estimate_consumption_curve(samples, n_bins=20)
        assert float(estimate(1.0)) > 0.9
        assert float(estimate(15.0)) < 0.25

    def test_estimate_is_valid_utility(self):
        truth = ExponentialUtility(0.5)
        samples = synthesize_feedback(truth, 2000, seed=3)
        estimate = estimate_consumption_curve(samples)
        # Must support the whole downstream toolchain.
        assert estimate.expected_gain(0.3) > 0
        assert estimate.phi(3.0, 0.05) >= 0
        assert estimate.psi(10.0, 50, 0.05) >= 0

    def test_estimated_curve_drives_allocation(self):
        """End-to-end: feedback -> estimate -> optimal allocation close to
        the one computed from the true curve."""
        from repro.allocation import greedy_homogeneous
        from repro.demand import DemandModel

        truth = ExponentialUtility(0.3)
        samples = synthesize_feedback(truth, 30000, delay_scale=8.0, seed=4)
        estimate = estimate_consumption_curve(samples, n_bins=15)
        demand = DemandModel.pareto(10, omega=1.0)
        exact = greedy_homogeneous(demand, truth, 0.05, 20, 2)
        fitted = greedy_homogeneous(demand, estimate, 0.05, 20, 2)
        # Allocations agree item-by-item within a couple of copies.
        assert np.all(np.abs(exact.counts - fitted.counts) <= 3)

    def test_too_few_samples_rejected(self):
        samples = [FeedbackSample(1.0, True)] * 5
        with pytest.raises(UtilityDomainError):
            estimate_consumption_curve(samples)

    def test_negative_delays_rejected(self):
        samples = [FeedbackSample(-1.0, True)] * 20
        with pytest.raises(UtilityDomainError):
            estimate_consumption_curve(samples)

    def test_synthesize_validation(self):
        with pytest.raises(UtilityDomainError):
            synthesize_feedback(StepUtility(1.0), 0)

    @settings(max_examples=20, deadline=None)
    @given(nu=st.floats(min_value=0.05, max_value=1.0))
    def test_estimate_monotone_any_truth(self, nu):
        truth = ExponentialUtility(nu)
        samples = synthesize_feedback(truth, 600, delay_scale=5.0, seed=7)
        estimate = estimate_consumption_curve(samples, n_bins=6)
        times = np.linspace(0.1, 30.0, 40)
        values = np.asarray(estimate(times))
        assert np.all(np.diff(values) <= 1e-9)
