"""Closed forms vs. the generic numeric implementations (Table 1 checks).

Every closed-form override in the utility families must agree with the
base class's quadrature over the differential measure — this is the
numerical verification of the paper's Table 1.
"""

from __future__ import annotations

import pytest

from repro.utility.base import DelayUtility

from ..conftest import ALL_UTILITIES


@pytest.mark.parametrize("utility", ALL_UTILITIES, ids=lambda u: u.name)
class TestClosedFormsAgainstQuadrature:
    def test_expected_gain(self, utility):
        for rate in (0.05, 0.4, 3.0):
            closed = utility.expected_gain(rate)
            if utility.finite_at_zero:
                numeric = utility.h0 - DelayUtility.laplace_c(utility, rate)
            else:
                numeric = DelayUtility._expected_gain_numeric(utility, rate)
            assert closed == pytest.approx(numeric, rel=1e-6, abs=1e-9)

    def test_phi(self, utility):
        for x in (0.3, 2.0, 15.0):
            for mu in (0.05, 1.0):
                closed = utility.phi(x, mu)
                numeric = DelayUtility.phi(utility, x, mu)
                assert closed == pytest.approx(numeric, rel=1e-6)

    def test_psi_definition(self, utility):
        # psi(y) = (S/y) * phi(S/y) by construction, with the closed-form
        # phi — verify against the numeric phi.
        s, mu = 50, 0.05
        for y in (1.5, 8.0, 60.0):
            ratio = s / y
            numeric = ratio * DelayUtility.phi(utility, ratio, mu)
            assert utility.psi(y, s, mu) == pytest.approx(numeric, rel=1e-6)

    def test_phi_inverse_against_generic(self, utility):
        mu = 0.05
        for x in (0.7, 6.0):
            value = utility.phi(x, mu)
            generic = DelayUtility.phi_inverse(utility, value, mu)
            assert utility.phi_inverse(value, mu) == pytest.approx(
                generic, rel=1e-5
            )


@pytest.mark.parametrize(
    "utility",
    [u for u in ALL_UTILITIES if u.finite_at_zero],
    ids=lambda u: u.name,
)
def test_discrete_converges_to_continuous(utility):
    """Lemma 1's discrete model approaches the continuous one as delta->0."""
    mu, x = 0.05, 6
    continuous = utility.expected_gain(mu * x)
    delta = 0.005
    failure = (1.0 - mu * delta) ** x
    discrete = utility.expected_gain_discrete(failure, delta)
    assert discrete == pytest.approx(continuous, rel=2e-2, abs=2e-3)


def test_discrete_gain_failure_one_is_never():
    from repro.utility import StepUtility

    utility = StepUtility(5.0)
    assert utility.expected_gain_discrete(1.0, 0.1) == utility.gain_never


def test_delta_c_definition():
    from repro.utility import ExponentialUtility

    utility = ExponentialUtility(0.5)
    delta = 0.2
    for k in (1, 3, 10):
        expected = float(utility(k * delta)) - float(utility((k + 1) * delta))
        assert utility.delta_c(k, delta) == pytest.approx(expected)


def test_delta_c_at_zero_uses_h0():
    from repro.utility import StepUtility

    utility = StepUtility(5.0)
    assert utility.delta_c(0, 0.1) == pytest.approx(0.0)  # h0 - h(delta) = 0
