"""Tests for the Table-1 assembly and its verification harness."""

from __future__ import annotations

from repro.experiments import verify_table1
from repro.utility import table1_rows
from repro.utility.exponential import ExponentialUtility
from repro.utility.power import NegLogUtility, PowerUtility
from repro.utility.step import StepUtility


class TestTable1Rows:
    def test_five_families_present(self):
        labels = [row.label for row in table1_rows()]
        assert any("Step" in label for label in labels)
        assert any("Exponential" in label for label in labels)
        assert any("Inv. power" in label for label in labels)
        assert any("Neg. power" in label for label in labels)
        assert any("logarithm" in label for label in labels)

    def test_utility_types(self):
        rows = table1_rows()
        assert isinstance(rows[0].utility, StepUtility)
        assert isinstance(rows[1].utility, ExponentialUtility)
        assert isinstance(rows[2].utility, PowerUtility)
        assert isinstance(rows[-1].utility, NegLogUtility)

    def test_custom_parameters(self):
        rows = table1_rows(tau=7.0, nu=0.2, inverse_alpha=1.25)
        assert rows[0].utility.tau == 7.0
        assert rows[1].utility.nu == 0.2
        assert rows[2].utility.alpha == 1.25

    def test_inverse_alpha_in_range(self):
        rows = table1_rows(inverse_alpha=1.5)
        assert 1 < rows[2].utility.alpha < 2


class TestVerification:
    def test_all_closed_forms_verified(self):
        verification = verify_table1()
        assert verification.max_relative_error < 1e-6

    def test_entries_cover_all_quantities(self):
        verification = verify_table1()
        quantities = {e.quantity for e in verification.entries}
        assert quantities == {"phi(x)", "E[h(Y)]", "psi(y)"}

    def test_render_contains_families(self):
        text = verify_table1().render()
        assert "Step function" in text
        assert "psi(y)" in text
