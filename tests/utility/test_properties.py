"""Property-based tests for delay-utility invariants (hypothesis)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utility import (
    ExponentialUtility,
    PowerUtility,
    StepUtility,
    power_family,
)

# Parameter strategies kept in numerically comfortable ranges.
taus = st.floats(min_value=0.01, max_value=100.0)
nus = st.floats(min_value=0.01, max_value=10.0)
alphas = st.floats(min_value=-3.0, max_value=1.9).filter(
    lambda a: abs(a - 1.0) > 1e-3
)
rates = st.floats(min_value=1e-3, max_value=100.0)
counts = st.floats(min_value=1e-2, max_value=200.0)


def family_strategy():
    return st.one_of(
        taus.map(StepUtility),
        nus.map(ExponentialUtility),
        alphas.map(power_family),
    )


@given(utility=family_strategy(), t1=rates, t2=rates)
def test_h_monotone_non_increasing(utility, t1, t2):
    lo, hi = min(t1, t2), max(t1, t2)
    assert float(utility(lo)) >= float(utility(hi)) - 1e-12


@given(utility=family_strategy(), r1=rates, r2=rates)
def test_expected_gain_monotone_in_rate(utility, r1, r2):
    lo, hi = min(r1, r2), max(r1, r2)
    assert utility.expected_gain(lo) <= utility.expected_gain(hi) + 1e-9


@given(utility=family_strategy(), x1=counts, x2=counts)
def test_phi_monotone_decreasing(utility, x1, x2):
    lo, hi = min(x1, x2), max(x1, x2)
    assert utility.phi(lo, 0.05) >= utility.phi(hi, 0.05) - 1e-12


@given(utility=family_strategy(), x=counts)
def test_phi_non_negative(utility, x):
    # phi is a positive integral but may underflow to exactly 0 for
    # extreme deadline/count combinations (e.g. exp(-mu*tau*x) -> 0).
    assert utility.phi(x, 0.05) >= 0


@settings(max_examples=50)
@given(utility=family_strategy(), x=st.floats(min_value=0.1, max_value=50.0))
def test_phi_inverse_round_trip(utility, x):
    mu = 0.05
    value = utility.phi(x, mu)
    recovered = utility.phi_inverse(value, mu)
    assert recovered == pytest.approx(x, rel=1e-4, abs=1e-6)


@given(
    utility=family_strategy(),
    y=st.floats(min_value=0.5, max_value=500.0),
)
def test_psi_identity(utility, y):
    """Property 2: psi(y) = (S/y) phi(S/y)."""
    s, mu = 50, 0.05
    expected = (s / y) * utility.phi(s / y, mu)
    assert utility.psi(y, s, mu) == pytest.approx(expected, rel=1e-9)


@given(utility=family_strategy())
def test_expected_gain_bounded_by_h0(utility):
    gain = utility.expected_gain(1.0)
    assert gain <= utility.h0 + 1e-9
    assert gain >= utility.gain_never - 1e-9


@settings(max_examples=30)
@given(tau=taus, rate=rates)
def test_step_gain_is_deadline_probability(tau, rate):
    """E[1{Y<=tau}] = P(Y <= tau) for Y ~ Exp(rate)."""
    utility = StepUtility(tau)
    assert utility.expected_gain(rate) == pytest.approx(
        1.0 - math.exp(-rate * tau), rel=1e-12
    )


@settings(max_examples=30)
@given(alpha=st.floats(min_value=-2.0, max_value=0.9), scale=st.floats(min_value=0.5, max_value=3.0))
def test_power_gain_scaling_law(alpha, scale):
    """E[h(Y)] under rate r scales as r^(alpha-1) for the power family."""
    utility = PowerUtility(alpha) if alpha != 1.0 else None
    if utility is None:
        return
    base = utility.expected_gain(1.0)
    scaled = utility.expected_gain(scale)
    assert scaled == pytest.approx(base * scale ** (alpha - 1.0), rel=1e-9)


@settings(max_examples=25)
@given(
    utility=family_strategy(),
    t=st.floats(min_value=0.05, max_value=20.0),
    dt=st.floats(min_value=0.01, max_value=5.0),
)
def test_differential_mass_matches_h_drop(utility, t, dt):
    """Integral of c over (t, t+dt] equals h(t) - h(t+dt)."""
    measure = utility.differential
    # Atoms exactly on the interval boundary make the half-open
    # convention ambiguous (measure-zero event); nudge past them.
    for atom in measure.atoms:
        if abs(atom.location - t) < 1e-9 or abs(atom.location - (t + dt)) < 1e-9:
            t = t * (1 + 1e-6) + 1e-6
            break
    # Difference of two smooth integrals — quadrature with a
    # discontinuous indicator weight can miss narrow slivers.
    mass = measure.total_mass(upper=t + dt) - measure.total_mass(upper=t)
    drop = float(utility(t)) - float(utility(t + dt))
    assert mass == pytest.approx(drop, rel=1e-4, abs=1e-6)
