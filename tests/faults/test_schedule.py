"""Tests for FaultEvent / FaultSchedule construction and composition."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.faults import FAULT_KINDS, FaultEvent, FaultSchedule


class TestFaultEvent:
    def test_kinds_exported(self):
        assert FAULT_KINDS == ("crash", "recover", "replica_loss")

    @pytest.mark.parametrize("time", [-1.0, float("nan"), float("inf")])
    def test_bad_time_rejected(self, time):
        with pytest.raises(ConfigurationError, match="finite"):
            FaultEvent(time=time, kind="crash", node=0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultEvent(time=1.0, kind="meltdown", node=0)

    @pytest.mark.parametrize("kind", ["crash", "recover"])
    def test_node_required(self, kind):
        with pytest.raises(ConfigurationError, match="needs a node"):
            FaultEvent(time=1.0, kind=kind)

    def test_replica_loss_node_optional(self):
        event = FaultEvent(time=1.0, kind="replica_loss")
        assert event.node is None and event.item is None

    def test_negative_ids_rejected(self):
        with pytest.raises(ConfigurationError, match="node id"):
            FaultEvent(time=1.0, kind="crash", node=-1)
        with pytest.raises(ConfigurationError, match="item id"):
            FaultEvent(time=1.0, kind="replica_loss", node=0, item=-2)


class TestFaultSchedule:
    def test_events_sorted_by_time(self):
        schedule = FaultSchedule(
            events=(
                FaultEvent(time=5.0, kind="recover", node=0),
                FaultEvent(time=1.0, kind="crash", node=0),
                FaultEvent(time=3.0, kind="replica_loss"),
            )
        )
        assert [e.time for e in schedule] == [1.0, 3.0, 5.0]
        assert len(schedule) == 3

    @pytest.mark.parametrize("p", [-0.1, 1.0, 1.5])
    def test_bad_drop_prob_rejected(self, p):
        with pytest.raises(ConfigurationError, match="drop_prob"):
            FaultSchedule(drop_prob=p)

    def test_runtime_rng_deterministic(self):
        schedule = FaultSchedule(seed=42)
        a = schedule.runtime_rng().random(5)
        b = schedule.runtime_rng().random(5)
        assert (a == b).all()

    def test_merge_pools_and_sorts_events(self):
        left = FaultSchedule.crash_wave(10.0, [0, 1], drop_prob=0.1)
        right = FaultSchedule(
            events=(FaultEvent(time=2.0, kind="replica_loss"),),
            drop_prob=0.2,
        )
        merged = left + right
        assert [e.time for e in merged] == [2.0, 10.0, 10.0]
        # Independent drop processes compose: 1 - 0.9 * 0.8.
        assert merged.drop_prob == pytest.approx(0.28)
        assert merged.seed == left.seed

    def test_merge_conflicting_sticky_policy_rejected(self):
        left = FaultSchedule(sticky_survives=True)
        right = FaultSchedule(sticky_survives=False)
        with pytest.raises(ConfigurationError, match="sticky_survives"):
            left.merge(right)


class TestCrashWave:
    def test_crash_and_recover_events(self):
        wave = FaultSchedule.crash_wave(10.0, [2, 0, 1], recover_at=20.0)
        crashes = [e for e in wave if e.kind == "crash"]
        recoveries = [e for e in wave if e.kind == "recover"]
        assert [e.node for e in crashes] == [0, 1, 2]
        assert all(e.time == 10.0 for e in crashes)
        assert [e.node for e in recoveries] == [0, 1, 2]
        assert all(e.time == 20.0 for e in recoveries)

    def test_no_recovery_by_default(self):
        wave = FaultSchedule.crash_wave(10.0, [0])
        assert all(e.kind == "crash" for e in wave)

    def test_duplicate_nodes_collapsed(self):
        wave = FaultSchedule.crash_wave(10.0, [1, 1, 1])
        assert len(wave) == 1

    def test_empty_nodes_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one node"):
            FaultSchedule.crash_wave(10.0, [])

    def test_recover_before_crash_rejected(self):
        with pytest.raises(ConfigurationError, match="recover_at"):
            FaultSchedule.crash_wave(10.0, [0], recover_at=10.0)

    def test_flags_propagated(self):
        wave = FaultSchedule.crash_wave(
            5.0, [0], wipe_cache=False, lose_mandates=False,
            sticky_survives=False, drop_prob=0.25, seed=7,
        )
        (event,) = wave.events
        assert not event.wipe_cache and not event.lose_mandates
        assert not wave.sticky_survives
        assert wave.drop_prob == 0.25
        assert wave.seed == 7


class TestNodeChurn:
    def test_deterministic(self):
        a = FaultSchedule.node_churn(
            10, crash_rate=0.01, mean_downtime=50.0, duration=1000.0, seed=3
        )
        b = FaultSchedule.node_churn(
            10, crash_rate=0.01, mean_downtime=50.0, duration=1000.0, seed=3
        )
        assert a.events == b.events

    def test_seed_changes_events(self):
        a = FaultSchedule.node_churn(
            10, crash_rate=0.01, mean_downtime=50.0, duration=1000.0, seed=3
        )
        b = FaultSchedule.node_churn(
            10, crash_rate=0.01, mean_downtime=50.0, duration=1000.0, seed=4
        )
        assert a.events != b.events

    def test_alternating_per_node(self):
        churn = FaultSchedule.node_churn(
            5, crash_rate=0.05, mean_downtime=20.0, duration=500.0, seed=1
        )
        assert len(churn) > 0
        for node in range(5):
            kinds = [e.kind for e in churn if e.node == node]
            # Strict crash/recover alternation, starting with a crash.
            for k, kind in enumerate(kinds):
                assert kind == ("crash" if k % 2 == 0 else "recover")

    def test_events_within_horizon(self):
        churn = FaultSchedule.node_churn(
            5, crash_rate=0.05, mean_downtime=20.0, duration=500.0, seed=2
        )
        assert all(0 <= e.time < 500.0 for e in churn)

    def test_node_subset(self):
        churn = FaultSchedule.node_churn(
            10, crash_rate=0.05, mean_downtime=20.0, duration=500.0,
            seed=1, nodes=[7, 3],
        )
        assert {e.node for e in churn} <= {3, 7}

    def test_validation(self):
        kwargs = dict(crash_rate=0.05, mean_downtime=20.0, duration=500.0)
        with pytest.raises(ConfigurationError):
            FaultSchedule.node_churn(0, **kwargs)
        with pytest.raises(ConfigurationError):
            FaultSchedule.node_churn(5, **{**kwargs, "crash_rate": 0.0})
        with pytest.raises(ConfigurationError):
            FaultSchedule.node_churn(5, **{**kwargs, "mean_downtime": -1.0})
        with pytest.raises(ConfigurationError):
            FaultSchedule.node_churn(5, **{**kwargs, "duration": 0.0})
        with pytest.raises(ConfigurationError, match="out of range"):
            FaultSchedule.node_churn(5, nodes=[9], **kwargs)


class TestReplicaLoss:
    def test_poisson_events_in_horizon(self):
        losses = FaultSchedule.replica_loss(rate=0.1, duration=400.0, seed=5)
        assert len(losses) > 10  # ~40 expected
        assert all(e.kind == "replica_loss" for e in losses)
        assert all(e.node is None and e.item is None for e in losses)
        assert all(0 <= e.time < 400.0 for e in losses)

    def test_deterministic(self):
        a = FaultSchedule.replica_loss(rate=0.1, duration=400.0, seed=5)
        b = FaultSchedule.replica_loss(rate=0.1, duration=400.0, seed=5)
        assert a.events == b.events

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule.replica_loss(rate=0.0, duration=400.0)
        with pytest.raises(ConfigurationError):
            FaultSchedule.replica_loss(rate=0.1, duration=0.0)
