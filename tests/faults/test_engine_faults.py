"""Engine-level fault injection: determinism, offline semantics, wipes.

The acceptance bar for the fault subsystem is bit-level determinism: the
same ``FaultSchedule`` (same seed) against the same trace, requests, and
simulation seed must produce an identical ``SimulationResult``.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.contacts import homogeneous_poisson_trace
from repro.demand import DemandModel, generate_requests
from repro.errors import ConfigurationError
from repro.faults import FaultEvent, FaultSchedule
from repro.protocols import QCR, uni_protocol
from repro.sim import Simulation, SimulationConfig, simulate
from repro.utility import StepUtility

N_NODES = 12
N_ITEMS = 8
DURATION = 400.0


def scenario(seed=0, **config_overrides):
    demand = DemandModel.pareto(N_ITEMS, total_rate=2.0)
    trace = homogeneous_poisson_trace(N_NODES, 0.08, DURATION, seed=seed)
    requests = generate_requests(demand, N_NODES, DURATION, seed=seed + 1)
    defaults = dict(
        n_items=N_ITEMS,
        rho=2,
        utility=StepUtility(10.0),
        record_interval=25.0,
    )
    defaults.update(config_overrides)
    config = SimulationConfig(**defaults)
    return demand, trace, requests, config


def run_qcr(faults, seed=0, **config_overrides):
    _, trace, requests, config = scenario(seed, **config_overrides)
    protocol = QCR(config.utility, 0.1)
    return simulate(
        trace, requests, config, protocol, seed=seed + 2, faults=faults
    )


def assert_results_identical(a, b):
    """Field-by-field bitwise equality of two SimulationResults."""
    for f in dataclasses.fields(a):
        x, y = getattr(a, f.name), getattr(b, f.name)
        if isinstance(x, np.ndarray):
            assert np.array_equal(x, y), f.name
        elif x is None:
            assert y is None, f.name
        elif isinstance(x, float) and np.isnan(x):
            assert np.isnan(y), f.name
        else:
            assert x == y, f.name


class TestDeterminism:
    def test_seeded_churn_is_fully_deterministic(self):
        faults = FaultSchedule.node_churn(
            N_NODES,
            crash_rate=0.005,
            mean_downtime=40.0,
            duration=DURATION,
            seed=9,
        ) + FaultSchedule.replica_loss(rate=0.02, duration=DURATION, seed=9)
        a = run_qcr(faults)
        b = run_qcr(faults)
        assert a.n_crashes > 0 and a.n_replicas_lost > 0
        assert_results_identical(a, b)

    def test_drop_prob_is_deterministic(self):
        faults = FaultSchedule(drop_prob=0.3, seed=13)
        a = run_qcr(faults)
        b = run_qcr(faults)
        assert a.n_contacts_dropped > 0
        assert_results_identical(a, b)

    def test_empty_schedule_matches_fault_free_run(self):
        """faults=FaultSchedule() must be bit-identical to faults=None."""
        baseline = run_qcr(None)
        with_empty = run_qcr(FaultSchedule())
        assert_results_identical(baseline, with_empty)
        assert baseline.n_crashes == 0
        assert baseline.total_downtime == 0.0

    def test_fault_seed_changes_outcome(self):
        a = run_qcr(FaultSchedule(drop_prob=0.3, seed=1))
        b = run_qcr(FaultSchedule(drop_prob=0.3, seed=2))
        assert a.n_contacts_dropped != b.n_contacts_dropped


class TestOfflineSemantics:
    def test_permanent_crash_blocks_requests_and_contacts(self):
        faults = FaultSchedule.crash_wave(
            DURATION / 4, range(N_NODES // 2), wipe_cache=False
        )
        result = run_qcr(faults)
        assert result.n_crashes == N_NODES // 2
        assert result.n_recoveries == 0
        assert result.n_requests_offline > 0
        assert result.n_contacts_blocked > 0
        # Open crash intervals are closed at the horizon.
        expected = (N_NODES // 2) * (DURATION - DURATION / 4)
        assert result.total_downtime == pytest.approx(expected)

    def test_recovery_restores_participation(self):
        crash_at, recover_at = 100.0, 150.0
        faults = FaultSchedule.crash_wave(
            crash_at, [0, 1, 2], recover_at=recover_at, wipe_cache=False
        )
        result = run_qcr(faults)
        assert result.n_crashes == 3
        assert result.n_recoveries == 3
        assert result.total_downtime == pytest.approx(3 * 50.0)

    def test_offline_requests_not_counted_as_generated(self):
        faults = FaultSchedule.crash_wave(0.0, range(N_NODES), wipe_cache=False)
        result = run_qcr(faults)
        # Every node is down for the whole run: nothing is generated.
        assert result.n_generated == 0
        assert result.n_fulfilled == 0
        assert result.n_requests_offline > 0

    def test_crash_drops_outstanding_requests(self):
        faults = FaultSchedule.crash_wave(
            DURATION / 2, range(N_NODES), wipe_cache=False
        )
        result = run_qcr(faults)
        baseline = run_qcr(None)
        assert result.n_requests_lost > 0
        # Lost requests can never be counted unfulfilled at the horizon.
        assert result.n_unfulfilled < baseline.n_unfulfilled


class TestCacheWipe:
    def test_wipe_destroys_non_sticky_replicas(self):
        faults = FaultSchedule.crash_wave(100.0, range(N_NODES))
        result = run_qcr(faults)
        assert result.n_replicas_lost > 0
        # Sticky replicas survive by default: no item goes extinct.
        post = np.searchsorted(result.snapshot_times, 100.0, side="right")
        assert (result.snapshot_counts[post] >= 1).all()

    def test_sticky_loss_policy_allows_extinction(self):
        faults = FaultSchedule.crash_wave(
            100.0, range(N_NODES), sticky_survives=False
        )
        result = run_qcr(faults)
        # Every node crashed and wipes now destroy sticky replicas too:
        # the whole catalog is momentarily extinct.
        post = np.searchsorted(result.snapshot_times, 100.0, side="right")
        assert result.snapshot_counts[post].sum() == 0

    def test_wipe_can_be_disabled(self):
        faults = FaultSchedule.crash_wave(
            100.0, range(N_NODES), wipe_cache=False
        )
        result = run_qcr(faults)
        assert result.n_replicas_lost == 0

    def test_crash_clears_mandates(self):
        _, trace, requests, config = scenario()
        sim = Simulation(
            trace,
            requests,
            config,
            QCR(config.utility, 0.1),
            seed=2,
            faults=FaultSchedule.crash_wave(1.0, [0]),
        )
        sim.nodes[0].mandates.update({3: 2, 5: 1})
        sim._apply_fault(1.0, sim.faults.events[0])
        assert not sim.nodes[0].mandates
        assert sim.metrics.n_mandates_lost == 3

    def test_crash_is_idempotent(self):
        _, trace, requests, config = scenario()
        faults = FaultSchedule(
            events=(
                FaultEvent(time=1.0, kind="crash", node=0),
                FaultEvent(time=2.0, kind="crash", node=0),
            )
        )
        sim = Simulation(
            trace, requests, config, QCR(config.utility, 0.1),
            seed=2, faults=faults,
        )
        result = sim.run()
        assert result.n_crashes == 1


class TestReplicaLossEvents:
    def test_targeted_loss(self):
        _, trace, requests, config = scenario()
        sim = Simulation(
            trace, requests, config, uni_protocol(
                DemandModel.pareto(N_ITEMS, total_rate=2.0), N_NODES, 2
            ),
            seed=2,
            faults=FaultSchedule(
                events=(FaultEvent(time=1.0, kind="replica_loss", node=0),)
            ),
        )
        before = int(sim.counts.sum())
        sim._apply_fault(1.0, sim.faults.events[0])
        assert int(sim.counts.sum()) == before - 1
        assert sim.metrics.n_replicas_lost == 1

    def test_random_losses_never_touch_sticky(self):
        faults = FaultSchedule.replica_loss(rate=0.5, duration=DURATION, seed=3)
        result = run_qcr(faults)
        assert result.n_replicas_lost > 0
        assert (result.snapshot_counts >= 1).all(axis=1).all()

    def test_recovery_times_measured(self):
        faults = FaultSchedule.crash_wave(
            100.0, range(N_NODES // 2), recover_at=140.0
        )
        result = run_qcr(faults)
        assert result.n_replicas_lost > 0
        assert len(result.recovery_times) >= 1
        assert (result.recovery_times > 0).all()
        robustness = result.robustness_summary()
        assert robustness["n_loss_episodes_recovered"] == len(
            result.recovery_times
        )


class TestValidation:
    def test_out_of_range_fault_node_rejected(self):
        _, trace, requests, config = scenario()
        faults = FaultSchedule.crash_wave(1.0, [N_NODES])
        with pytest.raises(ConfigurationError, match="out of range"):
            Simulation(
                trace, requests, config, QCR(config.utility, 0.1),
                seed=2, faults=faults,
            )

    def test_out_of_range_fault_item_rejected(self):
        _, trace, requests, config = scenario()
        faults = FaultSchedule(
            events=(
                FaultEvent(
                    time=1.0, kind="replica_loss", node=0, item=N_ITEMS
                ),
            )
        )
        with pytest.raises(ConfigurationError, match="out of range"):
            Simulation(
                trace, requests, config, QCR(config.utility, 0.1),
                seed=2, faults=faults,
            )

    def test_events_past_horizon_ignored(self):
        faults = FaultSchedule.crash_wave(DURATION * 2, [0], wipe_cache=False)
        result = run_qcr(faults)
        assert result.n_crashes == 0
