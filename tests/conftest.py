"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.contacts import homogeneous_poisson_trace
from repro.demand import DemandModel, generate_requests
from repro.utility import (
    ExponentialUtility,
    NegLogUtility,
    PowerUtility,
    StepUtility,
)

#: Every closed-form delay-utility family with representative parameters.
ALL_UTILITIES = [
    StepUtility(1.3),
    StepUtility(25.0),
    ExponentialUtility(0.07),
    ExponentialUtility(1.5),
    PowerUtility(1.5),
    PowerUtility(0.5),
    PowerUtility(0.0),
    PowerUtility(-1.0),
    NegLogUtility(),
]

#: The subset with finite h(0+) (usable in pure-P2P scenarios).
BOUNDED_UTILITIES = [u for u in ALL_UTILITIES if u.finite_at_zero]


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def small_demand():
    return DemandModel.pareto(8, omega=1.0, total_rate=2.0)


@pytest.fixture
def paper_demand():
    return DemandModel.pareto(50, omega=1.0, total_rate=4.0)


@pytest.fixture
def small_trace():
    return homogeneous_poisson_trace(10, rate=0.1, duration=200.0, seed=7)


@pytest.fixture
def small_requests(small_demand, small_trace):
    return generate_requests(
        small_demand, small_trace.n_nodes, small_trace.duration, seed=8
    )
