"""Ablation A3 — sensitivity to cache size rho and popularity skew omega.

The paper's technical report sweeps both; here we verify the conclusions
transfer: the ordering OPT >= QCR > UNI holds across cache sizes and
popularity skews, and the value of demand-aware allocation grows with
skew.
"""

from __future__ import annotations

from repro.experiments import homogeneous_scenario, run_scenario
from repro.experiments.reporting import render_table
from repro.utility import StepUtility

RHOS = (2, 5, 8)
OMEGAS = (0.5, 1.0, 2.0)


def run_ablation(profile):
    utility = StepUtility(10.0)
    rows = []
    for rho in RHOS:
        scenario = homogeneous_scenario(
            utility, rho=rho, duration=profile.duration, record_interval=None
        )
        comparison = run_scenario(
            scenario,
            n_trials=profile.n_trials,
            base_seed=881 + rho,
            include=("OPT", "QCR", "UNI"),
            n_workers=profile.n_workers,
        )
        losses = comparison.losses()
        rows.append(
            [f"rho={rho}", "omega=1.0", f"{losses['QCR']:+.1f}%", f"{losses['UNI']:+.1f}%"]
        )
    for omega in OMEGAS:
        scenario = homogeneous_scenario(
            utility, omega=omega, duration=profile.duration, record_interval=None
        )
        comparison = run_scenario(
            scenario,
            n_trials=profile.n_trials,
            base_seed=891 + int(10 * omega),
            include=("OPT", "QCR", "UNI"),
            n_workers=profile.n_workers,
        )
        losses = comparison.losses()
        rows.append(
            [
                "rho=5",
                f"omega={omega:g}",
                f"{losses['QCR']:+.1f}%",
                f"{losses['UNI']:+.1f}%",
            ]
        )
    return rows


def test_rho_omega_sensitivity(benchmark, emit, profile):
    rows = benchmark.pedantic(
        run_ablation, args=(profile,), rounds=1, iterations=1
    )
    emit(
        "ablation_sensitivity",
        render_table(
            ["cache", "popularity", "QCR loss", "UNI loss"],
            rows,
            title="A3 — sensitivity to rho and omega (step tau=10)",
        ),
    )
    # UNI's loss grows with skew: the last omega row must be its worst.
    uni_losses = [float(r[3].rstrip("%")) for r in rows[len(RHOS):]]
    assert uni_losses[-1] <= uni_losses[0]
