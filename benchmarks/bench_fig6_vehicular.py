"""Figure 6 — the vehicular (Cabspotting-like) trace, three families.

Loss vs OPT across the power exponent ``alpha`` (left), step deadline
``tau`` (middle), and exponential impatience ``nu`` (right).
Reproduction targets (Section 6.3): SQRT tends to degrade relative to its
homogeneous showing, DOM improves under heterogeneity and burstiness, and
QCR — the only scheme without a control channel — stays competitive.
"""

from __future__ import annotations

from repro.experiments import figure6


def test_figure6_vehicular(benchmark, emit, profile):
    result = benchmark.pedantic(
        figure6, kwargs={"profile": profile}, rounds=1, iterations=1
    )
    emit("figure6", result.render())

    step = result.step_panel.losses
    exponential = result.exponential_panel.losses

    # OPT anchors both sweeps.
    assert all(abs(v) < 1e-9 for v in step["OPT"])

    # DOM is a strong contender for stringent deadlines on this trace
    # (contrast with its homogeneous collapse).
    assert step["DOM"][0] > -60.0

    # QCR remains mid-pack or better for step/exponential impatience.
    for losses in (step, exponential):
        for tau_index in range(len(losses["QCR"])):
            assert losses["QCR"][tau_index] > -60.0
