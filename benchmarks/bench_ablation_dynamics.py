"""Ablation A1 — Eq. (7) mean-field dynamics vs the simulator.

Integrates the paper's replica-dynamics ODE and runs the actual QCR
simulation from the same initial allocation; the fluid limit should
predict where the stochastic system settles (time-averaged counts), which
validates both the ODE derivation and the simulator's replication
accounting.
"""

from __future__ import annotations

import numpy as np

from repro.allocation import replica_dynamics, solve_relaxed
from repro.demand import generate_requests
from repro.experiments import homogeneous_scenario
from repro.experiments.reporting import render_table
from repro.protocols import QCR, QCRConfig
from repro.sim import Simulation
from repro.utility import PowerUtility

PSI_SCALE = 0.1


def run_ablation(profile):
    utility = PowerUtility(0.0)
    scenario = homogeneous_scenario(
        utility,
        duration=profile.duration,
        total_demand=8.0,
        record_interval=profile.duration / 40,
    )
    demand = scenario.demand
    trace = scenario.trace_factory(71)
    requests = generate_requests(demand, trace.n_nodes, trace.duration, seed=72)
    protocol = QCR(utility, scenario.mu_estimate, QCRConfig(psi_scale=PSI_SCALE))
    sim = Simulation(trace, requests, scenario.config, protocol, seed=73)
    x0 = sim.counts.astype(float).copy()
    result = sim.run()

    ode = replica_dynamics(
        np.maximum(x0, 0.5),
        demand,
        utility,
        scenario.mu_estimate,
        trace.n_nodes,
        scenario.config.rho,
        t_end=profile.duration,
        psi_scale=PSI_SCALE,
    )
    half = len(result.snapshot_counts) // 2
    simulated = result.snapshot_counts[half:].mean(axis=0)
    target = solve_relaxed(
        demand,
        utility,
        scenario.mu_estimate,
        trace.n_nodes,
        budget=float(scenario.config.rho * trace.n_nodes),
    ).counts
    return simulated, ode.final_counts, target


def test_dynamics_predict_simulation(benchmark, emit, profile):
    simulated, ode_final, target = benchmark.pedantic(
        run_ablation, args=(profile,), rounds=1, iterations=1
    )
    rows = [
        [i, f"{simulated[i]:.2f}", f"{ode_final[i]:.2f}", f"{target[i]:.2f}"]
        for i in range(len(simulated))
    ]
    emit(
        "ablation_dynamics",
        render_table(
            ["item", "sim time-avg", "Eq.(7) ODE", "relaxed optimum"],
            rows,
            title="A1 — mean-field dynamics vs simulation (power alpha=0)",
        ),
    )
    assert np.corrcoef(simulated, ode_final)[0, 1] > 0.9
    assert np.corrcoef(simulated, target)[0, 1] > 0.9
