"""Figure 3 — the effect of Mandate Routing (homogeneous, power alpha=0).

Regenerates all four panels plus a mandate-count series: expected utility
``U(x(t))``, observed per-window utility, replica counts of the five most
requested items with and without mandate routing, and total outstanding
mandates.  The reproduction targets: QCR with routing stays stable with
bounded mandates, while QCRWOM's outstanding mandates diverge and its
allocation drifts (over-weighting popular items).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import figure3


def test_figure3_mandate_routing(benchmark, emit, profile):
    result = benchmark.pedantic(
        figure3, kwargs={"profile": profile}, rounds=1, iterations=1
    )
    emit("figure3", result.render())

    mandates = result.mandate_totals.series
    final_with = mandates["QCR"][-1]
    final_without = mandates["QCRWOM"][-1]
    # Divergence: at least 5x more stranded mandates without routing.
    assert final_without > 5 * max(final_with, 1)

    # Both start from the same random seed; with routing the expected
    # utility must improve on the seed state by the end.
    expected = result.expected_utility.series
    assert expected["QCR"][-1] > expected["QCR"][0]
    # OPT bounds everything.
    assert np.all(expected["OPT"] >= expected["QCR"] - 1e-9)
