"""Extension E2 — clustered demand in communities (paper's conclusion).

The paper's future-work item: "clustered and evolving demands in peers".
We build two communities that meet internally far more often than across,
and give each community its own catalog preferences (clustered profile).
A *global* fixed allocation (PROP/SQRT over aggregate demand) cannot
specialize caches per community; QCR replicates where the queries are, so
its copies land inside the requesting community.  The trace-aware
submodular OPT — which sees both the rate matrix and the profile — is the
upper reference.
"""

from __future__ import annotations

import numpy as np

from repro.allocation import HeterogeneousProblem, greedy_heterogeneous
from repro.contacts import heterogeneous_poisson_trace, pair_rate_matrix
from repro.demand import DemandModel, clustered_profile, generate_requests
from repro.experiments.reporting import render_table
from repro.protocols import QCR, StaticAllocation, prop_protocol, sqrt_protocol
from repro.sim import SimulationConfig, simulate
from repro.utility import StepUtility

N, I, RHO = 40, 30, 3
INTRA_RATE, INTER_RATE = 0.08, 0.004
UTILITY = StepUtility(10.0)
BIAS = 12.0  # community preference multiplier


def community_rates() -> np.ndarray:
    group = np.arange(N) % 2
    same = group[:, None] == group[None, :]
    rates = np.where(same, INTRA_RATE, INTER_RATE)
    np.fill_diagonal(rates, 0.0)
    return rates


def run_extension(profile):
    demand = DemandModel.pareto(I, omega=1.0, total_rate=4.0)
    pi = clustered_profile(I, N, n_groups=2, bias=BIAS)
    rates = community_rates()
    duration = profile.duration
    trace = heterogeneous_poisson_trace(rates, duration, seed=65)
    requests = generate_requests(demand, N, duration, profile=pi, seed=66)
    config = SimulationConfig(n_items=I, rho=RHO, utility=UTILITY)

    problem = HeterogeneousProblem(
        demand=demand,
        utility=UTILITY,
        rate_matrix=pair_rate_matrix(trace),
        rho=RHO,
        pi=pi,
        server_of_client=np.arange(N),
    )
    opt = StaticAllocation(
        allocation=greedy_heterogeneous(problem).allocation, name="OPT"
    )
    mean_rate = trace.mean_pair_rate
    contenders = {
        "OPT (knows communities)": opt,
        "QCR (local queries)": QCR(UTILITY, mean_rate),
        "SQRT (global demand)": sqrt_protocol(demand, N, RHO),
        "PROP (global demand)": prop_protocol(demand, N, RHO),
    }
    gains = {}
    for name, protocol in contenders.items():
        result = simulate(trace, requests, config, protocol, seed=67)
        gains[name] = result.gain_rate
    return gains


def test_clustered_communities(benchmark, emit, profile):
    gains = benchmark.pedantic(
        run_extension, args=(profile,), rounds=1, iterations=1
    )
    reference = gains["OPT (knows communities)"]
    rows = [
        [name, f"{value:.4f}", f"{100 * (value - reference) / abs(reference):+.1f}%"]
        for name, value in gains.items()
    ]
    emit(
        "extension_clustered",
        render_table(
            ["protocol", "utility/min", "vs OPT"],
            rows,
            title=(
                "E2 — two communities with distinct tastes "
                f"(intra rate {INTRA_RATE}, inter {INTER_RATE}, bias {BIAS})"
            ),
        ),
    )
    # QCR's locally-reactive replication must beat both global fixed
    # allocations, which cannot place content per community.
    assert gains["QCR (local queries)"] > gains["SQRT (global demand)"]
    assert gains["QCR (local queries)"] > gains["PROP (global demand)"]
