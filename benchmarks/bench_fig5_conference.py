"""Figure 5 — the conference (Infocom'06-like) trace, step utility.

Panel (a): hourly observed utility over three days — the diurnal
alternation must be visible.  Panels (b)/(c): loss vs ``tau`` on the
actual trace and on the paper's memoryless "synthesized" control.
Reproduction targets (Section 6.3): DOM and PROP become relatively strong
on the real trace; SQRT is "not a clear winner anymore"; QCR — local
information only — remains within roughly 15% of OPT; and OPT, computed
under a memoryless assumption, can occasionally be outperformed on the
bursty actual trace.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import figure5


def test_figure5_conference(benchmark, emit, profile):
    result = benchmark.pedantic(
        figure5, kwargs={"profile": profile}, rounds=1, iterations=1
    )
    emit("figure5", result.render())

    # Panel (a): day/night alternation — daytime hourly gains must
    # dominate nighttime gains.
    qcr_series = result.utility_over_time.series["QCR"]
    hours = (result.utility_over_time.times % 1440.0) / 60.0
    day_mask = (hours >= 8) & (hours < 20)
    assert qcr_series[day_mask].mean() > 2 * max(
        qcr_series[~day_mask].mean(), 1e-9
    )

    # Panels (b)/(c): QCR stays within ~25% of OPT across the sweep
    # (paper: ~15% — we allow headroom for the reduced quick profile).
    for panel in (result.actual_panel, result.synthesized_panel):
        for loss in panel.losses["QCR"]:
            assert loss > -30.0

    # DOM is far stronger here than under homogeneous contacts for
    # stringent deadlines.
    assert result.actual_panel.losses["DOM"][0] > -60.0
