"""Figure 1 — the three motivating delay-utility families.

Regenerates the ``h(t)`` curves for advertising revenue (step /
exponential), time-critical information (inverse power), and waiting cost
(negative power), matching the paper's three panels.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import figure1


def test_figure1_delay_utilities(benchmark, emit):
    result = benchmark.pedantic(figure1, rounds=1, iterations=1)
    emit("figure1", result.render())
    # Shape assertions: all curves non-increasing; panel (c) negative.
    for curves in result.panels.values():
        for values in curves.values():
            assert np.all(np.diff(values) <= 1e-9)
    waiting = result.panels["(c) waiting cost"]
    for values in waiting.values():
        assert values[-1] < 0
