"""Ablation A2 — QCR design knobs.

Sweeps the free constant of the reaction function (``psi_scale``), the
burst cap, and the protocol-semantics variants (mandate routing off, pull
execution, no cache-on-fulfill) on the homogeneous power-``alpha=0``
scenario.  This is the experiment behind the harness default of damping
unbounded power-family reactions (DESIGN.md §5): large reaction constants
reach equilibrium faster but pay a variance penalty under the concave
welfare.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments import homogeneous_scenario, run_comparison, standard_protocols
from repro.experiments.reporting import render_table
from repro.protocols import QCR, QCRConfig
from repro.utility import PowerUtility

VARIANTS = [
    ("scale=1.0", QCRConfig(psi_scale=1.0)),
    ("scale=0.3", QCRConfig(psi_scale=0.3)),
    ("scale=0.1", QCRConfig(psi_scale=0.1)),
    ("scale=0.1+cap", QCRConfig(psi_scale=0.1, max_mandates_per_request=25)),
    ("scale=0.1, no routing", QCRConfig(psi_scale=0.1, mandate_routing=False)),
    ("scale=0.1, pull exec", QCRConfig(psi_scale=0.1, pull_execution=True)),
    (
        "scale=0.1, no cache-on-fulfill",
        QCRConfig(psi_scale=0.1, cache_on_fulfill=False),
    ),
    (
        "scale=0.1, no pure corr",
        QCRConfig(psi_scale=0.1, pure_correction=False),
    ),
]


def run_ablation(profile):
    utility = PowerUtility(0.0)
    scenario = homogeneous_scenario(
        utility, duration=profile.duration, record_interval=None
    )
    protocols = standard_protocols(scenario, include=("OPT",))
    for label, config in VARIANTS:
        protocols[label] = (
            lambda tr, rq, _c=config: QCR(utility, scenario.mu_estimate, _c)
        )
    comparison = run_comparison(
        trace_factory=scenario.trace_factory,
        demand=scenario.demand,
        config=scenario.config,
        protocols=protocols,
        n_trials=profile.n_trials,
        base_seed=777,
        baseline="OPT",
        n_workers=profile.n_workers,
    )
    return comparison


def test_qcr_variant_ablation(benchmark, emit, profile):
    comparison = benchmark.pedantic(
        run_ablation, args=(profile,), rounds=1, iterations=1
    )
    losses = comparison.losses()
    rows = [
        [label, f"{losses[label]:+.1f}%"]
        for label, _ in VARIANTS
    ]
    emit(
        "ablation_variants",
        render_table(
            ["QCR variant", "loss vs OPT"],
            rows,
            title="A2 — QCR design-knob ablation (homogeneous, power alpha=0)",
        ),
    )
    # The damped reaction dominates the raw Table-1 constant here.
    assert losses["scale=0.1"] > losses["scale=1.0"]
