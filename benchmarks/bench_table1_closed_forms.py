"""Table 1 — closed forms of c, U, phi, psi for every utility family.

Regenerates the paper's Table 1 and verifies each closed form against
independent numeric quadrature of the differential delay-utility measure.
"""

from __future__ import annotations

from repro.experiments import verify_table1
from repro.utility import table1_rows
from repro.experiments.reporting import render_table


def test_table1_closed_forms(benchmark, emit):
    verification = benchmark.pedantic(
        verify_table1, rounds=1, iterations=1
    )
    symbolic = render_table(
        ["family", "h(t)", "c", "U term", "phi (Prop 1)", "psi (Prop 2)"],
        [
            [r.label, r.h_expr, r.c_expr, r.gain_expr, r.phi_expr, r.psi_expr]
            for r in table1_rows()
        ],
        title="Table 1 — symbolic forms",
    )
    emit(
        "table1",
        symbolic
        + "\n\n"
        + verification.render()
        + f"\n\nmax relative error: {verification.max_relative_error:.2e}",
    )
    assert verification.max_relative_error < 1e-6
