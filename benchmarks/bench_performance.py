"""Performance micro-benchmarks of the core building blocks.

Unlike the figure benchmarks (pedantic single-shot reproductions), these
use pytest-benchmark's statistical timing so regressions in the hot paths
— simulator event loop, optimal-allocation solvers, trace generation —
are visible.
"""

from __future__ import annotations

import numpy as np
import pytest

pytest.importorskip(
    "pytest_benchmark",
    reason="statistical timing needs the [bench] extra (pytest-benchmark)",
)

from repro.allocation import (
    HeterogeneousProblem,
    greedy_heterogeneous,
    greedy_homogeneous,
    solve_relaxed,
)
from repro.contacts import homogeneous_poisson_trace, pair_rate_matrix
from repro.demand import DemandModel, generate_requests
from repro.protocols import QCR
from repro.sim import SimulationConfig, simulate
from repro.utility import StepUtility

N, I, RHO, MU = 50, 50, 5, 0.05
UTILITY = StepUtility(10.0)


@pytest.fixture(scope="module")
def demand():
    return DemandModel.pareto(I, omega=1.0, total_rate=4.0)


@pytest.fixture(scope="module")
def trace():
    return homogeneous_poisson_trace(N, MU, 300.0, seed=1)


@pytest.fixture(scope="module")
def requests(demand, trace):
    return generate_requests(demand, N, trace.duration, seed=2)


def test_perf_trace_generation(benchmark):
    benchmark(homogeneous_poisson_trace, N, MU, 300.0, seed=3)


def test_perf_simulator_qcr(benchmark, demand, trace, requests):
    config = SimulationConfig(n_items=I, rho=RHO, utility=UTILITY)

    def run():
        return simulate(trace, requests, config, QCR(UTILITY, MU), seed=4)

    result = benchmark(run)
    assert result.n_fulfilled > 0


def test_perf_greedy_homogeneous(benchmark, demand):
    result = benchmark(greedy_homogeneous, demand, UTILITY, MU, N, RHO)
    assert result.total_copies == RHO * N


def test_perf_greedy_heterogeneous(benchmark, demand, trace):
    rates = pair_rate_matrix(trace)
    problem = HeterogeneousProblem(
        demand=demand,
        utility=UTILITY,
        rate_matrix=rates,
        rho=RHO,
        server_of_client=np.arange(N),
    )
    result = benchmark(greedy_heterogeneous, problem)
    assert result.allocation.sum() > 0


def test_perf_relaxed_solver(benchmark, demand):
    result = benchmark(
        solve_relaxed, demand, UTILITY, MU, N, float(RHO * N)
    )
    assert result.counts.sum() == pytest.approx(RHO * N)
