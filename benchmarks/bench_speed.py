"""Speed benchmark: engine throughput and parallel-sweep scaling.

Runs the same harness as ``repro bench`` and writes ``BENCH_speed.json``
at the repo root so the performance trajectory is tracked alongside the
figure artifacts.  Scale follows ``REPRO_BENCH_SCALE`` (quick/full) and
the pool width follows ``REPRO_BENCH_WORKERS`` (default 4).

Assertions cover *correctness only* (optimized engine and parallel
runner must be bit-identical to their baselines); timings are recorded,
never gated — CI boxes are too noisy for hard thresholds.
"""

from __future__ import annotations

import json
import pathlib

from repro.experiments import (
    BENCH_FILENAME,
    current_profile,
    render_speed_report,
    run_speed_benchmark,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_speed_benchmark(emit):
    profile = current_profile()
    output = REPO_ROOT / BENCH_FILENAME
    report = run_speed_benchmark(
        quick=profile.label == "quick",
        n_workers=profile.n_workers or 4,
        output=output,
    )
    emit("BENCH_speed", render_speed_report(report))

    assert all(case["bit_identical"] for case in report["engine"]["cases"])
    assert report["parallel"]["bit_identical"]
    assert all(
        case["bit_identical"]
        for case in report["sweep_amortization"].values()
    )
    assert report["allocation"]["identical_allocation"]
    assert (
        report["allocation"]["celf_evaluations"]
        < report["allocation"]["naive_evaluations"]
    )
    on_disk = json.loads(output.read_text(encoding="utf-8"))
    assert on_disk["format"] == report["format"]
    assert on_disk["engine"]["min_speedup"] == report["engine"]["min_speedup"]
