"""Figure 2 — the optimal power-law allocation exponent 1/(2 - alpha).

Solves the relaxed cache-allocation problem across the impatience
spectrum and fits the log-log slope of the optimal counts against demand;
the fit must match the closed form: uniform-ish for very patient users
(alpha -> -inf), square-root at alpha = 0, proportional at alpha = 1, and
winner-take-all as alpha -> 2.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import figure2


def test_figure2_allocation_exponent(benchmark, emit):
    result = benchmark.pedantic(figure2, rounds=1, iterations=1)
    emit("figure2", result.render())
    assert np.allclose(result.closed_form, result.fitted, atol=1e-3)
    # The paper's three marked points.
    by_alpha = dict(zip(np.round(result.alphas, 2), result.fitted))
    assert abs(by_alpha[0.0] - 0.5) < 1e-3
    assert abs(by_alpha[1.0] - 1.0) < 1e-3
