"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper.  The
rendered series are printed (visible with ``pytest -s``) **and** written
to ``benchmarks/output/<name>.txt`` so the artifacts survive output
capturing.  Scale is controlled by the ``REPRO_BENCH_SCALE`` environment
variable (``quick`` default / ``full`` paper-scale); see
``repro.experiments.profiles``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import current_profile

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def profile():
    return current_profile()


@pytest.fixture(scope="session")
def emit():
    """Print a rendered artifact and persist it under benchmarks/output."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n===== {name} =====\n{text}\n")
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _emit
