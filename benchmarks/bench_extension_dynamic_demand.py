"""Extension E1 — QCR under dynamic demand (paper's conclusion, item 2).

The paper conjectures that "distributed mechanism like QCR naturally
adapts to a dynamic demand".  We test it: halfway through the run the
catalog's popularity ranking is reversed (yesterday's tail becomes
today's head).  A static OPT computed for the *initial* demand goes
stale; an oracle OPT re-provisioned at the switch is the upper
reference; QCR must recover most of the oracle's second-half utility
with no signal beyond its own query counters.
"""

from __future__ import annotations

import numpy as np

from repro.allocation import greedy_homogeneous, place_copies
from repro.contacts import homogeneous_poisson_trace
from repro.demand import DemandModel, RequestSchedule, generate_requests
from repro.experiments.reporting import render_table
from repro.protocols import QCR, StaticAllocation
from repro.protocols.base import ReplicationProtocol
from repro.sim import SimulationConfig, simulate
from repro.utility import StepUtility

N, I, RHO, MU = 50, 50, 5, 0.05
UTILITY = StepUtility(10.0)


class ReprovisionedOpt(ReplicationProtocol):
    """Oracle baseline: swaps to the post-switch optimal cache at t*.

    Implemented as a protocol that rewrites every cache at the first
    contact after the switch — a perfect-control-channel re-provisioning.
    """

    name = "OPT-oracle"

    def __init__(self, before, after, switch_time):
        self._before = np.asarray(before)
        self._after = np.asarray(after)
        self._switch_time = switch_time
        self._switched = False

    def initialize(self, sim):
        allocation = place_copies(
            self._before, sim.n_servers, sim.config.rho, seed=sim.rng
        )
        sim.set_initial_allocation(allocation)

    def after_contact(self, sim, t, a, b):
        if self._switched or t < self._switch_time:
            return
        allocation = place_copies(
            self._after, sim.n_servers, sim.config.rho, seed=sim.rng
        )
        for position, node_id in enumerate(sim.server_ids):
            cache = sim.nodes[int(node_id)].cache
            for item in list(cache.items()):
                cache.discard(item)
            for item in np.where(allocation[:, position])[0]:
                cache.add(int(item))
        sim.counts = allocation.sum(axis=1).astype(np.int64)
        self._switched = True


def run_extension(profile):
    half = profile.duration / 2.0
    demand_before = DemandModel.pareto(I, omega=1.0, total_rate=4.0)
    # Popularity reversal: the old tail becomes the new head.
    demand_after = DemandModel(rates=demand_before.rates[::-1].copy())

    trace = homogeneous_poisson_trace(N, MU, profile.duration, seed=61)
    requests = RequestSchedule.concatenate(
        [
            generate_requests(demand_before, N, half, seed=62),
            generate_requests(demand_after, N, half, seed=63),
        ]
    )
    config = SimulationConfig(
        n_items=I, rho=RHO, utility=UTILITY, window_length=half / 10.0
    )

    counts_before = greedy_homogeneous(
        demand_before, UTILITY, MU, N, RHO, pure_p2p=True, n_clients=N
    ).counts
    counts_after = greedy_homogeneous(
        demand_after, UTILITY, MU, N, RHO, pure_p2p=True, n_clients=N
    ).counts

    contenders = {
        "OPT-oracle": ReprovisionedOpt(counts_before, counts_after, half),
        "OPT-stale": StaticAllocation(counts=counts_before, name="OPT-stale"),
        "QCR": QCR(UTILITY, MU),
    }
    rows = []
    metrics = {}
    for name, protocol in contenders.items():
        result = simulate(trace, requests, config, protocol, seed=64)
        windows = result.window_gains / config.window_length
        first_half = windows[: len(windows) // 2].mean()
        second_half = windows[len(windows) // 2 :].mean()
        metrics[name] = (first_half, second_half)
        rows.append([name, f"{first_half:.3f}", f"{second_half:.3f}"])
    return rows, metrics


def test_dynamic_demand_adaptation(benchmark, emit, profile):
    rows, metrics = benchmark.pedantic(
        run_extension, args=(profile,), rounds=1, iterations=1
    )
    emit(
        "extension_dynamic_demand",
        render_table(
            ["protocol", "utility/min (before switch)", "(after switch)"],
            rows,
            title=(
                "E1 — popularity reversal at mid-run "
                "(step tau=10, homogeneous)"
            ),
        ),
    )
    oracle_after = metrics["OPT-oracle"][1]
    stale_after = metrics["OPT-stale"][1]
    qcr_after = metrics["QCR"][1]
    # The stale allocation loses utility after the switch; QCR recovers
    # most of the oracle's post-switch performance by adapting.
    assert qcr_after > stale_after
    assert qcr_after > 0.85 * oracle_after
