"""Extension E4 — per-node adaptive meeting-rate estimation for QCR.

QCR's reaction function contains one global constant: the meeting rate
``mu`` (Table 1).  On heterogeneous traces that constant is wrong for
most nodes — a cab that meets ten peers an hour and one that meets one
should not react identically.  This extension lets each node estimate its
own per-pair rate from the contacts it has observed (still purely local
information) and plugs the estimate into the reaction.

The benchmark compares fixed-constant QCR against adaptive QCR on the
vehicular trace for step and exponential impatience, with the submodular
OPT as the anchor.
"""

from __future__ import annotations

from repro.experiments import run_comparison, standard_protocols, vehicular_scenario
from repro.experiments.figures import recommended_timeout
from repro.experiments.reporting import render_table
from repro.experiments.scenarios import default_qcr_config
from repro.protocols import QCR, QCRConfig
from repro.utility import ExponentialUtility, StepUtility

from dataclasses import replace


def run_extension(profile):
    rows = []
    summary = {}
    for utility, label in (
        (StepUtility(30.0), "step tau=30"),
        (ExponentialUtility(0.05), "exp nu=0.05"),
    ):
        scenario = vehicular_scenario(utility, record_interval=None)
        timeout = recommended_timeout(utility, 14400.0)
        scenario = replace(
            scenario,
            config=replace(scenario.config, request_timeout=timeout),
        )
        base_config = default_qcr_config(
            utility, scenario.n_nodes, scenario.mu_estimate
        )
        protocols = standard_protocols(scenario, include=("OPT", "QCR"))
        protocols["QCR-adaptive"] = lambda tr, rq, _c=base_config: QCR(
            utility,
            scenario.mu_estimate,
            replace(_c, adaptive_mu=True),
        )
        comparison = run_comparison(
            trace_factory=scenario.trace_factory,
            demand=scenario.demand,
            config=scenario.config,
            protocols=protocols,
            n_trials=profile.n_trials,
            base_seed=909,
            baseline="OPT",
            n_workers=profile.n_workers,
        )
        losses = comparison.losses()
        summary[label] = losses
        rows.append(
            [
                label,
                f"{losses['QCR']:+.1f}%",
                f"{losses['QCR-adaptive']:+.1f}%",
            ]
        )
    return rows, summary


def test_adaptive_rate_estimation(benchmark, emit, profile):
    rows, summary = benchmark.pedantic(
        run_extension, args=(profile,), rounds=1, iterations=1
    )
    emit(
        "extension_adaptive_mu",
        render_table(
            ["impatience", "QCR (global mu)", "QCR (adaptive mu)"],
            rows,
            title="E4 — adaptive meeting-rate estimation (vehicular trace)",
        ),
    )
    # Adaptation must not hurt materially on any tested impatience level.
    for losses in summary.values():
        assert losses["QCR-adaptive"] > losses["QCR"] - 5.0
