"""Robustness under mass node failure — QCR self-heals, static OPT can't.

This experiment extends (not reproduces) the paper's Section 6: the
paper's central claim is that QCR is *reactive* — it re-tunes
replication from purely local query counters — and fault injection is
where that property becomes visible.  A crash wave wipes the caches of
half the nodes mid-run; the static OPT allocation has no mechanism to
re-create the destroyed replicas, while QCR's query counters immediately
start reporting longer waits and its reaction function re-replicates
toward equilibrium.

Emitted artifact: the paired comparison table (with per-protocol
recovery metrics) and a replica-count timeline showing OPT flat-lining
at its post-crash level while QCR climbs back.
"""

from __future__ import annotations

import numpy as np

from repro.demand import generate_requests
from repro.experiments import render_table
from repro.experiments.scenarios import standard_protocols, homogeneous_scenario
from repro.faults import FaultSchedule
from repro.sim import simulate
from repro.utility import StepUtility

N_NODES = 30
N_ITEMS = 20
RHO = 3
MU = 0.05


def run_churn_experiment(duration: float, crash_time: float, seed: int = 0):
    """One paired QCR-vs-OPT run under a half-network crash wave."""
    scenario = homogeneous_scenario(
        StepUtility(10.0),
        n_nodes=N_NODES,
        n_items=N_ITEMS,
        rho=RHO,
        mu=MU,
        duration=duration,
        record_interval=duration / 40.0,
    )
    faults = FaultSchedule.crash_wave(
        crash_time,
        range(N_NODES // 2),
        recover_at=crash_time + duration / 10.0,
        wipe_cache=True,
    )
    factories = standard_protocols(scenario, include=("OPT", "QCR"))
    trace = scenario.trace_factory(seed)
    requests = generate_requests(
        scenario.demand, trace.n_nodes, trace.duration, seed=seed + 1
    )
    results = {}
    for name in ("OPT", "QCR"):
        protocol = factories[name](trace, requests)
        results[name] = simulate(
            trace,
            requests,
            scenario.config,
            protocol,
            seed=seed + 2,
            faults=faults,
        )
    return results


def render_timeline(results) -> str:
    times = results["QCR"].snapshot_times
    opt_totals = results["OPT"].snapshot_counts.sum(axis=1)
    qcr_totals = results["QCR"].snapshot_counts.sum(axis=1)
    rows = [
        [f"{t:.0f}", int(opt_totals[k]), int(qcr_totals[k])]
        for k, t in enumerate(times)
    ]
    return render_table(
        ["time", "OPT replicas", "QCR replicas"],
        rows,
        title="replica-count timeline (crash wave mid-run)",
    )


def test_robustness_churn(benchmark, emit, profile):
    duration = profile.duration
    crash_time = duration / 3.0
    results = benchmark.pedantic(
        run_churn_experiment,
        args=(duration, crash_time),
        rounds=1,
        iterations=1,
    )
    opt, qcr = results["OPT"], results["QCR"]

    summary_rows = []
    for name, result in results.items():
        robustness = result.robustness_summary()
        summary_rows.append(
            [
                name,
                f"{result.gain_rate:.4f}",
                int(robustness["n_replicas_lost"]),
                int(result.final_counts.sum()),
                (
                    f"{robustness['median_recovery_time']:.0f}"
                    if robustness["n_loss_episodes_recovered"]
                    else "never"
                ),
            ]
        )
    text = render_table(
        ["protocol", "utility/min", "lost", "final replicas", "median recovery"],
        summary_rows,
        title=f"mass failure at t={crash_time:.0f} ({N_NODES // 2}/{N_NODES} nodes)",
    )
    emit("robustness_churn", text + "\n\n" + render_timeline(results))

    # Both protocols lose replicas to the wave.
    assert opt.n_replicas_lost > 0
    assert qcr.n_replicas_lost > 0

    times = qcr.snapshot_times
    post_crash = np.searchsorted(times, crash_time, side="right")
    opt_totals = opt.snapshot_counts.sum(axis=1)
    qcr_totals = qcr.snapshot_counts.sum(axis=1)

    # Static OPT never recovers: every post-crash snapshot stays at the
    # post-crash level (static allocations create no replicas).
    assert np.all(opt_totals[post_crash:] == opt_totals[post_crash])
    assert opt_totals[post_crash] < opt_totals[0]

    # QCR re-replicates toward equilibrium: its final replica count
    # climbs well above the post-crash trough and closes most of the
    # gap back to the pre-crash level.
    trough = qcr_totals[post_crash:].min()
    recovered = qcr_totals[-1] - trough
    lost = qcr_totals[0] - trough
    assert lost > 0
    assert recovered >= 0.6 * lost
    # And QCR reports at least one measured recovery episode.
    assert len(qcr.recovery_times) >= 1
