"""Ablation A4 — separating heterogeneity from time statistics.

Section 6.3 claims: "Heterogeneity per se does not seem to greatly impact
the performance of QCR."  The three conference-trace variants let us test
exactly that:

* ``actual`` — heterogeneous rates + bursty/diurnal times;
* ``rate_matched`` — same heterogeneous rates, memoryless times
  (isolates heterogeneity);
* ``synthesized`` — identical rates, memoryless times (the homogeneous
  control).

If the claim holds, QCR's loss on ``rate_matched`` is close to the
``synthesized`` control, and fixed allocations (DOM especially) move much
more across the ``actual`` / ``rate_matched`` divide (their gains come
from bursty time statistics, not heterogeneity).
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments import conference_scenario, run_scenario
from repro.experiments.figures import recommended_timeout
from repro.experiments.reporting import render_table
from repro.utility import StepUtility

TAU = 10.0
VARIANTS = ("actual", "rate_matched", "synthesized")


def run_ablation(profile):
    losses = {}
    for variant in VARIANTS:
        scenario = conference_scenario(
            StepUtility(TAU), variant=variant, record_interval=None
        )
        timeout = recommended_timeout(StepUtility(TAU), 10 * TAU)
        scenario = replace(
            scenario,
            config=replace(scenario.config, request_timeout=timeout),
        )
        comparison = run_scenario(
            scenario,
            n_trials=profile.n_trials,
            base_seed=1201,
            include=("OPT", "QCR", "SQRT", "PROP", "DOM"),
            n_workers=profile.n_workers,
        )
        losses[variant] = comparison.losses()
    return losses


def test_heterogeneity_vs_time_statistics(benchmark, emit, profile):
    losses = benchmark.pedantic(
        run_ablation, args=(profile,), rounds=1, iterations=1
    )
    algorithms = ("QCR", "SQRT", "PROP", "DOM")
    rows = [
        [name] + [f"{losses[v][name]:+.1f}%" for v in VARIANTS]
        for name in algorithms
    ]
    emit(
        "ablation_heterogeneity",
        render_table(
            ["algorithm", *VARIANTS],
            rows,
            title=(
                f"A4 — heterogeneity vs time statistics "
                f"(conference trace, step tau={TAU:g})"
            ),
        ),
    )
    # "Heterogeneity per se does not greatly impact QCR": moving from the
    # homogeneous control to heterogeneous-but-memoryless rates shifts
    # QCR's loss by a bounded amount.
    qcr_shift = abs(
        losses["rate_matched"]["QCR"] - losses["synthesized"]["QCR"]
    )
    assert qcr_shift < 15.0
