"""Figure 4 — QCR vs fixed allocations under homogeneous contacts.

Left panel: normalized loss vs OPT across the power-impatience exponent
``alpha``; right panel: across the step deadline ``tau``.  Reproduction
targets (Section 6.2):

* the extreme strategies UNI and DOM fail badly somewhere in each sweep
  (DOM catastrophically for waiting costs, UNI for tight deadlines);
* SQRT is near-optimal around ``alpha = 0`` (the square-root law);
* QCR — with *no* control channel — beats PROP in the power sweep and
  stays within a few percent of OPT for step utilities.
"""

from __future__ import annotations

from repro.experiments import figure4


def test_figure4_homogeneous_comparison(benchmark, emit, profile):
    result = benchmark.pedantic(
        figure4, kwargs={"profile": profile}, rounds=1, iterations=1
    )
    emit("figure4", result.render())

    power = result.power_panel.losses
    step = result.step_panel.losses

    # OPT anchors the comparison.
    assert all(abs(v) < 1e-9 for v in power["OPT"])

    # DOM collapses under waiting costs at every alpha.
    assert all(dom < -100.0 for dom in power["DOM"])

    # SQRT near-optimal at alpha = 0.
    alpha_index = result.power_panel.x_values.index(0.0)
    assert power["SQRT"][alpha_index] > -10.0

    # QCR beats PROP and UNI at alpha = 0 (adaptive beats passive).
    assert power["QCR"][alpha_index] > power["PROP"][alpha_index]
    assert power["QCR"][alpha_index] > power["UNI"][alpha_index]

    # Step: QCR within ~10% of OPT everywhere (paper: ~5%).
    assert all(v > -12.0 for v in step["QCR"])
    # DOM loses badly for generous deadlines (tail items never served).
    assert step["DOM"][-1] < -20.0
