"""The ratcheting findings baseline for ``repro analyze``.

A baseline is a committed JSON file of finding *fingerprints* —
``code::path::message`` triples, deliberately line-number-free so
unrelated edits to a file do not churn entries.  Semantics:

* findings whose fingerprint is in the baseline are reported as
  *baselined* and do not fail the run;
* findings not in the baseline are *new* and fail CI;
* ``--update-baseline`` can only **shrink** the file: the new content
  is the intersection of the old baseline with the current findings,
  so fixed findings fall out and new ones can never be waved in by
  regenerating.  (The only way to add an entry is to create the file
  fresh — i.e. first adoption — or to write a justified inline
  suppression instead, which is the intended path.)
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import FrozenSet, List, Optional, Sequence

from ..durable import atomic_write_text
from ..errors import ConfigurationError
from .findings import AnalysisFinding

__all__ = [
    "DEFAULT_BASELINE_PATH",
    "load_baseline",
    "split_by_baseline",
    "update_baseline",
]

DEFAULT_BASELINE_PATH = "analysis-baseline.json"

_VERSION = 1


def load_baseline(path: Path) -> Optional[FrozenSet[str]]:
    """The baselined fingerprints, or None when no baseline exists."""
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        raise ConfigurationError(
            f"unreadable analysis baseline {path}: {error}"
        ) from error
    fingerprints = payload.get("fingerprints")
    if not isinstance(fingerprints, list) or not all(
        isinstance(fp, str) for fp in fingerprints
    ):
        raise ConfigurationError(
            f"malformed analysis baseline {path}: 'fingerprints' must "
            "be a list of strings"
        )
    return frozenset(fingerprints)


def split_by_baseline(
    findings: Sequence[AnalysisFinding],
    baseline: Optional[FrozenSet[str]],
) -> "tuple[List[AnalysisFinding], List[AnalysisFinding]]":
    """Partition into ``(new, baselined)``."""
    if not baseline:
        return list(findings), []
    new: List[AnalysisFinding] = []
    known: List[AnalysisFinding] = []
    for finding in findings:
        if finding.fingerprint() in baseline:
            known.append(finding)
        else:
            new.append(finding)
    return new, known


def update_baseline(
    path: Path, findings: Sequence[AnalysisFinding]
) -> FrozenSet[str]:
    """Rewrite the baseline, ratcheting: it can only shrink.

    With no existing file, the current findings become the initial
    baseline.  With one, the new content is ``old ∩ current`` — stale
    entries drop out and nothing new gets in.  Returns the written set.
    """
    current = frozenset(finding.fingerprint() for finding in findings)
    existing = load_baseline(path)
    if existing is None:
        kept = current
    else:
        kept = existing & current
    payload = {
        "version": _VERSION,
        "tool": "repro-analyze",
        "fingerprints": sorted(kept),
    }
    # Committed file: pretty-printed so baseline diffs review cleanly.
    atomic_write_text(
        path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    return kept
