"""RPA002 — distributed-state writes must go through ``repro.durable``.

The sweep queue's crash-safety story (atomic rename + fsync, torn-write
recovery, lease lockfiles) only holds if *every* write under
``repro.dist`` and the experiment checkpointer uses the
:mod:`repro.durable` primitives.  One raw ``json.dump`` in a helper
three calls deep reintroduces the torn-file window the whole subsystem
was built to close — and review rarely catches it, because the write
looks innocuous where it sits.  This checker walks the inferred
summaries from every function defined in those modules and flags any
reachable raw ``FS_WRITE`` that did not come from the durable channel
(whose own primitives are relabeled ``FS_WRITE_ATOMIC`` by the effect
pass).

``DYNAMIC`` is deliberately *not* an error here: raw write primitives
(``open(..., "w")``, ``json.dump``, ``os.replace``) are syntactically
visible wherever they occur, so a raw write cannot hide exclusively
behind an unresolvable call — flagging dynamic calls would only add
noise on executor indirection.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ...lint.findings import Finding
from ..callgraph import CallGraph
from ..effects import FS_WRITE
from ..findings import AnalysisFinding
from ..inference import EffectSummary, witness_trace
from ..program import Program
from .common import path_suppressed

__all__ = ["CODE", "check_durability"]

CODE = "RPA002"


def _root_modules(program: Program) -> Tuple[str, ...]:
    pkg = program.package
    return (f"{pkg}.dist", f"{pkg}.experiments.checkpoint")


def _is_root_module(module: str, roots: Tuple[str, ...]) -> bool:
    return any(
        module == root or module.startswith(root + ".") for root in roots
    )


def check_durability(
    program: Program,
    graph: CallGraph,
    summaries: Dict[str, EffectSummary],
) -> List[Finding]:
    roots = _root_modules(program)
    findings: List[Finding] = []
    #: (leaf path, leaf line) already reported — one finding per raw
    #: write site, not one per caller that can reach it.
    reported: Set[Tuple[str, int]] = set()
    for info in graph.iter_functions():
        if not _is_root_module(info.module, roots):
            continue
        summary = summaries.get(info.qname)
        if summary is None or FS_WRITE not in summary.effects:
            continue
        trace = witness_trace(graph, summaries, info.qname, FS_WRITE)
        if not trace:
            continue
        leaf = trace[-1]
        key = (leaf.path, leaf.line)
        if key in reported:
            continue
        reported.add(key)
        if path_suppressed(
            program,
            CODE,
            root_path=info.path,
            root_line=info.lineno,
            trace=trace,
        ):
            continue
        findings.append(
            AnalysisFinding(
                path=leaf.path,
                line=leaf.line,
                col=0,
                code=CODE,
                message=(
                    f"raw filesystem write reachable from "
                    f"{info.display} (crash-safety root): {leaf.note}"
                ),
                hint=(
                    "distributed state must survive torn writes; use "
                    "repro.durable.atomic_write_json / "
                    "atomic_write_text / append_line, or suppress "
                    f"with # repro-lint: ignore[{CODE}] <why a torn "
                    "file is acceptable here>"
                ),
                trace=trace,
            )
        )
    findings.sort()
    return findings
