"""RPA003/RPA004 — trace-event schema drift.

The ``repro.obs.events`` registry is the contract between the emitters
(engine, fault injector, distributed queue) and every consumer (trace
CLI, replay comparators, the columnar pipeline's codecs).  Drift in
either direction is a real bug that nothing catches at runtime until a
trace is read back:

* **RPA003 (error)** — a call site emits a kind the registry does not
  know.  ``validate_event`` would reject the trace on load, but the
  emission hot path deliberately skips validation, so the bad kind
  lands in files first.
* **RPA004 (warning)** — a registry entry no event source ever emits.
  Dead entries rot: consumers keep codepaths for kinds that can no
  longer occur, and reviewers can't tell intentional reserves from
  leftovers.

Emission sites are call-graph-resolved calls to ``Tracer.emit`` and
``WorkQueue.log_event`` whose first argument is a string literal or a
name resolvable to a module-level string constant.  Forwarded kinds
(``emit(kind, ...)`` where ``kind`` is a parameter) are skipped — the
concrete kinds appear at the forwarding call's own call sites.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from ...lint.findings import Finding
from ..callgraph import CallGraph
from ..findings import AnalysisFinding, PathStep
from ..inference import EffectSummary
from ..program import Program
from .common import path_suppressed

__all__ = ["CODE_UNKNOWN", "CODE_DEAD", "check_schema"]

CODE_UNKNOWN = "RPA003"
CODE_DEAD = "RPA004"

#: Method qname tails that emit one event per call, kind-first.
_EMIT_TAILS = ("Tracer.emit", "WorkQueue.log_event")


def _registry(
    program: Program, graph: CallGraph
) -> Tuple[Dict[str, int], Optional[str]]:
    """Schema kinds -> definition line, from ``<pkg>.obs.events``."""
    module_name = f"{program.package}.obs.events"
    module = program.get(module_name)
    if module is None:
        return {}, None
    kinds: Dict[str, int] = {}
    for stmt in module.tree.body:
        if (
            isinstance(stmt, (ast.Assign, ast.AnnAssign))
            and isinstance(stmt.value, ast.Dict)
        ):
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            if not any(
                isinstance(t, ast.Name) and t.id == "EVENT_FIELDS"
                for t in targets
            ):
                continue
            for key in stmt.value.keys:
                if key is None:
                    continue
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    kinds[key.value] = key.lineno
                elif isinstance(key, ast.Name):
                    value = graph.resolve_constant(module_name, key.id)
                    if value is not None:
                        kinds[value] = key.lineno
    return kinds, module.path


def _emitted_kinds(
    graph: CallGraph,
) -> List[Tuple[str, str, int]]:
    """Every statically resolvable emitted kind: (kind, func qname, line)."""
    emitted: List[Tuple[str, str, int]] = []
    for info in graph.iter_functions():
        for site in graph.calls.get(info.qname, ()):
            if site.via_argument or not site.targets:
                continue
            if not any(
                target.endswith(tail)
                for target in site.targets
                for tail in _EMIT_TAILS
            ):
                continue
            if not site.node.args:
                continue
            first = site.node.args[0]
            kind: Optional[str] = None
            if isinstance(first, ast.Constant) and isinstance(
                first.value, str
            ):
                kind = first.value
            else:
                dotted = _expr_dotted(first)
                if dotted is not None:
                    kind = graph.resolve_constant(info.module, dotted)
            if kind is not None:
                emitted.append((kind, info.qname, site.line))
    return emitted


def _expr_dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def check_schema(
    program: Program,
    graph: CallGraph,
    summaries: Dict[str, EffectSummary],
) -> List[Finding]:
    del summaries  # schema drift needs the graph, not effect inference
    kinds, registry_path = _registry(program, graph)
    if registry_path is None:
        return []
    findings: List[Finding] = []
    seen_kinds: Set[str] = set()
    for kind, qname, line in _emitted_kinds(graph):
        seen_kinds.add(kind)
        if kind in kinds:
            continue
        info = graph.functions[qname]
        trace = (
            PathStep(
                path=info.path,
                line=line,
                symbol=info.display,
                note=f"emits kind '{kind}'",
            ),
        )
        if path_suppressed(
            program,
            CODE_UNKNOWN,
            root_path=info.path,
            root_line=line,
            trace=trace,
        ):
            continue
        findings.append(
            AnalysisFinding(
                path=info.path,
                line=line,
                col=0,
                code=CODE_UNKNOWN,
                message=(
                    f"event kind '{kind}' emitted by {info.display} is "
                    f"not in the {program.package}.obs.events registry"
                ),
                hint=(
                    "add the kind (and its payload fields) to "
                    "EVENT_FIELDS, or emit an existing constant from "
                    f"{program.package}.obs.events"
                ),
                trace=trace,
            )
        )
    for kind in sorted(set(kinds) - seen_kinds):
        line = kinds[kind]
        trace = (
            PathStep(
                path=registry_path,
                line=line,
                symbol="EVENT_FIELDS",
                note=f"declares kind '{kind}'",
            ),
        )
        if path_suppressed(
            program,
            CODE_DEAD,
            root_path=registry_path,
            root_line=line,
            trace=trace,
        ):
            continue
        findings.append(
            AnalysisFinding(
                path=registry_path,
                line=line,
                col=0,
                code=CODE_DEAD,
                message=(
                    f"schema entry '{kind}' is never emitted by any "
                    "statically resolvable call site"
                ),
                hint=(
                    "delete the dead entry, or suppress with "
                    f"# repro-lint: ignore[{CODE_DEAD}] if the kind is "
                    "reserved on purpose"
                ),
                trace=trace,
            )
        )
    findings.sort()
    return findings
