"""Shared checker helpers."""

from __future__ import annotations

from typing import Dict, Sequence

from ...lint.suppressions import SuppressionMap
from ..findings import PathStep
from ..program import Program

__all__ = ["path_suppressed"]


def path_suppressed(
    program: Program,
    code: str,
    *,
    root_path: str,
    root_line: int,
    trace: Sequence[PathStep],
) -> bool:
    """True when the root def line or the final leaf line suppresses *code*.

    Suppressing at the leaf silences every path through that operation
    (one justification next to the code that does the deed);
    suppressing at the root accepts the whole function.
    """
    by_path: Dict[str, SuppressionMap] = {
        module.path: module.suppressions
        for module in program.modules.values()
    }
    candidates = [(root_path, root_line)]
    if trace:
        leaf = trace[-1]
        candidates.append((leaf.path, leaf.line))
    for path, line in candidates:
        suppressions = by_path.get(path)
        if suppressions is None:
            continue
        if suppressions.is_suppressed(line, code):
            return True
    return False
