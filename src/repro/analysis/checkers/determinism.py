"""RPA001 — nondeterminism must not reach a deterministic surface.

The paper's evaluation (and this repo's reference-equivalence tests,
simcache, and distributed sweep dedup) all assume a run is a pure
function of ``(trace, demand, config, seed)``.  This checker enforces
that assumption transitively: if any function reachable from a
declared-deterministic surface draws unseeded randomness, reads the
host clock, or observes set-iteration / directory order, the surface's
output can differ between bit-identical invocations — silently, because
nothing crashes.  ``DYNAMIC`` (an unresolvable call) is an error too:
a surface that calls through opaque indirection cannot be audited, so
it must either be restructured or carry an explicit suppression with a
justification.
"""

from __future__ import annotations

from typing import Dict, List

from ...lint.findings import Finding
from ..callgraph import CallGraph
from ..effects import DICT_ORDER, DYNAMIC, UNSEEDED_RNG, WALL_CLOCK
from ..findings import AnalysisFinding
from ..inference import EffectSummary, witness_trace
from ..program import Program
from ..surfaces import collect_surfaces
from .common import path_suppressed

__all__ = ["CODE", "check_determinism"]

CODE = "RPA001"

_FORBIDDEN = (UNSEEDED_RNG, WALL_CLOCK, DICT_ORDER, DYNAMIC)

_EFFECT_PHRASES = {
    UNSEEDED_RNG: "unseeded randomness",
    WALL_CLOCK: "a host-clock read",
    DICT_ORDER: "hash-order-dependent iteration",
    DYNAMIC: "an unresolvable dynamic call",
}


def check_determinism(
    program: Program,
    graph: CallGraph,
    summaries: Dict[str, EffectSummary],
) -> List[Finding]:
    findings: List[Finding] = []
    for surface in collect_surfaces(graph):
        summary = summaries.get(surface.qname)
        info = graph.functions.get(surface.qname)
        if summary is None or info is None:
            continue
        for effect in _FORBIDDEN:
            if effect not in summary.effects:
                continue
            trace = witness_trace(graph, summaries, surface.qname, effect)
            if path_suppressed(
                program,
                CODE,
                root_path=info.path,
                root_line=info.lineno,
                trace=trace,
            ):
                continue
            leaf_note = trace[-1].note if trace else effect
            findings.append(
                AnalysisFinding(
                    path=info.path,
                    line=info.lineno,
                    col=0,
                    code=CODE,
                    message=(
                        f"{_EFFECT_PHRASES[effect]} reaches "
                        f"deterministic surface {info.display} "
                        f"({surface.reason}): {leaf_note}"
                    ),
                    hint=(
                        "results must be a pure function of inputs + "
                        "seed; thread the dependency through an "
                        "explicit parameter, sort the iteration, or "
                        f"suppress at the leaf with # repro-lint: "
                        f"ignore[{CODE}] <why it is safe>"
                    ),
                    trace=trace,
                )
            )
    findings.sort()
    return findings
