"""Whole-program checkers over inferred effect summaries.

Each checker is a function ``(program, graph, summaries) -> findings``.
All of them honor the shared ``# repro-lint: ignore[RPAxxx]``
suppression comments at *either* end of a propagation path: the line of
the leaf operation or the ``def`` line of the checked root (see
:func:`repro.analysis.checkers.common.path_suppressed`).
"""

from __future__ import annotations

from .common import path_suppressed
from .determinism import check_determinism
from .durability import check_durability
from .schema import check_schema

__all__ = [
    "check_determinism",
    "check_durability",
    "check_schema",
    "path_suppressed",
]
