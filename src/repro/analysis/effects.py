"""The effect lattice and per-function leaf-effect extraction.

Effects are plain strings; a function's summary is a ``frozenset`` of
them, so the lattice join is set union — finite and monotone, which is
what lets :mod:`repro.analysis.inference` run a fixed point.

* ``SEEDED_RNG`` — randomness drawn from an explicitly seeded source
  (``random.Random(seed)``, ``numpy.random.default_rng(seed)``).
  Deterministic by construction; recorded so the boundary is visible.
* ``UNSEEDED_RNG`` — global/OS entropy (``random.random``, the
  ``numpy.random.*`` module-level globals, argless ``default_rng()``,
  ``secrets``, ``uuid.uuid4``, ``os.urandom``).
* ``WALL_CLOCK`` — host-clock reads; mirrors the per-file RPL002 table.
* ``DICT_ORDER`` — observable iteration order of a ``set`` (string
  hashing is randomized per process) or an unsorted directory listing.
* ``FS_WRITE`` — raw filesystem mutation: ``open`` with a writing (or
  statically unknown) mode, ``json.dump``/``pickle.dump``,
  ``os.rename``/``os.replace``, ``shutil`` transfers.  The durability
  checker requires these to live in :mod:`repro.durable`.
* ``FS_WRITE_ATOMIC`` — single-syscall metadata mutations
  (``os.remove``/``unlink``/``link``/``mkdir``/``makedirs``) and
  everything defined inside :mod:`repro.durable` itself, whose whole
  purpose is to package raw writes behind an atomic protocol.
* ``FORK`` — process creation.
* ``ENV_READ`` — host-environment reads (``os.environ``, ``platform``,
  hostname).
* ``DYNAMIC`` — conservative TOP marker: the function makes a call the
  graph could not resolve (call through a parameter, computed callee),
  so *any* effect may hide behind it.  The determinism checker treats
  it as an error at surfaces; the durability checker ignores it (raw
  write primitives are syntactically visible, so ``FS_WRITE`` never
  hides exclusively behind a dynamic call).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .callgraph import CallGraph, FunctionInfo, own_body_nodes

__all__ = [
    "ALL_EFFECTS",
    "DICT_ORDER",
    "DYNAMIC",
    "ENV_READ",
    "FORK",
    "FS_WRITE",
    "FS_WRITE_ATOMIC",
    "Leaf",
    "PURE",
    "SEEDED_RNG",
    "UNSEEDED_RNG",
    "WALL_CLOCK",
    "function_leaf_effects",
]

SEEDED_RNG = "SEEDED_RNG"
UNSEEDED_RNG = "UNSEEDED_RNG"
WALL_CLOCK = "WALL_CLOCK"
DICT_ORDER = "DICT_ORDER"
FS_WRITE = "FS_WRITE"
FS_WRITE_ATOMIC = "FS_WRITE_ATOMIC"
FORK = "FORK"
ENV_READ = "ENV_READ"
DYNAMIC = "DYNAMIC"

#: The bottom of the lattice: no effects.
PURE: FrozenSet[str] = frozenset()

ALL_EFFECTS: FrozenSet[str] = frozenset(
    {
        SEEDED_RNG,
        UNSEEDED_RNG,
        WALL_CLOCK,
        DICT_ORDER,
        FS_WRITE,
        FS_WRITE_ATOMIC,
        FORK,
        ENV_READ,
        DYNAMIC,
    }
)


@dataclass(frozen=True)
class Leaf:
    """One leaf operation introducing an effect into a function."""

    effect: str
    line: int
    note: str


# ---------------------------------------------------------------------------
# external-callee tables
# ---------------------------------------------------------------------------

#: Host-clock reads — the same table RPL002 checks per file (kept in
#: lock-step so a clock call flagged by lint taints the same functions
#: here).
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "date.today",
    }
)

#: Module-level global-RNG / OS-entropy callees.
_UNSEEDED_CALLS = frozenset(
    {
        "random.random",
        "random.randint",
        "random.randrange",
        "random.choice",
        "random.choices",
        "random.shuffle",
        "random.sample",
        "random.uniform",
        "random.gauss",
        "random.normalvariate",
        "random.expovariate",
        "random.betavariate",
        "random.getrandbits",
        "random.SystemRandom",
        "numpy.random.rand",
        "numpy.random.randn",
        "numpy.random.randint",
        "numpy.random.random",
        "numpy.random.random_sample",
        "numpy.random.choice",
        "numpy.random.shuffle",
        "numpy.random.permutation",
        "numpy.random.uniform",
        "numpy.random.normal",
        "numpy.random.exponential",
        "numpy.random.poisson",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "secrets.choice",
        "uuid.uuid1",
        "uuid.uuid4",
        "os.urandom",
    }
)

#: Explicit seeding — deterministic by construction, tracked so the
#: seeded/unseeded boundary shows up in summaries.
_SEEDED_CALLS = frozenset(
    {
        "random.seed",
        "numpy.random.seed",
        "numpy.random.Generator",
        "numpy.random.PCG64",
        "numpy.random.SeedSequence",
    }
)

#: Raw filesystem mutations (exact dotted names).
_FS_WRITE_CALLS = frozenset(
    {
        "json.dump",
        "pickle.dump",
        "marshal.dump",
        "numpy.save",
        "numpy.savez",
        "numpy.savez_compressed",
        "numpy.savetxt",
        "os.rename",
        "os.replace",
        "os.truncate",
        "os.ftruncate",
        "os.write",
        "shutil.copy",
        "shutil.copy2",
        "shutil.copyfile",
        "shutil.copytree",
        "shutil.move",
        "shutil.rmtree",
        "tempfile.mkstemp",
        "tempfile.NamedTemporaryFile",
    }
)

#: Single-syscall atomic metadata mutations.  ``os.link`` is here on
#: purpose: the lease lockfile protocol *depends* on link's atomicity,
#: and classifying it raw would force a suppression onto the one
#: pattern that is correct by design.
_FS_ATOMIC_CALLS = frozenset(
    {
        "os.remove",
        "os.unlink",
        "os.link",
        "os.symlink",
        "os.mkdir",
        "os.makedirs",
        "os.rmdir",
        "os.removedirs",
        "os.utime",
        "os.chmod",
        # Scratch-dir creation is an atomic mkdir; the content written
        # into it is visible to analysis at its own write sites.
        "tempfile.mkdtemp",
        "tempfile.TemporaryDirectory",
    }
)

#: Receiver-method tails (``path.write_text(...)`` on an untyped
#: receiver) that are filesystem mutations.
_FS_WRITE_METHODS = frozenset({"write_text", "write_bytes"})
_FS_ATOMIC_METHODS = frozenset(
    {"mkdir", "rmdir", "touch", "unlink", "hardlink_to", "symlink_to"}
)
#: ``Path.rename``/``Path.replace`` are raw like their os counterparts,
#: but only when the receiver is opaque — internal methods named
#: ``rename`` resolve through the call graph first.
_FS_WRITE_RENAME_METHODS = frozenset({"rename", "replace"})

_FORK_CALLS = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
        "multiprocessing.Pool",
        "multiprocessing.Process",
        "multiprocessing.get_context",
        "os.fork",
        "os.forkpty",
        "subprocess.run",
        "subprocess.Popen",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
    }
)

_ENV_CALLS = frozenset(
    {
        "os.getenv",
        "os.environ.get",
        "os.environ.items",
        "os.environ.keys",
        "os.environ.copy",
        "os.getcwd",
        "os.uname",
        "os.cpu_count",
        "platform.platform",
        "platform.node",
        "platform.system",
        "platform.release",
        "platform.machine",
        "platform.python_version",
        "platform.python_implementation",
        "socket.gethostname",
        "getpass.getuser",
    }
)

#: Directory listings with filesystem-dependent order.  Flagged only
#: when not directly wrapped in ``sorted(...)`` — see the syntactic
#: pass below, which owns these so it can check the wrapper.
_LISTING_CALLS = frozenset({"os.listdir", "os.scandir", "glob.glob", "glob.iglob"})
_LISTING_METHODS = frozenset({"iterdir", "glob", "rglob"})

#: Mode strings passed to ``open`` that mutate the filesystem.
_WRITE_MODE_CHARS = frozenset("wax+")

#: Callables whose call consumes an iterable in order (iterating a set
#: through one of these leaks hash order).
_ORDER_SENSITIVE_WRAPPERS = frozenset({"list", "tuple", "iter", "enumerate"})


def _open_effect(call: ast.Call) -> Optional[str]:
    """Effect of an ``open``-family call, from its mode argument."""
    mode_node: Optional[ast.AST] = None
    if len(call.args) >= 2:
        mode_node = call.args[1]
    else:
        for keyword in call.keywords:
            if keyword.arg == "mode":
                mode_node = keyword.value
                break
    if mode_node is None:
        return None  # default "r"
    if isinstance(mode_node, ast.Constant) and isinstance(
        mode_node.value, str
    ):
        if any(ch in _WRITE_MODE_CHARS for ch in mode_node.value):
            return FS_WRITE
        return None
    # Statically unknown mode: assume the worst.
    return FS_WRITE


def _os_open_effect(call: ast.Call) -> Optional[str]:
    """``os.open`` writes when its flags name a writing O_ constant."""
    writing = {"O_WRONLY", "O_RDWR", "O_APPEND", "O_CREAT", "O_TRUNC"}
    for node in ast.walk(call):
        if isinstance(node, ast.Attribute) and node.attr in writing:
            return FS_WRITE
        if isinstance(node, ast.Name) and node.id in writing:
            return FS_WRITE
    return None


def classify_external_call(
    dotted: str, call: ast.Call
) -> Optional[Tuple[str, str]]:
    """Effect of a call to an external (non-program) callee.

    Returns ``(effect, note)`` or None for effect-free callees.  The
    closed-world assumption — unknown external calls are pure — is
    deliberate: the tables cover the stdlib/numpy surface the repo
    uses, and anything beyond that is visible in review as a new
    import.
    """
    tail = dotted.rsplit(".", 1)[-1]
    if dotted in _CLOCK_CALLS:
        return (WALL_CLOCK, f"'{dotted}' reads the host clock")
    if dotted in _UNSEEDED_CALLS:
        return (UNSEEDED_RNG, f"'{dotted}' draws unseeded randomness")
    if dotted in _SEEDED_CALLS:
        return (SEEDED_RNG, f"'{dotted}' seeds / uses explicit RNG state")
    if tail == "default_rng" or dotted == "numpy.random.default_rng":
        if call.args or call.keywords:
            return (SEEDED_RNG, f"'{dotted}(seed)' constructs a seeded generator")
        return (UNSEEDED_RNG, f"argless '{dotted}()' seeds from OS entropy")
    if dotted in ("random.Random",) or dotted.endswith(".Random"):
        if call.args or call.keywords:
            return (SEEDED_RNG, f"'{dotted}(seed)' constructs a seeded RNG")
        return (UNSEEDED_RNG, f"argless '{dotted}()' seeds from OS entropy")
    if dotted in ("open", "io.open", "gzip.open", "bz2.open", "lzma.open"):
        effect = _open_effect(call)
        if effect is not None:
            return (effect, f"'{dotted}' opened with a writing mode")
        return None
    if dotted == "os.open":
        effect = _os_open_effect(call)
        if effect is not None:
            return (effect, "'os.open' with writing flags")
        return None
    if dotted in _FS_WRITE_CALLS:
        return (FS_WRITE, f"'{dotted}' mutates the filesystem")
    if dotted in _FS_ATOMIC_CALLS:
        return (
            FS_WRITE_ATOMIC,
            f"'{dotted}' is a single-syscall atomic metadata mutation",
        )
    if dotted in _FORK_CALLS:
        return (FORK, f"'{dotted}' spawns a process")
    if dotted in _ENV_CALLS or dotted.startswith("os.environ."):
        return (ENV_READ, f"'{dotted}' reads the host environment")
    if dotted.startswith("<receiver>."):
        if tail in _FS_WRITE_METHODS or tail in _FS_WRITE_RENAME_METHODS:
            return (FS_WRITE, f"'.{tail}(...)' mutates the filesystem")
        if tail in _FS_ATOMIC_METHODS:
            return (
                FS_WRITE_ATOMIC,
                f"'.{tail}(...)' is an atomic metadata mutation",
            )
    return None


# ---------------------------------------------------------------------------
# per-function extraction
# ---------------------------------------------------------------------------


def function_leaf_effects(
    graph: CallGraph, info: FunctionInfo
) -> List[Leaf]:
    """Leaf effects introduced directly inside *info*'s body.

    Combines the resolved call sites (external-table classification,
    dynamic-call TOP) with a syntactic pass for the effects that are
    not calls: ``os.environ`` reads and set-order-dependent iteration.
    Everything defined in ``<package>.durable`` has raw ``FS_WRITE``
    relabeled ``FS_WRITE_ATOMIC`` — that module *is* the blessed
    channel the durability checker steers writes into.
    """
    leaves: List[Leaf] = []
    for site in graph.calls.get(info.qname, ()):
        if site.dynamic:
            leaves.append(
                Leaf(
                    DYNAMIC,
                    site.line,
                    "dynamic call — callee not statically resolvable",
                )
            )
        elif site.external is not None:
            dotted = site.external
            tail = dotted.rsplit(".", 1)[-1]
            if dotted in _LISTING_CALLS or (
                dotted.startswith("<receiver>.") and tail in _LISTING_METHODS
            ):
                continue  # handled by the syntactic pass (sorted() check)
            classified = classify_external_call(dotted, site.node)
            if classified is not None:
                leaves.append(Leaf(classified[0], site.line, classified[1]))
    leaves.extend(_syntactic_leaves(graph, info))
    durable_module = graph.program.package + ".durable"
    if info.module == durable_module:
        leaves = [
            Leaf(FS_WRITE_ATOMIC, leaf.line, leaf.note + " (inside the durable channel)")
            if leaf.effect == FS_WRITE
            else leaf
            for leaf in leaves
        ]
    deduped: Dict[Tuple[str, int], Leaf] = {}
    for leaf in leaves:
        deduped.setdefault((leaf.effect, leaf.line), leaf)
    return [deduped[key] for key in sorted(deduped)]


def _syntactic_leaves(graph: CallGraph, info: FunctionInfo) -> List[Leaf]:
    node = info.node
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    leaves: List[Leaf] = []
    parents: Dict[int, ast.AST] = {}
    body_nodes = list(own_body_nodes(node))
    for parent in body_nodes:
        for child in ast.iter_child_nodes(parent):
            parents.setdefault(id(child), parent)
    set_vars = _set_typed_locals(node, body_nodes)

    def is_set_expr(expr: ast.AST) -> bool:
        return _is_set_expr(expr, set_vars)

    for item in body_nodes:
        # os.environ reads that are not call-shaped (subscript, `in`).
        if isinstance(item, ast.Attribute):
            dotted = _attr_dotted(item)
            if dotted == "os.environ" and not _is_environ_call(
                item, parents
            ):
                leaves.append(
                    Leaf(
                        ENV_READ,
                        item.lineno,
                        "'os.environ' reads the host environment",
                    )
                )
        if isinstance(item, ast.For) and is_set_expr(item.iter):
            leaves.append(
                Leaf(
                    DICT_ORDER,
                    item.iter.lineno,
                    "iteration over a set — order depends on hash "
                    "randomization",
                )
            )
        if isinstance(item, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in item.generators:
                if is_set_expr(gen.iter):
                    leaves.append(
                        Leaf(
                            DICT_ORDER,
                            gen.iter.lineno,
                            "comprehension over a set — order depends "
                            "on hash randomization",
                        )
                    )
        if isinstance(item, ast.Call):
            callee = _call_tail(item)
            if (
                callee in _ORDER_SENSITIVE_WRAPPERS
                and item.args
                and is_set_expr(item.args[0])
            ):
                leaves.append(
                    Leaf(
                        DICT_ORDER,
                        item.lineno,
                        f"'{callee}(...)' materializes a set in hash order",
                    )
                )
            if callee == "join" and item.args and is_set_expr(item.args[0]):
                leaves.append(
                    Leaf(
                        DICT_ORDER,
                        item.lineno,
                        "'.join(...)' over a set concatenates in hash order",
                    )
                )
            if _is_unsorted_listing(item, parents):
                leaves.append(
                    Leaf(
                        DICT_ORDER,
                        item.lineno,
                        "unsorted directory listing — order is "
                        "filesystem-dependent",
                    )
                )
    return leaves


def _attr_dotted(node: ast.Attribute) -> Optional[str]:
    parts = [node.attr]
    current: ast.AST = node.value
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def _is_environ_call(node: ast.Attribute, parents: Dict[int, ast.AST]) -> bool:
    """True when this ``os.environ`` is the base of a method call.

    ``os.environ.get(...)`` is classified through the external-call
    table; counting the attribute read too would double-report.
    """
    parent = parents.get(id(node))
    if isinstance(parent, ast.Attribute):
        grand = parents.get(id(parent))
        return isinstance(grand, ast.Call) and grand.func is parent
    return False


def _call_tail(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _is_unsorted_listing(
    call: ast.Call, parents: Dict[int, ast.AST]
) -> bool:
    dotted = None
    if isinstance(call.func, ast.Attribute):
        dotted = _attr_dotted(call.func)
        tail = call.func.attr
    elif isinstance(call.func, ast.Name):
        dotted = call.func.id
        tail = call.func.id
    else:
        return False
    is_listing = (
        dotted in _LISTING_CALLS if dotted else False
    ) or tail in _LISTING_METHODS
    if not is_listing:
        return False
    parent = parents.get(id(call))
    if (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Name)
        and parent.func.id == "sorted"
        and parent.args
        and parent.args[0] is call
    ):
        return False
    return True


def _set_typed_locals(
    func: ast.AST, body_nodes: List[ast.AST]
) -> Set[str]:
    """Names of locals that (may) hold a set, by forward propagation."""
    set_vars: Set[str] = set()
    # Two passes so ``a = b & c`` after ``b = set()`` resolves even when
    # ast.walk order is surprising; the set only grows, so this is a
    # tiny fixed point.
    for _ in range(2):
        for item in body_nodes:
            target: Optional[ast.AST] = None
            value: Optional[ast.AST] = None
            if isinstance(item, ast.Assign) and len(item.targets) == 1:
                target, value = item.targets[0], item.value
            elif isinstance(item, ast.AnnAssign) and item.value is not None:
                target, value = item.target, item.value
            elif isinstance(item, ast.AugAssign):
                target, value = item.target, item.value
                if isinstance(target, ast.Name) and target.id in set_vars:
                    continue  # |= on a set stays a set
            if (
                target is not None
                and isinstance(target, ast.Name)
                and value is not None
                and _is_set_expr(value, set_vars)
            ):
                set_vars.add(target.id)
    return set_vars


def _is_set_expr(expr: ast.AST, set_vars: Set[str]) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Name):
        return expr.id in set_vars
    if isinstance(expr, ast.Call):
        if isinstance(expr.func, ast.Name) and expr.func.id in (
            "set",
            "frozenset",
        ):
            return True
        if isinstance(expr.func, ast.Attribute) and expr.func.attr in (
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        ):
            return _is_set_expr(expr.func.value, set_vars)
        return False
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(expr.left, set_vars) or _is_set_expr(
            expr.right, set_vars
        )
    return False
