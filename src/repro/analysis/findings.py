"""Whole-program findings: a lint finding plus a propagation path.

An :class:`AnalysisFinding` extends the per-file
:class:`repro.lint.findings.Finding` with the inter-procedural
*trace* — the chain of call sites from the checked root down to the
leaf operation that introduced the effect.  Rendering prints the chain
``file:line`` by ``file:line`` so a reader can follow the taint without
opening the analyzer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from ..lint.findings import Finding

__all__ = ["AnalysisFinding", "PathStep"]


@dataclass(frozen=True, order=True)
class PathStep:
    """One hop of a propagation path."""

    path: str
    line: int
    symbol: str
    note: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.symbol} — {self.note}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "file": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "note": self.note,
        }


@dataclass(frozen=True, order=True)
class AnalysisFinding(Finding):
    """One checker violation, with its inter-procedural trace.

    ``trace[0]`` is the declared root (surface / durability root /
    emission site); the last step is the leaf operation.  Single-step
    findings (schema drift) carry a one-element trace.
    """

    trace: Tuple[PathStep, ...] = field(default=())

    def render(self) -> str:
        text = super().render()
        if len(self.trace) > 1:
            lines = [text, "    propagation path:"]
            lines.extend(f"      {step.render()}" for step in self.trace)
            text = "\n".join(lines)
        return text

    def to_dict(self) -> Dict[str, Any]:
        payload = super().to_dict()
        payload["trace"] = [step.to_dict() for step in self.trace]
        return payload

    def fingerprint(self) -> str:
        """Line-number-free identity used by the baseline ratchet.

        Stable across unrelated edits to the same files: built from the
        rule code, the anchor file, and the message (which names the
        symbols involved, not their line numbers).
        """
        return f"{self.code}::{self.path}::{self.message}"
