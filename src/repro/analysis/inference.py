"""Fixed-point inter-procedural effect inference.

Every function starts from its *leaf* effects (the operations in its
own body, from :func:`repro.analysis.effects.function_leaf_effects`)
and the pass repeatedly joins in the effects of every resolved callee
until nothing changes.  The lattice is a finite powerset and join is
union — monotone, so the fixed point exists and is reached in at most
``|effects| x |functions|`` rounds (in practice two or three).

``@declared_effects(...)`` pins a function's summary: its body is not
scanned and callee effects are not joined in.  That is the structured
escape hatch for code whose correctness argument is not syntactic
(e.g. the lease lockfile dance).

For every effect in every summary the pass records one *witness
origin* — either the leaf operation that introduced it or the call
edge it arrived through.  Witnesses are chosen first-wins under a
deterministic iteration order (sorted qnames, call sites in source
order), so reported propagation paths are stable run to run.  Paths
are reconstructed by :func:`witness_trace` walking origins from a root
to a leaf.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from .callgraph import CallGraph, FunctionInfo
from .effects import Leaf, function_leaf_effects
from .findings import PathStep

__all__ = ["EffectSummary", "infer_effects", "witness_trace"]


#: Witness for one effect in one function's summary:
#: ``("leaf", line, note)`` — introduced by an operation in the body;
#: ``("call", callee_qname, line)`` — joined in from a callee;
#: ``("declared", def_line, "")`` — pinned by ``@declared_effects``.
Origin = Tuple[str, object, object]


@dataclass
class EffectSummary:
    """Inferred whole-program effect set of one function."""

    qname: str
    effects: FrozenSet[str]
    #: Leaf operations in the function's own body.
    leaves: Tuple[Leaf, ...] = ()
    #: effect -> witness origin (see :data:`Origin`).
    origins: Dict[str, Origin] = field(default_factory=dict)
    declared: bool = False


def infer_effects(graph: CallGraph) -> Dict[str, EffectSummary]:
    """Run the fixed point; returns summaries keyed by function qname."""
    summaries: Dict[str, EffectSummary] = {}
    for info in graph.iter_functions():
        if info.declared is not None:
            summaries[info.qname] = EffectSummary(
                qname=info.qname,
                effects=info.declared,
                leaves=(),
                origins={
                    effect: ("declared", info.lineno, "")
                    for effect in sorted(info.declared)
                },
                declared=True,
            )
            continue
        leaves = tuple(function_leaf_effects(graph, info))
        origins: Dict[str, Origin] = {}
        for leaf in leaves:
            origins.setdefault(leaf.effect, ("leaf", leaf.line, leaf.note))
        summaries[info.qname] = EffectSummary(
            qname=info.qname,
            effects=frozenset(origins),
            leaves=leaves,
            origins=origins,
        )
    ordered = sorted(summaries)
    changed = True
    while changed:
        changed = False
        for qname in ordered:
            summary = summaries[qname]
            if summary.declared:
                continue
            effects = set(summary.effects)
            for site in graph.calls.get(qname, ()):
                for callee in site.targets:
                    callee_summary = summaries.get(callee)
                    if callee_summary is None:
                        continue
                    for effect in sorted(callee_summary.effects):
                        if effect not in effects:
                            effects.add(effect)
                            summary.origins[effect] = (
                                "call",
                                callee,
                                site.line,
                            )
            if len(effects) != len(summary.effects):
                summary.effects = frozenset(effects)
                changed = True
    return summaries


def witness_trace(
    graph: CallGraph,
    summaries: Dict[str, EffectSummary],
    root: str,
    effect: str,
    max_depth: int = 32,
) -> Tuple[PathStep, ...]:
    """The recorded propagation path of *effect* from *root* to a leaf.

    Each step names the function and the call line the effect flows
    through; the final step is the leaf operation (or the
    ``@declared_effects`` declaration) that introduced it.
    """
    steps: List[PathStep] = []
    current: Optional[str] = root
    seen = set()
    for _ in range(max_depth):
        if current is None or current in seen:
            break
        seen.add(current)
        info = graph.functions.get(current)
        summary = summaries.get(current)
        if info is None or summary is None:
            break
        origin = summary.origins.get(effect)
        if origin is None:
            steps.append(
                PathStep(
                    path=info.path,
                    line=info.lineno,
                    symbol=info.display,
                    note=f"summary carries {effect} (origin unrecorded)",
                )
            )
            break
        kind = origin[0]
        if kind == "leaf":
            steps.append(
                PathStep(
                    path=info.path,
                    line=int(origin[1]),  # type: ignore[arg-type]
                    symbol=info.display,
                    note=str(origin[2]),
                )
            )
            break
        if kind == "declared":
            steps.append(
                PathStep(
                    path=info.path,
                    line=int(origin[1]),  # type: ignore[arg-type]
                    symbol=info.display,
                    note=f"declares {effect} via @declared_effects",
                )
            )
            break
        callee = str(origin[1])
        callee_info = graph.functions.get(callee)
        callee_name = (
            callee_info.display if callee_info is not None else callee
        )
        steps.append(
            PathStep(
                path=info.path,
                line=int(origin[2]),  # type: ignore[arg-type]
                symbol=info.display,
                note=f"calls {callee_name}",
            )
        )
        current = callee
    return tuple(steps)
