"""AST-based, import-resolving call graph over a whole package.

The builder turns a :class:`~repro.analysis.program.Program` into one
:class:`FunctionInfo` node per function/method (nested functions
included; lambdas are folded into their enclosing function) and one
:class:`CallSite` per syntactic call, resolved to:

* *internal targets* — qualified names ``module:Class.method`` of every
  function the call may reach.  Resolution understands imports (incl.
  relative and re-exported names), ``self``/``cls``, attribute chains
  through annotated/inferred instance types, class-hierarchy dispatch
  (a call through a base-class receiver targets every override — this
  is how the engine's protocol-hook indirection is modeled),
  ``functools.partial``, ``super()``, and constructor calls;
* an *external* dotted name (``numpy.sort``, ``time.time``, ``open``)
  looked up in the effect tables of :mod:`repro.analysis.effects`; or
* *dynamic* — a call through a parameter, a container lookup, or
  anything else resolution cannot see through.  Dynamic calls fall back
  to the conservative TOP effect.

Functions passed as arguments (``pool.submit(f)``, ``key=f``,
``target=f``) contribute potential-call edges to every internal
callable they reference, so effects flow through callback plumbing.

Method calls on *untyped* receivers resolve by class-hierarchy name
matching — every method of that name defined anywhere in the program —
except for :data:`AMBIENT_METHOD_NAMES` (``get``, ``items``, ``pop``,
...), which overwhelmingly hit builtin containers and would otherwise
flood the graph with false edges.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .program import ModuleInfo, Program

__all__ = [
    "AMBIENT_METHOD_NAMES",
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "build_call_graph",
    "own_body_nodes",
]

#: Method names never resolved by bare name matching: they are
#: overwhelmingly dict/list/set/str/file operations, and a name-based
#: edge to a same-named repo method would be noise, not analysis.
#: Typed receivers (annotations, constructor assignment) still resolve
#: these precisely.
AMBIENT_METHOD_NAMES: FrozenSet[str] = frozenset(
    {
        "add", "append", "astype", "clear", "close", "copy", "count",
        "decode", "difference", "discard", "encode", "endswith",
        "extend", "fileno", "fill", "flush", "format", "get", "index",
        "insert", "intersection", "isdigit", "issubset", "issuperset",
        "item", "items", "join", "keys", "lower", "lstrip", "max",
        "mean", "min", "nonzero", "pop", "popitem", "ravel", "read",
        "readline", "readlines", "remove", "replace", "reshape",
        "reverse", "rstrip", "rsplit", "search", "seek", "setdefault",
        "sort", "split", "startswith", "strip", "sum", "tell",
        "tolist", "union", "update", "upper", "values", "view",
        "write", "writelines",
    }
)

#: Decorator names the builder interprets (matched on the last dotted
#: component, so any import alias works).
_DECL_EFFECTS = "declared_effects"
_DET_SURFACE = "deterministic_surface"


def own_body_nodes(
    root: ast.AST, *, include_lambdas: bool = True
) -> Iterator[ast.AST]:
    """Walk a function's body without descending into nested defs.

    Lambda bodies belong to the enclosing function (a lambda is almost
    always invoked by the HOF it is passed to), nested ``def``/``class``
    bodies do not — they are separate call-graph nodes.  Nested
    ``FunctionDef`` nodes are yielded (the definition, not the body) so
    callers can register them.
    """
    assert isinstance(
        root, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
    )
    stack: List[ast.AST] = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop(0)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
            continue
        if isinstance(node, ast.ClassDef):
            continue
        if isinstance(node, ast.Lambda):
            if include_lambdas:
                yield node
                stack.extend(ast.iter_child_nodes(node))
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@dataclass
class FunctionInfo:
    """One function/method node of the call graph."""

    qname: str
    module: str
    name: str
    cls: Optional[str]
    node: ast.AST
    path: str
    lineno: int
    decorators: Tuple[str, ...] = ()
    #: Effect names from ``@declared_effects`` (None = infer).
    declared: Optional[FrozenSet[str]] = None
    #: ``@deterministic_surface`` marker.
    surface_marked: bool = False

    @property
    def display(self) -> str:
        return self.qname.replace(":", ".", 1)


@dataclass
class ClassInfo:
    """One class definition with resolved hierarchy links."""

    qname: str
    module: str
    name: str
    node: ast.ClassDef
    base_names: Tuple[str, ...] = ()
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Attribute name -> candidate class qnames (from annotations and
    #: constructor assignments).
    attr_types: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: Resolved internal base-class qnames (direct).
    bases: Tuple[str, ...] = ()


@dataclass
class CallSite:
    """One syntactic call inside a function body."""

    line: int
    col: int
    node: ast.Call
    #: Internal function qnames the call may reach.
    targets: Tuple[str, ...] = ()
    #: Dotted external callee (effect-table key) when not internal.
    external: Optional[str] = None
    #: True when resolution gave up (parameter call, computed callee).
    dynamic: bool = False
    #: True for potential-call edges from function-valued arguments.
    via_argument: bool = False


# ---------------------------------------------------------------------------
# module symbol tables
# ---------------------------------------------------------------------------


class _ModuleSymbols:
    """Name-resolution view of one module."""

    def __init__(self, info: ModuleInfo) -> None:
        self.info = info
        self.is_package = info.path.endswith("__init__.py") or (
            "/" not in info.name and "." not in info.path
        )
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: local name -> (module, symbol | None)
        self.imports: Dict[str, Tuple[str, Optional[str]]] = {}
        #: local alias -> dotted source expression (``A = B.c``)
        self.aliases: Dict[str, str] = {}
        #: module-level string constants (``RUN_START = "run_start"``)
        self.constants: Dict[str, str] = {}

    def package_of(self, level: int) -> str:
        """The module's package walked up *level* steps (PEP 328)."""
        name = self.info.name
        if not self.is_package:
            name = name.rpartition(".")[0]
        for _ in range(max(level - 1, 0)):
            name = name.rpartition(".")[0]
        return name


def _dotted(node: ast.AST) -> Optional[str]:
    parts = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def _collect_imports(symbols: _ModuleSymbols) -> None:
    """Record every import in the module, wherever it appears.

    Function-level imports (used for cycle breaking all over the
    package) land in the same table; a same-name collision at module
    granularity is not observed in practice and would only widen
    resolution.
    """
    for node in ast.walk(symbols.info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                symbols.imports[local] = (target, None)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = symbols.package_of(node.level)
                module = (
                    f"{base}.{node.module}" if node.module else base
                )
            else:
                module = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                symbols.imports[local] = (module, alias.name)


def _collect_definitions(
    symbols: _ModuleSymbols, module: ModuleInfo
) -> List[FunctionInfo]:
    """Top-level functions, classes with methods, aliases, constants."""
    functions: List[FunctionInfo] = []
    for stmt in module.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = _function_info(module, stmt, cls=None)
            symbols.functions[stmt.name] = info
            functions.append(info)
        elif isinstance(stmt, ast.ClassDef):
            cls_info = ClassInfo(
                qname=f"{module.name}:{stmt.name}",
                module=module.name,
                name=stmt.name,
                node=stmt,
                base_names=tuple(
                    name
                    for name in (_dotted(base) for base in stmt.bases)
                    if name is not None
                ),
            )
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    method = _function_info(module, sub, cls=stmt.name)
                    cls_info.methods[sub.name] = method
                    functions.append(method)
                elif isinstance(sub, ast.AnnAssign) and isinstance(
                    sub.target, ast.Name
                ):
                    cls_info.attr_types.setdefault(
                        sub.target.id, ()
                    )  # filled after hierarchy resolution
            symbols.classes[stmt.name] = cls_info
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if isinstance(stmt.value, ast.Constant) and isinstance(
                stmt.value.value, str
            ):
                symbols.constants[target.id] = stmt.value.value
            else:
                source = _dotted(stmt.value)
                if source is not None:
                    symbols.aliases[target.id] = source
    return functions


def _function_info(
    module: ModuleInfo,
    node: ast.AST,
    cls: Optional[str],
    parent: Optional[str] = None,
) -> FunctionInfo:
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    if parent is not None:
        local = f"{parent}.<locals>.{node.name}"
    elif cls is not None:
        local = f"{cls}.{node.name}"
    else:
        local = node.name
    decorators = []
    declared: Optional[FrozenSet[str]] = None
    surface = False
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = _dotted(target)
        if name is None:
            continue
        decorators.append(name)
        tail = name.rsplit(".", 1)[-1]
        if tail == _DECL_EFFECTS and isinstance(deco, ast.Call):
            names = [
                arg.value
                for arg in deco.args
                if isinstance(arg, ast.Constant)
                and isinstance(arg.value, str)
            ]
            declared = frozenset(n for n in names if n != "PURE")
        elif tail == _DET_SURFACE:
            surface = True
    return FunctionInfo(
        qname=f"{module.name}:{local}",
        module=module.name,
        name=node.name,
        cls=cls,
        node=node,
        path=module.path,
        lineno=node.lineno,
        decorators=tuple(decorators),
        declared=declared,
        surface_marked=surface,
    )


# ---------------------------------------------------------------------------
# the graph
# ---------------------------------------------------------------------------


class CallGraph:
    """Resolved functions, classes, and per-function call sites."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.symbols: Dict[str, _ModuleSymbols] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.calls: Dict[str, List[CallSite]] = {}
        #: class qname -> direct internal subclass qnames
        self.subclasses: Dict[str, List[str]] = {}

    # -- hierarchy ----------------------------------------------------

    def ancestors(self, cls_qname: str) -> List[str]:
        """Transitive internal base classes, nearest first."""
        seen: List[str] = []
        stack = list(self.classes[cls_qname].bases)
        while stack:
            base = stack.pop(0)
            if base in seen or base not in self.classes:
                continue
            seen.append(base)
            stack.extend(self.classes[base].bases)
        return seen

    def descendants(self, cls_qname: str) -> List[str]:
        """Transitive internal subclasses, breadth-first."""
        seen: List[str] = []
        stack = list(self.subclasses.get(cls_qname, ()))
        while stack:
            sub = stack.pop(0)
            if sub in seen:
                continue
            seen.append(sub)
            stack.extend(self.subclasses.get(sub, ()))
        return seen

    def resolve_method(
        self, cls_qnames: Sequence[str], method: str
    ) -> Tuple[str, ...]:
        """Every definition *method* may dispatch to on these receivers.

        Includes the receiver classes themselves, their ancestors
        (inherited implementations), and every subclass override —
        receivers statically typed as a base class dispatch to
        subclass implementations at runtime.
        """
        targets: List[str] = []
        for cls in cls_qnames:
            if cls not in self.classes:
                continue
            family = [cls] + self.ancestors(cls) + self.descendants(cls)
            for member in family:
                info = self.classes[member].methods.get(method)
                if info is not None and info.qname not in targets:
                    targets.append(info.qname)
        return tuple(targets)

    def methods_named(self, method: str) -> Tuple[str, ...]:
        """Name-based CHA fallback: every method with this name."""
        if method in AMBIENT_METHOD_NAMES:
            return ()
        targets = [
            cls.methods[method].qname
            for cls in self.classes.values()
            if method in cls.methods
        ]
        return tuple(sorted(targets))

    # -- symbol resolution --------------------------------------------

    def resolve_symbol(
        self, module: str, symbol: str, _seen: Optional[Set[str]] = None
    ) -> Tuple[str, Optional[str]]:
        """Resolve *symbol* in *module* to ``(kind, value)``.

        Kinds: ``function`` / ``class`` / ``module`` (internal dotted
        module name), ``external`` (dotted name outside the program),
        ``constant`` (module-level string), or ``unknown``.
        """
        key = f"{module}:{symbol}"
        seen = _seen if _seen is not None else set()
        if key in seen:
            return ("unknown", None)
        seen.add(key)
        syms = self.symbols.get(module)
        if syms is None:
            return ("external", f"{module}.{symbol}")
        if symbol in syms.functions:
            return ("function", syms.functions[symbol].qname)
        if symbol in syms.classes:
            return ("class", syms.classes[symbol].qname)
        if symbol in syms.imports:
            target_module, target_symbol = syms.imports[symbol]
            if target_symbol is None:
                if self.program.is_internal(target_module):
                    return ("module", target_module)
                return ("external", target_module)
            if self.program.is_internal(target_module):
                resolved = self.resolve_symbol(
                    target_module, target_symbol, seen
                )
                if resolved[0] == "unknown":
                    # ``from package import module`` spelling.
                    candidate = f"{target_module}.{target_symbol}"
                    if candidate in self.symbols:
                        return ("module", candidate)
                return resolved
            return ("external", f"{target_module}.{target_symbol}")
        if symbol in syms.aliases:
            source = syms.aliases[symbol]
            head, _, rest = source.partition(".")
            kind, value = self.resolve_symbol(module, head, seen)
            if not rest:
                return (kind, value)
            if kind == "module" and value is not None:
                return self.resolve_symbol(value, rest, seen)
            if kind == "external" and value is not None:
                return ("external", f"{value}.{rest}")
            return ("unknown", None)
        if symbol in syms.constants:
            return ("constant", syms.constants[symbol])
        submodule = f"{module}.{symbol}"
        if submodule in self.symbols:
            return ("module", submodule)
        return ("unknown", None)

    def resolve_constant(self, module: str, dotted: str) -> Optional[str]:
        """A dotted name's module-level string value, if resolvable."""
        head, _, rest = dotted.partition(".")
        kind, value = self.resolve_symbol(module, head)
        while rest and kind == "module" and value is not None:
            head, _, rest = rest.partition(".")
            kind, value = self.resolve_symbol(value, head)
        if kind == "constant" and not rest:
            return value
        return None

    def function_module(self, qname: str) -> str:
        return qname.partition(":")[0]

    def iter_functions(self) -> Iterator[FunctionInfo]:
        for qname in sorted(self.functions):
            yield self.functions[qname]


# ---------------------------------------------------------------------------
# builder
# ---------------------------------------------------------------------------


def build_call_graph(program: Program) -> CallGraph:
    """Build the resolved call graph of *program*."""
    graph = CallGraph(program)
    all_functions: List[FunctionInfo] = []
    for name in sorted(program.modules):
        module = program.modules[name]
        syms = _ModuleSymbols(module)
        _collect_imports(syms)
        all_functions.extend(_collect_definitions(syms, module))
        graph.symbols[name] = syms
        for cls in syms.classes.values():
            graph.classes[cls.qname] = cls
    # Resolve the class hierarchy.
    for cls in graph.classes.values():
        bases: List[str] = []
        for base_name in cls.base_names:
            resolved = _resolve_dotted(graph, cls.module, base_name)
            if resolved[0] == "class" and resolved[1] is not None:
                bases.append(resolved[1])
        cls.bases = tuple(bases)
        for base in bases:
            graph.subclasses.setdefault(base, []).append(cls.qname)
    # Class attribute types (annotations + constructor assignments).
    for cls in graph.classes.values():
        _collect_attr_types(graph, cls)
    # Function bodies: nested defs become nodes, calls get resolved.
    for info in all_functions:
        _FunctionScanner(graph, info).scan()
    return graph


def _resolve_dotted(
    graph: CallGraph, module: str, dotted: str
) -> Tuple[str, Optional[str]]:
    head, _, rest = dotted.partition(".")
    kind, value = graph.resolve_symbol(module, head)
    while rest:
        head, _, rest = rest.partition(".")
        if kind == "module" and value is not None:
            kind, value = graph.resolve_symbol(value, head)
        elif kind == "external" and value is not None:
            value = f"{value}.{head}"
        elif kind == "class" and value is not None and not rest:
            method = graph.classes[value].methods.get(head)
            if method is not None:
                return ("function", method.qname)
            return ("unknown", None)
        else:
            return ("unknown", None)
    return (kind, value)


def _annotation_classes(
    graph: CallGraph, module: str, annotation: Optional[ast.AST]
) -> Tuple[str, ...]:
    """Internal class qnames referenced by an annotation expression."""
    if annotation is None:
        return ()
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return ()
    classes: List[str] = []
    for node in ast.walk(annotation):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                inner = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                continue
            for name in _annotation_classes(graph, module, inner):
                if name not in classes:
                    classes.append(name)
        dotted = _dotted(node)
        if dotted is None:
            continue
        kind, value = _resolve_dotted(graph, module, dotted)
        if kind == "class" and value is not None and value not in classes:
            classes.append(value)
    return tuple(classes)


def _collect_attr_types(graph: CallGraph, cls: ClassInfo) -> None:
    """``self.x`` types from class-body annotations and ``__init__``."""
    for stmt in cls.node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            types = _annotation_classes(graph, cls.module, stmt.annotation)
            if types:
                cls.attr_types[stmt.target.id] = types
    for method in cls.methods.values():
        node = method.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        param_types = _parameter_types(graph, cls.module, node)
        for sub in ast.walk(node):
            target: Optional[ast.AST] = None
            value: Optional[ast.AST] = None
            annotation: Optional[ast.AST] = None
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target, value = sub.targets[0], sub.value
            elif isinstance(sub, ast.AnnAssign):
                target, value, annotation = sub.target, sub.value, sub.annotation
            if (
                not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
            ):
                continue
            types: Tuple[str, ...] = ()
            if annotation is not None:
                types = _annotation_classes(graph, cls.module, annotation)
            if not types and value is not None:
                types = _value_types(graph, cls.module, value, param_types)
            if types and target.attr not in cls.attr_types:
                cls.attr_types[target.attr] = types


def _parameter_types(
    graph: CallGraph,
    module: str,
    node: ast.AST,
) -> Dict[str, Tuple[str, ...]]:
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = node.args
    params: Dict[str, Tuple[str, ...]] = {}
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        types = _annotation_classes(graph, module, arg.annotation)
        if types:
            params[arg.arg] = types
    return params


def _value_types(
    graph: CallGraph,
    module: str,
    value: ast.AST,
    locals_types: Dict[str, Tuple[str, ...]],
) -> Tuple[str, ...]:
    """Candidate instance types of an assigned expression (shallow)."""
    if isinstance(value, ast.Name):
        return locals_types.get(value.id, ())
    if isinstance(value, ast.Call):
        dotted = _dotted(value.func)
        if dotted is not None:
            kind, resolved = _resolve_dotted(graph, module, dotted)
            if kind == "class" and resolved is not None:
                return (resolved,)
            if kind == "function" and resolved is not None:
                info = graph.functions.get(resolved)
                if info is None:
                    # Not scanned yet; look through module tables.
                    fmodule = resolved.partition(":")[0]
                    syms = graph.symbols.get(fmodule)
                    local = resolved.partition(":")[2]
                    if syms is not None:
                        cls_name, _, meth = local.partition(".")
                        if meth and cls_name in syms.classes:
                            info = syms.classes[cls_name].methods.get(meth)
                        else:
                            info = syms.functions.get(local)
                if info is not None and isinstance(
                    info.node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    return _annotation_classes(
                        graph,
                        info.module,
                        info.node.returns,
                    )
    if isinstance(value, ast.IfExp):
        return tuple(
            dict.fromkeys(
                _value_types(graph, module, value.body, locals_types)
                + _value_types(graph, module, value.orelse, locals_types)
            )
        )
    return ()


# ---------------------------------------------------------------------------
# per-function scanning
# ---------------------------------------------------------------------------


class _FunctionScanner:
    """Resolve one function's body: nested defs, types, call sites.

    *enclosing* links a nested function back to its parent scope so
    closures resolve captured names (``self``, typed locals, sibling
    nested defs) through the chain.
    """

    def __init__(
        self,
        graph: CallGraph,
        info: FunctionInfo,
        enclosing: Optional["_FunctionScanner"] = None,
    ) -> None:
        self.graph = graph
        self.info = info
        self.enclosing = enclosing
        self.module = info.module
        self.syms = graph.symbols[info.module]
        self.cls = (
            graph.classes.get(f"{info.module}:{info.cls}")
            if info.cls
            else None
        )
        if self.cls is None and enclosing is not None:
            self.cls = enclosing.cls
        node = info.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        self.node = node
        self.params: Set[str] = set()
        args = node.args
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            self.params.add(arg.arg)
        self.param_types = _parameter_types(graph, info.module, node)
        #: local variable -> candidate instance class qnames
        self.var_types: Dict[str, Tuple[str, ...]] = dict(self.param_types)
        #: local variable -> internal callable qnames (x = f; x = partial(f))
        self.var_funcs: Dict[str, Tuple[str, ...]] = {}
        #: locally defined nested functions
        self.local_defs: Dict[str, FunctionInfo] = {}
        self.sites: List[CallSite] = []

    # -- entry --------------------------------------------------------

    def scan(self) -> None:
        graph = self.graph
        graph.functions[self.info.qname] = self.info
        graph.calls[self.info.qname] = self.sites
        # Pass 1: shallow local type/value propagation.
        for stmt in self._own_nodes(self.node, include_lambdas=True):
            self._track_assignment(stmt)
        # Pass 2: nested function definitions become their own nodes.
        # Names are registered before bodies are scanned so mutually
        # recursive nested defs resolve each other.
        module_info = graph.program.modules[self.module]
        nested_defs: List[FunctionInfo] = []
        for stmt in self._own_nodes(self.node, include_lambdas=False):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested = _function_info(
                    module_info, stmt, cls=None, parent=self._local_name()
                )
                self.local_defs[stmt.name] = nested
                nested_defs.append(nested)
        for nested in nested_defs:
            _FunctionScanner(graph, nested, enclosing=self).scan()
        # Pass 3: call sites.
        for stmt in self._own_nodes(self.node, include_lambdas=True):
            if isinstance(stmt, ast.Call):
                self._resolve_call(stmt)

    def _local_name(self) -> str:
        return self.info.qname.partition(":")[2]

    @staticmethod
    def _own_nodes(
        root: ast.AST, include_lambdas: bool
    ) -> Iterator[ast.AST]:
        return own_body_nodes(root, include_lambdas=include_lambdas)

    # -- local inference ----------------------------------------------

    def _track_assignment(self, stmt: ast.AST) -> None:
        target: Optional[ast.AST] = None
        value: Optional[ast.AST] = None
        annotation: Optional[ast.AST] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target, value, annotation = stmt.target, stmt.value, stmt.annotation
        if not isinstance(target, ast.Name):
            return
        name = target.id
        if annotation is not None:
            types = _annotation_classes(self.graph, self.module, annotation)
            if types:
                self.var_types[name] = types
        if value is None:
            return
        callables = self._callable_value(value)
        if callables:
            self.var_funcs[name] = callables
            return
        types = self._instance_types(value)
        if types:
            self.var_types[name] = types

    def _callable_value(self, value: ast.AST) -> Tuple[str, ...]:
        """Internal callables an expression evaluates to, if any."""
        resolved = self._resolve_value(value)
        if resolved[0] in ("function", "callable"):
            return resolved[1]
        if isinstance(value, ast.Call):
            dotted = _dotted(value.func)
            if dotted is not None and dotted.rsplit(".", 1)[-1] == "partial":
                if value.args:
                    inner = self._resolve_value(value.args[0])
                    if inner[0] in ("function", "callable"):
                        return inner[1]
        return ()

    def _instance_types(self, value: ast.AST) -> Tuple[str, ...]:
        resolved = self._resolve_value(value)
        if resolved[0] == "instance":
            return resolved[1]
        return ()

    # -- value resolution ---------------------------------------------

    def _resolve_value(
        self, expr: ast.AST
    ) -> Tuple[str, Tuple[str, ...]]:
        """Classify an expression for call resolution.

        Returns ``(kind, values)`` with kinds ``function`` /
        ``callable`` (internal callables), ``class``, ``instance``
        (candidate class qnames), ``module``, ``external`` (dotted
        name), ``dynamic``, or ``opaque``.
        """
        graph = self.graph
        if isinstance(expr, ast.Name):
            name = expr.id
            if name == "self" and self.cls is not None:
                return ("instance", (self.cls.qname,))
            if name == "cls" and self.cls is not None:
                return ("class", (self.cls.qname,))
            scope: Optional[_FunctionScanner] = self
            while scope is not None:
                if name in scope.local_defs:
                    return ("function", (scope.local_defs[name].qname,))
                if name in scope.var_funcs:
                    return ("callable", scope.var_funcs[name])
                if name in scope.var_types:
                    return ("instance", scope.var_types[name])
                if name in scope.params:
                    return ("dynamic", ())
                scope = scope.enclosing
            kind, value = graph.resolve_symbol(self.module, name)
            if kind == "function" and value is not None:
                return ("function", (value,))
            if kind == "class" and value is not None:
                return ("class", (value,))
            if kind == "module" and value is not None:
                return ("module", (value,))
            if kind == "external" and value is not None:
                return ("external", (value,))
            # Unresolved bare name: builtin (len, sorted, open, ...).
            return ("external", (name,))
        if isinstance(expr, ast.Attribute):
            return self._resolve_attribute(expr)
        if isinstance(expr, ast.Call):
            func = self._resolve_value(expr.func)
            if func[0] == "class" and func[1]:
                return ("instance", func[1])
            if func[0] == "function" and func[1]:
                returns: List[str] = []
                for qname in func[1]:
                    info = graph.functions.get(qname)
                    if info is not None and isinstance(
                        info.node, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        for cls_name in _annotation_classes(
                            graph, info.module, info.node.returns
                        ):
                            if cls_name not in returns:
                                returns.append(cls_name)
                if returns:
                    return ("instance", tuple(returns))
                return ("opaque", ())
            if func[0] == "external" and func[1]:
                dotted = func[1][0]
                if dotted == "super" and self.cls is not None:
                    return ("instance", tuple(graph.ancestors(self.cls.qname)) or (self.cls.qname,))
                if dotted.rsplit(".", 1)[-1] == "partial" and expr.args:
                    inner = self._resolve_value(expr.args[0])
                    if inner[0] in ("function", "callable"):
                        return ("callable", inner[1])
            return ("opaque", ())
        if isinstance(expr, ast.Lambda):
            # Lambdas are folded into the enclosing function.
            return ("opaque", ())
        if isinstance(expr, ast.IfExp):
            first = self._resolve_value(expr.body)
            second = self._resolve_value(expr.orelse)
            if first[0] == second[0] and first[0] in (
                "instance",
                "callable",
                "function",
            ):
                merged = tuple(dict.fromkeys(first[1] + second[1]))
                return (first[0], merged)
            return first if first[0] != "opaque" else second
        return ("opaque", ())

    def _resolve_attribute(
        self, expr: ast.Attribute
    ) -> Tuple[str, Tuple[str, ...]]:
        graph = self.graph
        base = self._resolve_value(expr.value)
        attr = expr.attr
        if base[0] == "module" and base[1]:
            kind, value = graph.resolve_symbol(base[1][0], attr)
            if kind == "function" and value is not None:
                return ("function", (value,))
            if kind == "class" and value is not None:
                return ("class", (value,))
            if kind == "module" and value is not None:
                return ("module", (value,))
            if kind == "external" and value is not None:
                return ("external", (value,))
            return ("opaque", ())
        if base[0] == "external" and base[1]:
            return ("external", (f"{base[1][0]}.{attr}",))
        if base[0] == "class" and base[1]:
            methods = graph.resolve_method(base[1], attr)
            if methods:
                return ("function", methods)
            return ("opaque", ())
        if base[0] == "instance" and base[1]:
            methods = graph.resolve_method(base[1], attr)
            if methods:
                return ("callable", methods)
            attr_types: List[str] = []
            for cls_qname in base[1]:
                cls = graph.classes.get(cls_qname)
                if cls is None:
                    continue
                for family in [cls_qname] + graph.ancestors(cls_qname):
                    family_cls = graph.classes.get(family)
                    if family_cls is None:
                        continue
                    for t in family_cls.attr_types.get(attr, ()):
                        if t not in attr_types:
                            attr_types.append(t)
            if attr_types:
                return ("instance", tuple(attr_types))
            return ("opaque", ())
        # Attribute on a dynamic/opaque receiver: the *method name* is
        # still known, so the call can fall back to name-based CHA or
        # the external-method tables instead of conservative TOP —
        # ``param.sum(axis=1)`` on an unannotated array is not the same
        # hazard as calling ``param`` itself.
        return ("opaque", ())

    # -- call classification ------------------------------------------

    def _resolve_call(self, call: ast.Call) -> None:
        resolved = self._resolve_value(call.func)
        site = CallSite(line=call.lineno, col=call.col_offset, node=call)
        if resolved[0] in ("function", "callable") and resolved[1]:
            site.targets = resolved[1]
        elif resolved[0] == "class" and resolved[1]:
            site.targets = self.graph.resolve_method(resolved[1], "__init__")
        elif resolved[0] == "instance" and resolved[1]:
            # Calling an instance dispatches to __call__ overrides.
            targets = self.graph.resolve_method(resolved[1], "__call__")
            if targets:
                site.targets = targets
            else:
                site.dynamic = True
        elif resolved[0] == "external" and resolved[1]:
            site.external = resolved[1][0]
            tail = site.external.rsplit(".", 1)[-1]
            if tail == "partial" and call.args:
                inner = self._resolve_value(call.args[0])
                if inner[0] in ("function", "callable") and inner[1]:
                    site.targets = inner[1]
        elif resolved[0] == "dynamic":
            site.dynamic = True
        else:
            # Attribute call on an opaque receiver: class-hierarchy
            # fallback by method name, else an external method.
            if isinstance(call.func, ast.Attribute):
                attr = call.func.attr
                methods = self.graph.methods_named(attr)
                if methods:
                    site.targets = methods
                else:
                    site.external = f"<receiver>.{attr}"
            else:
                site.dynamic = True
        self.sites.append(site)
        self._argument_edges(call)

    def _argument_edges(self, call: ast.Call) -> None:
        """Potential-call edges for function-valued arguments."""
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if isinstance(arg, (ast.Call, ast.Lambda)):
                continue
            resolved = self._resolve_value(arg)
            if resolved[0] in ("function", "callable") and resolved[1]:
                self.sites.append(
                    CallSite(
                        line=arg.lineno,
                        col=arg.col_offset,
                        node=call,
                        targets=resolved[1],
                        via_argument=True,
                    )
                )
