"""Runtime-no-op decorators that seed the static effect analysis.

The analyzer reads these *syntactically* (it never imports analyzed
code), so they must stay importable from a dependency-free module —
this one imports nothing outside the stdlib ``typing``.

``@declared_effects(...)`` replaces a function's inferred effect set
with the declared one.  It is the structured escape hatch for
primitives whose correctness argument lives outside the type of
syntactic analysis we do — e.g. the lease claim's ``os.link`` lockfile
dance is a *raw* filesystem mutation, but the whole point of the
pattern is that it is atomic, so it declares ``FS_WRITE_ATOMIC``:

    @declared_effects("FS_WRITE_ATOMIC")
    def try_claim(self, unit, worker, claim): ...

``@deterministic_surface`` adds a function to the declared-
deterministic surface checked by RPA001, alongside the built-in
surface (engine hot loops, protocol hooks, run-key construction,
allocation solvers — see :mod:`repro.analysis.surfaces`).
"""

from __future__ import annotations

from typing import Any, Callable, TypeVar

__all__ = ["declared_effects", "deterministic_surface"]

F = TypeVar("F", bound=Callable[..., Any])


def declared_effects(*effects: str) -> Callable[[F], F]:
    """Declare a function's effect set, overriding inference.

    *effects* are effect names from :mod:`repro.analysis.effects`
    (``"PURE"`` or an empty argument list declares purity).  The
    decorator does nothing at runtime.
    """

    def decorate(func: F) -> F:
        return func

    return decorate


def deterministic_surface(func: F) -> F:
    """Mark a function as a declared-deterministic surface (RPA001 root).

    Does nothing at runtime; the analyzer collects the marker from the
    AST.
    """
    return func
