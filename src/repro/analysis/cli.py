"""The ``repro analyze`` subcommand."""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Optional, Sequence

from .baseline import DEFAULT_BASELINE_PATH, update_baseline
from .runner import CHECKS, run_analysis

__all__ = ["add_analyze_arguments", "cmd_analyze"]

DEFAULT_ROOT = "src/repro"


def add_analyze_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "root",
        nargs="?",
        default=DEFAULT_ROOT,
        help="package directory to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (sarif is the CI code-scanning form)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated check codes to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE_PATH,
        help=(
            "ratchet file of accepted finding fingerprints "
            f"(default: {DEFAULT_BASELINE_PATH}; pass an empty string "
            "to disable)"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite the baseline file; it can only shrink (stale "
            "entries drop out, new findings are never added)"
        ),
    )
    parser.add_argument(
        "--list-checks",
        action="store_true",
        help="print the check catalog and exit",
    )


def _render_catalog() -> str:
    lines = []
    for code, (name, text) in sorted(CHECKS.items()):
        lines.append(f"{code} {name}")
        lines.append(f"    {text}")
    return "\n".join(lines)


def cmd_analyze(args: argparse.Namespace) -> int:
    """Entry point wired into :func:`repro.cli.main`.

    Exit codes: 0 clean (or every error baselined), 1 new errors or
    parse errors.  RPA004 warnings never affect the exit code.
    """
    if args.list_checks:
        print(_render_catalog())
        return 0
    select: Optional[Sequence[str]] = None
    if args.select:
        select = [
            code.strip() for code in args.select.split(",") if code.strip()
        ]
    baseline_path = Path(args.baseline) if args.baseline else None
    report = run_analysis(
        args.root,
        select=select,
        baseline_path=baseline_path,
    )
    if args.update_baseline:
        if baseline_path is None:
            print("--update-baseline requires --baseline")
            return 2
        kept = update_baseline(
            baseline_path, report.findings + report.baselined
        )
        print(
            f"baseline {baseline_path}: {len(kept)} fingerprint(s) kept"
        )
        return 0
    if args.format == "json":
        print(report.render_json())
    elif args.format == "sarif":
        print(report.render_sarif())
    else:
        print(report.render_text())
    return 0 if report.ok else 1
