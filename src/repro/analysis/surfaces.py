"""The declared-deterministic surface checked by RPA001.

These are the functions whose behavior the repo *documents* as a pure
function of their inputs plus the run seed — the bit-identity claim the
reference-equivalence tests and the simcache rest on:

* the engine's hot loops and event-stream construction (everything
  ``Simulation.run()`` dispatches to after provenance capture; ``run``
  itself legitimately reads the clock and environment for manifests);
* every protocol hook override — ``initialize`` / ``on_fulfill`` /
  ``after_contact`` / ``mandate_totals`` on any
  ``ReplicationProtocol`` subclass, because the engine replays them
  inside the loop;
* the simcache run-key construction (a nondeterministic key silently
  poisons the content-addressed cache);
* the trial-scoped amortization layer — the ``repro.sim.events``
  stream builders and the ``TrialArtifacts`` memoized
  fingerprint/stream accessors, whose outputs substitute for the
  engine's and cache's own computations across every protocol in a
  trial;
* public module-level functions of ``repro.allocation`` (the solvers
  the paper's optimization results depend on);
* anything marked ``@deterministic_surface``.

The collection is name-based and tolerant: entries that do not exist in
the analyzed program (fixture packages in tests) are simply absent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .callgraph import CallGraph

__all__ = ["Surface", "collect_surfaces"]

_ENGINE_METHODS = (
    "_build_event_stream",
    "_check_prebuilt",
    "_install_side_state",
    "_iter_chunks",
    "_iter_counted_chunks",
    "_run_dispatch",
    "_run_plain",
    "_run_plain_counted",
    "_run_plain_generic",
    "_run_plain_masked",
    "_run_plain_nohook",
    "_run_traced",
    "_run_with_faults",
    "_settle_unfulfilled",
)

_PROTOCOL_HOOKS = (
    "initialize",
    "on_fulfill",
    "after_contact",
    "mandate_totals",
)


@dataclass(frozen=True)
class Surface:
    """One declared-deterministic root."""

    qname: str
    reason: str


def collect_surfaces(graph: CallGraph) -> List[Surface]:
    """All declared-deterministic roots present in the program."""
    pkg = graph.program.package
    surfaces: List[Surface] = []
    seen = set()

    def add(qname: str, reason: str) -> None:
        if qname in graph.functions and qname not in seen:
            seen.add(qname)
            surfaces.append(Surface(qname=qname, reason=reason))

    engine_cls = f"{pkg}.sim.engine:Simulation"
    for method in _ENGINE_METHODS:
        add(
            f"{engine_cls}.{method}",
            "engine hot loop — replayed bit-identically from the seed",
        )
    base = f"{pkg}.protocols.base:ReplicationProtocol"
    if base in graph.classes:
        for cls_qname in [base] + graph.descendants(base):
            cls = graph.classes.get(cls_qname)
            if cls is None:
                continue
            for hook in _PROTOCOL_HOOKS:
                method = cls.methods.get(hook)
                if method is not None:
                    add(
                        method.qname,
                        "protocol hook — invoked inside the engine loop",
                    )
    add(
        f"{pkg}.simcache.fingerprint:run_key",
        "simcache run key — nondeterminism poisons the cache",
    )
    for name in (
        "build_event_stream",
        "compute_plain_payloads",
        "cut_chunks",
        "stream_side_state",
    ):
        add(
            f"{pkg}.sim.events:{name}",
            "trial-scoped event-stream builder — shared across protocols",
        )
    artifacts_cls = f"{pkg}.experiments.artifacts:TrialArtifacts"
    for method in (
        "event_stream",
        "trace_fingerprint",
        "requests_fingerprint",
        "faults_fingerprint",
    ):
        add(
            f"{artifacts_cls}.{method}",
            "trial artifact memo — substitutes bit-identically per protocol",
        )
    allocation_prefix = f"{pkg}.allocation"
    for info in graph.iter_functions():
        if (
            info.module.startswith(allocation_prefix)
            and info.cls is None
            and "<locals>" not in info.qname
            and not info.name.startswith("_")
        ):
            add(info.qname, "allocation solver — paper-facing optimizer")
        if info.surface_marked:
            add(info.qname, "marked @deterministic_surface")
    surfaces.sort(key=lambda s: s.qname)
    return surfaces
