"""Analysis driver: parse, build the graph, infer, check, baseline.

:func:`run_analysis` is the programmatic entry point behind
``repro analyze``.  Output ordering is deterministic end to end —
modules parse in sorted order, the fixed point iterates sorted qnames,
findings sort by location — so CI diffs and SARIF artifacts are stable
across machines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .baseline import load_baseline, split_by_baseline
from .callgraph import CallGraph, build_call_graph
from .checkers import check_determinism, check_durability, check_schema
from .findings import AnalysisFinding
from .inference import EffectSummary, infer_effects
from .program import Program

__all__ = ["AnalysisReport", "CHECKS", "WARNING_CODES", "run_analysis"]

#: Schema version of the ``--format json`` payload.
JSON_VERSION = 1

#: code -> (name, one-line description) — the check catalog.
CHECKS: Dict[str, Tuple[str, str]] = {
    "RPA001": (
        "determinism-boundary",
        "unseeded RNG, host-clock reads, hash-order iteration, and "
        "dynamic calls must not reach a declared-deterministic surface",
    ),
    "RPA002": (
        "durability",
        "raw filesystem writes reachable from repro.dist or the "
        "experiment checkpointer must go through repro.durable",
    ),
    "RPA003": (
        "schema-unknown-kind",
        "every emitted trace-event kind must exist in the "
        "repro.obs.events registry",
    ),
    "RPA004": (
        "schema-dead-entry",
        "every registry entry should be emitted somewhere (warning)",
    ),
}

#: Codes that report but never fail the run.
WARNING_CODES = frozenset({"RPA004"})


@dataclass
class AnalysisReport:
    """Outcome of one whole-program analysis run."""

    findings: List[AnalysisFinding] = field(default_factory=list)
    baselined: List[AnalysisFinding] = field(default_factory=list)
    n_modules: int = 0
    n_functions: int = 0
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)
    #: Kept for tests and tooling; never serialized.
    graph: Optional[CallGraph] = None
    summaries: Optional[Dict[str, EffectSummary]] = None

    @property
    def errors(self) -> List[AnalysisFinding]:
        return [f for f in self.findings if f.code not in WARNING_CODES]

    @property
    def warnings(self) -> List[AnalysisFinding]:
        return [f for f in self.findings if f.code in WARNING_CODES]

    @property
    def ok(self) -> bool:
        return not self.errors and not self.parse_errors

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        lines.extend(
            f"{path}: parse error: {message}"
            for path, message in self.parse_errors
        )
        summary = (
            f"{len(self.errors)} error(s), {len(self.warnings)} "
            f"warning(s) across {self.n_modules} module(s) / "
            f"{self.n_functions} function(s)"
        )
        if self.baselined:
            summary += f", {len(self.baselined)} baselined"
        if self.parse_errors:
            summary += f", {len(self.parse_errors)} parse error(s)"
        lines.append(summary)
        return "\n".join(lines)

    def render_json(self) -> str:
        payload = {
            "version": JSON_VERSION,
            "tool": "repro-analyze",
            "n_modules": self.n_modules,
            "n_functions": self.n_functions,
            "n_errors": len(self.errors),
            "n_warnings": len(self.warnings),
            "n_baselined": len(self.baselined),
            "parse_errors": [
                {"file": path, "message": message}
                for path, message in self.parse_errors
            ],
            "findings": [finding.to_dict() for finding in self.findings],
            "baselined": sorted(
                finding.fingerprint() for finding in self.baselined
            ),
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def render_sarif(self) -> str:
        """Minimal SARIF 2.1.0 — what code-scanning upload endpoints need."""
        results = []
        for finding in self.findings:
            related = [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": step.path},
                        "region": {"startLine": step.line},
                    },
                    "message": {"text": f"{step.symbol} — {step.note}"},
                }
                for step in finding.trace
            ]
            result = {
                "ruleId": finding.code,
                "level": (
                    "warning" if finding.code in WARNING_CODES else "error"
                ),
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": finding.path},
                            "region": {
                                "startLine": max(finding.line, 1),
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
                "partialFingerprints": {
                    "reproAnalyze/v1": finding.fingerprint()
                },
            }
            if related:
                result["relatedLocations"] = related
            results.append(result)
        payload = {
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-analyze",
                            "version": str(JSON_VERSION),
                            "rules": [
                                {
                                    "id": code,
                                    "name": name,
                                    "shortDescription": {"text": text},
                                }
                                for code, (name, text) in sorted(
                                    CHECKS.items()
                                )
                            ],
                        }
                    },
                    "results": results,
                }
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True)


_CHECKERS = (
    check_determinism,
    check_durability,
    check_schema,
)


def run_analysis(
    root: str = "src/repro",
    *,
    package: Optional[str] = None,
    select: Optional[Sequence[str]] = None,
    baseline_path: Optional[Path] = None,
    source_overrides: Optional[Mapping[str, str]] = None,
) -> AnalysisReport:
    """Analyze the package tree at *root* and return the report.

    *select* restricts the run to the listed check codes.
    *baseline_path*, when given and existing, partitions findings into
    new vs. baselined.  *source_overrides* substitutes module sources
    in memory (the seeded regression tests inject nondeterminism this
    way).
    """
    program = Program.load(
        Path(root), package=package, source_overrides=source_overrides
    )
    graph = build_call_graph(program)
    summaries = infer_effects(graph)
    findings: List[AnalysisFinding] = []
    for checker in _CHECKERS:
        for finding in checker(program, graph, summaries):
            assert isinstance(finding, AnalysisFinding)
            findings.append(finding)
    if select:
        wanted = frozenset(select)
        findings = [f for f in findings if f.code in wanted]
    findings.sort()
    baseline = (
        load_baseline(baseline_path) if baseline_path is not None else None
    )
    new, baselined = split_by_baseline(findings, baseline)
    return AnalysisReport(
        findings=new,
        baselined=baselined,
        n_modules=len(program.modules),
        n_functions=len(graph.functions),
        parse_errors=list(program.parse_errors),
        graph=graph,
        summaries=summaries,
    )
