"""Module discovery and parsing for whole-program analysis.

A :class:`Program` is the parsed image of one Python package tree: every
``.py`` file under a package root, keyed by dotted module name, each
carrying its AST, source, display path, and the shared
``# repro-lint: ignore[...]`` suppression map.

Tests analyze fixture packages and *mutated* copies of the real tree
without touching disk via ``source_overrides`` — the seeded regression
tests inject ``time.time()`` into a protocol hook this way and assert
the checker fires.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import ConfigurationError
from ..lint.suppressions import SuppressionMap, parse_suppressions

__all__ = ["ModuleInfo", "Program"]


@dataclass
class ModuleInfo:
    """One parsed module of the analyzed program."""

    name: str
    path: str
    source: str
    tree: ast.Module
    suppressions: SuppressionMap = field(default_factory=SuppressionMap)


class Program:
    """Every parsed module of one package tree.

    Parameters
    ----------
    modules:
        Dotted module name -> :class:`ModuleInfo`.
    package:
        The root package name (``"repro"`` for the real tree, the
        fixture package's name in tests).
    """

    def __init__(self, modules: Dict[str, ModuleInfo], package: str) -> None:
        self.modules = modules
        self.package = package
        #: Files that failed to parse: (path, message).
        self.parse_errors: List[Tuple[str, str]] = []

    def __contains__(self, name: str) -> bool:
        return name in self.modules

    def get(self, name: str) -> Optional[ModuleInfo]:
        return self.modules.get(name)

    def is_internal(self, module: str) -> bool:
        """True when *module* belongs to the analyzed package."""
        return module == self.package or module.startswith(
            self.package + "."
        )

    @classmethod
    def load(
        cls,
        root: Path,
        *,
        package: Optional[str] = None,
        source_overrides: Optional[Mapping[str, str]] = None,
    ) -> "Program":
        """Parse every ``.py`` file under the package directory *root*.

        *root* is the package directory itself (``src/repro``); its
        basename is the package name unless *package* overrides it.
        *source_overrides* maps dotted module names to replacement
        source text (modules not on disk may be added this way).
        """
        root = Path(root)
        if not root.is_dir():
            raise ConfigurationError(
                f"analysis root {root} is not a directory"
            )
        pkg = package or root.name
        overrides = dict(source_overrides or {})
        program = cls({}, pkg)
        for file_path in sorted(root.rglob("*.py")):
            rel = file_path.relative_to(root)
            parts = (pkg,) + rel.parts[:-1]
            stem = rel.stem
            name = ".".join(parts) if stem == "__init__" else ".".join(
                parts + (stem,)
            )
            source = overrides.pop(name, None)
            if source is None:
                source = file_path.read_text(encoding="utf-8")
            program._add(name, str(file_path), source)
        for name, source in sorted(overrides.items()):
            # Synthetic modules injected by tests (no on-disk file).
            pseudo = "<override>/" + name.replace(".", "/") + ".py"
            program._add(name, pseudo, source)
        return program

    def _add(self, name: str, path: str, source: str) -> None:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            self.parse_errors.append(
                (path, f"line {error.lineno}: {error.msg}")
            )
            return
        self.modules[name] = ModuleInfo(
            name=name,
            path=path,
            source=source,
            tree=tree,
            suppressions=parse_suppressions(source),
        )
