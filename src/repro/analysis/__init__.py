"""Whole-program static analysis: ``repro analyze``.

Where :mod:`repro.lint` checks one file at a time, this package parses
*all* of ``src/repro`` into a module + call graph and runs a fixed-point
effect-inference pass over a small lattice of effects (seeded/unseeded
RNG, wall clock, set-iteration order, raw vs. atomic filesystem writes,
fork, environment reads).  Three whole-program checkers sit on top of
the inferred summaries:

* **RPA001 determinism-boundary** — no unseeded RNG, host-clock read,
  set-iteration-order dependence, or unresolvable dynamic call may reach
  a declared-deterministic surface (engine hot loops, protocol hooks,
  the simcache run-key, allocation solvers).  Findings print the full
  inter-procedural propagation path, ``file:line`` by ``file:line``.
* **RPA002 durability** — every raw write primitive reachable from
  ``repro.dist`` or ``repro.experiments.checkpoint`` must flow through
  :mod:`repro.durable` (the invariant the lease protocol depends on).
* **RPA003/RPA004 schema drift** — every event kind emitted through
  :class:`repro.obs.Tracer` / ``WorkQueue.log_event`` must exist in the
  :mod:`repro.obs.events` registry (RPA003, error) and every registry
  entry must be emitted somewhere (RPA004, dead-entry warning).

Suppressions reuse the ``# repro-lint: ignore[RPA001]`` comment syntax
shared with :mod:`repro.lint`; a committed baseline file ratchets: new
findings fail, the baseline can only shrink.  See
``docs/static_analysis.md``.

The package exports lazily (PEP 562): product modules that only want
the runtime-no-op markers (``@declared_effects`` /
``@deterministic_surface``, imported from
:mod:`repro.analysis.annotations`) must not pay for — or create import
cycles with — the analyzer machinery itself.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from .annotations import declared_effects, deterministic_surface

if TYPE_CHECKING:  # pragma: no cover - typing-time re-exports
    from .callgraph import CallGraph, FunctionInfo, build_call_graph
    from .effects import (
        ALL_EFFECTS,
        DICT_ORDER,
        DYNAMIC,
        ENV_READ,
        FORK,
        FS_WRITE,
        FS_WRITE_ATOMIC,
        PURE,
        SEEDED_RNG,
        UNSEEDED_RNG,
        WALL_CLOCK,
    )
    from .findings import AnalysisFinding, PathStep
    from .inference import EffectSummary, infer_effects
    from .program import ModuleInfo, Program
    from .runner import AnalysisReport, run_analysis

#: Lazily exported name -> defining submodule.
_EXPORTS = {
    "ALL_EFFECTS": "effects",
    "DICT_ORDER": "effects",
    "DYNAMIC": "effects",
    "ENV_READ": "effects",
    "FORK": "effects",
    "FS_WRITE": "effects",
    "FS_WRITE_ATOMIC": "effects",
    "PURE": "effects",
    "SEEDED_RNG": "effects",
    "UNSEEDED_RNG": "effects",
    "WALL_CLOCK": "effects",
    "AnalysisFinding": "findings",
    "PathStep": "findings",
    "ModuleInfo": "program",
    "Program": "program",
    "CallGraph": "callgraph",
    "FunctionInfo": "callgraph",
    "build_call_graph": "callgraph",
    "EffectSummary": "inference",
    "infer_effects": "inference",
    "AnalysisReport": "runner",
    "run_analysis": "runner",
}

__all__ = sorted(
    list(_EXPORTS) + ["declared_effects", "deterministic_surface"]
)


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value
