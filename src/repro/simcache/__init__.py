"""Content-addressed disk cache for simulation runs.

A completed ``(trial, protocol)`` simulation is a pure function of its
inputs: the realized contact trace and request schedule, the simulation
configuration, the protocol instance, the simulation seed, the fault
schedule, and the engine implementation itself.  This package hashes all
of those into one content key and stores the resulting
:class:`~repro.sim.metrics.SimulationResult` on disk, so sweeps that
revisit a configuration (``run_comparison``, ``figures``, ``repro
figure``/``simulate``) skip re-simulating it entirely.

Invalidation is automatic: any semantic change to the inputs — or a bump
of :data:`repro.sim.engine.ENGINE_CODE_VERSION` — produces a different
key, and the stale entry is simply never addressed again.  Corrupted
entries are skipped with a warning (treated as misses), never trusted.

Enable via ``run_comparison(..., run_cache=...)``, the
``REPRO_SIM_CACHE`` environment variable, or the CLI ``--cache`` /
``--no-cache`` flags; inspect and prune with ``repro cache info|clear``.
"""

from .fingerprint import (
    UncacheableRunError,
    fingerprint_faults,
    fingerprint_protocol,
    fingerprint_requests,
    fingerprint_trace,
    run_key,
)
from .store import (
    DEFAULT_CACHE_ROOT,
    ENV_VAR,
    RunCacheStats,
    SimulationRunCache,
    resolve_run_cache,
)

__all__ = [
    "DEFAULT_CACHE_ROOT",
    "ENV_VAR",
    "RunCacheStats",
    "SimulationRunCache",
    "UncacheableRunError",
    "fingerprint_faults",
    "fingerprint_protocol",
    "fingerprint_requests",
    "fingerprint_trace",
    "resolve_run_cache",
    "run_key",
]
