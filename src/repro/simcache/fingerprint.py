"""Content-key derivation for the simulation run cache.

The key must change whenever anything that can change the simulation
output changes, and must be stable across processes and hosts otherwise.
Array inputs are hashed by dtype/shape/bytes; scalars by exact ``repr``
(floats round-trip); protocol instances by a structural walk over their
attributes.  Anything the walk cannot prove stable (callables, open
files, unknown extension types) raises :class:`UncacheableRunError`, and
the caller runs uncached — correctness is never traded for a hit.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import types
from typing import Any, Optional

import numpy as np

from ..contacts import ContactTrace
from ..demand import RequestSchedule
from ..errors import ReproError
from ..faults import FaultSchedule
from ..protocols.base import ReplicationProtocol
from ..sim.config import SimulationConfig

__all__ = [
    "UncacheableRunError",
    "fingerprint_faults",
    "fingerprint_protocol",
    "fingerprint_requests",
    "fingerprint_trace",
    "run_key",
]

#: Recursion bound for the structural protocol walk; protocols that nest
#: deeper than this are treated as uncacheable rather than guessed at.
_MAX_DEPTH = 12


class UncacheableRunError(ReproError):
    """The run's inputs cannot be fingerprinted reliably.

    Raised when the structural walk meets state with no stable content
    representation (a callable, an unrecognized extension type, or
    pathological nesting).  Callers should fall back to running the
    simulation uncached.
    """


#: Elements hashed per block; bounds peak memory on memory-mapped columns.
_HASH_BLOCK = 1 << 22


def _hash_array(array: np.ndarray) -> str:
    digest = hashlib.sha256()
    digest.update(str(array.dtype).encode("utf-8"))
    digest.update(str(array.shape).encode("utf-8"))
    if array.ndim == 1:
        # Feed the digest block-wise: sha256 over concatenated updates
        # equals sha256 over the whole buffer, so the hash is unchanged,
        # but a memory-mapped column is never materialized at once.
        for start in range(0, len(array), _HASH_BLOCK):
            block = np.ascontiguousarray(array[start : start + _HASH_BLOCK])
            digest.update(block.tobytes())
    else:
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def _describe(value: Any, depth: int = 0) -> Any:
    """A JSON-ready, content-stable description of *value*.

    Covers the state actually found on protocol instances: primitives,
    containers, dataclasses, numpy scalars/arrays, and plain objects
    (``__dict__`` or ``__slots__``).  Everything else is uncacheable.
    """
    if depth > _MAX_DEPTH:
        raise UncacheableRunError(
            f"protocol state nests deeper than {_MAX_DEPTH} levels"
        )
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (np.bool_, np.integer, np.floating)):
        return repr(value.item())
    if isinstance(value, np.ndarray):
        return {"__ndarray__": _hash_array(value)}
    if isinstance(value, (list, tuple)):
        return [_describe(item, depth + 1) for item in value]
    if isinstance(value, (set, frozenset)):
        return {
            "__set__": sorted(
                json.dumps(_describe(item, depth + 1), sort_keys=True)
                for item in value
            )
        }
    if isinstance(value, dict):
        return {
            "__dict__": sorted(
                (
                    json.dumps(_describe(key, depth + 1), sort_keys=True),
                    _describe(item, depth + 1),
                )
                for key, item in value.items()
            )
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__qualname__,
            "fields": {
                spec.name: _describe(getattr(value, spec.name), depth + 1)
                for spec in dataclasses.fields(value)
            },
        }
    attrs = _instance_attrs(value)
    if attrs is not None:
        return {
            "__object__": f"{type(value).__module__}.{type(value).__qualname__}",
            "attrs": {
                name: _describe(item, depth + 1)
                for name, item in sorted(attrs.items())
            },
        }
    raise UncacheableRunError(
        f"cannot fingerprint {type(value).__module__}."
        f"{type(value).__qualname__} instances"
    )


def _instance_attrs(value: Any) -> Optional[dict]:
    """Instance attributes of a plain object, or ``None`` if opaque.

    Bare functions, lambdas, and bound methods are rejected outright:
    their behavior is not captured by their attributes.  (Objects that
    merely *define* ``__call__`` — the delay-utilities — are fine: their
    behavior is fully determined by their parameters.)
    """
    if isinstance(
        value,
        (
            types.FunctionType,
            types.LambdaType,
            types.MethodType,
            types.BuiltinFunctionType,
            types.BuiltinMethodType,
        ),
    ):
        return None
    attrs: dict = {}
    instance_dict = getattr(value, "__dict__", None)
    if isinstance(instance_dict, dict):
        attrs.update(instance_dict)
    for klass in type(value).__mro__:
        for name in getattr(klass, "__slots__", ()):
            if name.startswith("__") or name in attrs:
                continue
            if hasattr(value, name):
                attrs[name] = getattr(value, name)
    if not attrs and instance_dict is None:
        return None
    return attrs


def fingerprint_trace(trace: ContactTrace) -> str:
    """Content hash of a realized contact trace."""
    digest = hashlib.sha256()
    digest.update(_hash_array(np.asarray(trace.times)).encode("utf-8"))
    digest.update(_hash_array(np.asarray(trace.node_a)).encode("utf-8"))
    digest.update(_hash_array(np.asarray(trace.node_b)).encode("utf-8"))
    digest.update(f"{trace.n_nodes}:{trace.duration!r}".encode("utf-8"))
    return digest.hexdigest()


def fingerprint_requests(requests: RequestSchedule) -> str:
    """Content hash of a realized request schedule."""
    digest = hashlib.sha256()
    digest.update(_hash_array(np.asarray(requests.times)).encode("utf-8"))
    digest.update(_hash_array(np.asarray(requests.items)).encode("utf-8"))
    digest.update(_hash_array(np.asarray(requests.nodes)).encode("utf-8"))
    digest.update(repr(requests.duration).encode("utf-8"))
    return digest.hexdigest()


def fingerprint_faults(faults: Optional[FaultSchedule]) -> str:
    """Content hash of a fault schedule (``"none"`` when absent)."""
    if faults is None:
        return "none"
    payload = json.dumps(_describe(faults), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def fingerprint_protocol(protocol: ReplicationProtocol) -> str:
    """Structural content hash of a freshly built protocol instance.

    Raises :class:`UncacheableRunError` when the instance holds state
    with no stable representation.
    """
    payload = json.dumps(
        {"name": protocol.name, "state": _describe(protocol)},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _engine_code_version() -> str:
    # Imported lazily and read dynamically so a version bump (or a test
    # monkeypatching it) is picked up by every subsequent key.
    from ..sim import engine

    return str(engine.ENGINE_CODE_VERSION)


def run_key(
    config: SimulationConfig,
    protocol: ReplicationProtocol,
    sim_seed: int,
    trace: ContactTrace,
    requests: RequestSchedule,
    faults: Optional[FaultSchedule] = None,
    *,
    trace_fingerprint: Optional[str] = None,
    requests_fingerprint: Optional[str] = None,
    faults_fingerprint: Optional[str] = None,
) -> str:
    """The content key of one simulation run.

    Any change to the configuration, the realized inputs, the protocol's
    parameterization, the seed, the faults, or the engine code version
    yields a different key.

    The ``*_fingerprint`` keywords accept memoized values of
    :func:`fingerprint_trace` / :func:`fingerprint_requests` /
    :func:`fingerprint_faults` over the *same* inputs, substituting
    byte-identically for the inline hash passes.  A sweep computes each
    trial's content hashes once and probes the cache for every protocol
    with them — the trace hash (by far the dominant cost) would
    otherwise be repeated per protocol.  Callers are responsible for
    the memo matching the passed objects; the sweep runner's
    trial-scoped :class:`~repro.experiments.artifacts.TrialArtifacts`
    guarantees it by construction.
    """
    payload = json.dumps(
        {
            "engine_version": _engine_code_version(),
            "config": config.fingerprint(),
            "sim_seed": int(sim_seed),
            "trace": (
                trace_fingerprint
                if trace_fingerprint is not None
                else fingerprint_trace(trace)
            ),
            "requests": (
                requests_fingerprint
                if requests_fingerprint is not None
                else fingerprint_requests(requests)
            ),
            "faults": (
                faults_fingerprint
                if faults_fingerprint is not None
                else fingerprint_faults(faults)
            ),
            "protocol": fingerprint_protocol(protocol),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
