"""Disk storage for cached simulation runs.

Entries live under ``<root>/<key[:2]>/<key>.json`` (two-level fan-out
keeps directories small) and are written atomically and durably
(temp file + fsync + ``os.replace`` + parent-directory fsync, see
:mod:`repro.durable`), so concurrent sweep workers — which share the
cache root through fork or a shared filesystem — can race on the same
key without ever exposing a half-written entry, and a host power loss
cannot leave a truncated-but-renamed file behind.  Unreadable or
malformed entries are logged as warnings and treated as misses; the
cache never turns a corrupted file into a crash or a wrong result.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Dict, Optional, Union

from ..durable import atomic_write_json
from ..obs import metrics as obs_metrics
from ..obs.log import get_logger
from ..sim.metrics import SimulationResult

__all__ = [
    "DEFAULT_CACHE_ROOT",
    "ENV_VAR",
    "RunCacheStats",
    "SimulationRunCache",
    "resolve_run_cache",
]

PathLike = Union[str, "os.PathLike[str]"]

#: Environment variable controlling the default cache.  Unset or empty
#: disables caching; ``0``/``off``/``false``/``no`` disable explicitly;
#: ``1``/``on``/``true``/``yes`` enable at :data:`DEFAULT_CACHE_ROOT`;
#: anything else is used as the cache root path.
ENV_VAR = "REPRO_SIM_CACHE"

#: Where ``REPRO_SIM_CACHE=1`` (and ``run_cache=True``) put entries.
DEFAULT_CACHE_ROOT = os.path.join(
    os.path.expanduser("~"), ".cache", "repro", "simcache"
)

_FORMAT = "repro-simcache-entry"
_VERSION = 1

_OFF_VALUES = frozenset({"0", "off", "false", "no"})
_ON_VALUES = frozenset({"1", "on", "true", "yes"})


@dataclasses.dataclass
class RunCacheStats:
    """Hit/miss counters of one cache instance (this process only)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0

    def to_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class SimulationRunCache:
    """Content-addressed store of completed simulation results."""

    def __init__(self, root: PathLike) -> None:
        self.root = os.fspath(root)
        self.stats = RunCacheStats()
        self._logger = get_logger("repro.simcache")
        # Tracer-style resolve: one is-None test per cache *operation*
        # (never per event) mirrors the per-instance stats into the
        # process registry so sweeps expose a live hit rate.
        self._metrics_reg = obs_metrics.enabled_registry()

    def _count(self, outcome: str) -> None:
        """Mirror one get/put outcome into the process metrics registry."""
        reg = self._metrics_reg
        if reg is None:
            return
        reg.counter(
            "repro_simcache_ops_total",
            help="simulation run-cache operations by outcome",
            labels={"outcome": outcome},
        ).inc()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimulationRunCache(root={self.root!r})"

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def _entry_path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[SimulationResult]:
        """The cached result for *key*, or ``None`` on a miss.

        A corrupted entry (unreadable file, bad JSON, wrong format, or a
        payload that no longer rebuilds) counts as a miss and logs a
        warning — it is never allowed to crash the sweep.
        """
        from ..experiments.checkpoint import result_from_dict

        path = self._entry_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            self._count("miss")
            return None
        except (OSError, json.JSONDecodeError, ValueError) as error:
            self._warn_corrupt(path, f"unreadable entry: {error}")
            return None
        if (
            not isinstance(data, dict)
            or data.get("format") != _FORMAT
            or data.get("version") != _VERSION
            or not isinstance(data.get("result"), dict)
        ):
            self._warn_corrupt(path, "not a valid cache entry")
            return None
        try:
            result = result_from_dict(data["result"])
        # Any malformed payload must degrade to a miss, whatever the
        # rebuild raises.  # repro-lint: ignore[RPL007]
        except Exception as error:
            self._warn_corrupt(path, f"entry does not rebuild: {error}")
            return None
        self.stats.hits += 1
        self._count("hit")
        return result

    def put(
        self,
        key: str,
        result: SimulationResult,
        *,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Store *result* under *key* (atomic + fsync, last writer wins)."""
        from ..experiments.checkpoint import result_to_dict

        payload: Dict[str, Any] = {
            "format": _FORMAT,
            "version": _VERSION,
            "key": key,
            "result": result_to_dict(result),
        }
        if meta:
            payload["meta"] = meta
        path = self._entry_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        try:
            atomic_write_json(path, payload, fsync=True)
        except OSError as error:
            self.stats.errors += 1
            self._count("write_error")
            self._logger.warning(
                "cache write failed", path=path, error=str(error)
            )
            return
        self.stats.stores += 1
        self._count("store")

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def _entry_files(self) -> list:
        entries = []
        if not os.path.isdir(self.root):
            return entries
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    entries.append(os.path.join(shard_dir, name))
        return entries

    def __len__(self) -> int:
        return len(self._entry_files())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self._entry_files():
            try:
                os.remove(path)
                removed += 1
            except OSError as error:  # pragma: no cover - race/permission
                self._logger.warning(
                    "could not remove cache entry", path=path, error=str(error)
                )
        return removed

    def info(self) -> Dict[str, Any]:
        """Entry count and total size, for ``repro cache info``."""
        files = self._entry_files()
        total_bytes = 0
        for path in files:
            try:
                total_bytes += os.path.getsize(path)
            except OSError:  # pragma: no cover - race
                pass
        return {
            "root": self.root,
            "n_entries": len(files),
            "total_bytes": total_bytes,
        }

    def _warn_corrupt(self, path: str, reason: str) -> None:
        self.stats.errors += 1
        self.stats.misses += 1
        self._count("corrupt")
        self._logger.warning(
            "skipping corrupted cache entry", path=path, reason=reason
        )


def resolve_run_cache(
    setting: Union[None, bool, PathLike, SimulationRunCache] = None,
) -> Optional[SimulationRunCache]:
    """Resolve a ``run_cache`` argument to a cache instance (or None).

    - ``None`` defers to :data:`ENV_VAR` (unset/empty/off -> disabled,
      on -> :data:`DEFAULT_CACHE_ROOT`, anything else -> that path);
    - ``False`` disables unconditionally (the ``--no-cache`` switch);
    - ``True`` enables at the env-var path or the default root;
    - a path enables at that root;
    - an existing :class:`SimulationRunCache` is passed through.
    """
    if isinstance(setting, SimulationRunCache):
        return setting
    if setting is False:
        return None
    env = os.environ.get(ENV_VAR, "").strip()
    if setting is True:
        if env and env.lower() not in _OFF_VALUES | _ON_VALUES:
            return SimulationRunCache(env)
        return SimulationRunCache(DEFAULT_CACHE_ROOT)
    if setting is not None:
        return SimulationRunCache(setting)
    # setting is None: environment decides.
    if not env or env.lower() in _OFF_VALUES:
        return None
    if env.lower() in _ON_VALUES:
        return SimulationRunCache(DEFAULT_CACHE_ROOT)
    return SimulationRunCache(env)
