"""Queue workers, crash-absorbing supervision, and the workqueue backend.

Three roles cooperate around one :class:`~repro.dist.queue.WorkQueue`:

* :class:`QueueWorker` — claims units via lease files, executes them
  with the exact same :func:`repro.experiments.runner._execute_run`
  policy as every other backend, renews its lease from a heartbeat
  thread, and publishes results (or failure records) durably;
* :class:`Supervisor` — the one *requeue authority*: reaps stale
  leases (crashed or hung workers), bumps requeue counters, quarantines
  poison units once their claim budget is spent, respawns dead workers,
  and — when spawning keeps failing — degrades to executing units
  inline so the sweep always makes progress;
* :class:`WorkQueueExecutor` — the :class:`~repro.dist.executors.SweepExecutor`
  gluing both into ``run_comparison(executor="workqueue")``: create or
  attach the queue, supervise until every unit is published or
  quarantined, then feed results back to the parent's accounting in
  deterministic unit order with per-worker attribution.

Workers are *disposable by design*: any of them may be SIGKILLed at any
instruction.  Every externally visible state change is one atomic
durable file operation, units are deterministic functions of their
seeds, and duplicated execution publishes identical bytes — so crash
recovery is just "reap the lease and let someone else run it".
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import tempfile
import threading
from typing import Any, Callable, Dict, List, Optional, Protocol, Sequence

from ..durable import atomic_write_json
from ..errors import ConfigurationError, SimulationError
from ..obs import events as ev
from ..obs import metrics as obs_metrics
from ..obs.log import get_logger
from ..obs.manifest import worker_provenance
from ..obs.timing import Stopwatch
from .clock import Clock, SystemClock
from .executors import SweepExecutor, SweepSpec, WorkUnit, make_unit_records
from .leases import Lease
from .queue import UnitRecord, WorkQueue

__all__ = ["QueueWorker", "Supervisor", "WorkQueueExecutor"]


def _default_poll(ttl: float) -> float:
    """A poll period that notices expiry promptly at any TTL scale."""
    return min(0.25, max(0.02, ttl / 10.0))


class _Heartbeat:
    """Daemon thread renewing one lease until stopped or lost.

    The renewal cadence is real time (``Event.wait``), independent of
    the queue's :class:`~repro.dist.clock.Clock`, so fake-clock tests
    stay deterministic: the heartbeat simply renews against whatever
    ``clock.now()`` says when it fires.
    """

    def __init__(self, queue: WorkQueue, lease: Lease, interval: float) -> None:
        self._queue = queue
        self._lease = lease
        self._interval = max(interval, 0.01)
        self._stopped = threading.Event()
        self.renewals = 0
        self._thread = threading.Thread(
            target=self._run, name=f"lease-{lease.unit}", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def _run(self) -> None:
        lease: Optional[Lease] = self._lease
        while not self._stopped.wait(self._interval):
            assert lease is not None
            lease = self._queue.leases.renew(lease)
            if lease is None:
                # Reaped: presumed dead.  Keep executing — publishing a
                # duplicate is benign — but stop touching the lease.
                break
            self.renewals += 1

    def stop(self) -> None:
        self._stopped.set()
        self._thread.join(timeout=5.0)


class QueueWorker:
    """One claim-execute-publish loop over a shared work queue."""

    def __init__(
        self,
        queue: WorkQueue,
        spec: SweepSpec,
        worker_id: str,
        *,
        offset: int = 0,
        poll_interval: Optional[float] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.queue = queue
        self.spec = spec
        self.worker_id = worker_id
        self.offset = int(offset)
        self.clock: Clock = clock if clock is not None else queue.clock
        self.poll_interval = (
            poll_interval
            if poll_interval is not None
            else _default_poll(queue.ttl)
        )
        self._inputs_by_trial: Dict[int, Any] = {}
        self._logger = get_logger("repro.dist.worker")
        self.units_done = 0
        self.units_failed = 0
        self.claims = 0
        self.lease_renewals = 0
        self._metrics_reg = obs_metrics.enabled_registry()

    def run(self) -> None:
        """Work until every unit is published or quarantined.

        Waiting (rather than exiting) when nothing is claimable is what
        lets this worker pick up units requeued after a *different*
        worker's crash.  Every loop iteration refreshes the worker's
        ``metrics/<id>.json`` so watch clients see an idle-but-alive
        worker's timestamp keep moving.
        """
        self.publish_metrics()
        while not self.queue.complete():
            if not self.run_one():
                self.publish_metrics()
                self.clock.sleep(self.poll_interval)

    def run_one(self) -> bool:
        """Claim and execute at most one unit; ``False`` when idle."""
        for unit in self.queue.claimable_units(self.offset):
            claim_no = self.queue.claims_used(unit) + 1
            lease = self.queue.leases.try_claim(
                unit, self.worker_id, claim_no
            )
            if lease is None:
                continue  # lost the O_EXCL race; try the next unit
            self.claims += 1
            self.queue.log_event(
                ev.UNIT_CLAIM, unit=unit, worker=self.worker_id, claim=claim_no
            )
            self._execute_unit(self.queue.read_unit(unit), lease, claim_no)
            self.publish_metrics()
            self.queue.log_event(
                ev.METRICS_SNAPSHOT,
                worker=self.worker_id,
                units_done=self.units_done,
                units_failed=self.units_failed,
            )
            return True
        return False

    def publish_metrics(self) -> None:
        """Atomically write this worker's ``metrics/<id>.json``.

        The file is the watch dashboard's per-worker ground truth:
        identity (host + PID), progress counters, and a queue-clock
        timestamp whose age tells liveness (a worker that stops
        refreshing past the lease TTL is presumed dead).  ``fsync=False``
        because the file is advisory observability state, not sweep
        correctness state — ``os.replace`` atomicity already guarantees
        readers never see a torn frame.
        """
        path = os.path.join(
            self.queue.root, "metrics", f"{self.worker_id}.json"
        )
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload: Dict[str, Any] = {
            **worker_provenance(self.worker_id),
            "t": self.clock.now(),
            "units_done": self.units_done,
            "units_failed": self.units_failed,
            "claims": self.claims,
            "lease_renewals": self.lease_renewals,
        }
        try:
            atomic_write_json(path, payload, fsync=False)
        except OSError as error:  # pragma: no cover - diskless degrade
            self._logger.warning(
                "worker metrics write failed", error=str(error)
            )

    def _count_unit(self, outcome: str) -> None:
        reg = self._metrics_reg
        if reg is None:
            return
        reg.counter(
            "repro_dist_worker_units_total",
            help="work units finished by this worker process, by outcome",
            labels={"worker": self.worker_id, "outcome": outcome},
        ).inc()

    def _trial_inputs(
        self, record: UnitRecord, trial_faults: Any
    ) -> Any:
        """Realize (once per trial per process) the shared randomness.

        The queue manifest's ``handoff`` record (written by the
        parent's sweep when trial spilling is on) redirects the trace
        to the parent's memory-mapped ``.ctb`` copy with its
        travelling fingerprint — workers joining from any host skip
        both the regeneration and the re-hash, bit-identically.
        """
        from ..experiments import runner

        inputs = self._inputs_by_trial.get(record.trial)
        if inputs is not None:
            return inputs, 0.0
        handoff = self.queue.manifest.get("handoff") or {}
        spills = handoff.get("trial_spills") or {}
        timer = Stopwatch()
        inputs = runner._build_trial_inputs(
            self.spec.trace_factory,
            self.spec.demand,
            self.spec.n_clients,
            record.seeds,
            faults=trial_faults,
            spill_path=spills.get(str(record.trial)),
            share_event_stream=bool(
                handoff.get("share_event_streams", True)
            ),
        )
        timer.stop()
        # Workers live across many units; keep only the latest trial's
        # inputs (units of one trial cluster together in scan order).
        self._inputs_by_trial = {record.trial: inputs}
        return inputs, timer.wall

    def _execute_unit(
        self, record: UnitRecord, lease: Lease, claim_no: int
    ) -> None:
        from ..experiments import runner

        spec = self.spec
        trial_faults = (
            spec.faults(record.trial)
            if callable(spec.faults)
            else spec.faults
        )
        inputs, setup_wall = self._trial_inputs(record, trial_faults)
        # Failures must never unwind a worker: under on_error="raise"
        # the worker records the failure and the supervisor raises.
        worker_on_error = (
            "skip" if spec.on_error == "raise" else spec.on_error
        )
        profiler = runner._process_profiler(spec.profile_dir)
        heartbeat = _Heartbeat(self.queue, lease, self.queue.ttl / 3.0)
        heartbeat.start()
        if profiler is not None:
            profiler.enable()
        try:
            result, error, timing, cache_key = runner._execute_run(
                spec.protocols[record.protocol],
                inputs,
                spec.config,
                trial_faults,
                attempts_per_run=spec.attempts_per_run,
                on_error=worker_on_error,
                retry_backoff=spec.retry_backoff,
                max_backoff=spec.max_backoff,
                cache=spec.cache,
            )
        finally:
            if profiler is not None:
                profiler.disable()
                assert spec.profile_dir is not None
                runner._dump_profile(profiler, spec.profile_dir, "worker")
            heartbeat.stop()
            self.lease_renewals += heartbeat.renewals
        timing["setup_wall_s"] = setup_wall
        if result is not None:
            self.units_done += 1
            self._count_unit("done")
            self.queue.publish_result(
                record.unit,
                result,
                worker=self.worker_id,
                claim=claim_no,
                timing=timing,
                run_key=cache_key,
            )
            self.queue.log_event(
                ev.UNIT_PUBLISH, unit=record.unit, worker=self.worker_id
            )
        else:
            self.units_failed += 1
            self._count_unit("failed")
            error_text = error or "unknown error"
            self.queue.record_failure(
                record.unit,
                worker=self.worker_id,
                claim=claim_no,
                error=error_text,
            )
            self.queue.log_event(
                ev.UNIT_FAIL,
                unit=record.unit,
                worker=self.worker_id,
                error=error_text[:200],
            )
            self._logger.warning(
                "unit failed",
                unit=record.unit,
                worker=self.worker_id,
                claim=claim_no,
                error=error_text[:200],
            )
        self.queue.leases.release_if_held(lease)


class WorkerHandle(Protocol):
    """What the supervisor needs from a spawned worker."""

    worker_id: str

    def is_alive(self) -> bool:
        ...

    def join(self, timeout: Optional[float] = None) -> None:
        ...

    def terminate(self) -> None:
        ...


class _ProcessHandle:
    """A forked worker process as a :class:`WorkerHandle`."""

    def __init__(
        self, worker_id: str, process: "multiprocessing.process.BaseProcess"
    ) -> None:
        self.worker_id = worker_id
        self._process = process

    def is_alive(self) -> bool:
        return self._process.is_alive()

    def join(self, timeout: Optional[float] = None) -> None:
        self._process.join(timeout)

    def terminate(self) -> None:
        if self._process.is_alive():
            self._process.terminate()


#: Fork-inherited context for spawned queue workers (the same
#: no-pickling trick as the runner's pool path): set by
#: ``WorkQueueExecutor.execute`` before the supervisor spawns anything,
#: cleared afterwards.
_QUEUE_CONTEXT: Optional[Dict[str, Any]] = None


def _forked_worker_main(index: int) -> None:
    context = _QUEUE_CONTEXT
    if context is None:  # pragma: no cover - defensive
        raise SimulationError(
            "queue worker context missing; workers must be forked by "
            "WorkQueueExecutor"
        )
    queue = WorkQueue.open(context["root"])
    stride = max(1, len(queue.unit_ids) // max(int(context["n_workers"]), 1))
    QueueWorker(
        queue,
        context["spec"],
        f"w{index}",
        offset=index * stride,
        poll_interval=context.get("poll_interval"),
    ).run()


def _spawn_forked_worker(index: int) -> WorkerHandle:
    """Default spawn: fork a :func:`_forked_worker_main` process."""
    if "fork" not in multiprocessing.get_all_start_methods():
        raise ConfigurationError(
            "the workqueue backend's in-process spawner needs the 'fork' "
            "start method"
        )
    mp_context = multiprocessing.get_context("fork")
    worker_id = f"w{index}"
    process = mp_context.Process(
        target=_forked_worker_main,
        args=(index,),
        name=f"repro-sweep-{worker_id}",
        daemon=True,
    )
    process.start()
    return _ProcessHandle(worker_id, process)


class Supervisor:
    """Crash-absorbing supervision of one work queue.

    The supervisor is the only writer of requeue counters and
    quarantine markers, which keeps that accounting single-writer while
    workers stay free to crash at any instruction.  Spawn failures back
    off exponentially (capped); if no worker can be kept alive at all,
    the supervisor executes units *inline*, so a sweep degrades from
    ``n_workers`` down to 1 instead of wedging.
    """

    def __init__(
        self,
        queue: WorkQueue,
        *,
        spec: SweepSpec,
        n_workers: int,
        spawn: Optional[Callable[[int], WorkerHandle]] = None,
        on_error: str = "skip",
        poll_interval: Optional[float] = None,
        clock: Optional[Clock] = None,
        spawn_backoff: float = 0.25,
        spawn_max_backoff: float = 5.0,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        self.queue = queue
        self.spec = spec
        self.n_workers = int(n_workers)
        self.spawn = spawn if spawn is not None else _spawn_forked_worker
        self.on_error = on_error
        self.clock: Clock = clock if clock is not None else queue.clock
        self.poll_interval = (
            poll_interval
            if poll_interval is not None
            else _default_poll(queue.ttl)
        )
        self.spawn_backoff = float(spawn_backoff)
        self.spawn_max_backoff = float(spawn_max_backoff)
        self.workers: Dict[str, WorkerHandle] = {}
        self.spawn_failures = 0
        self.inline_units = 0
        self._spawn_counter = 0
        self._next_spawn_at = 0.0
        self._inline_worker: Optional[QueueWorker] = None
        self._logger = get_logger("repro.dist.supervisor")
        self._metrics_reg = obs_metrics.enabled_registry()

    # ------------------------------------------------------------------
    # the supervision loop
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Supervise until every unit is published or quarantined."""
        try:
            while not self.queue.complete():
                self.step()
                if self.queue.complete():
                    break
                self.clock.sleep(self.poll_interval)
        finally:
            self._shutdown()
            # One last gauge refresh so a sweep-end snapshot reflects
            # the final queue state, not the state one poll earlier.
            self._publish_queue_gauges(0, 0)

    def step(self) -> None:
        """One supervision round (exposed for fake-clock tests)."""
        requeued = self.reap_expired()
        parked = self.quarantine_exhausted()
        if self.on_error == "raise":
            self._raise_on_failure()
        self._manage_workers()
        self._publish_queue_gauges(len(requeued), len(parked))

    def _publish_queue_gauges(self, requeued: int, parked: int) -> None:
        """Mirror queue depth and churn into the process registry."""
        reg = self._metrics_reg
        if reg is None:
            return
        status = self.queue.status()
        for state in ("pending", "published", "quarantined"):
            reg.gauge(
                "repro_dist_queue_units",
                help="work units currently in each queue state",
                labels={"state": state},
            ).set(float(status[state]))
        reg.gauge(
            "repro_dist_live_workers",
            help="worker handles the supervisor believes are alive",
        ).set(float(len(self.workers)))
        if requeued:
            reg.counter(
                "repro_dist_requeues_total",
                help="units requeued after a stale lease was reaped",
            ).inc(float(requeued))
        if parked:
            reg.counter(
                "repro_dist_quarantines_total",
                help="poison units parked after their claim budget",
            ).inc(float(parked))

    def reap_expired(self) -> List[str]:
        """Clear stale leases; requeue their units if still pending."""
        requeued = []
        for lease in self.queue.leases.active():
            if not self.queue.leases.is_stale(lease):
                continue
            self.queue.leases.release(lease)
            self.queue.log_event(
                ev.UNIT_EXPIRE, unit=lease.unit, worker=lease.worker
            )
            if self.queue.is_done(lease.unit):
                continue  # crashed between publishing and releasing
            claims = self.queue.record_requeue(lease.unit)
            self.queue.log_event(
                ev.UNIT_REQUEUE,
                unit=lease.unit,
                claims=self.queue.claims_used(lease.unit),
            )
            self._logger.warning(
                "lease expired; unit requeued",
                unit=lease.unit,
                worker=lease.worker,
                requeues=claims,
            )
            requeued.append(lease.unit)
        return requeued

    def quarantine_exhausted(self) -> List[str]:
        """Park units whose claim budget is spent (poison units)."""
        parked = []
        for unit in self.queue.unit_ids:
            if self.queue.is_done(unit):
                continue
            if self.queue.claims_used(unit) < self.queue.max_claims:
                continue
            lease = self.queue.leases.read(unit)
            if lease is not None and not self.queue.leases.is_stale(lease):
                continue  # a final claim is still in flight
            failures = self.queue.read_failures(unit)
            reason = (
                failures[-1]["error"]
                if failures
                else "claim budget exhausted by worker crashes"
            )
            self.queue.quarantine(unit, reason)
            self.queue.log_event(
                ev.UNIT_QUARANTINE, unit=unit, reason=str(reason)[:200]
            )
            self._logger.warning(
                "unit quarantined",
                unit=unit,
                claims_used=self.queue.claims_used(unit),
                reason=str(reason)[:200],
            )
            parked.append(unit)
        return parked

    def _raise_on_failure(self) -> None:
        for unit in self.queue.unit_ids:
            failures = self.queue.read_failures(unit)
            if failures:
                first = failures[0]
                raise SimulationError(
                    f"unit {unit} failed on worker {first.get('worker')}: "
                    f"{first.get('error')}"
                )

    def _manage_workers(self) -> None:
        for worker_id, handle in list(self.workers.items()):
            if handle.is_alive():
                continue
            reason = "finished" if self.queue.complete() else "died"
            self.queue.log_event(
                ev.WORKER_EXIT, worker=worker_id, reason=reason
            )
            if reason == "died":
                self._logger.warning(
                    "worker died; its leases will expire", worker=worker_id
                )
            del self.workers[worker_id]
        pending = sum(
            1 for unit in self.queue.unit_ids if not self.queue.is_done(unit)
        )
        desired = min(self.n_workers, pending)
        while len(self.workers) < desired:
            if self.clock.now() < self._next_spawn_at:
                break  # spawn backoff in effect
            index = self._spawn_counter
            try:
                handle = self.spawn(index)
            # repro-lint: ignore[RPL007]
            except Exception as error:
                # Any spawn failure (fork limits, missing start method,
                # injected faults) degrades the sweep to fewer workers;
                # capped-exponential backoff before the next attempt.
                self.spawn_failures += 1
                delay = min(
                    self.spawn_backoff
                    * (2.0 ** (self.spawn_failures - 1)),
                    self.spawn_max_backoff,
                )
                self._next_spawn_at = self.clock.now() + delay
                self._logger.warning(
                    "worker spawn failed; degrading",
                    error=f"{type(error).__name__}: {error}",
                    spawn_failures=self.spawn_failures,
                    retry_in_s=delay,
                    live_workers=len(self.workers),
                )
                break
            self._spawn_counter += 1
            self.workers[handle.worker_id] = handle
            self.queue.log_event(ev.WORKER_SPAWN, worker=handle.worker_id)
        if pending and not self.workers:
            # Fully degraded: no worker could be kept alive.  Execute
            # one unit inline per round so the sweep still finishes.
            if self._inline_worker is None:
                self._inline_worker = QueueWorker(
                    self.queue,
                    self.spec,
                    "supervisor-inline",
                    poll_interval=self.poll_interval,
                    clock=self.clock,
                )
            if self._inline_worker.run_one():
                self.inline_units += 1

    def _shutdown(self) -> None:
        for worker_id, handle in list(self.workers.items()):
            handle.join(timeout=5.0)
            if handle.is_alive():
                handle.terminate()
                handle.join(timeout=5.0)
                reason = "terminated"
            else:
                reason = "finished"
            self.queue.log_event(
                ev.WORKER_EXIT, worker=worker_id, reason=reason
            )
            del self.workers[worker_id]


class WorkQueueExecutor(SweepExecutor):
    """The fault-tolerant distributed backend for ``run_comparison``.

    With ``root=None`` the queue lives in a private temporary directory
    that is removed after the sweep; pass a path (on a shared
    filesystem for multi-host operation) to make the queue inspectable,
    resumable, and joinable by external ``repro sweep worker``
    processes.
    """

    name = "workqueue"

    def __init__(
        self,
        root: Optional[str] = None,
        *,
        n_workers: int = 2,
        ttl: float = 30.0,
        max_claims: int = 3,
        poll_interval: Optional[float] = None,
        clock: Optional[Clock] = None,
        spawn: Optional[Callable[[int], WorkerHandle]] = None,
        scenario: Optional[Dict[str, Any]] = None,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        self.root = os.fspath(root) if root is not None else None
        self.n_workers = int(n_workers)
        self.ttl = float(ttl)
        self.max_claims = int(max_claims)
        self.poll_interval = poll_interval
        self.clock: Clock = clock if clock is not None else SystemClock()
        self.spawn = spawn
        self.scenario = scenario

    def execute(
        self,
        units: Sequence[WorkUnit],
        spec: SweepSpec,
        record: Callable[..., None],
    ) -> Optional[Dict[str, Any]]:
        global _QUEUE_CONTEXT
        root = self.root
        cleanup = root is None
        if root is None:
            root = tempfile.mkdtemp(prefix="repro-sweep-")
        records: List[UnitRecord] = make_unit_records(
            units, list(spec.protocols)
        )
        # The sweep-amortization handoff crosses the executor seam via
        # the durable manifest (JSON keys are strings), so external
        # `repro sweep worker` processes see it too.
        handoff: Optional[Dict[str, Any]] = None
        if spec.extra:
            handoff = {
                "share_event_streams": bool(
                    spec.extra.get("share_event_streams", True)
                ),
            }
            spills = spec.extra.get("trial_spills")
            if spills:
                handoff["trial_spills"] = {
                    str(trial): path for trial, path in spills.items()
                }
        queue = WorkQueue.create(
            root,
            records,
            identity=spec.identity(),
            max_claims=self.max_claims,
            ttl=self.ttl,
            scenario=self.scenario,
            handoff=handoff,
            clock=self.clock,
        )
        supervisor = Supervisor(
            queue,
            spec=spec,
            n_workers=self.n_workers,
            spawn=self.spawn,
            on_error=spec.on_error,
            poll_interval=self.poll_interval,
            clock=self.clock,
        )
        _QUEUE_CONTEXT = {
            "spec": spec,
            "root": root,
            "n_workers": self.n_workers,
            "poll_interval": self.poll_interval,
        }
        try:
            supervisor.run()
        finally:
            _QUEUE_CONTEXT = None
        try:
            extras = self._collect(queue, records, record, supervisor)
        finally:
            if cleanup:
                # Deleting the mkdtemp scratch queue of an ad-hoc sweep;
                # never durable state, so a torn teardown is harmless.
                # repro-lint: ignore[RPA002]
                shutil.rmtree(root, ignore_errors=True)
        return extras

    def _collect(
        self,
        queue: WorkQueue,
        records: List[UnitRecord],
        record: Callable[..., None],
        supervisor: Supervisor,
    ) -> Dict[str, Any]:
        """Feed published results back in deterministic unit order."""
        from ..experiments.checkpoint import result_from_dict

        unit_attribution: Dict[str, Dict[str, Any]] = {}
        workers_seen = set()
        for item in records:
            requeues = queue.requeues(item.unit)
            payload = queue.read_result(item.unit)
            if payload is not None:
                timing = {
                    key: float(value)
                    for key, value in payload.get("timing", {}).items()
                }
                worker = payload.get("worker")
                record(
                    item.trial,
                    item.protocol,
                    result_from_dict(payload["result"]),
                    None,
                    timing,
                    worker=worker,
                )
                unit_attribution[item.unit] = {
                    "status": "published",
                    "worker": worker,
                    "claim": payload.get("claim"),
                    "requeues": requeues,
                    "failures": queue.failure_count(item.unit),
                    "run_key": payload.get("run_key"),
                }
            else:
                info = queue.read_quarantine(item.unit) or {}
                failures = queue.read_failures(item.unit)
                worker = failures[-1].get("worker") if failures else None
                error = str(
                    info.get("reason", "unit lost without a failure record")
                )
                claims = max(int(info.get("claims_used", 0)), 1)
                record(
                    item.trial,
                    item.protocol,
                    None,
                    error,
                    {"attempts": float(len(failures))},
                    worker=worker,
                    attempts=claims,
                )
                unit_attribution[item.unit] = {
                    "status": "quarantined",
                    "worker": worker,
                    "claim": None,
                    "requeues": requeues,
                    "failures": len(failures),
                    "run_key": None,
                }
            if unit_attribution[item.unit]["worker"] is not None:
                workers_seen.add(unit_attribution[item.unit]["worker"])
        event_counts: Dict[str, int] = {}
        for event in queue.read_events():
            kind = event.get("kind", "?")
            event_counts[kind] = event_counts.get(kind, 0) + 1
        return {
            "dist": {
                "backend": self.name,
                "queue_root": queue.root,
                "ttl": queue.ttl,
                "max_claims": queue.max_claims,
                "workers": sorted(workers_seen),
                "spawn_failures": supervisor.spawn_failures,
                "inline_units": supervisor.inline_units,
                "units": unit_attribution,
                "events": event_counts,
            }
        }
