"""The pluggable sweep-executor seam.

:func:`repro.experiments.run_comparison` delegates the execution of its
pending ``(trial, protocol)`` units to a :class:`SweepExecutor`:

* :class:`SerialExecutor` — the historical in-process walk;
* :class:`ProcessPoolExecutor` — a single-host fork pool (the
  ``n_workers`` fast path);
* :class:`~repro.dist.supervisor.WorkQueueExecutor` — independent
  worker processes coordinating through an on-disk
  :class:`~repro.dist.queue.WorkQueue` with leases, crash-absorbing
  supervision, and poison-unit quarantine.

Whatever the executor, crash pattern, or retry count, the statistics a
sweep reports are bit-identical: executors only decide *where and when*
units run, never *what* they compute — per-unit seeds come from the
same :class:`numpy.random.SeedSequence` walk, and all accounting is
assembled by the parent in deterministic trial-major order.
"""

from __future__ import annotations

import abc
import os
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..contacts import ContactTrace
    from ..demand import DemandModel
    from ..experiments.runner import FaultsLike, ProtocolFactory
    from ..sim import SimulationConfig
    from ..simcache import SimulationRunCache

__all__ = [
    "ExecutorLike",
    "ProcessPoolExecutor",
    "SerialExecutor",
    "SweepExecutor",
    "SweepSpec",
    "resolve_executor",
]

#: Environment variable selecting the default executor by name
#: (``serial`` / ``process`` / ``workqueue``); unset defers to the
#: historical ``n_workers`` behavior.
ENV_VAR = "REPRO_SWEEP_EXECUTOR"

#: One (trial, protocol, trace seed, request seed, sim seed) work unit.
WorkUnit = Tuple[int, str, int, int, int]


@dataclass
class SweepSpec:
    """Everything an executor (or a remote worker) needs to run units.

    This is the full execution recipe of one sweep *minus* the unit
    list: factories, config, failure policy, cache, and the sweep's
    identity (seed walk + trial count + protocol names), which the
    work-queue backend persists so a resumed or multi-host sweep can
    refuse mismatched state.
    """

    trace_factory: Callable[[int], "ContactTrace"]
    demand: "DemandModel"
    config: "SimulationConfig"
    protocols: Dict[str, "ProtocolFactory"]
    n_clients: Optional[int]
    faults: Optional["FaultsLike"]
    on_error: str
    attempts_per_run: int
    retry_backoff: float
    max_backoff: float
    profile_dir: Optional[str]
    cache: Optional["SimulationRunCache"]
    base_seed: int
    n_trials: int
    extra: Dict[str, Any] = field(default_factory=dict)

    def identity(self) -> Dict[str, Any]:
        """What makes two sweeps "the same sweep" for queue reuse."""
        return {
            "base_seed": int(self.base_seed),
            "n_trials": int(self.n_trials),
            "protocols": sorted(self.protocols),
            "config_fingerprint": self.config.fingerprint(),
        }


class SweepExecutor(abc.ABC):
    """Strategy for executing a sweep's pending work units.

    ``execute`` runs every unit, reporting each completed or failed one
    through ``record`` — a callback with signature
    ``record(trial, protocol, result, error, timing)`` owned by the
    parent (checkpointing, telemetry, progress).  The optional return
    value is merged into the sweep manifest (the work-queue backend
    reports worker attribution and lifecycle counts there).
    """

    #: Short name recorded in sweep manifests.
    name: str = ""

    @abc.abstractmethod
    def execute(
        self,
        units: Sequence[WorkUnit],
        spec: SweepSpec,
        record: Callable[..., None],
    ) -> Optional[Dict[str, Any]]:
        ...


class SerialExecutor(SweepExecutor):
    """Run every unit in-process, in order (the historical walk)."""

    name = "serial"

    def execute(
        self,
        units: Sequence[WorkUnit],
        spec: SweepSpec,
        record: Callable[..., None],
    ) -> Optional[Dict[str, Any]]:
        from ..experiments import runner

        runner._run_units_serial(list(units), spec, record)
        return None


class ProcessPoolExecutor(SweepExecutor):
    """Fan units over a single-host fork pool (bit-identical to serial).

    This is the ``repro.dist`` executor wrapping the runner's pool path,
    not :class:`concurrent.futures.ProcessPoolExecutor` (which it uses
    underneath, with an explicitly pinned ``fork`` start method).
    """

    name = "process"

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        self.n_workers = int(n_workers)

    def execute(
        self,
        units: Sequence[WorkUnit],
        spec: SweepSpec,
        record: Callable[..., None],
    ) -> Optional[Dict[str, Any]]:
        from ..experiments import runner

        runner._run_units_parallel(
            list(units), spec, record, n_workers=self.n_workers
        )
        return None


#: What ``run_comparison(executor=...)`` accepts: an executor instance,
#: a name (``"serial"`` / ``"process"`` / ``"workqueue"``), or ``None``
#: (defer to :data:`ENV_VAR`, then to the ``n_workers`` behavior).
ExecutorLike = Union[None, str, SweepExecutor]


def resolve_executor(
    setting: ExecutorLike,
    *,
    n_workers: Optional[int] = None,
) -> Optional[SweepExecutor]:
    """Resolve an ``executor=`` argument to an instance (or ``None``).

    ``None`` consults :data:`ENV_VAR`; an unset/empty variable returns
    ``None``, which tells :func:`~repro.experiments.run_comparison` to
    apply its historical ``n_workers`` selection (serial below 2
    effective workers, fork pool otherwise).
    """
    if setting is None:
        env = os.environ.get(ENV_VAR, "").strip()
        if not env:
            return None
        setting = env
    if isinstance(setting, SweepExecutor):
        return setting
    if not isinstance(setting, str):
        raise ConfigurationError(
            f"executor must be None, a name, or a SweepExecutor; "
            f"got {setting!r}"
        )
    name = setting.strip().lower()
    if name == "serial":
        return SerialExecutor()
    if name == "process":
        # repro-lint: ignore[RPL008] our executor wrapper, not a raw pool
        return ProcessPoolExecutor(max(n_workers or 1, 1))
    if name == "workqueue":
        from .supervisor import WorkQueueExecutor

        return WorkQueueExecutor(n_workers=max(n_workers or 2, 1))
    raise ConfigurationError(
        f"unknown executor {setting!r}; expected 'serial', 'process', "
        "or 'workqueue'"
    )


def make_unit_records(
    units: Sequence[WorkUnit], protocol_order: Sequence[str]
) -> List[Any]:
    """Map runner work units to :class:`~repro.dist.queue.UnitRecord`.

    Unit ids are derived from the trial index and the protocol's
    position in the sweep's insertion order, so ids are stable across
    resumes regardless of which units are still pending.
    """
    from .queue import UnitRecord, unit_id

    index = {name: k for k, name in enumerate(protocol_order)}
    return [
        UnitRecord(
            unit=unit_id(trial, index[name]),
            trial=trial,
            protocol=name,
            seeds=(trace_seed, request_seed, sim_seed),
        )
        for trial, name, trace_seed, request_seed, sim_seed in units
    ]
