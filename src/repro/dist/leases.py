"""Atomic work-unit leases with heartbeat renewal and TTL expiry.

A lease is one JSON file under ``<queue>/leases/<unit>.json``.  The
protocol is built entirely from two filesystem primitives that are
atomic on POSIX filesystems (including the shared-filesystem,
multi-host case):

* *claim* — ``open(O_CREAT | O_EXCL)``: exactly one worker wins the
  race to create the lease file;
* *renew* — atomic replace of the lease file with a later deadline,
  done by the holder's heartbeat (typically every ``ttl / 3``).

A worker that is SIGKILLed, hangs, or loses its host simply stops
renewing; once ``now > deadline`` the lease is *stale* and the
supervisor reaps it (deletes the file), returning the unit to the
claimable pool.  Reaping a lease its holder still believes in is safe:
units are deterministic, results are published by atomic rename, and
two workers racing the same unit publish identical bytes.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Dict, List, Optional, Union

from ..durable import atomic_write_json
from ..obs.log import get_logger
from ..obs.manifest import worker_provenance
from .clock import Clock, SystemClock

__all__ = ["Lease", "LeaseManager"]

PathLike = Union[str, "os.PathLike[str]"]


@dataclasses.dataclass(frozen=True)
class Lease:
    """One worker's claim on one work unit."""

    unit: str
    worker: str
    host: str
    pid: int
    claim: int
    acquired_at: float
    deadline: float

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Lease":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


class LeaseManager:
    """Claims, renewals, and stale-lease reaping for one queue."""

    def __init__(
        self,
        root: PathLike,
        *,
        ttl: float,
        clock: Optional[Clock] = None,
    ) -> None:
        if ttl <= 0:
            raise ValueError(f"lease ttl must be > 0, got {ttl}")
        self.root = os.fspath(root)
        self.ttl = float(ttl)
        self.clock: Clock = clock if clock is not None else SystemClock()
        self._logger = get_logger("repro.dist.leases")
        os.makedirs(self.root, exist_ok=True)

    def _path(self, unit: str) -> str:
        return os.path.join(self.root, f"{unit}.json")

    # ------------------------------------------------------------------
    # the holder's side
    # ------------------------------------------------------------------
    def try_claim(self, unit: str, worker: str, claim: int) -> Optional[Lease]:
        """Attempt to claim *unit*; ``None`` when another holder won.

        The fully written lease body is moved into place with one
        atomic ``os.link`` (the classic lockfile pattern, atomic even
        on shared/NFS filesystems): either the complete lease appears,
        or the claim loses.  No reader can ever observe a half-claimed
        lease, so reapers never mistake a fresh claim for a stale one.
        """
        path = self._path(unit)
        if os.path.exists(path):
            return None
        now = self.clock.now()
        identity = worker_provenance(worker)
        lease = Lease(
            unit=unit,
            worker=worker,
            host=str(identity["host"]),
            pid=int(identity["pid"]),
            claim=int(claim),
            acquired_at=now,
            deadline=now + self.ttl,
        )
        staging = f"{path}.{identity['pid']}.claim"
        atomic_write_json(staging, lease.to_dict(), fsync=True)
        try:
            os.link(staging, path)
        except FileExistsError:
            return None
        finally:
            try:
                os.remove(staging)
            except OSError:  # pragma: no cover - race
                pass
        return lease

    def renew(self, lease: Lease) -> Optional[Lease]:
        """Heartbeat: extend the deadline; ``None`` when the lease is lost.

        A lease disappears when the supervisor reaped it as stale (the
        holder was presumed dead).  The holder must then stop publishing
        heartbeats for it — finishing the unit is still safe, but the
        unit may legitimately be claimed by someone else.
        """
        path = self._path(lease.unit)
        current = self.read(lease.unit)
        if current is None or current.worker != lease.worker:
            return None
        renewed = dataclasses.replace(
            lease, deadline=self.clock.now() + self.ttl
        )
        atomic_write_json(path, renewed.to_dict(), fsync=False)
        return renewed

    def release(self, lease: Lease) -> None:
        """Drop the claim (unit completed or handed back)."""
        try:
            os.remove(self._path(lease.unit))
        except FileNotFoundError:
            pass

    def release_if_held(self, lease: Lease) -> bool:
        """Release only if *lease* is still the current claim.

        A worker whose lease was reaped (and possibly re-claimed by
        someone else) must not delete the new holder's lease file on
        its way out.  The read-then-delete window is unsynchronized,
        but losing that race only costs a duplicated execution, which
        determinism makes benign.
        """
        current = self.read(lease.unit)
        if current is None or current.worker != lease.worker:
            return False
        self.release(lease)
        return True

    # ------------------------------------------------------------------
    # the supervisor's side
    # ------------------------------------------------------------------
    def read(self, unit: str) -> Optional[Lease]:
        """The current lease on *unit*, or ``None``.

        An unreadable/corrupt lease file (torn by a crash before the
        first durable write landed) reads as *expired at epoch*, so the
        reaper clears it rather than wedging the unit forever.
        """
        path = self._path(unit)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            return Lease.from_dict(data)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, TypeError, ValueError):
            self._logger.warning(
                "corrupt lease file treated as stale", path=path
            )
            return Lease(
                unit=unit,
                worker="<corrupt>",
                host="",
                pid=0,
                claim=0,
                acquired_at=0.0,
                deadline=0.0,
            )

    def is_stale(self, lease: Lease) -> bool:
        return self.clock.now() > lease.deadline

    def active(self) -> List[Lease]:
        """Every currently held (live or stale) lease."""
        leases = []
        try:
            names = sorted(os.listdir(self.root))
        except FileNotFoundError:
            return []
        for name in names:
            if not name.endswith(".json"):
                continue
            lease = self.read(name[: -len(".json")])
            if lease is not None:
                leases.append(lease)
        return leases

    def reap_stale(self) -> List[Lease]:
        """Delete every stale lease; returns what was reaped."""
        reaped = []
        for lease in self.active():
            if self.is_stale(lease):
                self.release(lease)
                reaped.append(lease)
        return reaped
