"""The on-disk work queue shared by sweep workers.

One queue directory describes one sweep: its identity (seed walk, trial
count, protocol set, config fingerprint), its ``(trial, protocol)``
units, and — as workers make progress — leases, published results,
failure records, quarantine markers, and a lifecycle event log::

    <root>/
      manifest.json         sweep identity + policy (max_claims, ttl)
      units/<id>.json       unit spec: trial, protocol, seed triple
      leases/<id>.json      live claims (see repro.dist.leases)
      results/<id>.json     published results, atomic + fsync
      failures/<id>.<k>.json one record per failed claim
      quarantine/<id>.json  poison units parked after the claim budget
      metrics/<worker>.json per-worker progress frames (atomic, advisory;
                            read by ``repro sweep watch``)
      events.jsonl          claim/publish/fail/expire/requeue/... log

Every state transition is one atomic durable file operation, so any
writer may die at any instruction — including SIGKILL mid-write — and
readers still see either the old state or the new state.  Results are
deterministic functions of the unit's seeds, so duplicated execution
(two workers racing one unit after a lease was reaped early) publishes
identical bytes and "last writer wins" is correct, not just safe.

A unit's *claims-used* count is ``requeues + failure records``: every
way a claim can end badly (lease expiry after a crash or hang, or an
explicit failure) consumes one unit of the ``max_claims`` budget, after
which the supervisor quarantines the unit instead of letting it wedge
the sweep.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..durable import append_line, atomic_write_json, truncate_error_text
from ..errors import ConfigurationError
from ..obs import events as ev
from ..obs.log import get_logger
from .clock import Clock, SystemClock
from .leases import LeaseManager

__all__ = ["UnitRecord", "WorkQueue"]

PathLike = Union[str, "os.PathLike[str]"]

_FORMAT = "repro-sweep-queue"
_VERSION = 1
_RESULT_FORMAT = "repro-sweep-result"


def unit_id(trial: int, protocol_index: int) -> str:
    """Filename-safe unit identifier, ordering-stable within a sweep."""
    return f"t{trial:05d}-p{protocol_index:03d}"


@dataclasses.dataclass(frozen=True)
class UnitRecord:
    """One ``(trial, protocol)`` work unit's immutable spec."""

    unit: str
    trial: int
    protocol: str
    seeds: Tuple[int, int, int]

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["seeds"] = list(self.seeds)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "UnitRecord":
        return cls(
            unit=str(data["unit"]),
            trial=int(data["trial"]),
            protocol=str(data["protocol"]),
            seeds=tuple(int(s) for s in data["seeds"]),
        )


class WorkQueue:
    """Filesystem-backed sweep state shared by workers and supervisor."""

    def __init__(
        self, root: PathLike, *, clock: Optional[Clock] = None
    ) -> None:
        self.root = os.fspath(root)
        self.clock: Clock = clock if clock is not None else SystemClock()
        self._logger = get_logger("repro.dist.queue")
        self._event_seq = 0
        manifest_path = os.path.join(self.root, "manifest.json")
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            raise ConfigurationError(
                f"{self.root} is not a sweep queue (no manifest.json); "
                "create one with WorkQueue.create()"
            ) from None
        except (OSError, json.JSONDecodeError) as error:
            raise ConfigurationError(
                f"unreadable queue manifest {manifest_path}: {error}"
            ) from error
        if (
            not isinstance(manifest, dict)
            or manifest.get("format") != _FORMAT
            or manifest.get("version") != _VERSION
        ):
            raise ConfigurationError(
                f"{manifest_path} is not a version-{_VERSION} sweep queue"
            )
        self.manifest: Dict[str, Any] = manifest
        self.max_claims = int(manifest["max_claims"])
        self.ttl = float(manifest["ttl"])
        self.unit_ids: List[str] = list(manifest["units"])
        self.leases = LeaseManager(
            os.path.join(self.root, "leases"), ttl=self.ttl, clock=self.clock
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        root: PathLike,
        units: Sequence[UnitRecord],
        *,
        identity: Dict[str, Any],
        max_claims: int = 3,
        ttl: float = 30.0,
        scenario: Optional[Dict[str, Any]] = None,
        handoff: Optional[Dict[str, Any]] = None,
        clock: Optional[Clock] = None,
    ) -> "WorkQueue":
        """Create a queue at *root*, or attach to a matching existing one.

        Attaching (resume after a crashed or interrupted sweep) requires
        the stored identity to match exactly — a queue directory is
        never silently reused for a different sweep.  Already-published
        results survive; that is the whole point.

        *handoff*, when given, is persisted in the manifest for workers
        joining from any process: the sweep-amortization record naming
        the parent's spilled ``.ctb`` trial traces (``"trial_spills"``,
        unit-trial -> path) and whether per-trial event-stream sharing
        is on (``"share_event_streams"``).  Purely an optimization
        channel — a worker that ignores it regenerates inputs from the
        unit seeds and produces bit-identical results.
        """
        if max_claims < 1:
            raise ConfigurationError(
                f"max_claims must be >= 1, got {max_claims}"
            )
        path = os.fspath(root)
        manifest_path = os.path.join(path, "manifest.json")
        if os.path.exists(manifest_path):
            queue = cls(path, clock=clock)
            if queue.manifest.get("identity") != identity:
                raise ConfigurationError(
                    f"queue {path} belongs to a different sweep: "
                    f"{queue.manifest.get('identity')!r} != {identity!r}"
                )
            return queue
        for sub in ("units", "leases", "results", "failures", "quarantine"):
            os.makedirs(os.path.join(path, sub), exist_ok=True)
        for record in units:
            atomic_write_json(
                os.path.join(path, "units", f"{record.unit}.json"),
                {**record.to_dict(), "requeues": 0},
                fsync=False,
            )
        manifest: Dict[str, Any] = {
            "format": _FORMAT,
            "version": _VERSION,
            "identity": identity,
            "max_claims": int(max_claims),
            "ttl": float(ttl),
            "units": [record.unit for record in units],
        }
        if scenario is not None:
            manifest["scenario"] = scenario
        if handoff is not None:
            manifest["handoff"] = handoff
        # The manifest lands last (durably), so a half-created queue
        # directory is simply not a queue yet and create() retries are
        # idempotent.
        atomic_write_json(manifest_path, manifest, fsync=True)
        return cls(path, clock=clock)

    @classmethod
    def open(
        cls, root: PathLike, *, clock: Optional[Clock] = None
    ) -> "WorkQueue":
        """Attach to an existing queue (workers joining from any host)."""
        return cls(root, clock=clock)

    # ------------------------------------------------------------------
    # unit state
    # ------------------------------------------------------------------
    def _unit_path(self, unit: str) -> str:
        return os.path.join(self.root, "units", f"{unit}.json")

    def read_unit(self, unit: str) -> UnitRecord:
        with open(self._unit_path(unit), "r", encoding="utf-8") as handle:
            return UnitRecord.from_dict(json.load(handle))

    def requeues(self, unit: str) -> int:
        try:
            with open(self._unit_path(unit), "r", encoding="utf-8") as handle:
                return int(json.load(handle).get("requeues", 0))
        except (OSError, json.JSONDecodeError, ValueError):
            return 0

    def record_requeue(self, unit: str) -> int:
        """Supervisor-only: bump the unit's requeue counter; returns it."""
        path = self._unit_path(unit)
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        data["requeues"] = int(data.get("requeues", 0)) + 1
        atomic_write_json(path, data, fsync=True)
        return int(data["requeues"])

    def failure_count(self, unit: str) -> int:
        failures_dir = os.path.join(self.root, "failures")
        prefix = f"{unit}."
        try:
            names = os.listdir(failures_dir)
        except FileNotFoundError:
            return 0
        return sum(
            1
            for name in names
            if name.startswith(prefix) and name.endswith(".json")
        )

    def record_failure(
        self, unit: str, *, worker: str, claim: int, error: str
    ) -> None:
        """One failed claim; the error text is byte-bounded on write."""
        payload = {
            "unit": unit,
            "worker": worker,
            "claim": int(claim),
            "error": truncate_error_text(error),
            "at": self.clock.now(),
        }
        atomic_write_json(
            os.path.join(self.root, "failures", f"{unit}.{claim}.json"),
            payload,
            fsync=True,
        )

    def read_failures(self, unit: str) -> List[Dict[str, Any]]:
        failures_dir = os.path.join(self.root, "failures")
        prefix = f"{unit}."
        records = []
        try:
            names = sorted(os.listdir(failures_dir))
        except FileNotFoundError:
            return []
        for name in names:
            if not (name.startswith(prefix) and name.endswith(".json")):
                continue
            try:
                with open(
                    os.path.join(failures_dir, name), "r", encoding="utf-8"
                ) as handle:
                    records.append(json.load(handle))
            except (OSError, json.JSONDecodeError):
                continue
        return records

    def claims_used(self, unit: str) -> int:
        """Spent retry budget: crash-requeues plus explicit failures."""
        return self.requeues(unit) + self.failure_count(unit)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def _result_path(self, unit: str) -> str:
        return os.path.join(self.root, "results", f"{unit}.json")

    def has_result(self, unit: str) -> bool:
        return os.path.exists(self._result_path(unit))

    def publish_result(
        self,
        unit: str,
        result: Any,
        *,
        worker: str,
        claim: int,
        timing: Dict[str, float],
        run_key: Optional[str] = None,
    ) -> None:
        """Atomically + durably publish one completed unit.

        A SIGKILL at any point leaves either no result file or a
        complete one; last (identical) writer wins on races.
        """
        from ..experiments.checkpoint import result_to_dict

        payload: Dict[str, Any] = {
            "format": _RESULT_FORMAT,
            "unit": unit,
            "worker": worker,
            "claim": int(claim),
            "timing": dict(timing),
            "run_key": run_key,
            "result": result_to_dict(result),
        }
        atomic_write_json(self._result_path(unit), payload, fsync=True)

    def read_result(self, unit: str) -> Optional[Dict[str, Any]]:
        """The published payload, or ``None`` (corrupt files warn+miss).

        A corrupt result entry — possible only if durability was
        degraded (filesystem without fsync) — is deleted and treated as
        never published, so the unit is simply executed again.
        """
        path = self._result_path(unit)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as error:
            self._logger.warning(
                "discarding corrupt result entry", path=path, error=str(error)
            )
            try:
                os.remove(path)
            except OSError:  # pragma: no cover - race
                pass
            return None
        if (
            not isinstance(data, dict)
            or data.get("format") != _RESULT_FORMAT
            or not isinstance(data.get("result"), dict)
        ):
            self._logger.warning(
                "discarding invalid result entry", path=path
            )
            try:
                os.remove(path)
            except OSError:  # pragma: no cover - race
                pass
            return None
        return data

    # ------------------------------------------------------------------
    # quarantine
    # ------------------------------------------------------------------
    def _quarantine_path(self, unit: str) -> str:
        return os.path.join(self.root, "quarantine", f"{unit}.json")

    def is_quarantined(self, unit: str) -> bool:
        return os.path.exists(self._quarantine_path(unit))

    def quarantine(self, unit: str, reason: str) -> None:
        atomic_write_json(
            self._quarantine_path(unit),
            {
                "unit": unit,
                "reason": truncate_error_text(reason),
                "claims_used": self.claims_used(unit),
                "failures": self.read_failures(unit),
                "at": self.clock.now(),
            },
            fsync=True,
        )

    def read_quarantine(self, unit: str) -> Optional[Dict[str, Any]]:
        try:
            with open(
                self._quarantine_path(unit), "r", encoding="utf-8"
            ) as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None

    # ------------------------------------------------------------------
    # scheduling views
    # ------------------------------------------------------------------
    def is_done(self, unit: str) -> bool:
        return self.has_result(unit) or self.is_quarantined(unit)

    def complete(self) -> bool:
        return all(self.is_done(unit) for unit in self.unit_ids)

    def claimable_units(self, offset: int = 0) -> List[str]:
        """Units a worker may claim right now, in rotated manifest order.

        Rotating the scan start by a per-worker *offset* spreads
        concurrent claimants over the unit list instead of having every
        worker contend on unit 0.  Budget-exhausted units are excluded
        (the supervisor quarantines them).
        """
        n = len(self.unit_ids)
        if n == 0:
            return []
        ordered = [self.unit_ids[(offset + k) % n] for k in range(n)]
        claimable = []
        for unit in ordered:
            if self.is_done(unit):
                continue
            if self.claims_used(unit) >= self.max_claims:
                continue
            lease = self.leases.read(unit)
            if lease is not None and not self.leases.is_stale(lease):
                continue
            claimable.append(unit)
        return claimable

    def status(self) -> Dict[str, Any]:
        """Counts + live leases, for ``repro sweep status`` and tests."""
        published = sum(1 for u in self.unit_ids if self.has_result(u))
        quarantined = sum(
            1 for u in self.unit_ids if self.is_quarantined(u)
        )
        leases = [
            lease.to_dict()
            for lease in self.leases.active()
            if not self.leases.is_stale(lease)
        ]
        return {
            "root": self.root,
            "n_units": len(self.unit_ids),
            "published": published,
            "quarantined": quarantined,
            "pending": len(self.unit_ids) - published - quarantined,
            "live_leases": leases,
        }

    # ------------------------------------------------------------------
    # lifecycle event log
    # ------------------------------------------------------------------
    def log_event(self, kind: str, **fields: Any) -> None:
        """Append one schema-valid lifecycle event to ``events.jsonl``.

        ``seq`` is per-writer (every worker counts its own emissions);
        a multi-writer log totally orders by ``(t, worker, seq)``.
        """
        event: Dict[str, Any] = {
            "seq": self._event_seq,
            "kind": kind,
            "t": self.clock.now(),
        }
        event.update(fields)
        ev.validate_event(event)
        self._event_seq += 1
        try:
            append_line(
                os.path.join(self.root, "events.jsonl"), json.dumps(event)
            )
        except OSError as error:  # pragma: no cover - diskless degrade
            self._logger.warning("event log write failed", error=str(error))

    def read_events(self) -> List[Dict[str, Any]]:
        """Every logged event (a torn final line is tolerated)."""
        path = os.path.join(self.root, "events.jsonl")
        events = []
        try:
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        events.append(json.loads(line))
                    except json.JSONDecodeError:
                        continue
        except FileNotFoundError:
            return []
        return events
