"""Distributed, fault-tolerant sweep execution.

This package turns :func:`repro.experiments.run_comparison` sweeps into
work that survives worker death as the *normal* case, not the
exception.  The pieces:

* :mod:`~repro.dist.executors` — the pluggable executor seam
  (:class:`SerialExecutor`, :class:`ProcessPoolExecutor`,
  :class:`WorkQueueExecutor`) behind ``run_comparison(executor=...)``;
* :mod:`~repro.dist.queue` — an on-disk work queue of
  ``(trial, protocol)`` units shared by independent worker processes
  (potentially on multiple hosts over a shared filesystem), with
  results published by atomic durable writes;
* :mod:`~repro.dist.leases` — atomic claim files with heartbeat
  renewal and TTL expiry, so a SIGKILLed or hung worker's units return
  to the queue;
* :mod:`~repro.dist.supervisor` — crash-absorbing supervision: stale
  leases are reaped and requeued, poison units are quarantined after a
  retry budget, failed worker spawns degrade the sweep to fewer
  workers (down to inline execution) instead of wedging it;
* :mod:`~repro.dist.watch` — the read-side fleet dashboard behind
  ``repro sweep watch``: liveness, throughput, ETA, and per-worker
  attribution assembled purely from the queue directory's worker
  metrics frames and event log.

The hard invariant across all executors, crash patterns, and retry
counts: a sweep's statistics are **bit-identical** to serial execution.
Work units are deterministic functions of their seeds, results
round-trip JSON exactly, and duplicated execution (two workers racing
one unit) publishes identical bytes — so every failure-handling policy
is free to be aggressive.
"""

from .clock import Clock, FakeClock, SystemClock
from .executors import (
    ExecutorLike,
    ProcessPoolExecutor,
    SerialExecutor,
    SweepExecutor,
    SweepSpec,
    resolve_executor,
)
from .leases import Lease, LeaseManager
from .queue import UnitRecord, WorkQueue
from .supervisor import QueueWorker, Supervisor, WorkQueueExecutor
from .watch import FleetSnapshot, WorkerView, fleet_snapshot, render_fleet, watch

__all__ = [
    "Clock",
    "ExecutorLike",
    "FakeClock",
    "FleetSnapshot",
    "Lease",
    "LeaseManager",
    "ProcessPoolExecutor",
    "QueueWorker",
    "SerialExecutor",
    "Supervisor",
    "SweepExecutor",
    "SweepSpec",
    "SystemClock",
    "UnitRecord",
    "WorkQueue",
    "WorkQueueExecutor",
    "WorkerView",
    "fleet_snapshot",
    "render_fleet",
    "resolve_executor",
    "watch",
]
