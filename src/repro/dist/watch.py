"""Live fleet view over one work-queue directory (``repro sweep watch``).

Everything here is **read-side**: a fleet snapshot is assembled purely
from the files any queue participant already publishes — the per-worker
``metrics/<id>.json`` frames, the ``events.jsonl`` lifecycle log, and
the unit/lease state — so a watch client can run on any host that can
see the queue directory, attached to a sweep it did not start, without
perturbing it.  The only thing a watcher writes back is one
``watch_refresh`` event per rendered frame, which makes dashboard
activity itself auditable in the queue log.

Rendering is plain text (no curses): one frame is a short fixed-layout
block suitable for a terminal, a CI artifact (``--once``), or ``tee``.
Liveness is inferred, never asserted: a worker is presumed alive while
its metrics frame is younger than the lease TTL *or* it holds a live
lease (a worker deep inside a long unit refreshes its lease from the
heartbeat thread even when its metrics frame goes quiet).

Time comes exclusively from the queue's injected
:class:`~repro.dist.clock.Clock`, so fake-clock tests drive throughput
windows and liveness ages deterministically.
"""

from __future__ import annotations

import dataclasses
import json
import os
import sys
from typing import IO, Any, Dict, List, Optional

from ..obs import events as ev
from .queue import WorkQueue

__all__ = [
    "DEFAULT_WINDOW_S",
    "FleetSnapshot",
    "WorkerView",
    "fleet_snapshot",
    "read_worker_metrics",
    "render_fleet",
    "watch",
]

#: Publishes within this many seconds feed the throughput estimate.
DEFAULT_WINDOW_S = 120.0


@dataclasses.dataclass(frozen=True)
class WorkerView:
    """One worker's latest self-reported frame, aged against now."""

    worker: str
    host: Optional[str]
    pid: Optional[int]
    units_done: int
    units_failed: int
    claims: int
    lease_renewals: int
    last_seen_t: float
    age_s: float
    alive: bool


@dataclasses.dataclass(frozen=True)
class FleetSnapshot:
    """Everything one dashboard frame shows, as plain data."""

    t: float
    root: str
    n_units: int
    published: int
    quarantined: int
    pending: int
    live_leases: List[Dict[str, Any]]
    workers: List[WorkerView]
    attribution: Dict[str, int]
    window_s: float
    recent_publishes: int
    throughput_per_min: float
    eta_s: Optional[float]

    @property
    def complete(self) -> bool:
        return self.pending == 0


def read_worker_metrics(root: str) -> List[Dict[str, Any]]:
    """Every readable worker frame under ``<root>/metrics/``.

    Corrupt or mid-rename files are skipped silently — frames are
    advisory, and the next refresh replaces them anyway.
    """
    metrics_dir = os.path.join(root, "metrics")
    frames: List[Dict[str, Any]] = []
    try:
        names = sorted(os.listdir(metrics_dir))
    except FileNotFoundError:
        return frames
    for name in names:
        if not name.endswith(".json"):
            continue
        try:
            with open(
                os.path.join(metrics_dir, name), "r", encoding="utf-8"
            ) as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(data, dict) and "worker" in data:
            frames.append(data)
    return frames


def _worker_views(
    frames: List[Dict[str, Any]],
    now: float,
    ttl: float,
    lease_holders: frozenset,
) -> List[WorkerView]:
    views = []
    for frame in frames:
        worker = str(frame["worker"])
        last_seen = float(frame.get("t", 0.0))
        age = max(0.0, now - last_seen)
        views.append(
            WorkerView(
                worker=worker,
                host=frame.get("host"),
                pid=frame.get("pid"),
                units_done=int(frame.get("units_done", 0)),
                units_failed=int(frame.get("units_failed", 0)),
                claims=int(frame.get("claims", 0)),
                lease_renewals=int(frame.get("lease_renewals", 0)),
                last_seen_t=last_seen,
                age_s=age,
                alive=age <= ttl or worker in lease_holders,
            )
        )
    return views


def fleet_snapshot(
    queue: WorkQueue, *, window_s: float = DEFAULT_WINDOW_S
) -> FleetSnapshot:
    """Assemble one dashboard frame from the queue directory."""
    now = queue.clock.now()
    status = queue.status()
    publishes = [
        event
        for event in queue.read_events()
        if event.get("kind") == ev.UNIT_PUBLISH
    ]
    attribution: Dict[str, int] = {}
    for event in publishes:
        worker = str(event.get("worker", "?"))
        attribution[worker] = attribution.get(worker, 0) + 1
    recent = sum(
        1
        for event in publishes
        if float(event.get("t", 0.0)) >= now - window_s
    )
    throughput_per_min = recent * 60.0 / window_s if window_s > 0 else 0.0
    pending = int(status["pending"])
    eta_s: Optional[float] = None
    if pending and recent:
        eta_s = pending * window_s / recent
    live_leases = list(status["live_leases"])
    lease_holders = frozenset(
        str(lease.get("worker", "?")) for lease in live_leases
    )
    workers = _worker_views(
        read_worker_metrics(queue.root), now, queue.ttl, lease_holders
    )
    return FleetSnapshot(
        t=now,
        root=str(status["root"]),
        n_units=int(status["n_units"]),
        published=int(status["published"]),
        quarantined=int(status["quarantined"]),
        pending=pending,
        live_leases=live_leases,
        workers=workers,
        attribution=attribution,
        window_s=window_s,
        recent_publishes=recent,
        throughput_per_min=throughput_per_min,
        eta_s=eta_s,
    )


def _fmt_age(seconds: float) -> str:
    if seconds < 60.0:
        return f"{seconds:.1f}s"
    return f"{seconds / 60.0:.1f}m"


def render_fleet(snapshot: FleetSnapshot) -> str:
    """One plain-text dashboard frame (no cursor control, no color)."""
    lines = [
        f"queue {snapshot.root}",
        (
            f"units  {snapshot.n_units} total | "
            f"{snapshot.published} published | "
            f"{snapshot.quarantined} quarantined | "
            f"{snapshot.pending} pending"
        ),
    ]
    rate = (
        f"{snapshot.throughput_per_min:.2f} units/min "
        f"(last {snapshot.window_s:.0f}s: {snapshot.recent_publishes})"
    )
    if snapshot.complete:
        lines.append(f"rate   {rate} | complete")
    elif snapshot.eta_s is not None:
        lines.append(f"rate   {rate} | ETA {_fmt_age(snapshot.eta_s)}")
    else:
        lines.append(f"rate   {rate} | ETA unknown")
    lines.append(f"workers ({len(snapshot.workers)})")
    for view in sorted(snapshot.workers, key=lambda w: w.worker):
        state = "alive" if view.alive else "dead?"
        where = f"host={view.host} pid={view.pid}"
        lines.append(
            f"  {view.worker:<10} {state:<6} {where:<28} "
            f"done={view.units_done} failed={view.units_failed} "
            f"claims={view.claims} renewals={view.lease_renewals} "
            f"age={_fmt_age(view.age_s)}"
        )
    lines.append(f"leases ({len(snapshot.live_leases)})")
    for lease in snapshot.live_leases:
        lines.append(
            f"  {lease.get('unit', '?'):<14} "
            f"held by {lease.get('worker', '?')} "
            f"(claim {lease.get('claim', '?')})"
        )
    if snapshot.attribution:
        credit = " ".join(
            f"{worker}={count}"
            for worker, count in sorted(snapshot.attribution.items())
        )
        lines.append(f"published by worker: {credit}")
    return "\n".join(lines)


def watch(
    queue: WorkQueue,
    *,
    once: bool = False,
    interval: float = 2.0,
    window_s: float = DEFAULT_WINDOW_S,
    stream: Optional[IO[str]] = None,
    max_frames: Optional[int] = None,
    watcher: Optional[str] = None,
) -> int:
    """Render dashboard frames until the sweep completes; frame count.

    ``once`` renders a single frame (the CI-artifact mode).  In loop
    mode a frame is rendered every ``interval`` seconds on the queue's
    clock until every unit is published or quarantined (``max_frames``
    bounds runaway watching in tests).  Each rendered frame appends one
    ``watch_refresh`` event to the queue log.
    """
    out: IO[str] = stream if stream is not None else sys.stdout
    name = watcher if watcher is not None else f"watch-{os.getpid()}"
    frames = 0
    while True:
        snapshot = fleet_snapshot(queue, window_s=window_s)
        if frames:
            out.write("\n")
        out.write(render_fleet(snapshot) + "\n")
        out.flush()
        queue.log_event(
            ev.WATCH_REFRESH,
            watcher=name,
            published=snapshot.published,
            pending=snapshot.pending,
        )
        frames += 1
        if once or snapshot.complete:
            return frames
        if max_frames is not None and frames >= max_frames:
            return frames
        queue.clock.sleep(interval)
