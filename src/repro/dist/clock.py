"""The sweep-infrastructure clock.

Lease TTLs and supervisor polls need *real* time — the one thing the
rest of the library is forbidden to read (repro lint RPL002).  This
module is the sanctioned channel for the :mod:`repro.dist` layer, the
same way :mod:`repro.obs.timing` is for provenance stopwatches: every
``dist`` component takes a :class:`Clock` so tests drive lease expiry
and backoff deterministically with :class:`FakeClock`, and nothing in
this package touches ``time`` directly.

Lease deadlines use epoch seconds (``time.time``), not a monotonic
clock: a work queue on a shared filesystem is read by workers on
*other hosts*, and epoch time is the only clock they share.  Modest
clock skew only stretches or shrinks a TTL — expiry stays eventual.
"""

from __future__ import annotations

import time
from typing import List, Protocol

__all__ = ["Clock", "FakeClock", "SystemClock"]


class Clock(Protocol):
    """What the dist layer needs from time: read it, and wait."""

    def now(self) -> float:
        """Current time in (epoch) seconds."""
        ...

    def sleep(self, seconds: float) -> None:
        """Block for *seconds* (no-op for ``seconds <= 0``)."""
        ...


class SystemClock:
    """The real wall clock (epoch seconds, host-shared)."""

    def now(self) -> float:
        return time.time()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class FakeClock:
    """A manually advanced clock for deterministic lease/backoff tests.

    ``sleep`` advances the clock instead of blocking, so supervisor
    loops run at test speed; ``sleeps`` records every requested delay
    for assertions on backoff schedules.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self.sleeps: List[float] = []

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        if seconds > 0:
            self._now += seconds

    def advance(self, seconds: float) -> None:
        """Jump forward without registering a sleep."""
        self._now += seconds
