"""Trace sinks: where :class:`~repro.obs.tracer.Tracer` events go.

A sink is anything with an ``emit(event: dict)`` method, a ``close()``,
and an ``active`` flag.  ``active=False`` (the :class:`NullSink`) tells
the engine to skip tracing entirely — the disabled path costs nothing,
not even a per-event ``if``.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Deque, Dict, IO, List, Optional, Union

__all__ = ["TraceSink", "NullSink", "MemorySink", "JsonlSink"]


class TraceSink:
    """Base class for trace sinks.

    Subclasses override :meth:`emit`; ``active`` is True for every sink
    that actually records events.
    """

    active: bool = True

    def emit(self, event: Dict[str, Any]) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Best-effort durability point; default is a no-op."""

    def close(self) -> None:
        """Release resources; default is a no-op."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class NullSink(TraceSink):
    """Discards everything.  ``active=False`` ⇒ the engine skips tracing."""

    active = False

    def emit(self, event: Dict[str, Any]) -> None:  # pragma: no cover
        pass


class MemorySink(TraceSink):
    """Ring buffer of the most recent *capacity* events (unbounded if None).

    The buffer holds the event dicts themselves (no copies); callers
    must treat :attr:`events` as read-only — mutating a retrieved dict
    corrupts the sink's record.  Callers that post-process events
    (filtering, enrichment, the ``repro trace`` pipelines) use
    :meth:`snapshot`, which returns per-event copies that are safe to
    mutate.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self.capacity = capacity
        self._buf: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self.n_emitted = 0

    def emit(self, event: Dict[str, Any]) -> None:
        self._buf.append(event)
        self.n_emitted += 1

    @property
    def events(self) -> List[Dict[str, Any]]:
        """The retained events, oldest first (aliased — read-only)."""
        return list(self._buf)

    def snapshot(self) -> List[Dict[str, Any]]:
        """Copied events, oldest first — safe to mutate.

        Events are flat dicts of scalars (plus the occasional list in
        ``alloc``/``run_end`` payloads), so a shallow per-event copy is
        enough to decouple callers from the buffer; the ``counts`` /
        ``summary`` payload values are never mutated in place by any
        repo consumer.
        """
        return [dict(event) for event in self._buf]

    def clear(self) -> None:
        self._buf.clear()
        self.n_emitted = 0

    def __len__(self) -> int:
        return len(self._buf)


class JsonlSink(TraceSink):
    """Writes one compact JSON object per line to a file or stream.

    Accepts a path (opened/overwritten, closed by :meth:`close`) or an
    already-open text stream (flushed but left open — the caller owns
    it).  Events must be JSON-serializable; the engine only emits
    Python scalars, lists, and dicts, so they are.
    """

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._stream: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_stream = True
            self.path: Optional[str] = target
        else:
            self._stream = target
            self._owns_stream = False
            self.path = getattr(target, "name", None)
        self.n_emitted = 0

    def emit(self, event: Dict[str, Any]) -> None:
        self._stream.write(json.dumps(event, separators=(",", ":")))
        self._stream.write("\n")
        self.n_emitted += 1

    def flush(self) -> None:
        self._stream.flush()

    def close(self) -> None:
        if self._owns_stream and not self._stream.closed:
            self._stream.close()
        else:
            self.flush()
