"""Telemetry: request-lifecycle tracing, run provenance, live progress.

The simulator's end-of-run aggregates answer *how much* welfare an
algorithm earned; the paper's dynamics results (Figures 3-6, Lemma 1)
also need to know *when* and *why*.  This package provides that
observability layer without touching simulation semantics:

* :class:`Tracer` + pluggable sinks (:class:`JsonlSink`,
  :class:`MemorySink`, :class:`NullSink`) — structured request-lifecycle
  events (issued -> contact-seen -> fulfilled/abandoned/lost, plus
  replication and fault events) emitted by the engine.  A ``None`` or
  :class:`NullSink` tracer costs the hot path nothing: the engine keeps
  the hook-free contact fast path and adds no per-event allocations.
* :class:`RunManifest` — provenance of one run (config hash, seed,
  git revision, package versions, wall/CPU timings) attached to
  :class:`~repro.sim.metrics.SimulationResult` and checkpoint files.
* :mod:`repro.obs.log` — a small structured logger for experiment
  progress/status output (CLI-facing ``render()`` prints stay prints).
* :mod:`repro.obs.timing` — the wall/CPU timing shim (the one place
  outside the benchmark harness allowed to read the host clock).
* :mod:`repro.obs.analysis` — trace-file loading, summaries, and the
  Lemma-1 empirical-vs-exponential delay-CDF comparison backing the
  ``repro trace`` CLI.

Event ordering is deterministic: every event carries a monotonically
increasing ``seq`` assigned at emission, so traces from bit-identical
runs are bit-identical too (manifests, which carry timings, are not).
"""

from . import events
from . import metrics
from .analysis import (
    delay_cdf_comparison,
    filter_events,
    iter_events,
    lemma1_delay_cdf,
    load_events,
    summarize_events,
    write_events_csv,
    write_events_jsonl,
)
from .log import ObsLogger, get_logger, set_log_level, set_log_stream
from .manifest import RunManifest, environment_provenance
from .metrics import (
    MetricsRegistry,
    enabled_registry,
    metrics_enabled,
    parse_prometheus,
    registry,
    render_prometheus,
)
from .sinks import JsonlSink, MemorySink, NullSink, TraceSink
from .timing import Stopwatch
from .tracer import Tracer

__all__ = [
    "events",
    "metrics",
    "MetricsRegistry",
    "registry",
    "enabled_registry",
    "metrics_enabled",
    "render_prometheus",
    "parse_prometheus",
    "Tracer",
    "TraceSink",
    "JsonlSink",
    "MemorySink",
    "NullSink",
    "RunManifest",
    "environment_provenance",
    "Stopwatch",
    "ObsLogger",
    "get_logger",
    "set_log_level",
    "set_log_stream",
    "iter_events",
    "load_events",
    "filter_events",
    "summarize_events",
    "write_events_jsonl",
    "write_events_csv",
    "delay_cdf_comparison",
    "lemma1_delay_cdf",
]
