"""Run provenance: the :class:`RunManifest`.

A manifest answers "what exactly produced this result?" — the config
fingerprint, the seed, the code revision, the package versions, and
how long the run took.  It is attached to
:class:`~repro.sim.metrics.SimulationResult` (as a plain dict, so
results stay JSON-serializable) and to checkpoint files.

Manifests are *metadata*: they carry host timings and therefore differ
between otherwise bit-identical runs.  Equality checks on results
(reference-engine equivalence, parallel determinism, checkpoint
round-trips) must compare everything *except* the manifest.
"""

from __future__ import annotations

import dataclasses
import os
import platform
import subprocess
import sys
from typing import Any, Dict, Optional

__all__ = ["RunManifest", "environment_provenance", "worker_provenance"]

_ENV_CACHE: Optional[Dict[str, Any]] = None


def _git_revision() -> Optional[str]:
    """The repo's HEAD commit, or None outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    rev = proc.stdout.strip()
    return rev or None


def _package_versions() -> Dict[str, str]:
    versions: Dict[str, str] = {}
    for name in ("numpy", "scipy"):
        try:
            module = __import__(name)
        except ImportError:  # pragma: no cover - both ship in the image
            continue
        versions[name] = str(getattr(module, "__version__", "unknown"))
    return versions


def environment_provenance() -> Dict[str, Any]:
    """Host environment facts, computed once per process and cached.

    The git revision is resolved with a guarded subprocess call; in a
    non-git deployment it is simply ``None``.
    """
    global _ENV_CACHE
    if _ENV_CACHE is None:
        _ENV_CACHE = {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "git_revision": _git_revision(),
            "packages": _package_versions(),
        }
    return dict(_ENV_CACHE)


def worker_provenance(worker_id: str) -> Dict[str, Any]:
    """Identity of one sweep worker process, for lease files and manifests.

    ``worker_id`` is the sweep-assigned logical name; host and PID pin
    the physical process so a multi-host work queue can attribute every
    unit (and every expired lease) to the process that held it.
    """
    return {
        "worker": worker_id,
        "host": platform.node(),
        "pid": os.getpid(),
    }


@dataclasses.dataclass
class RunManifest:
    """Provenance of one simulation run.

    ``config_fingerprint`` is :meth:`SimulationConfig.fingerprint`;
    ``seed`` is the engine's integer seed; ``wall_s``/``cpu_s`` come
    from the :class:`~repro.obs.timing.Stopwatch` shim; ``phases`` is
    the named-section timing breakdown (merge/run/settle wall seconds
    from :meth:`Stopwatch.section`); ``metrics`` is the run's embedded
    counter snapshot (see :mod:`repro.obs.metrics`); ``extra`` holds
    caller context (trial index, protocol name, sweep parameters, ...).
    """

    config_fingerprint: str
    seed: Optional[int] = None
    protocol: Optional[str] = None
    wall_s: Optional[float] = None
    cpu_s: Optional[float] = None
    n_events: Optional[int] = None
    phases: Dict[str, float] = dataclasses.field(default_factory=dict)
    metrics: Dict[str, Any] = dataclasses.field(default_factory=dict)
    environment: Dict[str, Any] = dataclasses.field(
        default_factory=environment_provenance
    )
    extra: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready plain dict (the form results/checkpoints store)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunManifest":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})
