"""The :class:`Tracer`: sequenced event emission into a sink.

The tracer is deliberately thin — it assigns each event a
monotonically increasing ``seq``, stamps the ``kind`` and simulated
time ``t``, merges any run-level ``meta`` set at construction, and
hands the dict to its sink.  All schema knowledge lives in
:mod:`repro.obs.events`; all I/O lives in the sink.

Determinism: ``seq`` follows emission order inside one run, and the
engine emits in event-stream order, so two bit-identical runs produce
byte-identical traces (modulo the sink's formatting).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .sinks import JsonlSink, MemorySink, NullSink, TraceSink

__all__ = ["Tracer"]


class Tracer:
    """Emits structured trace events through a :class:`~.sinks.TraceSink`.

    Parameters
    ----------
    sink:
        Where events go.  A :class:`NullSink` (or any sink with
        ``active=False``) makes the tracer inactive: the engine then
        drops its reference entirely, so a disabled tracer costs the
        hot path nothing.
    meta:
        Optional run-level fields (e.g. ``{"trial": 3, "protocol":
        "QCR"}``) merged into every emitted event.  Keep it small —
        it is copied per event.
    """

    __slots__ = ("sink", "meta", "seq")

    def __init__(
        self,
        sink: TraceSink,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.sink = sink
        self.meta = dict(meta) if meta else None
        self.seq = 0

    @property
    def active(self) -> bool:
        """False when the sink discards everything (engine skips tracing)."""
        return self.sink.active

    def emit(self, kind: str, t: float, **fields: Any) -> None:
        """Record one event at simulated time *t*."""
        event: Dict[str, Any] = {"seq": self.seq, "kind": kind, "t": t}
        if self.meta is not None:
            event.update(self.meta)
        event.update(fields)
        self.seq += 1
        self.sink.emit(event)

    def flush(self) -> None:
        self.sink.flush()

    def close(self) -> None:
        self.sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- convenience constructors -------------------------------------

    @classmethod
    def to_jsonl(
        cls, path: str, meta: Optional[Dict[str, Any]] = None
    ) -> "Tracer":
        """Tracer writing compact JSON lines to *path*."""
        return cls(JsonlSink(path), meta=meta)

    @classmethod
    def in_memory(
        cls,
        capacity: Optional[int] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> "Tracer":
        """Tracer retaining the last *capacity* events in memory."""
        return cls(MemorySink(capacity), meta=meta)

    @classmethod
    def disabled(cls) -> "Tracer":
        """An inactive tracer (everything dropped, zero engine overhead)."""
        return cls(NullSink())
