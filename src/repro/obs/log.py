"""Structured experiment logging.

Experiment progress/status output goes through :class:`ObsLogger`
instead of bare ``print()`` (enforced by repro lint RPL009 on
``src/repro/experiments/``).  The logger writes human-readable lines
to a configurable stream *and* can mirror records into a trace sink,
so a sweep's status history lands in the same JSONL artifact as its
simulation events.

CLI-facing presentation output (``render()`` tables, figure text) is
not logging and stays ``print()``-based in ``cli.py``.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, IO, Optional

from .sinks import TraceSink

__all__ = [
    "ObsLogger",
    "get_logger",
    "set_log_level",
    "set_log_stream",
    "LEVELS",
]

#: Severity order; records below the configured level are dropped.
LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}

_STATE: Dict[str, Any] = {
    "level": LEVELS["info"],
    "stream": None,  # None -> sys.stderr resolved at write time
}

_LOGGERS: Dict[str, "ObsLogger"] = {}


def set_log_level(level: str) -> None:
    """Set the global threshold (``debug``/``info``/``warning``/``error``)."""
    try:
        _STATE["level"] = LEVELS[level]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {sorted(LEVELS)}"
        ) from None


def set_log_stream(stream: Optional[IO[str]]) -> None:
    """Redirect log output (None restores the default, sys.stderr)."""
    _STATE["stream"] = stream


def get_logger(name: str) -> "ObsLogger":
    """The process-wide logger for *name* (created on first use)."""
    logger = _LOGGERS.get(name)
    if logger is None:
        logger = _LOGGERS[name] = ObsLogger(name)
    return logger


class ObsLogger:
    """A minimal structured logger.

    Each call produces one line ``[name] message key=value ...`` on the
    configured stream and, when a sink is attached, one ``log`` record
    in the trace.  Stdlib ``logging`` is deliberately not used: its
    global mutable configuration leaks across fork-pool workers and
    pytest runs, and we need sink mirroring anyway.
    """

    def __init__(self, name: str, sink: Optional[TraceSink] = None) -> None:
        self.name = name
        self.sink = sink if sink is not None and sink.active else None

    def attach_sink(self, sink: Optional[TraceSink]) -> None:
        self.sink = sink if sink is not None and sink.active else None

    def log(self, level: str, message: str, **fields: Any) -> None:
        severity = LEVELS.get(level, LEVELS["info"])
        if severity >= _STATE["level"]:
            stream: IO[str] = _STATE["stream"] or sys.stderr
            parts = [f"[{self.name}]", message]
            parts.extend(f"{k}={v}" for k, v in fields.items())
            if level != "info":
                parts.insert(1, level.upper())
            stream.write(" ".join(parts) + "\n")
            stream.flush()
        if self.sink is not None:
            record: Dict[str, Any] = {
                "kind": "log",
                "level": level,
                "logger": self.name,
                "message": message,
            }
            record.update(fields)
            self.sink.emit(record)

    def debug(self, message: str, **fields: Any) -> None:
        self.log("debug", message, **fields)

    def info(self, message: str, **fields: Any) -> None:
        self.log("info", message, **fields)

    def warning(self, message: str, **fields: Any) -> None:
        self.log("warning", message, **fields)

    def error(self, message: str, **fields: Any) -> None:
        self.log("error", message, **fields)
