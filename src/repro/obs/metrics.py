"""Process-wide metrics: counters, gauges, histograms, and exporters.

The tracer (:mod:`repro.obs.tracer`) answers *what happened to one
request*; this module answers *how the process is doing right now* —
events processed per chunk, cache hit rates, queue depth, lease churn —
as cheap in-memory aggregates that can be snapshotted at any time.

The discipline mirrors the tracer exactly:

* **disabled ⇒ zero cost.**  Hot-path owners resolve
  :func:`enabled_registry` once at setup; a ``None`` result selects the
  bare code path, so a disabled run carries no per-event ``if`` and no
  metric loads at all (enablement: the ``REPRO_METRICS`` environment
  variable, or :func:`set_enabled` programmatically).
* **enabled ⇒ aggregation only.**  ``inc``/``set``/``observe`` mutate
  plain Python floats and lists; nothing here ever performs I/O, takes
  a lock, or reads a clock.  Exporters run on demand from a
  :meth:`MetricsRegistry.snapshot`, and the JSONL time-series writer
  takes its timestamp from the *caller* (repro lint RPL002: only
  :mod:`repro.obs.timing` and :mod:`repro.dist.clock` may read the
  host clock).
* **metrics are metadata.**  Aggregates never feed back into
  simulation state, so metrics-enabled runs stay bit-identical to
  disabled ones — enforced by ``tests/sim/test_metrics_identity.py``.

Exporters: :func:`render_prometheus` (text exposition format 0.0.4),
:func:`write_snapshot_jsonl` (one snapshot per line, timestamped by the
caller), and the snapshot dict itself (embedded in run manifests).
:func:`parse_prometheus` reads the exposition format back for
round-trip tests and the ``repro metrics`` CLI.
"""

from __future__ import annotations

import json
import math
import re
from bisect import bisect_left
from typing import (
    Any,
    Dict,
    IO,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

__all__ = [
    "ENV_VAR",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "exponential_buckets",
    "registry",
    "enabled_registry",
    "metrics_enabled",
    "set_enabled",
    "reset_registry",
    "render_prometheus",
    "parse_prometheus",
    "write_snapshot_jsonl",
    "coerce_snapshot",
]

#: Environment variable that turns metrics collection on ("1", "true",
#: "yes", "on" — case-insensitive).
ENV_VAR = "REPRO_METRICS"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def exponential_buckets(
    start: float, factor: float, count: int
) -> Tuple[float, ...]:
    """``count`` upper bounds ``start * factor**k`` (``+Inf`` is implicit)."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError(
            f"need start > 0, factor > 1, count >= 1; got "
            f"({start}, {factor}, {count})"
        )
    return tuple(start * factor**k for k in range(count))


#: Default histogram buckets: 16 powers of four from 1e-3 — spans
#: sub-millisecond durations through multi-million-event chunk sizes.
DEFAULT_BUCKETS: Tuple[float, ...] = exponential_buckets(1e-3, 4.0, 16)


class Counter:
    """A monotonically increasing value.  Not thread-safe by design:
    the hot paths that feed it are single-threaded per process."""

    kind = "counter"
    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; inc({amount})")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (queue depth, live workers)."""

    kind = "gauge"
    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def add(self, delta: float) -> None:
        self._value += delta

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram (exponential bounds by default).

    ``bounds`` are inclusive upper edges; observations above the last
    bound land in the implicit ``+Inf`` bucket.  Exposed cumulatively
    (Prometheus ``le`` semantics) by :meth:`cumulative_buckets`.
    """

    kind = "histogram"
    __slots__ = ("bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        cleaned = tuple(float(b) for b in bounds)
        if not cleaned:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(cleaned, cleaned[1:])):
            raise ValueError(f"bucket bounds must increase: {cleaned}")
        if any(not math.isfinite(b) for b in cleaned):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        self.bounds = cleaned
        self._counts = [0] * (len(cleaned) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        self._counts[bisect_left(self.bounds, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self._counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, running + self._counts[-1]))
        return out


_Metric = Union[Counter, Gauge, Histogram]


class _Family:
    """All series of one metric name (same kind, help, label names)."""

    __slots__ = ("name", "kind", "help", "label_names", "buckets", "children")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: Tuple[str, ...],
        buckets: Optional[Tuple[float, ...]],
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self.buckets = buckets
        self.children: Dict[Tuple[str, ...], _Metric] = {}


class MetricsRegistry:
    """Named metric families with get-or-create semantics.

    ``counter``/``gauge``/``histogram`` return the live child for the
    given labels, creating family and child on first use; repeated
    calls with the same name must agree on kind and label names.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    # -- registration ------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Optional[Mapping[str, str]],
        buckets: Optional[Tuple[float, ...]],
    ) -> Tuple[_Family, Tuple[str, ...]]:
        label_map = dict(labels) if labels else {}
        label_names = tuple(sorted(label_map))
        family = self._families.get(name)
        if family is None:
            # Name/label validation only on creation: the get path of an
            # existing family is dict lookups and tuple builds only.
            if not _NAME_RE.match(name):
                raise ValueError(f"invalid metric name {name!r}")
            for key in label_map:
                if not _LABEL_RE.match(key):
                    raise ValueError(f"invalid label name {key!r}")
            family = _Family(name, kind, help_text, label_names, buckets)
            self._families[name] = family
        else:
            if family.kind != kind:
                raise ValueError(
                    f"metric {name!r} is a {family.kind}, not a {kind}"
                )
            if family.label_names != label_names:
                raise ValueError(
                    f"metric {name!r} has labels {family.label_names}, "
                    f"got {label_names}"
                )
            if help_text and not family.help:
                family.help = help_text
        values = tuple(str(label_map[key]) for key in family.label_names)
        return family, values

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Counter:
        family, values = self._family(name, "counter", help, labels, None)
        child = family.children.get(values)
        if child is None:
            child = family.children[values] = Counter()
        assert isinstance(child, Counter)
        return child

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Gauge:
        family, values = self._family(name, "gauge", help, labels, None)
        child = family.children.get(values)
        if child is None:
            child = family.children[values] = Gauge()
        assert isinstance(child, Gauge)
        return child

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        bounds = tuple(float(b) for b in buckets)
        family, values = self._family(name, "histogram", help, labels, bounds)
        child = family.children.get(values)
        if child is None:
            child = family.children[values] = Histogram(
                family.buckets or bounds
            )
        assert isinstance(child, Histogram)
        return child

    # -- introspection -----------------------------------------------
    def __len__(self) -> int:
        return len(self._families)

    def clear(self) -> None:
        self._families.clear()

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready copy of every family and series.

        The format is the interchange form all exporters and the
        ``repro metrics`` CLI consume::

            {name: {"kind": ..., "help": ..., "label_names": [...],
                    "series": [{"labels": {...}, ...values...}]}}

        Counter/gauge series carry ``"value"``; histogram series carry
        ``"sum"``, ``"count"``, and cumulative ``"buckets"`` as
        ``[upper_bound, count]`` pairs with ``"+Inf"`` last.
        """
        out: Dict[str, Any] = {}
        for name in sorted(self._families):
            family = self._families[name]
            series: List[Dict[str, Any]] = []
            for values in sorted(family.children):
                child = family.children[values]
                entry: Dict[str, Any] = {
                    "labels": dict(zip(family.label_names, values)),
                }
                if isinstance(child, Histogram):
                    entry["sum"] = child.sum
                    entry["count"] = child.count
                    entry["buckets"] = [
                        ["+Inf" if math.isinf(le) else le, n]
                        for le, n in child.cumulative_buckets()
                    ]
                else:
                    entry["value"] = child.value
                series.append(entry)
            out[name] = {
                "kind": family.kind,
                "help": family.help,
                "label_names": list(family.label_names),
                "series": series,
            }
        return out

    def to_prometheus(self) -> str:
        return render_prometheus(self.snapshot())


# ---------------------------------------------------------------------
# process-wide registry with tracer-style disabled resolution
# ---------------------------------------------------------------------
_REGISTRY = MetricsRegistry()
_ENABLED: Optional[bool] = None


def registry() -> MetricsRegistry:
    """The process-wide registry (always usable, even when disabled)."""
    return _REGISTRY


def metrics_enabled() -> bool:
    """True when collection is on (``set_enabled`` beats ``REPRO_METRICS``)."""
    if _ENABLED is not None:
        return _ENABLED
    import os

    return os.environ.get(ENV_VAR, "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


def set_enabled(flag: Optional[bool]) -> None:
    """Force collection on/off; ``None`` defers to ``REPRO_METRICS``."""
    global _ENABLED
    _ENABLED = flag


def enabled_registry() -> Optional[MetricsRegistry]:
    """The registry iff collection is enabled, else ``None``.

    The tracer-style resolve: hot-path owners call this once at setup
    and select the bare code path on ``None`` — never per event.
    """
    return _REGISTRY if metrics_enabled() else None


def reset_registry() -> None:
    """Drop every family (tests; enablement state is untouched)."""
    _REGISTRY.clear()


# ---------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------
def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_block(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(str(labels[key]))}"' for key in labels
    )
    return "{" + inner + "}"


def render_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Text exposition format 0.0.4 from a registry snapshot."""
    lines: List[str] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        if family.get("help"):
            lines.append(f"# HELP {name} {_escape_help(family['help'])}")
        lines.append(f"# TYPE {name} {family['kind']}")
        for entry in family["series"]:
            labels = dict(entry.get("labels") or {})
            if family["kind"] == "histogram":
                for le, count in entry["buckets"]:
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = (
                        le if isinstance(le, str) else _format_value(float(le))
                    )
                    lines.append(
                        f"{name}_bucket{_label_block(bucket_labels)} "
                        f"{_format_value(float(count))}"
                    )
                lines.append(
                    f"{name}_sum{_label_block(labels)} "
                    f"{_format_value(float(entry['sum']))}"
                )
                lines.append(
                    f"{name}_count{_label_block(labels)} "
                    f"{_format_value(float(entry['count']))}"
                )
            else:
                lines.append(
                    f"{name}{_label_block(labels)} "
                    f"{_format_value(float(entry['value']))}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def _parse_labels(block: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    i = 0
    n = len(block)
    while i < n:
        eq = block.index("=", i)
        key = block[i:eq].strip().lstrip(",").strip()
        i = eq + 1
        if block[i] != '"':
            raise ValueError(f"unquoted label value in {block!r}")
        i += 1
        out: List[str] = []
        while i < n:
            ch = block[i]
            if ch == "\\":
                nxt = block[i + 1]
                out.append(
                    {"\\": "\\", '"': '"', "n": "\n"}.get(nxt, "\\" + nxt)
                )
                i += 2
            elif ch == '"':
                i += 1
                break
            else:
                out.append(ch)
                i += 1
        labels[key] = "".join(out)
        while i < n and block[i] in ", ":
            i += 1
    return labels


def parse_prometheus(text: str) -> Dict[str, Any]:
    """Read the exposition format back: the round-trip counterpart.

    Returns ``{name: {"kind": ..., "help": ..., "samples": [...]}}``
    where each sample is ``{"name": ..., "labels": {...}, "value":
    ...}`` (histogram ``_bucket``/``_sum``/``_count`` samples attach to
    their base family).  Raises ``ValueError`` on malformed lines.
    """
    families: Dict[str, Any] = {}

    def family_for(sample_name: str) -> Dict[str, Any]:
        base = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = sample_name[: -len(suffix)]
            if (
                sample_name.endswith(suffix)
                and trimmed in families
                and families[trimmed]["kind"] == "histogram"
            ):
                base = trimmed
                break
        return families.setdefault(
            base, {"kind": "untyped", "help": "", "samples": []}
        )

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            entry = families.setdefault(
                name, {"kind": "untyped", "help": "", "samples": []}
            )
            entry["help"] = help_text.replace("\\n", "\n").replace(
                "\\\\", "\\"
            )
        elif line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            entry = families.setdefault(
                name, {"kind": "untyped", "help": "", "samples": []}
            )
            entry["kind"] = kind.strip()
        elif line.startswith("#"):
            continue
        else:
            match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?\s+(\S+)$", line)
            if match is None:
                raise ValueError(f"malformed exposition line: {raw!r}")
            sample_name, label_block, value_text = match.groups()
            labels = (
                _parse_labels(label_block[1:-1]) if label_block else {}
            )
            value = float(value_text.replace("+Inf", "inf").replace("-Inf", "-inf"))
            family_for(sample_name)["samples"].append(
                {"name": sample_name, "labels": labels, "value": value}
            )
    return families


def _is_registry_snapshot(data: Mapping[str, Any]) -> bool:
    return bool(data) and all(
        isinstance(value, Mapping) and "kind" in value and "series" in value
        for value in data.values()
    )


def coerce_snapshot(data: Mapping[str, Any]) -> Dict[str, Any]:
    """Normalize any snapshot-bearing JSON payload to registry form.

    Accepts, in order of preference:

    * a registry snapshot itself (:meth:`MetricsRegistry.snapshot`);
    * any dict with a ``"metrics"`` key holding one (JSONL time-series
      records, sweep manifests) — applied recursively;
    * a flat numeric mapping (the per-run summary embedded in a
      :class:`~repro.obs.manifest.RunManifest`), which is synthesized
      into gauges named ``repro_manifest_<key>``.

    Raises ``ValueError`` for anything else.
    """
    if _is_registry_snapshot(data):
        return {name: dict(family) for name, family in data.items()}
    inner = data.get("metrics")
    if isinstance(inner, Mapping):
        return coerce_snapshot(inner)
    if data and all(
        isinstance(value, (int, float)) and not isinstance(value, bool)
        for value in data.values()
    ):
        out: Dict[str, Any] = {}
        for key in sorted(data):
            name = f"repro_manifest_{key}"
            if not _NAME_RE.match(name):
                raise ValueError(f"cannot map {key!r} to a metric name")
            out[name] = {
                "kind": "gauge",
                "help": f"run-manifest summary field {key}",
                "label_names": [],
                "series": [{"labels": {}, "value": float(data[key])}],
            }
        return out
    raise ValueError("payload holds no recognizable metrics snapshot")


def write_snapshot_jsonl(
    target: Union[str, IO[str]],
    snapshot: Mapping[str, Any],
    *,
    t: float,
    meta: Optional[Mapping[str, Any]] = None,
) -> None:
    """Append one timestamped snapshot as a JSON line.

    *t* comes from the caller (a :class:`~repro.dist.clock.Clock` or a
    :class:`~repro.obs.timing.Stopwatch` reading) — this module never
    reads the host clock.
    """
    record: Dict[str, Any] = {"t": t}
    if meta:
        record.update(meta)
    record["metrics"] = dict(snapshot)
    line = json.dumps(record, separators=(",", ":")) + "\n"
    if isinstance(target, str):
        with open(target, "a", encoding="utf-8") as handle:
            handle.write(line)
    else:
        target.write(line)
