"""The trace-event schema.

Events are plain dicts (JSONL-ready, pickle-free) with three universal
keys — ``seq`` (emission order, assigned by the :class:`~.tracer.Tracer`),
``kind`` (one of the constants below), and ``t`` (simulated event time,
minutes) — plus kind-specific payload fields listed in
:data:`EVENT_FIELDS`.

Request lifecycle (the paper's Section 6.1 semantics)::

    REQUEST ──► SEEN* ──► FULFILL
       │                     (delay, gain, final query counter)
       ├──► IMMEDIATE        (requester already caches the item)
       ├──► SKIPPED          (self_request_policy="skip")
       ├──► ABANDON          (request_timeout expired)
       ├──► LOST             (requesting node crashed)
       └──► UNFULFILLED      (still outstanding at the horizon)

``SEEN`` is one *query* edge: outstanding requests for an item met a
server (the Lemma-1 meeting process; the fulfilling meeting included).
One event covers all ``n`` same-item requests at that node to bound
trace volume.  Raw no-op contacts are deliberately *not* traced — they
carry no lifecycle information and tracing them would defeat the
engine's hook-free contact fast path.

Replication and fault events (``REPLICA_ADD`` .. ``CONTACT_DROP``)
record every cache mutation and fault-injection action, so a trace
replays the full replica-count trajectory between snapshots.

Distributed-sweep lifecycle events (``UNIT_CLAIM`` .. ``WORKER_EXIT``)
are emitted by the :mod:`repro.dist` work-queue backend into the
queue's ``events.jsonl``; their ``t`` is wall-clock seconds (sweep
infrastructure time, never simulated time) and their ``seq`` is
per-writer, so a multi-worker log orders by ``(t, worker, seq)``::

    UNIT_CLAIM ──► UNIT_PUBLISH              (worker completed the unit)
        │
        ├──► UNIT_FAIL ──► UNIT_REQUEUE      (retry budget remaining)
        │                  UNIT_QUARANTINE   (budget exhausted: poison)
        └──► UNIT_EXPIRE ──► UNIT_REQUEUE    (lease TTL passed: the
                                              worker crashed or hung)
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Tuple

__all__ = [
    "RUN_START",
    "ALLOC",
    "REQUEST",
    "IMMEDIATE",
    "SKIPPED",
    "OFFLINE",
    "SEEN",
    "FULFILL",
    "ABANDON",
    "LOST",
    "UNFULFILLED",
    "REPLICA_ADD",
    "REPLICA_DROP",
    "CRASH",
    "RECOVER",
    "CONTACT_DROP",
    "RUN_END",
    "UNIT_CLAIM",
    "UNIT_PUBLISH",
    "UNIT_FAIL",
    "UNIT_EXPIRE",
    "UNIT_REQUEUE",
    "UNIT_QUARANTINE",
    "WORKER_SPAWN",
    "WORKER_EXIT",
    "METRICS_SNAPSHOT",
    "WATCH_REFRESH",
    "EVENT_FIELDS",
    "LIFECYCLE_KINDS",
    "SWEEP_KINDS",
    "validate_event",
]

#: Run framing.
RUN_START = "run_start"
ALLOC = "alloc"
RUN_END = "run_end"

#: Request lifecycle.
REQUEST = "request"
IMMEDIATE = "immediate"
SKIPPED = "skipped"
OFFLINE = "offline"
SEEN = "seen"
FULFILL = "fulfill"
ABANDON = "abandon"
LOST = "lost"
UNFULFILLED = "unfulfilled"

#: Replication and faults.
REPLICA_ADD = "replica_add"
REPLICA_DROP = "replica_drop"
CRASH = "crash"
RECOVER = "recover"
CONTACT_DROP = "contact_drop"

#: Distributed-sweep work-unit lifecycle (see :mod:`repro.dist`).
UNIT_CLAIM = "unit_claim"
UNIT_PUBLISH = "unit_publish"
UNIT_FAIL = "unit_fail"
UNIT_EXPIRE = "unit_expire"
UNIT_REQUEUE = "unit_requeue"
UNIT_QUARANTINE = "unit_quarantine"
WORKER_SPAWN = "worker_spawn"
WORKER_EXIT = "worker_exit"

#: Metrics plane (see :mod:`repro.obs.metrics` and ``repro sweep
#: watch``): a worker published its atomic ``metrics.json``, or a watch
#: client rendered one dashboard frame from the queue directory.
METRICS_SNAPSHOT = "metrics_snapshot"
WATCH_REFRESH = "watch_refresh"

#: kind -> required payload fields (beyond ``seq``/``kind``/``t``).
EVENT_FIELDS: Dict[str, Tuple[str, ...]] = {
    RUN_START: ("n_nodes", "n_items", "duration", "protocol"),
    ALLOC: ("counts",),
    REQUEST: ("item", "node"),
    IMMEDIATE: ("item", "node", "gain"),
    SKIPPED: ("item", "node"),
    OFFLINE: ("item", "node"),
    SEEN: ("item", "node", "server", "n"),
    FULFILL: ("item", "node", "server", "delay", "gain", "counter"),
    ABANDON: ("item", "node", "created_at"),
    LOST: ("item", "node", "created_at"),
    UNFULFILLED: ("item", "node", "created_at", "age"),
    REPLICA_ADD: ("node", "item", "evicted"),
    REPLICA_DROP: ("node", "item"),
    CRASH: ("node", "n_requests_lost", "n_mandates_lost"),
    RECOVER: ("node",),
    CONTACT_DROP: ("a", "b"),
    RUN_END: ("summary",),
    UNIT_CLAIM: ("unit", "worker", "claim"),
    UNIT_PUBLISH: ("unit", "worker"),
    UNIT_FAIL: ("unit", "worker", "error"),
    UNIT_EXPIRE: ("unit", "worker"),
    UNIT_REQUEUE: ("unit", "claims"),
    UNIT_QUARANTINE: ("unit", "reason"),
    WORKER_SPAWN: ("worker",),
    WORKER_EXIT: ("worker", "reason"),
    METRICS_SNAPSHOT: ("worker", "units_done", "units_failed"),
    WATCH_REFRESH: ("watcher", "published", "pending"),
}

#: The distributed-sweep infrastructure kinds (``events.jsonl`` of a
#: work queue; never present in a simulation telemetry trace).
SWEEP_KINDS: Tuple[str, ...] = (
    UNIT_CLAIM,
    UNIT_PUBLISH,
    UNIT_FAIL,
    UNIT_EXPIRE,
    UNIT_REQUEUE,
    UNIT_QUARANTINE,
    WORKER_SPAWN,
    WORKER_EXIT,
    METRICS_SNAPSHOT,
    WATCH_REFRESH,
)

#: The kinds a request passes through (used by summaries and filters).
LIFECYCLE_KINDS: Tuple[str, ...] = (
    REQUEST,
    IMMEDIATE,
    SKIPPED,
    OFFLINE,
    SEEN,
    FULFILL,
    ABANDON,
    LOST,
    UNFULFILLED,
)


def validate_event(event: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` unless *event* matches the schema.

    Used by tests and the trace CLI's loaders; the emission hot path
    never validates (the engine only emits well-formed events).
    """
    for key in ("seq", "kind", "t"):
        if key not in event:
            raise ValueError(f"trace event missing {key!r}: {dict(event)!r}")
    kind = event["kind"]
    required = EVENT_FIELDS.get(kind)
    if required is None:
        raise ValueError(f"unknown trace event kind {kind!r}")
    missing = [field for field in required if field not in event]
    if missing:
        raise ValueError(
            f"trace event {kind!r} missing field(s) {missing}: "
            f"{dict(event)!r}"
        )
