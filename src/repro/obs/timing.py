"""The sanctioned wall/CPU timing shim.

Simulation and experiment code must never read the host clock directly
(repro lint RPL002: wall-clock time breaks determinism and replay).
Provenance timings are the exception the rule exists to channel: this
module is the one place outside the benchmark harness allowed to call
``time.perf_counter``/``time.process_time``, and everything else that
wants a duration goes through :class:`Stopwatch`.

Timings measured here are *metadata* — they land in manifests and
telemetry records, never in simulation state or results that equality
tests compare.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

__all__ = ["Stopwatch"]


class _Section:
    """One named timing span; accumulates into the owner on exit.

    Sections nest freely (an inner section's time is also part of every
    enclosing section's), and re-entering the same name accumulates, so
    ``sw.sections`` is a phase-time breakdown whose *disjoint* entries
    sum to at most the stopwatch's total wall time.
    """

    __slots__ = ("_owner", "_name", "_wall0", "_cpu0")

    def __init__(self, owner: "Stopwatch", name: str) -> None:
        self._owner = owner
        self._name = name
        self._wall0: Optional[float] = None
        self._cpu0: Optional[float] = None

    def __enter__(self) -> "_Section":
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._wall0 is None or self._cpu0 is None:
            return
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        sections = self._owner.sections
        sections[self._name] = sections.get(self._name, 0.0) + wall
        cpu_sections = self._owner.cpu_sections
        cpu_sections[self._name] = cpu_sections.get(self._name, 0.0) + cpu
        self._wall0 = None
        self._cpu0 = None


class Stopwatch:
    """Measures wall and CPU seconds between :meth:`start` and :meth:`stop`.

    Usable as a context manager::

        with Stopwatch() as sw:
            do_work()
        record(wall=sw.wall, cpu=sw.cpu)

    Until stopped, ``wall``/``cpu`` report the running elapsed time, so
    a long-lived stopwatch can be sampled for live progress.

    Named sections break the total down by phase::

        sw = Stopwatch()
        with sw.section("merge"):
            merge()
        with sw.section("run"):
            run()
        sw.sections  # {"merge": ..., "run": ...} — wall seconds

    Section times accumulate per name across re-entries; disjoint
    sections sum to at most the enclosing stopwatch's wall time.
    """

    def __init__(self, autostart: bool = True) -> None:
        self._wall_start: Optional[float] = None
        self._cpu_start: Optional[float] = None
        self._wall: Optional[float] = None
        self._cpu: Optional[float] = None
        #: Accumulated wall seconds per named section.
        self.sections: Dict[str, float] = {}
        #: Accumulated process-CPU seconds per named section.
        self.cpu_sections: Dict[str, float] = {}
        if autostart:
            self.start()

    def section(self, name: str) -> _Section:
        """A context manager timing one named span (see class docs)."""
        return _Section(self, name)

    def start(self) -> "Stopwatch":
        self._wall = None
        self._cpu = None
        self._wall_start = time.perf_counter()
        self._cpu_start = time.process_time()
        return self

    def stop(self) -> "Stopwatch":
        if self._wall_start is None or self._cpu_start is None:
            raise RuntimeError("Stopwatch.stop() before start()")
        self._wall = time.perf_counter() - self._wall_start
        self._cpu = time.process_time() - self._cpu_start
        return self

    @property
    def wall(self) -> float:
        """Elapsed wall-clock seconds (running total until stopped)."""
        if self._wall is not None:
            return self._wall
        if self._wall_start is None:
            return 0.0
        return time.perf_counter() - self._wall_start

    @property
    def cpu(self) -> float:
        """Elapsed process CPU seconds (running total until stopped)."""
        if self._cpu is not None:
            return self._cpu
        if self._cpu_start is None:
            return 0.0
        return time.process_time() - self._cpu_start

    def __enter__(self) -> "Stopwatch":
        if self._wall_start is None:
            self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
