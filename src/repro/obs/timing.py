"""The sanctioned wall/CPU timing shim.

Simulation and experiment code must never read the host clock directly
(repro lint RPL002: wall-clock time breaks determinism and replay).
Provenance timings are the exception the rule exists to channel: this
module is the one place outside the benchmark harness allowed to call
``time.perf_counter``/``time.process_time``, and everything else that
wants a duration goes through :class:`Stopwatch`.

Timings measured here are *metadata* — they land in manifests and
telemetry records, never in simulation state or results that equality
tests compare.
"""

from __future__ import annotations

import time
from typing import Optional

__all__ = ["Stopwatch"]


class Stopwatch:
    """Measures wall and CPU seconds between :meth:`start` and :meth:`stop`.

    Usable as a context manager::

        with Stopwatch() as sw:
            do_work()
        record(wall=sw.wall, cpu=sw.cpu)

    Until stopped, ``wall``/``cpu`` report the running elapsed time, so
    a long-lived stopwatch can be sampled for live progress.
    """

    def __init__(self, autostart: bool = True) -> None:
        self._wall_start: Optional[float] = None
        self._cpu_start: Optional[float] = None
        self._wall: Optional[float] = None
        self._cpu: Optional[float] = None
        if autostart:
            self.start()

    def start(self) -> "Stopwatch":
        self._wall = None
        self._cpu = None
        self._wall_start = time.perf_counter()
        self._cpu_start = time.process_time()
        return self

    def stop(self) -> "Stopwatch":
        if self._wall_start is None or self._cpu_start is None:
            raise RuntimeError("Stopwatch.stop() before start()")
        self._wall = time.perf_counter() - self._wall_start
        self._cpu = time.process_time() - self._cpu_start
        return self

    @property
    def wall(self) -> float:
        """Elapsed wall-clock seconds (running total until stopped)."""
        if self._wall is not None:
            return self._wall
        if self._wall_start is None:
            return 0.0
        return time.perf_counter() - self._wall_start

    @property
    def cpu(self) -> float:
        """Elapsed process CPU seconds (running total until stopped)."""
        if self._cpu is not None:
            return self._cpu
        if self._cpu_start is None:
            return 0.0
        return time.process_time() - self._cpu_start

    def __enter__(self) -> "Stopwatch":
        if self._wall_start is None:
            self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
