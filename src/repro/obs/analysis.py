"""Trace-file analysis: loading, summaries, and Lemma-1 validation.

These helpers back the ``repro trace summary|filter|convert|cdf`` CLI.
The headline analysis is :func:`delay_cdf_comparison`: under the
paper's Lemma 1, a request for item *i* issued while the allocation
holds ``x_i`` replicas is fulfilled after an ``Exp(mu * x_i)`` delay,
so the per-item empirical delay CDF from a trace should match
``1 - exp(-mu * x_i * d)``.  The comparison reports the empirical
quantiles next to the closed form plus the Kolmogorov-Smirnov
statistic per item.
"""

from __future__ import annotations

import csv
import json
from typing import (
    Any,
    Callable,
    Dict,
    IO,
    Iterable,
    List,
    Optional,
    Sequence,
    Union,
)

import numpy as np

from . import events as ev
from .sinks import MemorySink

__all__ = [
    "TraceFileError",
    "load_events",
    "iter_events",
    "filter_events",
    "summarize_events",
    "write_events_jsonl",
    "write_events_csv",
    "lemma1_delay_cdf",
    "delay_cdf_comparison",
]


class TraceFileError(ValueError):
    """A trace file line could not be parsed (carries the line number)."""


def iter_events(
    source: Union[str, IO[str], MemorySink], validate: bool = False
) -> Iterable[Dict[str, Any]]:
    """Yield events from a JSONL trace file, open stream, or MemorySink.

    A :class:`~repro.obs.sinks.MemorySink` source yields
    :meth:`~repro.obs.sinks.MemorySink.snapshot` copies — downstream
    consumers (``filter``/``convert`` pipelines) may freely mutate what
    they receive without corrupting the sink's buffer, exactly as they
    can with events parsed fresh from a file.
    """
    if isinstance(source, MemorySink):
        for event in source.snapshot():
            if validate:
                ev.validate_event(event)
            yield event
    elif isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fh:
            yield from _iter_stream(fh, validate)
    else:
        yield from _iter_stream(source, validate)


def _iter_stream(
    stream: IO[str], validate: bool
) -> Iterable[Dict[str, Any]]:
    for lineno, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFileError(
                f"line {lineno}: invalid JSON ({exc.msg})"
            ) from exc
        if not isinstance(event, dict):
            raise TraceFileError(
                f"line {lineno}: expected a JSON object, got "
                f"{type(event).__name__}"
            )
        if validate:
            try:
                ev.validate_event(event)
            except ValueError as exc:
                raise TraceFileError(f"line {lineno}: {exc}") from exc
        yield event


def load_events(
    source: Union[str, IO[str], MemorySink], validate: bool = False
) -> List[Dict[str, Any]]:
    """All events from a JSONL trace, in file order."""
    return list(iter_events(source, validate=validate))


def filter_events(
    events: Iterable[Dict[str, Any]],
    kinds: Optional[Sequence[str]] = None,
    item: Optional[int] = None,
    node: Optional[int] = None,
    t_min: Optional[float] = None,
    t_max: Optional[float] = None,
) -> List[Dict[str, Any]]:
    """Events matching every given criterion (None = don't filter on it)."""
    kind_set = set(kinds) if kinds is not None else None
    out: List[Dict[str, Any]] = []
    for event in events:
        if kind_set is not None and event.get("kind") not in kind_set:
            continue
        if item is not None and event.get("item") != item:
            continue
        if node is not None and event.get("node") != node:
            continue
        t = event.get("t")
        if t_min is not None and (t is None or t < t_min):
            continue
        if t_max is not None and (t is None or t > t_max):
            continue
        out.append(event)
    return out


def summarize_events(events: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate a trace: per-kind counts, delay stats, per-item outcomes.

    Returns a JSON-ready dict; delay statistics cover FULFILL events
    only (NaN-free: absent data reports ``None``).
    """
    kind_counts: Dict[str, int] = {}
    delays: List[float] = []
    per_item: Dict[int, Dict[str, int]] = {}
    t_last = 0.0
    n_events = 0
    protocol: Optional[str] = None
    for event in events:
        n_events += 1
        kind = event.get("kind", "?")
        kind_counts[kind] = kind_counts.get(kind, 0) + 1
        t = event.get("t")
        if isinstance(t, (int, float)) and t > t_last:
            t_last = float(t)
        if kind == ev.RUN_START:
            protocol = event.get("protocol")
        if kind == ev.FULFILL:
            delays.append(float(event["delay"]))
        if kind in ev.LIFECYCLE_KINDS and "item" in event:
            bucket = per_item.setdefault(int(event["item"]), {})
            bucket[kind] = bucket.get(kind, 0) + 1

    delay_stats: Optional[Dict[str, float]] = None
    if delays:
        arr = np.asarray(delays, dtype=np.float64)
        delay_stats = {
            "count": int(arr.size),
            "mean": float(arr.mean()),
            "p50": float(np.percentile(arr, 50)),
            "p90": float(np.percentile(arr, 90)),
            "p99": float(np.percentile(arr, 99)),
            "max": float(arr.max()),
        }
    return {
        "n_events": n_events,
        "protocol": protocol,
        "t_last": t_last,
        "kind_counts": dict(sorted(kind_counts.items())),
        "delay": delay_stats,
        "per_item": {str(k): per_item[k] for k in sorted(per_item)},
    }


def write_events_jsonl(
    events: Iterable[Dict[str, Any]], target: Union[str, IO[str]]
) -> int:
    """Write events as compact JSON lines; returns the event count."""
    return _write(events, target, _jsonl_writer)


def write_events_csv(
    events: Iterable[Dict[str, Any]], target: Union[str, IO[str]]
) -> int:
    """Write events as CSV (union of keys as header); returns the count.

    Events are materialized first to compute the header; nested values
    (e.g. ``alloc.counts``) are JSON-encoded in their cell.
    """
    return _write(events, target, _csv_writer)


def _write(
    events: Iterable[Dict[str, Any]],
    target: Union[str, IO[str]],
    writer: Callable[[Iterable[Dict[str, Any]], IO[str]], int],
) -> int:
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8", newline="") as fh:
            return writer(events, fh)
    return writer(events, target)


def _jsonl_writer(events: Iterable[Dict[str, Any]], fh: IO[str]) -> int:
    n = 0
    for event in events:
        fh.write(json.dumps(event, separators=(",", ":")))
        fh.write("\n")
        n += 1
    return n


def _csv_writer(events: Iterable[Dict[str, Any]], fh: IO[str]) -> int:
    materialized = list(events)
    header: List[str] = []
    seen = set()
    for event in materialized:
        for key in event:
            if key not in seen:
                seen.add(key)
                header.append(key)
    writer = csv.writer(fh)
    writer.writerow(header)
    for event in materialized:
        row = []
        for key in header:
            value = event.get(key, "")
            if isinstance(value, (dict, list)):
                value = json.dumps(value, separators=(",", ":"))
            row.append(value)
        writer.writerow(row)
    return len(materialized)


def lemma1_delay_cdf(
    t: Union[float, Sequence[float], np.ndarray], mu: float, x: float
) -> np.ndarray:
    """Lemma 1 closed-form delay CDF: ``1 - exp(-mu * x * t)``.

    With exponential pairwise meeting times at rate ``mu`` and ``x``
    replicas of the item, the time until a requester meets *some*
    holder is exponential with rate ``mu * x``.
    """
    if mu <= 0:
        raise ValueError(f"mu must be positive, got {mu}")
    if x < 0:
        raise ValueError(f"replica count must be non-negative, got {x}")
    arr = np.asarray(t, dtype=np.float64)
    return 1.0 - np.exp(-mu * x * arr)


def delay_cdf_comparison(
    events: Iterable[Dict[str, Any]],
    mu: float,
    counts: Optional[Sequence[int]] = None,
    items: Optional[Sequence[int]] = None,
    min_samples: int = 5,
) -> Dict[str, Any]:
    """Per-item empirical delay CDF vs. the Lemma 1 exponential.

    Parameters
    ----------
    events:
        Trace events (any iterable; FULFILL and ALLOC are consumed).
    mu:
        Pairwise meeting rate of the mobility model that produced the
        contact trace.  The engine cannot know it (it only sees contact
        times), so the caller supplies it — e.g. ``--mu 0.05`` for the
        Fig. 4 scenario.
    counts:
        Replica counts ``x_i`` per item.  Defaults to the trace's ALLOC
        event (the initial allocation) — exact for static protocols;
        for adaptive ones the comparison is against the *initial*
        allocation's prediction.
    items:
        Restrict to these items (default: every item with enough
        samples).
    min_samples:
        Items with fewer fulfilled requests are skipped (reported in
        ``skipped``).

    Returns a JSON-ready dict: for each item, the sorted empirical
    delays with their empirical CDF levels, the Lemma 1 prediction at
    those delays, and the KS statistic ``max |F_emp - F_pred|``.
    """
    alloc_counts: Optional[List[int]] = None
    delays_by_item: Dict[int, List[float]] = {}
    for event in events:
        kind = event.get("kind")
        if kind == ev.ALLOC and alloc_counts is None:
            alloc_counts = [int(c) for c in event["counts"]]
        elif kind == ev.FULFILL:
            delays_by_item.setdefault(int(event["item"]), []).append(
                float(event["delay"])
            )

    if counts is not None:
        alloc_counts = [int(c) for c in counts]
    if alloc_counts is None:
        raise ValueError(
            "no ALLOC event in trace and no explicit replica counts given"
        )

    wanted = (
        sorted(delays_by_item) if items is None else [int(i) for i in items]
    )
    per_item: Dict[str, Dict[str, Any]] = {}
    skipped: List[Dict[str, Any]] = []
    ks_values: List[float] = []
    for item in wanted:
        samples = delays_by_item.get(item, [])
        if len(samples) < min_samples:
            skipped.append({"item": item, "n_samples": len(samples)})
            continue
        if item >= len(alloc_counts):
            skipped.append(
                {"item": item, "n_samples": len(samples), "reason": "no count"}
            )
            continue
        x_i = alloc_counts[item]
        if x_i <= 0:
            skipped.append(
                {"item": item, "n_samples": len(samples), "reason": "x_i == 0"}
            )
            continue
        arr = np.sort(np.asarray(samples, dtype=np.float64))
        n = arr.size
        emp = np.arange(1, n + 1, dtype=np.float64) / n
        pred = lemma1_delay_cdf(arr, mu, x_i)
        # KS distance for a step empirical CDF: check both step edges.
        ks = float(
            max(
                np.max(np.abs(emp - pred)),
                np.max(np.abs(emp - 1.0 / n - pred)),
            )
        )
        ks_values.append(ks)
        per_item[str(item)] = {
            "x": int(x_i),
            "n_samples": int(n),
            "rate": mu * x_i,
            "mean_delay": float(arr.mean()),
            "predicted_mean_delay": 1.0 / (mu * x_i),
            "ks_statistic": ks,
            "delays": [float(d) for d in arr],
            "empirical_cdf": [float(p) for p in emp],
            "lemma1_cdf": [float(p) for p in pred],
        }
    return {
        "mu": mu,
        "n_items_compared": len(per_item),
        "max_ks": max(ks_values) if ks_values else None,
        "mean_ks": float(np.mean(ks_values)) if ks_values else None,
        "items": per_item,
        "skipped": skipped,
    }
