"""Request-arrival generation (paper Section 3.3).

Node ``n`` creates new requests for item ``i`` as a Poisson process of rate
``d_i * pi_{i,n}``.  :class:`RequestSchedule` materializes one realization
of all arrival processes over a finite horizon as three parallel arrays
sorted by time, ready for merging with a contact trace in the simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..types import FloatArray, IntArray, SeedLike, as_rng
from .popularity import DemandModel
from .profiles import validate_profile

__all__ = ["RequestSchedule", "generate_requests"]


@dataclass(frozen=True)
class RequestSchedule:
    """A time-sorted realization of request arrivals.

    Attributes
    ----------
    times:
        Arrival times, non-decreasing, within ``[0, duration]``.
    items:
        Requested item id per arrival.
    nodes:
        Requesting client id per arrival.
    duration:
        The generation horizon.
    """

    times: FloatArray
    items: IntArray
    nodes: IntArray
    duration: float

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=float)
        items = np.asarray(self.items, dtype=np.int64)
        nodes = np.asarray(self.nodes, dtype=np.int64)
        if not (len(times) == len(items) == len(nodes)):
            raise ConfigurationError("times/items/nodes lengths differ")
        if len(times) and np.any(np.diff(times) < 0):
            raise ConfigurationError("request times must be sorted")
        if len(times) and (times[0] < 0 or times[-1] > self.duration):
            raise ConfigurationError("request times must lie in [0, duration]")
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "items", items)
        object.__setattr__(self, "nodes", nodes)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[Tuple[float, int, int]]:
        for k in range(len(self.times)):
            yield float(self.times[k]), int(self.items[k]), int(self.nodes[k])

    def per_item_counts(self, n_items: int) -> IntArray:
        """Number of generated requests per item id."""
        return np.bincount(self.items, minlength=n_items).astype(np.int64)

    def sliced(self, t_start: float, t_end: float) -> "RequestSchedule":
        """Return the sub-schedule with ``t_start <= t < t_end``."""
        mask = (self.times >= t_start) & (self.times < t_end)
        return RequestSchedule(
            times=self.times[mask],
            items=self.items[mask],
            nodes=self.nodes[mask],
            duration=self.duration,
        )

    @staticmethod
    def concatenate(
        schedules: "Sequence[RequestSchedule]",
    ) -> "RequestSchedule":
        """Join schedules back-to-back in time.

        Models evolving demand: generate each epoch from a different
        :class:`~repro.demand.popularity.DemandModel` and concatenate.
        """
        if not schedules:
            raise ConfigurationError("need at least one schedule")
        offsets = np.cumsum([0.0] + [s.duration for s in schedules[:-1]])
        return RequestSchedule(
            times=np.concatenate(
                [s.times + off for s, off in zip(schedules, offsets)]
            ),
            items=np.concatenate([s.items for s in schedules]),
            nodes=np.concatenate([s.nodes for s in schedules]),
            duration=float(sum(s.duration for s in schedules)),
        )


def generate_requests(
    demand: DemandModel,
    n_clients: int,
    duration: float,
    *,
    profile: Optional[FloatArray] = None,
    seed: SeedLike = None,
    chunk_target: Optional[int] = None,
) -> RequestSchedule:
    """Sample a :class:`RequestSchedule` over ``[0, duration]``.

    Arrivals form a Poisson process of total rate ``demand.total_rate``;
    each arrival independently picks an item by popularity and then a
    client from the item's profile row (uniform when *profile* is ``None``).

    *chunk_target* bounds generation temporaries: the horizon is split
    into sub-intervals of ~that many expected arrivals, per-interval
    counts are drawn first (independent Poisson increments — an exact
    sample of the same joint process), the final arrays are allocated
    once at their exact total size, and each interval is sorted and
    filled in place.  The default (``None``) keeps the historical
    single-draw RNG stream byte-identical for a given seed.
    """
    if n_clients <= 0:
        raise ConfigurationError(f"n_clients must be > 0, got {n_clients}")
    if duration <= 0:
        raise ConfigurationError(f"duration must be > 0, got {duration}")
    rng = as_rng(seed)

    if chunk_target is None:
        n_events = rng.poisson(demand.total_rate * duration)
        times = np.sort(rng.uniform(0.0, duration, size=n_events))
        items = _draw_items(rng, demand, n_events)
        nodes = _draw_nodes(rng, demand, n_clients, items, profile)
        return RequestSchedule(
            times=times, items=items, nodes=nodes, duration=duration
        )

    if chunk_target < 1:
        raise ConfigurationError(
            f"chunk target must be >= 1, got {chunk_target}"
        )
    n_chunks = max(
        1, math.ceil(demand.total_rate * duration / chunk_target)
    )
    edges = np.linspace(0.0, duration, n_chunks + 1)
    # Pass 1: per-interval arrival counts fix the exact total, so the
    # output arrays are allocated once with no growth reallocation.
    counts = [
        int(rng.poisson(demand.total_rate * (t1 - t0)))
        for t0, t1 in zip(edges[:-1], edges[1:])
    ]
    total = sum(counts)
    times = np.empty(total, dtype=float)
    items = np.empty(total, dtype=np.int64)
    nodes = np.empty(total, dtype=np.int64)
    # Pass 2: fill each interval; only one chunk of temporaries lives
    # at a time (the per-chunk sort replaces one global sort).
    start = 0
    for (t0, t1), count in zip(zip(edges[:-1], edges[1:]), counts):
        stop = start + count
        times[start:stop] = np.sort(rng.uniform(t0, t1, size=count))
        chunk_items = _draw_items(rng, demand, count)
        items[start:stop] = chunk_items
        nodes[start:stop] = _draw_nodes(
            rng, demand, n_clients, chunk_items, profile
        )
        start = stop
    return RequestSchedule(
        times=times, items=items, nodes=nodes, duration=duration
    )


def _draw_items(
    rng: np.random.Generator, demand: DemandModel, n_events: int
) -> IntArray:
    """Popularity-weighted item ids for *n_events* arrivals."""
    return rng.choice(
        demand.n_items, size=n_events, p=demand.probabilities
    ).astype(np.int64)


def _draw_nodes(
    rng: np.random.Generator,
    demand: DemandModel,
    n_clients: int,
    items: IntArray,
    profile: Optional[FloatArray],
) -> IntArray:
    """Client ids for each arrival, honoring per-item profiles."""
    n_events = len(items)
    if profile is None:
        return rng.integers(0, n_clients, size=n_events, dtype=np.int64)
    profile = validate_profile(profile, demand.n_items, n_clients)
    nodes = np.empty(n_events, dtype=np.int64)
    # Sample nodes item-by-item so each arrival uses its item's row.
    for item in np.unique(items):
        mask = items == item
        nodes[mask] = rng.choice(
            n_clients, size=int(mask.sum()), p=profile[item]
        )
    return nodes
