"""Demand models: item popularity, per-node profiles, request arrivals."""

from .popularity import DemandModel
from .profiles import clustered_profile, uniform_profile, validate_profile
from .requests import RequestSchedule, generate_requests

__all__ = [
    "DemandModel",
    "uniform_profile",
    "clustered_profile",
    "validate_profile",
    "RequestSchedule",
    "generate_requests",
]
