"""Content popularity and demand rates (paper Section 3.3).

Demand for item ``i`` arises system-wide at rate ``d_i``.  The paper uses a
Pareto (Zipf-like) popularity distribution ``d_i ∝ i**-omega`` with
``omega = 1`` in simulation, "generally considered as representative of
content popularity"; arbitrary rate vectors are supported throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..types import FloatArray

__all__ = ["DemandModel"]


@dataclass(frozen=True)
class DemandModel:
    """Per-item demand rates ``d_i`` for a catalog of items.

    ``rates[i]`` is the total (system-wide) rate at which new requests for
    item ``i`` are created, in requests per unit time.  Items are indexed in
    *decreasing* popularity order by convention of the builders below,
    though arbitrary vectors are accepted.
    """

    rates: FloatArray

    def __post_init__(self) -> None:
        rates = np.asarray(self.rates, dtype=float)
        if rates.ndim != 1 or len(rates) == 0:
            raise ConfigurationError("demand rates must be a non-empty 1-D array")
        if np.any(rates < 0) or not np.all(np.isfinite(rates)):
            raise ConfigurationError("demand rates must be finite and >= 0")
        if rates.sum() <= 0:
            raise ConfigurationError("total demand rate must be positive")
        object.__setattr__(self, "rates", rates)

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def n_items(self) -> int:
        """Number of items in the catalog."""
        return len(self.rates)

    @property
    def total_rate(self) -> float:
        """Aggregate request rate over all items."""
        return float(self.rates.sum())

    @property
    def probabilities(self) -> FloatArray:
        """Normalized popularity ``p_i = d_i / sum_j d_j``."""
        return self.rates / self.total_rate

    def ranked_items(self) -> np.ndarray:
        """Item ids sorted by decreasing demand (ties broken by id)."""
        return np.lexsort((np.arange(self.n_items), -self.rates))

    # ------------------------------------------------------------------
    # builders
    # ------------------------------------------------------------------
    @classmethod
    def pareto(
        cls, n_items: int, omega: float = 1.0, total_rate: float = 1.0
    ) -> "DemandModel":
        """Pareto popularity ``d_i ∝ (i+1)**-omega`` (the paper's default).

        ``omega = 0`` degenerates to uniform popularity; larger ``omega``
        concentrates demand on the head of the catalog.
        """
        if n_items <= 0:
            raise ConfigurationError(f"n_items must be > 0, got {n_items}")
        if omega < 0:
            raise ConfigurationError(f"omega must be >= 0, got {omega}")
        ranks = np.arange(1, n_items + 1, dtype=float)
        weights = ranks**-omega
        return cls.from_weights(weights, total_rate=total_rate)

    @classmethod
    def uniform(cls, n_items: int, total_rate: float = 1.0) -> "DemandModel":
        """Equal demand for every item."""
        return cls.pareto(n_items, omega=0.0, total_rate=total_rate)

    @classmethod
    def geometric(
        cls, n_items: int, ratio: float = 0.9, total_rate: float = 1.0
    ) -> "DemandModel":
        """Geometric popularity ``d_i ∝ ratio**i`` (a lighter-tailed option)."""
        if not 0 < ratio <= 1:
            raise ConfigurationError(f"ratio must be in (0, 1], got {ratio}")
        weights = ratio ** np.arange(n_items, dtype=float)
        return cls.from_weights(weights, total_rate=total_rate)

    @classmethod
    def from_weights(
        cls, weights: Sequence[float], total_rate: float = 1.0
    ) -> "DemandModel":
        """Normalize arbitrary positive weights into demand rates."""
        if total_rate <= 0:
            raise ConfigurationError(
                f"total_rate must be > 0, got {total_rate}"
            )
        weights_arr = np.asarray(weights, dtype=float)
        if np.any(weights_arr < 0):
            raise ConfigurationError("weights must be >= 0")
        total = weights_arr.sum()
        if total <= 0:
            raise ConfigurationError("at least one weight must be positive")
        return cls(rates=weights_arr / total * total_rate)

    def scaled(self, factor: float) -> "DemandModel":
        """Return a copy with all rates multiplied by *factor*."""
        if factor <= 0:
            raise ConfigurationError(f"factor must be > 0, got {factor}")
        return DemandModel(rates=self.rates * factor)
