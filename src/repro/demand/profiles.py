"""Per-node demand profiles ``pi_{i,n}`` (paper Section 3.3).

``pi[i, n]`` is the probability that a new request for item ``i`` arises at
client ``n`` (each row sums to 1).  The paper's default — items "popular
equally among all network nodes" — is the uniform profile
``pi_{i,n} = 1/|C|``; the clustered profile models distinct communities
with different tastes (a future-work axis the paper calls out).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..types import FloatArray, SeedLike, as_rng

__all__ = [
    "uniform_profile",
    "clustered_profile",
    "validate_profile",
]


def validate_profile(pi: FloatArray, n_items: int, n_clients: int) -> FloatArray:
    """Validate and return a ``(n_items, n_clients)`` profile matrix."""
    pi = np.asarray(pi, dtype=float)
    if pi.shape != (n_items, n_clients):
        raise ConfigurationError(
            f"profile shape {pi.shape} != ({n_items}, {n_clients})"
        )
    if np.any(pi < 0):
        raise ConfigurationError("profile entries must be >= 0")
    row_sums = pi.sum(axis=1)
    if not np.allclose(row_sums, 1.0, atol=1e-9):
        raise ConfigurationError("each profile row must sum to 1")
    return pi


def uniform_profile(n_items: int, n_clients: int) -> FloatArray:
    """Every client is equally likely to request every item."""
    if n_items <= 0 or n_clients <= 0:
        raise ConfigurationError("n_items and n_clients must be > 0")
    return np.full((n_items, n_clients), 1.0 / n_clients)


def clustered_profile(
    n_items: int,
    n_clients: int,
    n_groups: int,
    bias: float = 4.0,
    seed: SeedLike = None,
) -> FloatArray:
    """Community-structured profile: each client group favors its own items.

    Clients and items are partitioned round-robin into *n_groups*
    communities; a client is ``bias`` times more likely than baseline to
    request items of its own community.

    Parameters
    ----------
    bias:
        Preference multiplier for same-community items (``1.0`` degenerates
        to the uniform profile).
    seed:
        Shuffles the item-community assignment; ``None`` keeps round-robin.
    """
    if n_groups <= 0 or n_groups > min(n_items, n_clients):
        raise ConfigurationError(
            f"n_groups must be in [1, min(n_items, n_clients)], got {n_groups}"
        )
    if bias < 1.0:
        raise ConfigurationError(f"bias must be >= 1, got {bias}")
    item_group = np.arange(n_items) % n_groups
    if seed is not None:
        as_rng(seed).shuffle(item_group)
    client_group = np.arange(n_clients) % n_groups
    same = item_group[:, None] == client_group[None, :]
    weights = np.where(same, bias, 1.0)
    return weights / weights.sum(axis=1, keepdims=True)
