"""Plain-text rendering of experiment output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["render_table", "format_value", "render_loss_sweep"]


def format_value(value: float, precision: int = 4) -> str:
    """Format a float compactly; NaN/inf are rendered literally."""
    if value != value:
        return "nan"
    if value in (float("inf"), float("-inf")):
        return "inf" if value > 0 else "-inf"
    if value == 0:
        return "0"
    if abs(value) >= 10_000 or abs(value) < 10 ** (-precision):
        return f"{value:.{precision}g}"
    return f"{value:.{precision}g}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table."""
    text_rows: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        text_rows.append(
            [
                format_value(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(text_rows[r][c]) for r in range(len(text_rows)))
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        text.ljust(width) for text, width in zip(text_rows[0], widths)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in text_rows[1:]:
        lines.append(
            "  ".join(text.ljust(width) for text, width in zip(row, widths))
        )
    return "\n".join(lines)


def render_loss_sweep(
    x_label: str,
    x_values: Sequence[float],
    losses: Dict[str, Sequence[float]],
    title: Optional[str] = None,
) -> str:
    """Render a parameter sweep of normalized losses, one row per value.

    Matches the layout of the paper's Figure 4/5/6 series: the x-axis
    parameter in the first column, one column per algorithm, entries in
    percent relative to OPT.
    """
    headers = [x_label] + list(losses.keys())
    rows = []
    for index, x in enumerate(x_values):
        rows.append(
            [f"{x:g}"]
            + [f"{losses[name][index]:+.2f}%" for name in losses]
        )
    return render_table(headers, rows, title=title)
