"""Regeneration and numeric verification of the paper's Table 1.

For every delay-utility family the closed forms of the welfare gain,
balance transform ``phi`` (Property 1), and reaction function ``psi``
(Property 2) are evaluated against the generic numeric integrals of the
differential measure — the closed form *is* the library implementation,
the numeric value is an independent quadrature, and the table reports
both plus their relative error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


from ..utility import table1_rows
from ..utility.base import DelayUtility
from .reporting import render_table

__all__ = ["Table1Verification", "verify_table1"]


@dataclass(frozen=True)
class Table1Entry:
    family: str
    quantity: str
    argument: float
    closed_form: float
    numeric: float

    @property
    def relative_error(self) -> float:
        scale = max(abs(self.closed_form), abs(self.numeric), 1e-300)
        return abs(self.closed_form - self.numeric) / scale


@dataclass(frozen=True)
class Table1Verification:
    entries: Tuple[Table1Entry, ...]

    @property
    def max_relative_error(self) -> float:
        return max(e.relative_error for e in self.entries)

    def render(self) -> str:
        rows = [
            [
                e.family,
                e.quantity,
                f"{e.argument:g}",
                e.closed_form,
                e.numeric,
                f"{e.relative_error:.2e}",
            ]
            for e in self.entries
        ]
        return render_table(
            ["family", "quantity", "arg", "closed form", "numeric", "rel err"],
            rows,
            title="Table 1 — closed forms vs numeric integration",
        )


def verify_table1(
    *,
    mu: float = 0.05,
    n_servers: int = 50,
    counts: Tuple[float, ...] = (1.0, 5.0, 20.0),
    queries: Tuple[float, ...] = (2.0, 10.0, 40.0),
) -> Table1Verification:
    """Cross-check every Table-1 closed form against quadrature."""
    entries: List[Table1Entry] = []
    for row in table1_rows():
        utility = row.utility
        for x in counts:
            closed = utility.phi(x, mu)
            numeric = DelayUtility.phi(utility, x, mu)
            entries.append(
                Table1Entry(row.label, "phi(x)", x, closed, numeric)
            )
            rate = mu * x
            closed_gain = utility.expected_gain(rate)
            numeric_gain = (
                utility.h0 - DelayUtility.laplace_c(utility, rate)
                if utility.finite_at_zero
                else DelayUtility._expected_gain_numeric(utility, rate)
            )
            entries.append(
                Table1Entry(
                    row.label, "E[h(Y)]", rate, closed_gain, numeric_gain
                )
            )
        for y in queries:
            closed_psi = utility.psi(y, n_servers, mu)
            numeric_psi = (n_servers / y) * DelayUtility.phi(
                utility, n_servers / y, mu
            )
            entries.append(
                Table1Entry(row.label, "psi(y)", y, closed_psi, numeric_psi)
            )
    return Table1Verification(entries=tuple(entries))
