"""Regeneration of every figure in the paper.

Each ``figureN`` function reproduces the corresponding plot's data series
and returns a structured result whose ``render()`` prints the same
rows/series the paper reports.  Absolute values differ from the paper
(our substrate is a simulator and synthetic traces — see DESIGN.md §2);
the shapes, orderings, and crossovers are the reproduction targets.

* Figure 1 — the delay-utility families, three panels;
* Figure 2 — the optimal power-law allocation exponent ``1/(2-alpha)``,
  cross-checked against the relaxed solver;
* Figure 3 — QCR with vs. without mandate routing over time (expected
  and observed utility, top-5 replica counts, mandate totals);
* Figure 4 — normalized loss vs. OPT for all algorithms under
  homogeneous contacts (power-``alpha`` and step-``tau`` sweeps);
* Figure 5 — the conference trace: utility over time and loss-vs-``tau``
  on the actual and memoryless-control traces;
* Figure 6 — the vehicular trace: loss sweeps for the power, step, and
  exponential families.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..allocation import (
    homogeneous_welfare,
    power_allocation_exponent,
    solve_relaxed,
)
from ..demand import DemandModel
from ..protocols import QCRConfig
from ..sim import SimulationResult
from ..types import FloatArray
from ..utility import (
    DelayUtility,
    ExponentialUtility,
    PowerUtility,
    StepUtility,
    power_family,
)
from ..obs.log import get_logger
from .checkpoint import PathLike
from .profiles import EffortProfile, current_profile
from .reporting import render_loss_sweep, render_table
from .runner import ProgressLike, RunCacheLike, run_comparison
from .scenarios import (
    MU,
    RHO,
    Scenario,
    conference_scenario,
    homogeneous_scenario,
    run_scenario,
    standard_protocols,
    vehicular_scenario,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dist.executors import ExecutorLike

__all__ = [
    "SweepPanel",
    "TimeSeriesPanel",
    "Figure1Result",
    "Figure2Result",
    "Figure3Result",
    "Figure4Result",
    "Figure5Result",
    "Figure6Result",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "recommended_timeout",
]

_STANDARD_SUITE = ("OPT", "QCR", "SQRT", "PROP", "UNI", "DOM")


def recommended_timeout(
    utility: DelayUtility, duration: float
) -> Optional[float]:
    """A request-abandonment horizon matched to the utility's time scale.

    After ten deadlines (step) or twenty mean-decay times (exponential)
    any further wait contributes (essentially) zero gain, so dropping the
    request changes measured utility negligibly while bounding simulator
    state.  Unbounded waiting costs get no timeout.
    """
    if isinstance(utility, StepUtility):
        return min(10.0 * utility.tau, duration)
    if isinstance(utility, ExponentialUtility):
        return min(20.0 / utility.nu, duration)
    return None


# ----------------------------------------------------------------------
# shared series containers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepPanel:
    """Normalized-loss series over one impatience-parameter sweep."""

    title: str
    x_label: str
    x_values: Tuple[float, ...]
    #: algorithm -> one loss (percent, vs OPT) per x value.
    losses: Dict[str, Tuple[float, ...]]

    def render(self) -> str:
        return render_loss_sweep(
            self.x_label,
            self.x_values,
            {k: list(v) for k, v in self.losses.items()},
            title=self.title,
        )


@dataclass(frozen=True)
class TimeSeriesPanel:
    """Named time series over a common time axis."""

    title: str
    times: FloatArray
    series: Dict[str, FloatArray]

    def render(self, max_rows: int = 25) -> str:
        stride = max(1, len(self.times) // max_rows)
        headers = ["t"] + list(self.series.keys())
        rows = []
        for k in range(0, len(self.times), stride):
            rows.append(
                [f"{self.times[k]:g}"]
                + [f"{self.series[name][k]:.4g}" for name in self.series]
            )
        return render_table(headers, rows, title=self.title)


def _sweep(
    scenario_for: Callable[[float], Scenario],
    x_values: Sequence[float],
    *,
    n_trials: int,
    base_seed: int,
    include: Sequence[str] = _STANDARD_SUITE,
    title: str,
    x_label: str,
    n_workers: Optional[int] = None,
    progress: Optional[ProgressLike] = None,
    profile_dir: Optional[PathLike] = None,
    run_cache: RunCacheLike = None,
    executor: "ExecutorLike" = None,
) -> SweepPanel:
    losses: Dict[str, List[float]] = {name: [] for name in include}
    logger = get_logger("repro.experiments.figures")
    for index, x in enumerate(x_values):
        scenario = scenario_for(x)
        if progress:
            logger.info(
                "sweep point",
                panel=title,
                point=f"{index + 1}/{len(x_values)}",
                **{x_label: f"{x:g}"},
            )
        comparison = run_scenario(
            scenario,
            n_trials=n_trials,
            base_seed=base_seed + index,
            include=include,
            n_workers=n_workers,
            progress=progress,
            profile_dir=profile_dir,
            run_cache=run_cache,
            executor=executor,
        )
        for name in include:
            losses[name].append(comparison.normalized_loss(name))
    return SweepPanel(
        title=title,
        x_label=x_label,
        x_values=tuple(x_values),
        losses={k: tuple(v) for k, v in losses.items()},
    )


# ----------------------------------------------------------------------
# Figure 1 — delay-utility families
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Figure1Result:
    """``h(t)`` curves for the three motivating panels."""

    times: FloatArray
    panels: Dict[str, Dict[str, FloatArray]]

    def render(self) -> str:
        blocks = []
        for panel, curves in self.panels.items():
            headers = ["t"] + list(curves.keys())
            rows = []
            for k in range(len(self.times)):
                rows.append(
                    [f"{self.times[k]:.2f}"]
                    + [f"{curves[name][k]:.4g}" for name in curves]
                )
            blocks.append(render_table(headers, rows, title=f"Figure 1 {panel}"))
        return "\n\n".join(blocks)


def figure1(n_points: int = 11, t_max: float = 5.0) -> Figure1Result:
    """Evaluate the paper's example delay-utilities on ``(0, t_max]``."""
    times = np.linspace(t_max / n_points, t_max, n_points)
    panels = {
        "(a) advertising revenue": {
            "step tau=1": np.asarray(StepUtility(1.0)(times)),
            "exp nu=0.1": np.asarray(ExponentialUtility(0.1)(times)),
            "exp nu=1": np.asarray(ExponentialUtility(1.0)(times)),
        },
        "(b) time-critical information": {
            "power a=2 (excl.)": times ** (1 - 1.999) / (1.999 - 1),
            "power a=1.5": np.asarray(PowerUtility(1.5)(times)),
            "neglog (a=1)": np.asarray(power_family(1.0)(times)),
        },
        "(c) waiting cost": {
            "power a=0.5": np.asarray(PowerUtility(0.5)(times)),
            "power a=0": np.asarray(PowerUtility(0.0)(times)),
            "power a=-1": np.asarray(PowerUtility(-1.0)(times)),
        },
    }
    return Figure1Result(times=times, panels=panels)


# ----------------------------------------------------------------------
# Figure 2 — optimal allocation exponent
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Figure2Result:
    """Closed-form exponent vs. the exponent fitted on solver output."""

    alphas: FloatArray
    closed_form: FloatArray
    fitted: FloatArray

    def render(self) -> str:
        rows = [
            [f"{a:.2f}", f"{c:.4f}", f"{f:.4f}"]
            for a, c, f in zip(self.alphas, self.closed_form, self.fitted)
        ]
        return render_table(
            ["alpha", "1/(2-alpha)", "fitted exponent"],
            rows,
            title="Figure 2 — optimal allocation x_i ∝ d_i^e",
        )


def figure2(
    alphas: Optional[Sequence[float]] = None,
    *,
    n_items: int = 50,
    n_servers: int = 200,
    rho: int = RHO,
    mu: float = MU,
) -> Figure2Result:
    """Fit the relaxed-optimum power law for each *alpha*.

    A large server count keeps all items off the boundary so the fitted
    log-log slope matches the closed form.
    """
    if alphas is None:
        alphas = np.linspace(-2.0, 1.5, 15)
    alphas = np.asarray(list(alphas), dtype=float)
    demand = DemandModel.pareto(n_items, omega=1.0)
    closed = np.array([power_allocation_exponent(a) for a in alphas])
    fitted = np.empty_like(closed)
    budget = float(rho * n_servers)
    for k, alpha in enumerate(alphas):
        utility = power_family(float(alpha))
        counts = solve_relaxed(
            demand, utility, mu, n_servers, budget
        ).counts
        interior = (counts > 1e-6) & (counts < n_servers - 1e-6)
        logs_d = np.log(demand.rates[interior])
        logs_x = np.log(counts[interior])
        slope = np.polyfit(logs_d, logs_x, 1)[0]
        fitted[k] = slope
    return Figure2Result(alphas=alphas, closed_form=closed, fitted=fitted)


# ----------------------------------------------------------------------
# Figure 3 — mandate routing over time
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Figure3Result:
    """Time evolution of QCR vs. QCRWOM (and fixed references)."""

    expected_utility: TimeSeriesPanel
    observed_utility: TimeSeriesPanel
    replicas_with_routing: TimeSeriesPanel
    replicas_without_routing: TimeSeriesPanel
    mandate_totals: TimeSeriesPanel

    def render(self) -> str:
        return "\n\n".join(
            panel.render()
            for panel in (
                self.expected_utility,
                self.observed_utility,
                self.replicas_with_routing,
                self.replicas_without_routing,
                self.mandate_totals,
            )
        )


def figure3(
    profile: Optional[EffortProfile] = None,
    *,
    alpha: float = 0.0,
    total_demand: float = 8.0,
    base_seed: int = 303,
    n_workers: Optional[int] = None,
    progress: Optional[ProgressLike] = None,
    profile_dir: Optional[PathLike] = None,
    run_cache: RunCacheLike = None,
    executor: "ExecutorLike" = None,
) -> Figure3Result:
    """Reproduce Figure 3 (homogeneous contacts, power ``alpha = 0``).

    Uses a stronger request load and the undamped Table-1 reaction scale
    so the replication dynamics — and QCRWOM's stranded-mandate
    divergence — are clearly visible within the horizon.
    """
    profile = profile or current_profile()
    if n_workers is None:
        n_workers = profile.n_workers
    utility = power_family(alpha)
    scenario = homogeneous_scenario(
        utility,
        duration=profile.duration,
        total_demand=total_demand,
        record_interval=profile.duration / 40,
    )
    protocols = standard_protocols(
        scenario,
        include=("OPT", "QCR", "QCRWOM", "UNI", "DOM"),
        qcr_config=QCRConfig(psi_scale=0.3),
    )
    comparison = run_comparison(
        trace_factory=scenario.trace_factory,
        demand=scenario.demand,
        config=scenario.config,
        protocols=protocols,
        n_trials=profile.n_trials,
        base_seed=base_seed,
        baseline="OPT",
        n_workers=n_workers,
        progress=progress,
        profile_dir=profile_dir,
        run_cache=run_cache,
        executor=executor,
    )

    def first(name: str) -> SimulationResult:
        return comparison.stats[name].results[0]

    times = first("QCR").snapshot_times

    def expected_series(name: str) -> FloatArray:
        values = np.zeros(len(times))
        for result in comparison.stats[name].results:
            values += np.array(
                [
                    homogeneous_welfare(
                        counts,
                        scenario.demand,
                        utility,
                        scenario.mu_estimate,
                        scenario.n_nodes,
                        pure_p2p=True,
                        n_clients=scenario.n_nodes,
                        count_floor=0.5,
                    )
                    for counts in result.snapshot_counts
                ]
            )
        return values / len(comparison.stats[name].results)

    expected = TimeSeriesPanel(
        title="Figure 3(a) — expected utility U(x(t))",
        times=times,
        series={
            name: expected_series(name)
            for name in ("OPT", "UNI", "DOM", "QCRWOM", "QCR")
        },
    )

    window_times = (
        np.arange(len(first("QCR").window_gains)) + 0.5
    ) * first("QCR").window_length

    def observed_series(name: str) -> FloatArray:
        stacked = np.stack(
            [r.window_gains for r in comparison.stats[name].results]
        )
        return stacked.mean(axis=0) / first(name).window_length

    observed = TimeSeriesPanel(
        title="Figure 3(b) — observed utility (per-window gain rate)",
        times=window_times,
        series={
            name: observed_series(name)
            for name in ("OPT", "UNI", "DOM", "QCRWOM", "QCR")
        },
    )

    def replica_panel(name: str, label: str) -> TimeSeriesPanel:
        tracked = first(name).snapshot_tracked
        assert tracked is not None
        return TimeSeriesPanel(
            title=label,
            times=times,
            series={
                f"msg {k + 1}": tracked[:, k] for k in range(tracked.shape[1])
            },
        )

    mandates = TimeSeriesPanel(
        title="Figure 3 (extra) — total outstanding mandates",
        times=times,
        series={
            name: np.asarray(first(name).snapshot_mandates).sum(axis=1)
            for name in ("QCR", "QCRWOM")
        },
    )
    return Figure3Result(
        expected_utility=expected,
        observed_utility=observed,
        replicas_with_routing=replica_panel(
            "QCR", "Figure 3(c) — replicas of 5 most-requested (QCR)"
        ),
        replicas_without_routing=replica_panel(
            "QCRWOM", "Figure 3(d) — replicas of 5 most-requested (QCRWOM)"
        ),
        mandate_totals=mandates,
    )


# ----------------------------------------------------------------------
# Figure 4 — homogeneous comparison sweeps
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Figure4Result:
    power_panel: SweepPanel
    step_panel: SweepPanel

    def render(self) -> str:
        return self.power_panel.render() + "\n\n" + self.step_panel.render()


def figure4(
    profile: Optional[EffortProfile] = None,
    *,
    base_seed: int = 404,
    n_workers: Optional[int] = None,
    progress: Optional[ProgressLike] = None,
    profile_dir: Optional[PathLike] = None,
    run_cache: RunCacheLike = None,
    executor: "ExecutorLike" = None,
) -> Figure4Result:
    """Reproduce Figure 4 (homogeneous contacts)."""
    profile = profile or current_profile()
    if n_workers is None:
        n_workers = profile.n_workers

    def power_scenario(alpha: float) -> Scenario:
        return homogeneous_scenario(
            power_family(alpha), duration=profile.duration,
            record_interval=None,
        )

    def step_scenario(tau: float) -> Scenario:
        scenario = homogeneous_scenario(
            StepUtility(tau), duration=profile.duration, record_interval=None
        )
        timeout = recommended_timeout(StepUtility(tau), profile.duration)
        return replace(
            scenario,
            config=replace(scenario.config, request_timeout=timeout),
        )

    power_panel = _sweep(
        power_scenario,
        profile.power_alphas,
        n_trials=profile.n_trials,
        base_seed=base_seed,
        title="Figure 4 (left) — homogeneous, power delay-utility",
        x_label="alpha",
        n_workers=n_workers,
        progress=progress,
        profile_dir=profile_dir,
        run_cache=run_cache,
        executor=executor,
    )
    step_panel = _sweep(
        step_scenario,
        profile.step_taus,
        n_trials=profile.n_trials,
        base_seed=base_seed + 1000,
        title="Figure 4 (right) — homogeneous, step delay-utility",
        x_label="tau",
        n_workers=n_workers,
        progress=progress,
        profile_dir=profile_dir,
        run_cache=run_cache,
        executor=executor,
    )
    return Figure4Result(power_panel=power_panel, step_panel=step_panel)


# ----------------------------------------------------------------------
# Figure 5 — conference trace
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Figure5Result:
    utility_over_time: TimeSeriesPanel
    actual_panel: SweepPanel
    synthesized_panel: SweepPanel

    def render(self) -> str:
        return "\n\n".join(
            (
                self.utility_over_time.render(),
                self.actual_panel.render(),
                self.synthesized_panel.render(),
            )
        )


def figure5(
    profile: Optional[EffortProfile] = None,
    *,
    time_panel_tau: float = 60.0,
    base_seed: int = 505,
    n_workers: Optional[int] = None,
    progress: Optional[ProgressLike] = None,
    profile_dir: Optional[PathLike] = None,
    run_cache: RunCacheLike = None,
    executor: "ExecutorLike" = None,
) -> Figure5Result:
    """Reproduce Figure 5 (conference trace, step delay-utility).

    The time panel uses a one-hour deadline so the diurnal alternation is
    visible; the sweeps use the profile's ``tau`` grid.
    """
    profile = profile or current_profile()
    if n_workers is None:
        n_workers = profile.n_workers

    def scenario_for(variant: str, tau: float) -> Scenario:
        scenario = conference_scenario(
            StepUtility(tau), variant=variant, record_interval=None
        )
        timeout = recommended_timeout(StepUtility(tau), 10 * tau)
        return replace(
            scenario,
            config=replace(
                scenario.config,
                request_timeout=timeout,
                window_length=60.0,
            ),
        )

    # Panel (a): hourly observed utility over the three days.
    time_scenario = scenario_for("actual", time_panel_tau)
    comparison = run_comparison(
        trace_factory=time_scenario.trace_factory,
        demand=time_scenario.demand,
        config=time_scenario.config,
        protocols=standard_protocols(time_scenario),
        n_trials=profile.n_trials,
        base_seed=base_seed,
        baseline="OPT",
        n_workers=n_workers,
        progress=progress,
        profile_dir=profile_dir,
        run_cache=run_cache,
        executor=executor,
    )
    reference = comparison.stats["QCR"].results[0]
    window_times = (
        np.arange(len(reference.window_gains)) + 0.5
    ) * reference.window_length
    time_panel = TimeSeriesPanel(
        title=(
            "Figure 5(a) — conference trace, hourly utility "
            f"(step tau={time_panel_tau:g} min)"
        ),
        times=window_times,
        series={
            name: np.stack(
                [r.window_gains for r in comparison.stats[name].results]
            ).mean(axis=0)
            / reference.window_length
            for name in comparison.stats
        },
    )

    actual_panel = _sweep(
        lambda tau: scenario_for("actual", tau),
        profile.step_taus,
        n_trials=profile.n_trials,
        base_seed=base_seed + 1000,
        title="Figure 5(b) — loss vs tau (actual trace)",
        x_label="tau",
        n_workers=n_workers,
        progress=progress,
        profile_dir=profile_dir,
        run_cache=run_cache,
        executor=executor,
    )
    synthesized_panel = _sweep(
        lambda tau: scenario_for("synthesized", tau),
        profile.step_taus,
        n_trials=profile.n_trials,
        base_seed=base_seed + 2000,
        title="Figure 5(c) — loss vs tau (synthesized memoryless trace)",
        x_label="tau",
        n_workers=n_workers,
        progress=progress,
        profile_dir=profile_dir,
        run_cache=run_cache,
        executor=executor,
    )
    return Figure5Result(
        utility_over_time=time_panel,
        actual_panel=actual_panel,
        synthesized_panel=synthesized_panel,
    )


# ----------------------------------------------------------------------
# Figure 6 — vehicular trace
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Figure6Result:
    power_panel: SweepPanel
    step_panel: SweepPanel
    exponential_panel: SweepPanel

    def render(self) -> str:
        return "\n\n".join(
            (
                self.power_panel.render(),
                self.step_panel.render(),
                self.exponential_panel.render(),
            )
        )


def figure6(
    profile: Optional[EffortProfile] = None,
    *,
    base_seed: int = 606,
    n_workers: Optional[int] = None,
    progress: Optional[ProgressLike] = None,
    profile_dir: Optional[PathLike] = None,
    run_cache: RunCacheLike = None,
    executor: "ExecutorLike" = None,
) -> Figure6Result:
    """Reproduce Figure 6 (vehicular trace, three utility families)."""
    profile = profile or current_profile()
    if n_workers is None:
        n_workers = profile.n_workers

    def scenario_for(utility: DelayUtility) -> Scenario:
        scenario = vehicular_scenario(utility, record_interval=None)
        timeout = recommended_timeout(utility, 14400.0)
        return replace(
            scenario,
            config=replace(scenario.config, request_timeout=timeout),
        )

    power_panel = _sweep(
        lambda alpha: scenario_for(power_family(alpha)),
        profile.power_alphas,
        n_trials=profile.n_trials,
        base_seed=base_seed,
        title="Figure 6(a) — vehicular, power delay-utility",
        x_label="alpha",
        n_workers=n_workers,
        progress=progress,
        profile_dir=profile_dir,
        run_cache=run_cache,
        executor=executor,
    )
    step_panel = _sweep(
        lambda tau: scenario_for(StepUtility(tau)),
        profile.step_taus,
        n_trials=profile.n_trials,
        base_seed=base_seed + 1000,
        title="Figure 6(b) — vehicular, step delay-utility",
        x_label="tau",
        n_workers=n_workers,
        progress=progress,
        profile_dir=profile_dir,
        run_cache=run_cache,
        executor=executor,
    )
    exponential_panel = _sweep(
        lambda nu: scenario_for(ExponentialUtility(nu)),
        profile.exp_nus,
        n_trials=profile.n_trials,
        base_seed=base_seed + 2000,
        title="Figure 6(c) — vehicular, exponential delay-utility",
        x_label="nu",
        n_workers=n_workers,
        progress=progress,
        profile_dir=profile_dir,
        run_cache=run_cache,
        executor=executor,
    )
    return Figure6Result(
        power_panel=power_panel,
        step_panel=step_panel,
        exponential_panel=exponential_panel,
    )
