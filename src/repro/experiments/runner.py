"""Multi-trial experiment runner.

The paper's plots average 15+ simulation trials and show 5%/95%
percentile intervals; every algorithm within a trial shares the same
contact trace and request arrivals (paired comparison).  This module
provides exactly that machinery, independent of which scenario or figure
is being reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..contacts import ContactTrace
from ..demand import DemandModel, RequestSchedule, generate_requests
from ..errors import ConfigurationError
from ..protocols.base import ReplicationProtocol
from ..sim import SimulationConfig, SimulationResult, simulate
from ..types import FloatArray

__all__ = [
    "TrialInputs",
    "AlgorithmStats",
    "ComparisonResult",
    "run_comparison",
    "percentile_interval",
]

#: A protocol factory: given the trial's trace and request schedule,
#: build a fresh protocol instance (heterogeneous OPT needs the trace).
ProtocolFactory = Callable[[ContactTrace, RequestSchedule], ReplicationProtocol]


@dataclass(frozen=True)
class TrialInputs:
    """The shared randomness of one trial."""

    trace: ContactTrace
    requests: RequestSchedule
    sim_seed: int


def percentile_interval(
    values: Sequence[float], lower: float = 5.0, upper: float = 95.0
) -> Tuple[float, float]:
    """The paper's 5%/95% confidence band over trial values."""
    arr = np.asarray(values, dtype=float)
    return float(np.percentile(arr, lower)), float(np.percentile(arr, upper))


@dataclass(frozen=True)
class AlgorithmStats:
    """Per-algorithm aggregate over trials."""

    name: str
    gain_rates: FloatArray
    results: Tuple[SimulationResult, ...]

    @property
    def mean_gain_rate(self) -> float:
        return float(self.gain_rates.mean())

    @property
    def interval(self) -> Tuple[float, float]:
        return percentile_interval(self.gain_rates)


@dataclass(frozen=True)
class ComparisonResult:
    """All algorithms' stats plus normalized losses vs. the baseline."""

    stats: Dict[str, AlgorithmStats]
    baseline: str

    def normalized_loss(self, name: str) -> float:
        """The paper's ``(U - U_opt) / |U_opt|`` in percent (<= 0 usually)."""
        reference = self.stats[self.baseline].mean_gain_rate
        if reference == 0:
            return float("nan")
        value = self.stats[name].mean_gain_rate
        return 100.0 * (value - reference) / abs(reference)

    def losses(self) -> Dict[str, float]:
        return {name: self.normalized_loss(name) for name in self.stats}

    def render(self, title: Optional[str] = None) -> str:
        """An aligned text table: mean gain rate, 5/95% band, loss."""
        from .reporting import render_table

        ranked = sorted(
            self.stats.values(),
            key=lambda s: s.mean_gain_rate,
            reverse=True,
        )
        rows = []
        for stats in ranked:
            lo, hi = stats.interval
            rows.append(
                [
                    stats.name,
                    f"{stats.mean_gain_rate:.4f}",
                    f"[{lo:.4f}, {hi:.4f}]",
                    f"{self.normalized_loss(stats.name):+.2f}%",
                ]
            )
        return render_table(
            ["algorithm", "utility/min", "5-95%", "vs " + self.baseline],
            rows,
            title=title,
        )


def run_comparison(
    *,
    trace_factory: Callable[[int], ContactTrace],
    demand: DemandModel,
    config: SimulationConfig,
    protocols: Dict[str, ProtocolFactory],
    n_trials: int,
    base_seed: int = 0,
    baseline: str = "OPT",
    n_clients: Optional[int] = None,
) -> ComparisonResult:
    """Run every protocol on *n_trials* shared trace/request realizations.

    Parameters
    ----------
    trace_factory:
        Maps a trial seed to a contact trace (synthetic generators close
        over their configuration here).
    protocols:
        Display name -> factory; the factory receives the trial's trace
        and requests so trace-dependent baselines (heterogeneous OPT) can
        be built per trial.
    baseline:
        The protocol whose mean gain rate anchors normalized losses.
    """
    if n_trials <= 0:
        raise ConfigurationError(f"n_trials must be > 0, got {n_trials}")
    if baseline not in protocols:
        raise ConfigurationError(
            f"baseline {baseline!r} missing from protocols {sorted(protocols)}"
        )
    collected: Dict[str, List[SimulationResult]] = {
        name: [] for name in protocols
    }
    seed_seq = np.random.SeedSequence(base_seed)
    for trial in range(n_trials):
        trace_seed, request_seed, sim_seed = (
            int(s.generate_state(1)[0])
            for s in seed_seq.spawn(3)
        )
        trace = trace_factory(trace_seed)
        clients = n_clients or trace.n_nodes
        requests = generate_requests(
            demand, clients, trace.duration, seed=request_seed
        )
        inputs = TrialInputs(trace, requests, sim_seed)
        for name, factory in protocols.items():
            protocol = factory(inputs.trace, inputs.requests)
            result = simulate(
                inputs.trace,
                inputs.requests,
                config,
                protocol,
                seed=inputs.sim_seed,
            )
            collected[name].append(result)
    stats = {
        name: AlgorithmStats(
            name=name,
            gain_rates=np.array([r.gain_rate for r in results]),
            results=tuple(results),
        )
        for name, results in collected.items()
    }
    return ComparisonResult(stats=stats, baseline=baseline)
