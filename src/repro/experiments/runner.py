"""Multi-trial experiment runner.

The paper's plots average 15+ simulation trials and show 5%/95%
percentile intervals; every algorithm within a trial shares the same
contact trace and request arrivals (paired comparison).  This module
provides exactly that machinery, independent of which scenario or figure
is being reproduced.

Robustness features (all opt-in, defaults preserve the original
behavior):

* *fault injection* — a :class:`~repro.faults.FaultSchedule` (or a
  per-trial factory) shared by every protocol in a trial, so paired
  comparisons stay paired under churn;
* *per-trial fault isolation* — ``on_error`` decides what a failing
  protocol factory or simulation does to the sweep: ``"raise"``
  (propagate, the historical behavior), ``"skip"`` (record the failure
  and keep going), or ``"retry"`` (re-attempt with capped exponential
  backoff, then skip);
* *partial results* — :class:`ComparisonResult` reports per-run
  :class:`TrialFailure` records alongside the statistics of whatever
  succeeded;
* *checkpoint/resume* — ``checkpoint_path`` persists every completed
  run to JSON (atomically, see :mod:`repro.experiments.checkpoint`), so
  an interrupted sweep resumes instead of restarting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..contacts import ContactTrace
from ..demand import DemandModel, RequestSchedule, generate_requests
from ..errors import ConfigurationError, SimulationError
from ..faults import FaultSchedule
from ..protocols.base import ReplicationProtocol
from ..sim import SimulationConfig, SimulationResult, simulate
from ..types import FloatArray
from .checkpoint import ComparisonCheckpoint, PathLike

__all__ = [
    "TrialInputs",
    "TrialFailure",
    "AlgorithmStats",
    "ComparisonResult",
    "run_comparison",
    "percentile_interval",
]

#: A protocol factory: given the trial's trace and request schedule,
#: build a fresh protocol instance (heterogeneous OPT needs the trace).
ProtocolFactory = Callable[[ContactTrace, RequestSchedule], ReplicationProtocol]

#: Faults for a sweep: one shared schedule, or a per-trial factory.
FaultsLike = Union[FaultSchedule, Callable[[int], FaultSchedule]]


@dataclass(frozen=True)
class TrialInputs:
    """The shared randomness of one trial."""

    trace: ContactTrace
    requests: RequestSchedule
    sim_seed: int


@dataclass(frozen=True)
class TrialFailure:
    """One ``(trial, protocol)`` run that failed after all attempts."""

    trial: int
    protocol: str
    error: str
    attempts: int


def percentile_interval(
    values: Sequence[float], lower: float = 5.0, upper: float = 95.0
) -> Tuple[float, float]:
    """The paper's 5%/95% confidence band over trial values."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ConfigurationError(
            "percentile_interval needs at least one value (every trial "
            "failed or was filtered out?)"
        )
    if np.isnan(arr).all():
        raise ConfigurationError(
            "percentile_interval got all-NaN values; upstream runs "
            "produced no finite gain rates"
        )
    return float(np.percentile(arr, lower)), float(np.percentile(arr, upper))


@dataclass(frozen=True)
class AlgorithmStats:
    """Per-algorithm aggregate over (successful) trials."""

    name: str
    gain_rates: FloatArray
    results: Tuple[SimulationResult, ...]

    def __post_init__(self) -> None:
        rates = np.asarray(self.gain_rates, dtype=float)
        if rates.size == 0:
            raise ConfigurationError(
                f"AlgorithmStats({self.name!r}) needs at least one trial "
                "result"
            )
        if np.isnan(rates).all():
            raise ConfigurationError(
                f"AlgorithmStats({self.name!r}) got all-NaN gain rates"
            )
        object.__setattr__(self, "gain_rates", rates)

    @property
    def n_trials(self) -> int:
        return len(self.gain_rates)

    @property
    def mean_gain_rate(self) -> float:
        return float(self.gain_rates.mean())

    @property
    def interval(self) -> Tuple[float, float]:
        return percentile_interval(self.gain_rates)


@dataclass(frozen=True)
class ComparisonResult:
    """All algorithms' stats plus normalized losses vs. the baseline.

    ``failures`` lists every ``(trial, protocol)`` run that did not
    complete (only possible with ``on_error="skip"``/``"retry"``);
    algorithms whose runs *all* failed are absent from ``stats``.
    """

    stats: Dict[str, AlgorithmStats]
    baseline: str
    failures: Tuple[TrialFailure, ...] = ()
    n_trials: int = 0

    @property
    def n_failures(self) -> int:
        return len(self.failures)

    def normalized_loss(self, name: str) -> float:
        """The paper's ``(U - U_opt) / |U_opt|`` in percent (<= 0 usually)."""
        if self.baseline not in self.stats or name not in self.stats:
            return float("nan")
        reference = self.stats[self.baseline].mean_gain_rate
        if reference == 0:
            return float("nan")
        value = self.stats[name].mean_gain_rate
        return 100.0 * (value - reference) / abs(reference)

    def losses(self) -> Dict[str, float]:
        return {name: self.normalized_loss(name) for name in self.stats}

    def render(self, title: Optional[str] = None) -> str:
        """An aligned text table: mean gain rate, 5/95% band, loss."""
        from .reporting import render_table

        ranked = sorted(
            self.stats.values(),
            key=lambda s: s.mean_gain_rate,
            reverse=True,
        )
        rows = []
        for stats in ranked:
            lo, hi = stats.interval
            rows.append(
                [
                    stats.name,
                    f"{stats.mean_gain_rate:.4f}",
                    f"[{lo:.4f}, {hi:.4f}]",
                    f"{self.normalized_loss(stats.name):+.2f}%",
                ]
            )
        table = render_table(
            ["algorithm", "utility/min", "5-95%", "vs " + self.baseline],
            rows,
            title=title,
        )
        if not self.failures:
            return table
        lines = [table, "", f"failed runs ({self.n_failures}):"]
        lines.extend(
            f"  trial {f.trial} {f.protocol}: {f.error} "
            f"({f.attempts} attempt{'s' if f.attempts != 1 else ''})"
            for f in self.failures
        )
        return "\n".join(lines)


def run_comparison(
    *,
    trace_factory: Callable[[int], ContactTrace],
    demand: DemandModel,
    config: SimulationConfig,
    protocols: Dict[str, ProtocolFactory],
    n_trials: int,
    base_seed: int = 0,
    baseline: str = "OPT",
    n_clients: Optional[int] = None,
    faults: Optional[FaultsLike] = None,
    on_error: str = "raise",
    max_retries: int = 2,
    retry_backoff: float = 0.1,
    max_backoff: float = 5.0,
    checkpoint_path: Optional[PathLike] = None,
) -> ComparisonResult:
    """Run every protocol on *n_trials* shared trace/request realizations.

    Parameters
    ----------
    trace_factory:
        Maps a trial seed to a contact trace (synthetic generators close
        over their configuration here).
    protocols:
        Display name -> factory; the factory receives the trial's trace
        and requests so trace-dependent baselines (heterogeneous OPT) can
        be built per trial.
    baseline:
        The protocol whose mean gain rate anchors normalized losses.
    faults:
        Optional fault injection: a :class:`~repro.faults.FaultSchedule`
        applied to every trial, or a callable ``trial -> FaultSchedule``
        for per-trial variation.  Every protocol within a trial sees the
        same faults (the comparison stays paired).
    on_error:
        ``"raise"`` propagates the first failure (historical behavior);
        ``"skip"`` records it and continues; ``"retry"`` re-attempts up
        to *max_retries* times with exponential backoff (*retry_backoff*
        doubling per attempt, capped at *max_backoff* seconds), then
        records the failure and continues.
    checkpoint_path:
        When given, every completed run is persisted there as JSON and
        already-completed runs are loaded instead of re-simulated, so an
        interrupted sweep resumes with identical statistics.
    """
    if n_trials <= 0:
        raise ConfigurationError(f"n_trials must be > 0, got {n_trials}")
    if baseline not in protocols:
        raise ConfigurationError(
            f"baseline {baseline!r} missing from protocols {sorted(protocols)}"
        )
    if on_error not in ("raise", "skip", "retry"):
        raise ConfigurationError(
            f"on_error must be 'raise', 'skip', or 'retry', got {on_error!r}"
        )
    if max_retries < 0:
        raise ConfigurationError(f"max_retries must be >= 0, got {max_retries}")
    if retry_backoff < 0 or max_backoff < 0:
        raise ConfigurationError("backoff delays must be >= 0")

    checkpoint = (
        ComparisonCheckpoint.open(
            checkpoint_path,
            base_seed=base_seed,
            n_trials=n_trials,
            protocols=list(protocols),
        )
        if checkpoint_path is not None
        else None
    )
    attempts_per_run = 1 + (max_retries if on_error == "retry" else 0)
    collected: Dict[str, List[SimulationResult]] = {
        name: [] for name in protocols
    }
    failures: List[TrialFailure] = []
    seed_seq = np.random.SeedSequence(base_seed)
    for trial in range(n_trials):
        # Seeds are drawn unconditionally so resumed and fresh sweeps
        # walk the identical seed stream.
        trace_seed, request_seed, sim_seed = (
            int(s.generate_state(1)[0])
            for s in seed_seq.spawn(3)
        )
        pending = [
            name
            for name in protocols
            if checkpoint is None or not checkpoint.has(trial, name)
        ]
        if checkpoint is not None:
            for name in protocols:
                if checkpoint.has(trial, name):
                    collected[name].append(checkpoint.get(trial, name))
        if not pending:
            continue
        trace = trace_factory(trace_seed)
        clients = n_clients or trace.n_nodes
        requests = generate_requests(
            demand, clients, trace.duration, seed=request_seed
        )
        inputs = TrialInputs(trace, requests, sim_seed)
        trial_faults = faults(trial) if callable(faults) else faults
        for name in pending:
            factory = protocols[name]
            result: Optional[SimulationResult] = None
            last_error: Optional[BaseException] = None
            for attempt in range(attempts_per_run):
                if attempt:
                    delay = min(
                        retry_backoff * (2.0 ** (attempt - 1)), max_backoff
                    )
                    if delay > 0:
                        time.sleep(delay)
                try:
                    protocol = factory(inputs.trace, inputs.requests)
                    result = simulate(
                        inputs.trace,
                        inputs.requests,
                        config,
                        protocol,
                        seed=inputs.sim_seed,
                        faults=trial_faults,
                    )
                    break
                except Exception as error:
                    if on_error == "raise":
                        raise
                    last_error = error
            if result is None:
                failures.append(
                    TrialFailure(
                        trial=trial,
                        protocol=name,
                        error=f"{type(last_error).__name__}: {last_error}",
                        attempts=attempts_per_run,
                    )
                )
                continue
            collected[name].append(result)
            if checkpoint is not None:
                checkpoint.record(trial, name, result)
    if not any(collected.values()):
        raise SimulationError(
            f"every run failed across {n_trials} trial(s); "
            f"first failure: {failures[0].protocol}: {failures[0].error}"
        )
    stats = {
        name: AlgorithmStats(
            name=name,
            gain_rates=np.array([r.gain_rate for r in results]),
            results=tuple(results),
        )
        for name, results in collected.items()
        if results
    }
    return ComparisonResult(
        stats=stats,
        baseline=baseline,
        failures=tuple(failures),
        n_trials=n_trials,
    )
