"""Multi-trial experiment runner.

The paper's plots average 15+ simulation trials and show 5%/95%
percentile intervals; every algorithm within a trial shares the same
contact trace and request arrivals (paired comparison).  This module
provides exactly that machinery, independent of which scenario or figure
is being reproduced.

Robustness features (all opt-in, defaults preserve the original
behavior):

* *fault injection* — a :class:`~repro.faults.FaultSchedule` (or a
  per-trial factory) shared by every protocol in a trial, so paired
  comparisons stay paired under churn;
* *per-trial fault isolation* — ``on_error`` decides what a failing
  protocol factory or simulation does to the sweep: ``"raise"``
  (propagate, the historical behavior), ``"skip"`` (record the failure
  and keep going), or ``"retry"`` (re-attempt with capped exponential
  backoff, then skip);
* *partial results* — :class:`ComparisonResult` reports per-run
  :class:`TrialFailure` records alongside the statistics of whatever
  succeeded;
* *checkpoint/resume* — ``checkpoint_path`` persists every completed
  run to JSON (atomically, see :mod:`repro.experiments.checkpoint`), so
  an interrupted sweep resumes instead of restarting;
* *parallel execution* — ``n_workers`` fans the ``(trial, protocol)``
  work units out over a process pool.  Per-run seeds are derived from
  the same :class:`numpy.random.SeedSequence` walk as the serial path,
  so parallel results are **bit-identical** to serial ones; workers
  return completed runs and the parent process owns the checkpoint
  file, so checkpoint/resume and the ``on_error`` policies compose
  unchanged.
"""

from __future__ import annotations

import multiprocessing
import time
import warnings
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..contacts import ContactTrace
from ..demand import DemandModel, RequestSchedule, generate_requests
from ..errors import ConfigurationError, SimulationError
from ..faults import FaultSchedule
from ..protocols.base import ReplicationProtocol
from ..sim import SimulationConfig, SimulationResult, simulate
from ..types import FloatArray
from .checkpoint import ComparisonCheckpoint, PathLike

__all__ = [
    "TrialInputs",
    "TrialFailure",
    "AlgorithmStats",
    "ComparisonResult",
    "run_comparison",
    "percentile_interval",
]

#: A protocol factory: given the trial's trace and request schedule,
#: build a fresh protocol instance (heterogeneous OPT needs the trace).
ProtocolFactory = Callable[[ContactTrace, RequestSchedule], ReplicationProtocol]

#: Faults for a sweep: one shared schedule, or a per-trial factory.
FaultsLike = Union[FaultSchedule, Callable[[int], FaultSchedule]]


@dataclass(frozen=True)
class TrialInputs:
    """The shared randomness of one trial."""

    trace: ContactTrace
    requests: RequestSchedule
    sim_seed: int


@dataclass(frozen=True)
class TrialFailure:
    """One ``(trial, protocol)`` run that failed after all attempts."""

    trial: int
    protocol: str
    error: str
    attempts: int


def percentile_interval(
    values: Sequence[float], lower: float = 5.0, upper: float = 95.0
) -> Tuple[float, float]:
    """The paper's 5%/95% confidence band over trial values."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ConfigurationError(
            "percentile_interval needs at least one value (every trial "
            "failed or was filtered out?)"
        )
    if np.isnan(arr).all():
        raise ConfigurationError(
            "percentile_interval got all-NaN values; upstream runs "
            "produced no finite gain rates"
        )
    return float(np.percentile(arr, lower)), float(np.percentile(arr, upper))


@dataclass(frozen=True)
class AlgorithmStats:
    """Per-algorithm aggregate over (successful) trials."""

    name: str
    gain_rates: FloatArray
    results: Tuple[SimulationResult, ...]

    def __post_init__(self) -> None:
        rates = np.asarray(self.gain_rates, dtype=float)
        if rates.size == 0:
            raise ConfigurationError(
                f"AlgorithmStats({self.name!r}) needs at least one trial "
                "result"
            )
        if np.isnan(rates).all():
            raise ConfigurationError(
                f"AlgorithmStats({self.name!r}) got all-NaN gain rates"
            )
        object.__setattr__(self, "gain_rates", rates)

    @property
    def n_trials(self) -> int:
        return len(self.gain_rates)

    @property
    def mean_gain_rate(self) -> float:
        return float(self.gain_rates.mean())

    @property
    def interval(self) -> Tuple[float, float]:
        return percentile_interval(self.gain_rates)


@dataclass(frozen=True)
class ComparisonResult:
    """All algorithms' stats plus normalized losses vs. the baseline.

    ``failures`` lists every ``(trial, protocol)`` run that did not
    complete (only possible with ``on_error="skip"``/``"retry"``);
    algorithms whose runs *all* failed are absent from ``stats``.
    """

    stats: Dict[str, AlgorithmStats]
    baseline: str
    failures: Tuple[TrialFailure, ...] = ()
    n_trials: int = 0

    @property
    def n_failures(self) -> int:
        return len(self.failures)

    def normalized_loss(self, name: str) -> float:
        """The paper's ``(U - U_opt) / |U_opt|`` in percent (<= 0 usually)."""
        if self.baseline not in self.stats or name not in self.stats:
            return float("nan")
        reference = self.stats[self.baseline].mean_gain_rate
        if reference == 0:
            return float("nan")
        value = self.stats[name].mean_gain_rate
        return 100.0 * (value - reference) / abs(reference)

    def losses(self) -> Dict[str, float]:
        return {name: self.normalized_loss(name) for name in self.stats}

    def render(self, title: Optional[str] = None) -> str:
        """An aligned text table: mean gain rate, 5/95% band, loss."""
        from .reporting import render_table

        ranked = sorted(
            self.stats.values(),
            key=lambda s: s.mean_gain_rate,
            reverse=True,
        )
        rows = []
        for stats in ranked:
            lo, hi = stats.interval
            rows.append(
                [
                    stats.name,
                    f"{stats.mean_gain_rate:.4f}",
                    f"[{lo:.4f}, {hi:.4f}]",
                    f"{self.normalized_loss(stats.name):+.2f}%",
                ]
            )
        table = render_table(
            ["algorithm", "utility/min", "5-95%", "vs " + self.baseline],
            rows,
            title=title,
        )
        if not self.failures:
            return table
        lines = [table, "", f"failed runs ({self.n_failures}):"]
        lines.extend(
            f"  trial {f.trial} {f.protocol}: {f.error} "
            f"({f.attempts} attempt{'s' if f.attempts != 1 else ''})"
            for f in self.failures
        )
        return "\n".join(lines)


def _derive_trial_seeds(
    base_seed: int, n_trials: int
) -> List[Tuple[int, int, int]]:
    """The per-trial (trace, request, sim) seed triples.

    Seeds are drawn unconditionally for every trial — and identically in
    the serial, parallel, and resumed paths — so all of them walk the
    exact same :class:`numpy.random.SeedSequence` child stream.
    """
    seed_seq = np.random.SeedSequence(base_seed)
    return [
        tuple(int(s.generate_state(1)[0]) for s in seed_seq.spawn(3))
        for _ in range(n_trials)
    ]


def _build_trial_inputs(
    trace_factory: Callable[[int], ContactTrace],
    demand: DemandModel,
    n_clients: Optional[int],
    seeds: Tuple[int, int, int],
) -> TrialInputs:
    """Realize one trial's shared trace and request schedule."""
    trace_seed, request_seed, sim_seed = seeds
    trace = trace_factory(trace_seed)
    clients = n_clients or trace.n_nodes
    requests = generate_requests(
        demand, clients, trace.duration, seed=request_seed
    )
    return TrialInputs(trace, requests, sim_seed)


def _execute_run(
    factory: ProtocolFactory,
    inputs: TrialInputs,
    config: SimulationConfig,
    trial_faults: Optional[FaultSchedule],
    *,
    attempts_per_run: int,
    on_error: str,
    retry_backoff: float,
    max_backoff: float,
) -> Tuple[Optional[SimulationResult], Optional[str]]:
    """One (trial, protocol) run with the retry/skip policy applied.

    Returns ``(result, None)`` on success and ``(None, error string)``
    after all attempts failed; with ``on_error="raise"`` the first
    failure propagates (identical in workers and in the serial loop).
    """
    result: Optional[SimulationResult] = None
    last_error: Optional[BaseException] = None
    for attempt in range(attempts_per_run):
        if attempt:
            delay = min(retry_backoff * (2.0 ** (attempt - 1)), max_backoff)
            if delay > 0:
                time.sleep(delay)
        try:
            protocol = factory(inputs.trace, inputs.requests)
            result = simulate(
                inputs.trace,
                inputs.requests,
                config,
                protocol,
                seed=inputs.sim_seed,
                faults=trial_faults,
            )
            break
        except Exception as error:
            if on_error == "raise":
                raise
            last_error = error
    if result is not None:
        return result, None
    return None, f"{type(last_error).__name__}: {last_error}"


#: Fork-inherited state for pooled workers.  Set by ``run_comparison``
#: immediately before the pool is created and cleared afterwards; the
#: forked children inherit it by memory copy, so the trace factories and
#: protocol factories (typically closures) never need to be pickled.
_WORKER_CONTEXT: Optional[Dict[str, Any]] = None

#: One (trial, protocol, trace seed, request seed, sim seed) work unit.
_WorkUnit = Tuple[int, str, int, int, int]


def _pool_run(
    unit: _WorkUnit,
) -> Tuple[int, str, Optional[SimulationResult], Optional[str]]:
    """Execute one work unit inside a pooled worker process."""
    context = _WORKER_CONTEXT
    if context is None:  # pragma: no cover - defensive
        raise SimulationError(
            "worker context missing; the pool must be created with the "
            "fork start method by run_comparison"
        )
    trial, name, trace_seed, request_seed, sim_seed = unit
    inputs_by_trial: Dict[int, TrialInputs] = context["inputs_by_trial"]
    inputs = inputs_by_trial.get(trial)
    if inputs is None:
        # First unit of this trial in this worker: realize the shared
        # randomness once and reuse it for the trial's other protocols.
        inputs = _build_trial_inputs(
            context["trace_factory"],
            context["demand"],
            context["n_clients"],
            (trace_seed, request_seed, sim_seed),
        )
        inputs_by_trial[trial] = inputs
    faults = context["faults"]
    trial_faults = faults(trial) if callable(faults) else faults
    result, error = _execute_run(
        context["protocols"][name],
        inputs,
        context["config"],
        trial_faults,
        attempts_per_run=context["attempts_per_run"],
        on_error=context["on_error"],
        retry_backoff=context["retry_backoff"],
        max_backoff=context["max_backoff"],
    )
    return trial, name, result, error


def _run_units_parallel(
    units: List[_WorkUnit],
    results_map: Dict[Tuple[int, str], SimulationResult],
    failures_map: Dict[Tuple[int, str], "TrialFailure"],
    checkpoint: Optional[ComparisonCheckpoint],
    *,
    n_workers: int,
    trace_factory: Callable[[int], ContactTrace],
    demand: DemandModel,
    config: SimulationConfig,
    protocols: Dict[str, ProtocolFactory],
    n_clients: Optional[int],
    faults: Optional[FaultsLike],
    on_error: str,
    attempts_per_run: int,
    retry_backoff: float,
    max_backoff: float,
) -> None:
    """Fan *units* out over a fork pool; the parent owns the checkpoint.

    Workers inherit the factories through fork (no pickling of
    closures); only the small work-unit tuples and the completed
    :class:`~repro.sim.metrics.SimulationResult` objects cross the
    process boundary.  Completed runs are checkpointed by the parent as
    they arrive, so an interrupted parallel sweep resumes exactly like a
    serial one.
    """
    global _WORKER_CONTEXT
    context = {
        "trace_factory": trace_factory,
        "demand": demand,
        "config": config,
        "protocols": protocols,
        "n_clients": n_clients,
        "faults": faults,
        "on_error": on_error,
        "attempts_per_run": attempts_per_run,
        "retry_backoff": retry_backoff,
        "max_backoff": max_backoff,
        "inputs_by_trial": {},
    }
    mp_context = multiprocessing.get_context("fork")
    _WORKER_CONTEXT = context
    try:
        with ProcessPoolExecutor(
            max_workers=min(n_workers, len(units)), mp_context=mp_context
        ) as pool:
            futures = {pool.submit(_pool_run, unit): unit for unit in units}
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_EXCEPTION)
                for future in done:
                    # Worker exceptions only escape _execute_run under
                    # on_error="raise"; propagate the first one observed
                    # and drop the rest of the sweep, like the serial
                    # path aborting mid-walk.
                    try:
                        trial, name, result, error = future.result()
                    except BaseException:
                        for pending in remaining:
                            pending.cancel()
                        raise
                    if result is None:
                        failures_map[(trial, name)] = TrialFailure(
                            trial=trial,
                            protocol=name,
                            error=error or "unknown error",
                            attempts=attempts_per_run,
                        )
                        continue
                    results_map[(trial, name)] = result
                    if checkpoint is not None:
                        checkpoint.record(trial, name, result)
    finally:
        _WORKER_CONTEXT = None


def run_comparison(
    *,
    trace_factory: Callable[[int], ContactTrace],
    demand: DemandModel,
    config: SimulationConfig,
    protocols: Dict[str, ProtocolFactory],
    n_trials: int,
    base_seed: int = 0,
    baseline: str = "OPT",
    n_clients: Optional[int] = None,
    faults: Optional[FaultsLike] = None,
    on_error: str = "raise",
    max_retries: int = 2,
    retry_backoff: float = 0.1,
    max_backoff: float = 5.0,
    checkpoint_path: Optional[PathLike] = None,
    n_workers: Optional[int] = None,
) -> ComparisonResult:
    """Run every protocol on *n_trials* shared trace/request realizations.

    Parameters
    ----------
    trace_factory:
        Maps a trial seed to a contact trace (synthetic generators close
        over their configuration here).
    protocols:
        Display name -> factory; the factory receives the trial's trace
        and requests so trace-dependent baselines (heterogeneous OPT) can
        be built per trial.
    baseline:
        The protocol whose mean gain rate anchors normalized losses.
    faults:
        Optional fault injection: a :class:`~repro.faults.FaultSchedule`
        applied to every trial, or a callable ``trial -> FaultSchedule``
        for per-trial variation.  Every protocol within a trial sees the
        same faults (the comparison stays paired).
    on_error:
        ``"raise"`` propagates the first failure (historical behavior);
        ``"skip"`` records it and continues; ``"retry"`` re-attempts up
        to *max_retries* times with exponential backoff (*retry_backoff*
        doubling per attempt, capped at *max_backoff* seconds), then
        records the failure and continues.
    checkpoint_path:
        When given, every completed run is persisted there as JSON and
        already-completed runs are loaded instead of re-simulated, so an
        interrupted sweep resumes with identical statistics.
    n_workers:
        ``None``/``1`` runs serially (the historical behavior).  With
        ``k > 1`` the pending ``(trial, protocol)`` runs execute on a
        ``k``-process pool (fork start method); per-run seeds come from
        the identical seed walk, so the resulting statistics are
        bit-identical to a serial sweep.  Requires a platform with the
        ``fork`` start method (falls back to serial with a warning
        otherwise).  With ``on_error="raise"`` the first observed worker
        failure propagates, which — unlike the serial path — is not
        necessarily the earliest failing trial.
    """
    if n_trials <= 0:
        raise ConfigurationError(f"n_trials must be > 0, got {n_trials}")
    if baseline not in protocols:
        raise ConfigurationError(
            f"baseline {baseline!r} missing from protocols {sorted(protocols)}"
        )
    if on_error not in ("raise", "skip", "retry"):
        raise ConfigurationError(
            f"on_error must be 'raise', 'skip', or 'retry', got {on_error!r}"
        )
    if max_retries < 0:
        raise ConfigurationError(f"max_retries must be >= 0, got {max_retries}")
    if retry_backoff < 0 or max_backoff < 0:
        raise ConfigurationError("backoff delays must be >= 0")
    if n_workers is not None and n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")

    checkpoint = (
        ComparisonCheckpoint.open(
            checkpoint_path,
            base_seed=base_seed,
            n_trials=n_trials,
            protocols=list(protocols),
        )
        if checkpoint_path is not None
        else None
    )
    attempts_per_run = 1 + (max_retries if on_error == "retry" else 0)
    trial_seeds = _derive_trial_seeds(base_seed, n_trials)

    parallel = n_workers is not None and n_workers > 1
    if parallel and "fork" not in multiprocessing.get_all_start_methods():
        warnings.warn(
            "n_workers > 1 needs the 'fork' start method; running serially",
            RuntimeWarning,
            stacklevel=2,
        )
        parallel = False

    #: (trial, protocol) -> completed result / failure, assembled into
    #: trial-major order at the end (identical to the serial walk).
    results_map: Dict[Tuple[int, str], SimulationResult] = {}
    failures_map: Dict[Tuple[int, str], TrialFailure] = {}
    if checkpoint is not None:
        for trial in range(n_trials):
            for name in protocols:
                if checkpoint.has(trial, name):
                    results_map[(trial, name)] = checkpoint.get(trial, name)
    pending_units: List[_WorkUnit] = [
        (trial, name, *trial_seeds[trial])
        for trial in range(n_trials)
        for name in protocols
        if (trial, name) not in results_map
    ]

    if parallel and pending_units:
        _run_units_parallel(
            pending_units,
            results_map,
            failures_map,
            checkpoint,
            n_workers=n_workers,  # type: ignore[arg-type]
            trace_factory=trace_factory,
            demand=demand,
            config=config,
            protocols=protocols,
            n_clients=n_clients,
            faults=faults,
            on_error=on_error,
            attempts_per_run=attempts_per_run,
            retry_backoff=retry_backoff,
            max_backoff=max_backoff,
        )
    else:
        inputs: Optional[TrialInputs] = None
        current_trial = -1
        for unit in pending_units:
            trial, name = unit[0], unit[1]
            if trial != current_trial:
                inputs = _build_trial_inputs(
                    trace_factory, demand, n_clients, unit[2:]
                )
                current_trial = trial
            assert inputs is not None
            trial_faults = faults(trial) if callable(faults) else faults
            result, error = _execute_run(
                protocols[name],
                inputs,
                config,
                trial_faults,
                attempts_per_run=attempts_per_run,
                on_error=on_error,
                retry_backoff=retry_backoff,
                max_backoff=max_backoff,
            )
            if result is None:
                failures_map[(trial, name)] = TrialFailure(
                    trial=trial,
                    protocol=name,
                    error=error or "unknown error",
                    attempts=attempts_per_run,
                )
                continue
            results_map[(trial, name)] = result
            if checkpoint is not None:
                checkpoint.record(trial, name, result)

    collected: Dict[str, List[SimulationResult]] = {
        name: [] for name in protocols
    }
    failures: List[TrialFailure] = []
    for trial in range(n_trials):
        for name in protocols:
            key = (trial, name)
            if key in results_map:
                collected[name].append(results_map[key])
            elif key in failures_map:
                failures.append(failures_map[key])
    if not any(collected.values()):
        raise SimulationError(
            f"every run failed across {n_trials} trial(s); "
            f"first failure: {failures[0].protocol}: {failures[0].error}"
        )
    stats = {
        name: AlgorithmStats(
            name=name,
            gain_rates=np.array([r.gain_rate for r in results]),
            results=tuple(results),
        )
        for name, results in collected.items()
        if results
    }
    return ComparisonResult(
        stats=stats,
        baseline=baseline,
        failures=tuple(failures),
        n_trials=n_trials,
    )
