"""Multi-trial experiment runner.

The paper's plots average 15+ simulation trials and show 5%/95%
percentile intervals; every algorithm within a trial shares the same
contact trace and request arrivals (paired comparison).  This module
provides exactly that machinery, independent of which scenario or figure
is being reproduced.

Robustness features (all opt-in, defaults preserve the original
behavior):

* *fault injection* — a :class:`~repro.faults.FaultSchedule` (or a
  per-trial factory) shared by every protocol in a trial, so paired
  comparisons stay paired under churn;
* *per-trial fault isolation* — ``on_error`` decides what a failing
  protocol factory or simulation does to the sweep: ``"raise"``
  (propagate, the historical behavior), ``"skip"`` (record the failure
  and keep going), or ``"retry"`` (re-attempt with capped exponential
  backoff, then skip);
* *partial results* — :class:`ComparisonResult` reports per-run
  :class:`TrialFailure` records alongside the statistics of whatever
  succeeded;
* *checkpoint/resume* — ``checkpoint_path`` persists every completed
  run to JSON (atomically, see :mod:`repro.experiments.checkpoint`), so
  an interrupted sweep resumes instead of restarting;
* *parallel execution* — ``n_workers`` fans the ``(trial, protocol)``
  work units out over a process pool.  Per-run seeds are derived from
  the same :class:`numpy.random.SeedSequence` walk as the serial path,
  so parallel results are **bit-identical** to serial ones; workers
  return completed runs and the parent process owns the checkpoint
  file, so checkpoint/resume and the ``on_error`` policies compose
  unchanged;
* *telemetry* — every run yields a :class:`RunTelemetry` record (stage
  timings, attempts, outcome, executing worker) merged into
  ``ComparisonResult.telemetry`` in deterministic trial-major order
  regardless of worker completion order; ``progress`` enables a live
  reporter (structured log lines or a user callback) and
  ``profile_dir`` dumps per-worker cProfile stats;
* *pluggable executors* — ``executor`` selects the backend that runs
  the pending units (see :mod:`repro.dist`): the in-process serial
  walk, the fork pool, or the fault-tolerant work-queue backend whose
  independent workers coordinate through leases on a (possibly shared)
  filesystem and survive SIGKILL at any instruction.  All backends
  produce bit-identical statistics.
"""

from __future__ import annotations

import cProfile
import dataclasses
import multiprocessing
import os
import time
import warnings
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..contacts import ContactTrace
from ..contacts.binary import is_binary_trace
from ..demand import DemandModel, RequestSchedule, generate_requests
from ..durable import truncate_error_text
from ..errors import ConfigurationError, SimulationError
from ..faults import FaultSchedule
from ..obs.log import get_logger
from ..obs import metrics as obs_metrics
from ..obs.manifest import environment_provenance
from ..obs.timing import Stopwatch
from ..protocols.base import ReplicationProtocol
from ..sim import SimulationConfig, SimulationResult, simulate
from ..simcache import (
    SimulationRunCache,
    UncacheableRunError,
    fingerprint_trace,
    resolve_run_cache,
    run_key,
)
from ..types import FloatArray
from .artifacts import TrialArtifacts, load_spilled_trace, spill_trial_trace
from .checkpoint import ComparisonCheckpoint, PathLike

if TYPE_CHECKING:  # pragma: no cover - typing-only (dist imports us lazily)
    from ..dist.executors import ExecutorLike, SweepSpec

__all__ = [
    "TrialInputs",
    "TrialFailure",
    "AlgorithmStats",
    "ComparisonResult",
    "RunTelemetry",
    "run_comparison",
    "percentile_interval",
]

#: A protocol factory: given the trial's trace and request schedule,
#: build a fresh protocol instance (heterogeneous OPT needs the trace).
ProtocolFactory = Callable[[ContactTrace, RequestSchedule], ReplicationProtocol]

#: Faults for a sweep: one shared schedule, or a per-trial factory.
FaultsLike = Union[FaultSchedule, Callable[[int], FaultSchedule]]

#: Live progress: ``True`` logs through ``repro.obs.log``; a callable
#: receives one dict per completed run (completion order).
ProgressLike = Union[bool, Callable[[Dict[str, Any]], None]]

#: Run-cache selector: ``None`` defers to ``REPRO_SIM_CACHE``, a bool
#: forces it on/off, a path or cache instance enables it at that root.
RunCacheLike = Union[None, bool, str, "os.PathLike[str]", SimulationRunCache]

#: Cache disposition markers carried in the ``_execute_run`` timing dict
#: (floats, since the dict is ``Dict[str, float]``): hit / miss /
#: inputs-not-fingerprintable.
_CACHE_HIT, _CACHE_MISS, _CACHE_UNCACHEABLE = 1.0, 0.0, -1.0


@dataclass(frozen=True)
class RunTelemetry:
    """Stage timings and outcome of one ``(trial, protocol)`` run.

    ``setup_wall_s`` is the trial-input realization cost *paid by this
    run* — the first run of a trial in a given process carries it, later
    runs reuse the cached inputs and report 0.  ``status`` is ``"ok"``,
    ``"failed"`` (all attempts exhausted), or ``"cached"`` (restored
    from a checkpoint, so no timing was observed).

    Timings are host measurements and vary run to run; only the
    *ordering* of telemetry in :attr:`ComparisonResult.telemetry` is
    deterministic (trial-major, protocol in insertion order — the same
    walk that assembles the statistics, independent of worker
    completion order).
    """

    trial: int
    protocol: str
    status: str
    wall_s: float = 0.0
    cpu_s: float = 0.0
    setup_wall_s: float = 0.0
    attempts: int = 0
    gain_rate: Optional[float] = None
    #: Which worker executed the run — ``None`` for in-process execution,
    #: a work-queue worker id (``"w0"``, …) under the distributed backend.
    worker: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


class _ProgressReporter:
    """Live per-run reporting for a sweep.

    Fires in completion order (what "live" means under a pool); the
    deterministic record is ``ComparisonResult.telemetry``.  With
    ``progress=True`` lines go through the structured logger; a callable
    gets one dict per run with running counts and elapsed time.
    """

    def __init__(self, total: int, progress: ProgressLike) -> None:
        self.total = total
        self.done = 0
        self._callback = progress if callable(progress) else None
        self._logger = (
            get_logger("repro.experiments.sweep")
            if self._callback is None
            else None
        )
        self._timer = Stopwatch()

    def report(self, telemetry: RunTelemetry) -> None:
        self.done += 1
        if self._callback is not None:
            event = {
                "completed": self.done,
                "total": self.total,
                "elapsed_s": self._timer.wall,
            }
            event.update(telemetry.to_dict())
            self._callback(event)
        elif self._logger is not None:
            self._logger.info(
                "run finished",
                run=f"{self.done}/{self.total}",
                trial=telemetry.trial,
                protocol=telemetry.protocol,
                status=telemetry.status,
                wall_s=f"{telemetry.wall_s:.3f}",
                elapsed_s=f"{self._timer.wall:.1f}",
            )

    def finish(self, n_failures: int) -> None:
        if self._logger is not None:
            self._logger.info(
                "sweep complete",
                runs=self.total,
                failures=n_failures,
                elapsed_s=f"{self._timer.wall:.1f}",
            )


@dataclass(frozen=True)
class TrialInputs:
    """The shared randomness of one trial."""

    trace: ContactTrace
    requests: RequestSchedule
    sim_seed: int


@dataclass(frozen=True)
class TrialFailure:
    """One ``(trial, protocol)`` run that failed after all attempts."""

    trial: int
    protocol: str
    error: str
    attempts: int


def percentile_interval(
    values: Sequence[float], lower: float = 5.0, upper: float = 95.0
) -> Tuple[float, float]:
    """The paper's 5%/95% confidence band over trial values."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ConfigurationError(
            "percentile_interval needs at least one value (every trial "
            "failed or was filtered out?)"
        )
    if np.isnan(arr).all():
        raise ConfigurationError(
            "percentile_interval got all-NaN values; upstream runs "
            "produced no finite gain rates"
        )
    return float(np.percentile(arr, lower)), float(np.percentile(arr, upper))


@dataclass(frozen=True)
class AlgorithmStats:
    """Per-algorithm aggregate over (successful) trials."""

    name: str
    gain_rates: FloatArray
    results: Tuple[SimulationResult, ...]

    def __post_init__(self) -> None:
        rates = np.asarray(self.gain_rates, dtype=float)
        if rates.size == 0:
            raise ConfigurationError(
                f"AlgorithmStats({self.name!r}) needs at least one trial "
                "result"
            )
        if np.isnan(rates).all():
            raise ConfigurationError(
                f"AlgorithmStats({self.name!r}) got all-NaN gain rates"
            )
        object.__setattr__(self, "gain_rates", rates)

    @property
    def n_trials(self) -> int:
        return len(self.gain_rates)

    @property
    def mean_gain_rate(self) -> float:
        return float(self.gain_rates.mean())

    @property
    def interval(self) -> Tuple[float, float]:
        return percentile_interval(self.gain_rates)


@dataclass(frozen=True)
class ComparisonResult:
    """All algorithms' stats plus normalized losses vs. the baseline.

    ``failures`` lists every ``(trial, protocol)`` run that did not
    complete (only possible with ``on_error="skip"``/``"retry"``);
    algorithms whose runs *all* failed are absent from ``stats``.
    """

    stats: Dict[str, AlgorithmStats]
    baseline: str
    failures: Tuple[TrialFailure, ...] = ()
    n_trials: int = 0
    #: One record per ``(trial, protocol)`` run, trial-major order (the
    #: same deterministic walk as the statistics, regardless of worker
    #: completion order).  Values are host timings — metadata only.
    telemetry: Tuple[RunTelemetry, ...] = ()
    #: Sweep-level provenance (config fingerprint, seed walk identity,
    #: environment, total timings); also persisted into the checkpoint
    #: file when one is in use.
    manifest: Optional[Dict[str, Any]] = None

    @property
    def n_failures(self) -> int:
        return len(self.failures)

    def normalized_loss(self, name: str) -> float:
        """The paper's ``(U - U_opt) / |U_opt|`` in percent (<= 0 usually)."""
        if self.baseline not in self.stats or name not in self.stats:
            return float("nan")
        reference = self.stats[self.baseline].mean_gain_rate
        if reference == 0:
            return float("nan")
        value = self.stats[name].mean_gain_rate
        return 100.0 * (value - reference) / abs(reference)

    def losses(self) -> Dict[str, float]:
        return {name: self.normalized_loss(name) for name in self.stats}

    def render(self, title: Optional[str] = None) -> str:
        """An aligned text table: mean gain rate, 5/95% band, loss."""
        from .reporting import render_table

        ranked = sorted(
            self.stats.values(),
            key=lambda s: s.mean_gain_rate,
            reverse=True,
        )
        rows = []
        for stats in ranked:
            lo, hi = stats.interval
            rows.append(
                [
                    stats.name,
                    f"{stats.mean_gain_rate:.4f}",
                    f"[{lo:.4f}, {hi:.4f}]",
                    f"{self.normalized_loss(stats.name):+.2f}%",
                ]
            )
        table = render_table(
            ["algorithm", "utility/min", "5-95%", "vs " + self.baseline],
            rows,
            title=title,
        )
        if not self.failures:
            return table
        lines = [table, "", f"failed runs ({self.n_failures}):"]
        lines.extend(
            f"  trial {f.trial} {f.protocol}: {f.error} "
            f"({f.attempts} attempt{'s' if f.attempts != 1 else ''})"
            for f in self.failures
        )
        return "\n".join(lines)


def _derive_trial_seeds(
    base_seed: int, n_trials: int
) -> List[Tuple[int, int, int]]:
    """The per-trial (trace, request, sim) seed triples.

    Seeds are drawn unconditionally for every trial — and identically in
    the serial, parallel, and resumed paths — so all of them walk the
    exact same :class:`numpy.random.SeedSequence` child stream.
    """
    seed_seq = np.random.SeedSequence(base_seed)
    return [
        tuple(int(s.generate_state(1)[0]) for s in seed_seq.spawn(3))
        for _ in range(n_trials)
    ]


def _build_trial_inputs(
    trace_factory: Callable[[int], ContactTrace],
    demand: DemandModel,
    n_clients: Optional[int],
    seeds: Tuple[int, int, int],
    *,
    faults: Optional[FaultSchedule] = None,
    spill_path: Optional[str] = None,
    share_event_stream: bool = True,
) -> TrialArtifacts:
    """Realize one trial's shared trace and request schedule.

    With *spill_path* the trace is memory-mapped from the parent's
    ``.ctb`` spill instead of regenerated from the trial seed — the
    zero-copy worker handoff — and the fingerprint memo is pre-seeded
    from the spill header when the parent recorded one.  *faults* is
    the trial's already-resolved fault schedule; it rides along so the
    shared event stream is built from the very objects the runs use.
    """
    trace_seed, request_seed, sim_seed = seeds
    trace_fingerprint: Optional[str] = None
    if spill_path is not None and is_binary_trace(spill_path):
        trace, trace_fingerprint = load_spilled_trace(spill_path)
    else:
        # No spill for this trial (or a stale path from a resumed
        # queue manifest): regenerate from the trial seed as always.
        trace = trace_factory(trace_seed)
    clients = n_clients or trace.n_nodes
    requests = generate_requests(
        demand, clients, trace.duration, seed=request_seed
    )
    return TrialArtifacts(
        trace,
        requests,
        sim_seed,
        faults=faults,
        trace_fingerprint=trace_fingerprint,
        share_event_stream=share_event_stream,
    )


def _memo_fingerprint(inputs: object, method: str) -> Optional[str]:
    """A memoized fingerprint off *inputs*, or ``None`` to hash inline.

    ``None`` (plain :class:`TrialInputs`, external callers) makes
    :func:`~repro.simcache.run_key` fall back to the full hash pass —
    the memo is an amortization, never a requirement.
    """
    getter = getattr(inputs, method, None)
    if callable(getter):
        value = getter()
        return value if isinstance(value, str) else None
    return None


def _execute_run(
    factory: ProtocolFactory,
    inputs: TrialArtifacts,
    config: SimulationConfig,
    trial_faults: Optional[FaultSchedule],
    *,
    attempts_per_run: int,
    on_error: str,
    retry_backoff: float,
    max_backoff: float,
    cache: Optional[SimulationRunCache] = None,
) -> Tuple[
    Optional[SimulationResult],
    Optional[str],
    Dict[str, float],
    Optional[str],
]:
    """One (trial, protocol) run with the retry/skip policy applied.

    Returns ``(result, None, timing, run_key)`` on success and
    ``(None, error string, timing, run_key)`` after all attempts failed;
    with ``on_error="raise"`` the first failure propagates (identical in
    workers and in the serial loop).  *timing* reports the simulate
    stage's wall/CPU seconds (backoff sleeps excluded) and the number
    of attempts actually made; with a *cache* it also carries a
    ``"cache"`` marker (hit / miss / uncacheable).  *run_key* is the
    run's content-address when a cache is in use and the inputs were
    fingerprintable (``None`` otherwise) — the distributed backend
    records it with every published result.

    With a run cache, a content-key hit returns the stored result with
    zero attempts — no simulation happens; a completed miss is stored
    for next time.  Runs whose inputs cannot be fingerprinted execute
    uncached.

    Two trial-scoped amortizations apply when *inputs* is a
    :class:`~repro.experiments.artifacts.TrialArtifacts` (the runner
    always passes one): the cache key reuses the trial's memoized
    content fingerprints instead of re-hashing the arrays per
    protocol, and the simulation reuses the trial's prebuilt event
    stream instead of re-merging — both substitutions are
    byte-identical.  The protocol instance built to fingerprint the
    cache key is reused for the first simulation attempt rather than
    discarded and rebuilt (it is factory-fresh either way; retries
    still rebuild).
    """
    cache_key: Optional[str] = None
    cache_marker: Optional[float] = None
    probe: Optional[ReplicationProtocol] = None
    if cache is not None:
        try:
            probe = factory(inputs.trace, inputs.requests)
        # repro-lint: ignore[RPL007]
        except Exception:
            # A failing factory is the attempt loop's business (retry
            # policy, error accounting) — never the cache's: the same
            # error re-raises from the attempt loop below.
            probe = None
        if probe is not None:
            try:
                cache_key = run_key(
                    config,
                    probe,
                    inputs.sim_seed,
                    inputs.trace,
                    inputs.requests,
                    trial_faults,
                    trace_fingerprint=_memo_fingerprint(
                        inputs, "trace_fingerprint"
                    ),
                    requests_fingerprint=_memo_fingerprint(
                        inputs, "requests_fingerprint"
                    ),
                    faults_fingerprint=(
                        _memo_fingerprint(inputs, "faults_fingerprint")
                        if getattr(inputs, "faults", None) is trial_faults
                        else None
                    ),
                )
                cache_marker = _CACHE_MISS
            except UncacheableRunError as error:
                cache_marker = _CACHE_UNCACHEABLE
                get_logger("repro.simcache").debug(
                    "run not cacheable", error=str(error)
                )
        if cache_key is not None:
            cached = cache.get(cache_key)
            if cached is not None:
                hit_timing = {
                    "wall_s": 0.0,
                    "cpu_s": 0.0,
                    "attempts": 0.0,
                    "cache": _CACHE_HIT,
                }
                return cached, None, hit_timing, cache_key
    result: Optional[SimulationResult] = None
    last_error: Optional[BaseException] = None
    wall_s = 0.0
    cpu_s = 0.0
    attempts_made = 0
    # The trial's shared premerged stream, when inputs carry one built
    # from this very fault schedule (None otherwise — the engine then
    # merges inline, exactly as before).
    stream_getter = getattr(inputs, "event_stream", None)
    use_stream = (
        callable(stream_getter)
        and getattr(inputs, "faults", None) is trial_faults
    )
    for attempt in range(attempts_per_run):
        if attempt:
            delay = min(retry_backoff * (2.0 ** (attempt - 1)), max_backoff)
            if delay > 0:
                time.sleep(delay)
        attempts_made = attempt + 1
        timer = Stopwatch()
        try:
            # The cache probe is a factory-fresh, never-run protocol —
            # reuse it for the first attempt instead of building an
            # identical twin.  Retries rebuild: a failed attempt may
            # have mutated protocol state.
            if attempt == 0 and probe is not None:
                protocol = probe
            else:
                protocol = factory(inputs.trace, inputs.requests)
            prebuilt = stream_getter(config) if use_stream else None
            result = simulate(
                inputs.trace,
                inputs.requests,
                config,
                protocol,
                seed=inputs.sim_seed,
                faults=trial_faults,
                prebuilt_events=prebuilt,
            )
            timer.stop()
            wall_s += timer.wall
            cpu_s += timer.cpu
            break
        except Exception as error:
            timer.stop()
            wall_s += timer.wall
            cpu_s += timer.cpu
            if on_error == "raise":
                raise
            last_error = error
    timing: Dict[str, float] = {
        "wall_s": wall_s,
        "cpu_s": cpu_s,
        "attempts": attempts_made,
    }
    if cache_marker is not None:
        timing["cache"] = cache_marker
    if result is not None:
        if cache is not None and cache_key is not None:
            cache.put(cache_key, result)
        return result, None, timing, cache_key
    error_text = f"{type(last_error).__name__}: {last_error}"
    return None, error_text, timing, cache_key


def _run_status(
    result: Optional[SimulationResult], timing: Dict[str, float]
) -> str:
    """Telemetry status of one executed unit.

    ``"cached"`` marks a run-cache hit — the same status checkpoint
    resume uses, since in both cases no simulation was performed.
    """
    if result is None:
        return "failed"
    if timing.get("cache") == _CACHE_HIT:
        return "cached"
    return "ok"


def _count_cache_marker(
    counts: Dict[str, int], marker: Optional[float]
) -> None:
    """Accumulate one unit's cache disposition into the sweep counters."""
    if marker is None:
        return
    if marker == _CACHE_HIT:
        counts["hits"] += 1
    elif marker == _CACHE_MISS:
        counts["misses"] += 1
    else:
        counts["uncacheable"] += 1


#: Fork-inherited state for pooled workers.  Set by ``run_comparison``
#: immediately before the pool is created and cleared afterwards; the
#: forked children inherit it by memory copy, so the trace factories and
#: protocol factories (typically closures) never need to be pickled.
_WORKER_CONTEXT: Optional[Dict[str, Any]] = None

#: One (trial, protocol, trace seed, request seed, sim seed) work unit.
_WorkUnit = Tuple[int, str, int, int, int]

#: Per-process cumulative profiler (lazily created when profiling is
#: requested); shared across all units a worker executes so one
#: ``.pstats`` file per worker accumulates its whole share of the sweep.
_PROCESS_PROFILER: Optional[cProfile.Profile] = None


def _process_profiler(
    profile_dir: Optional[str],
) -> Optional[cProfile.Profile]:
    global _PROCESS_PROFILER
    if profile_dir is None:
        return None
    if _PROCESS_PROFILER is None:
        _PROCESS_PROFILER = cProfile.Profile()
    return _PROCESS_PROFILER


def _dump_profile(
    profiler: cProfile.Profile, profile_dir: str, prefix: str
) -> None:
    """Write the cumulative stats, overwriting after every unit so a
    crashed worker still leaves its latest snapshot behind."""
    profiler.dump_stats(
        os.path.join(profile_dir, f"{prefix}-{os.getpid()}.pstats")
    )


def _pool_run(
    unit: _WorkUnit,
) -> Tuple[
    int, str, Optional[SimulationResult], Optional[str], Dict[str, float]
]:
    """Execute one work unit inside a pooled worker process."""
    context = _WORKER_CONTEXT
    if context is None:  # pragma: no cover - defensive
        raise SimulationError(
            "worker context missing; the pool must be created with the "
            "fork start method by run_comparison"
        )
    trial, name, trace_seed, request_seed, sim_seed = unit
    inputs_by_trial: Dict[int, TrialArtifacts] = context["inputs_by_trial"]
    faults = context["faults"]
    trial_faults = faults(trial) if callable(faults) else faults
    setup_wall = 0.0
    inputs = inputs_by_trial.get(trial)
    if inputs is None:
        # First unit of this trial in this worker: realize the shared
        # randomness once and reuse it for the trial's other protocols.
        # A spilled trial memory-maps the parent's .ctb copy (with its
        # travelling fingerprint) instead of regenerating the trace.
        setup_timer = Stopwatch()
        spills: Dict[int, str] = context.get("trial_spills") or {}
        inputs = _build_trial_inputs(
            context["trace_factory"],
            context["demand"],
            context["n_clients"],
            (trace_seed, request_seed, sim_seed),
            faults=trial_faults,
            spill_path=spills.get(trial),
            share_event_stream=context.get("share_event_streams", True),
        )
        setup_timer.stop()
        setup_wall = setup_timer.wall
        # Keep every trial's (possibly memmapped) inputs for reuse but
        # only the newest trial's materialized event stream — the
        # stream is the big per-trial allocation.
        for other in inputs_by_trial.values():
            other.drop_event_stream()
        inputs_by_trial[trial] = inputs
    profile_dir = context["profile_dir"]
    profiler = _process_profiler(profile_dir)
    if profiler is not None:
        profiler.enable()
    try:
        result, error, timing, _ = _execute_run(
            context["protocols"][name],
            inputs,
            context["config"],
            trial_faults,
            attempts_per_run=context["attempts_per_run"],
            on_error=context["on_error"],
            retry_backoff=context["retry_backoff"],
            max_backoff=context["max_backoff"],
            cache=context["cache"],
        )
    finally:
        if profiler is not None:
            profiler.disable()
            _dump_profile(profiler, profile_dir, "worker")
    timing["setup_wall_s"] = setup_wall
    return trial, name, result, error, timing


class _SweepAccounting:
    """Per-unit bookkeeping shared by every executor.

    Executors report each finished unit through :meth:`record`; the
    parent owns the outcome maps, the checkpoint file, live progress,
    the cache hit/miss counters, and the failure-text byte bound — so
    all of those behave identically whichever backend ran the unit.
    """

    def __init__(
        self,
        *,
        checkpoint: Optional[ComparisonCheckpoint],
        reporter: Optional[_ProgressReporter],
        cache_counts: Dict[str, int],
        attempts_per_run: int,
    ) -> None:
        self.results_map: Dict[Tuple[int, str], SimulationResult] = {}
        self.failures_map: Dict[Tuple[int, str], TrialFailure] = {}
        self.telemetry_map: Dict[Tuple[int, str], RunTelemetry] = {}
        self.checkpoint = checkpoint
        self.reporter = reporter
        self.cache_counts = cache_counts
        self.attempts_per_run = attempts_per_run

    def record(
        self,
        trial: int,
        name: str,
        result: Optional[SimulationResult],
        error: Optional[str],
        timing: Dict[str, float],
        *,
        worker: Optional[str] = None,
        attempts: Optional[int] = None,
    ) -> None:
        """One finished ``(trial, protocol)`` unit, success or failure.

        *worker*/*attempts* are distributed-backend attribution: which
        worker ran the unit and how many claims its failure consumed.
        """
        _count_cache_marker(self.cache_counts, timing.get("cache"))
        telemetry = RunTelemetry(
            trial=trial,
            protocol=name,
            status=_run_status(result, timing),
            wall_s=timing.get("wall_s", 0.0),
            cpu_s=timing.get("cpu_s", 0.0),
            setup_wall_s=timing.get("setup_wall_s", 0.0),
            attempts=int(timing.get("attempts", 0)),
            gain_rate=result.gain_rate if result is not None else None,
            worker=worker,
        )
        self.telemetry_map[(trial, name)] = telemetry
        if self.reporter is not None:
            self.reporter.report(telemetry)
        if result is None:
            self.failures_map[(trial, name)] = TrialFailure(
                trial=trial,
                protocol=name,
                error=truncate_error_text(error or "unknown error"),
                attempts=(
                    attempts
                    if attempts is not None
                    else self.attempts_per_run
                ),
            )
            return
        self.results_map[(trial, name)] = result
        if self.checkpoint is not None:
            self.checkpoint.record(trial, name, result)


def _run_units_serial(
    units: List[_WorkUnit],
    spec: "SweepSpec",
    record: Callable[..., None],
) -> None:
    """The historical in-order walk, reported through *record*.

    Trial inputs are realized once per trial and reused across the
    trial's protocols (units arrive trial-major) — including the
    trial's memoized fingerprints and premerged event stream, so every
    protocol after the first skips the hash and merge passes too.
    """
    inputs: Optional[TrialArtifacts] = None
    current_trial = -1
    share_streams = bool(spec.extra.get("share_event_streams", True))
    profiler = _process_profiler(spec.profile_dir)
    for unit in units:
        trial, name = unit[0], unit[1]
        setup_wall = 0.0
        trial_faults = (
            spec.faults(trial) if callable(spec.faults) else spec.faults
        )
        if trial != current_trial:
            setup_timer = Stopwatch()
            inputs = _build_trial_inputs(
                spec.trace_factory,
                spec.demand,
                spec.n_clients,
                unit[2:],
                faults=trial_faults,
                share_event_stream=share_streams,
            )
            setup_timer.stop()
            setup_wall = setup_timer.wall
            current_trial = trial
        assert inputs is not None
        if profiler is not None:
            profiler.enable()
        try:
            result, error, timing, _ = _execute_run(
                spec.protocols[name],
                inputs,
                spec.config,
                trial_faults,
                attempts_per_run=spec.attempts_per_run,
                on_error=spec.on_error,
                retry_backoff=spec.retry_backoff,
                max_backoff=spec.max_backoff,
                cache=spec.cache,
            )
        finally:
            if profiler is not None:
                profiler.disable()
                assert spec.profile_dir is not None
                _dump_profile(profiler, spec.profile_dir, "serial")
        timing["setup_wall_s"] = setup_wall
        record(trial, name, result, error, timing)


def _run_units_parallel(
    units: List[_WorkUnit],
    spec: "SweepSpec",
    record: Callable[..., None],
    *,
    n_workers: int,
) -> None:
    """Fan *units* out over a fork pool; the parent owns the accounting.

    Workers inherit the factories through fork (no pickling of
    closures); only the small work-unit tuples and the completed
    :class:`~repro.sim.metrics.SimulationResult` objects cross the
    process boundary.  Completed runs are reported to *record* by the
    parent as they arrive, so checkpointing and the ``on_error``
    policies compose exactly like the serial walk.
    """
    global _WORKER_CONTEXT
    context = {
        "trace_factory": spec.trace_factory,
        "demand": spec.demand,
        "config": spec.config,
        "protocols": spec.protocols,
        "n_clients": spec.n_clients,
        "faults": spec.faults,
        "on_error": spec.on_error,
        "attempts_per_run": spec.attempts_per_run,
        "retry_backoff": spec.retry_backoff,
        "max_backoff": spec.max_backoff,
        "profile_dir": spec.profile_dir,
        "cache": spec.cache,
        "trial_spills": spec.extra.get("trial_spills"),
        "share_event_streams": spec.extra.get("share_event_streams", True),
        "inputs_by_trial": {},
    }
    mp_context = multiprocessing.get_context("fork")
    _WORKER_CONTEXT = context
    try:
        with ProcessPoolExecutor(
            max_workers=min(n_workers, len(units)), mp_context=mp_context
        ) as pool:
            futures = {pool.submit(_pool_run, unit): unit for unit in units}
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_EXCEPTION)
                for future in done:
                    # Worker exceptions only escape _execute_run under
                    # on_error="raise"; propagate the first one observed
                    # and drop the rest of the sweep, like the serial
                    # path aborting mid-walk.
                    try:
                        trial, name, result, error, timing = future.result()
                    except BaseException:
                        for pending in remaining:
                            pending.cancel()
                        raise
                    record(trial, name, result, error, timing)
    finally:
        _WORKER_CONTEXT = None


def run_comparison(
    *,
    trace_factory: Callable[[int], ContactTrace],
    demand: DemandModel,
    config: SimulationConfig,
    protocols: Dict[str, ProtocolFactory],
    n_trials: int,
    base_seed: int = 0,
    baseline: str = "OPT",
    n_clients: Optional[int] = None,
    faults: Optional[FaultsLike] = None,
    on_error: str = "raise",
    max_retries: int = 2,
    retry_backoff: float = 0.1,
    max_backoff: float = 5.0,
    checkpoint_path: Optional[PathLike] = None,
    n_workers: Optional[int] = None,
    progress: Optional[ProgressLike] = None,
    profile_dir: Optional[PathLike] = None,
    run_cache: RunCacheLike = None,
    executor: "ExecutorLike" = None,
    share_event_streams: bool = True,
    trial_spill_dir: Optional[PathLike] = None,
) -> ComparisonResult:
    """Run every protocol on *n_trials* shared trace/request realizations.

    Parameters
    ----------
    trace_factory:
        Maps a trial seed to a contact trace (synthetic generators close
        over their configuration here).
    protocols:
        Display name -> factory; the factory receives the trial's trace
        and requests so trace-dependent baselines (heterogeneous OPT) can
        be built per trial.
    baseline:
        The protocol whose mean gain rate anchors normalized losses.
    faults:
        Optional fault injection: a :class:`~repro.faults.FaultSchedule`
        applied to every trial, or a callable ``trial -> FaultSchedule``
        for per-trial variation.  Every protocol within a trial sees the
        same faults (the comparison stays paired).
    on_error:
        ``"raise"`` propagates the first failure (historical behavior);
        ``"skip"`` records it and continues; ``"retry"`` re-attempts up
        to *max_retries* times with exponential backoff (*retry_backoff*
        doubling per attempt, capped at *max_backoff* seconds), then
        records the failure and continues.
    checkpoint_path:
        When given, every completed run is persisted there as JSON and
        already-completed runs are loaded instead of re-simulated, so an
        interrupted sweep resumes with identical statistics.
    n_workers:
        ``None``/``1`` runs serially (the historical behavior).  With
        ``k > 1`` the pending ``(trial, protocol)`` runs execute on a
        ``k``-process pool (fork start method); per-run seeds come from
        the identical seed walk, so the resulting statistics are
        bit-identical to a serial sweep.  Requires a platform with the
        ``fork`` start method (falls back to serial with a warning
        otherwise).  With ``on_error="raise"`` the first observed worker
        failure propagates, which — unlike the serial path — is not
        necessarily the earliest failing trial.
    progress:
        ``True`` logs one structured line per completed run (and a
        final summary) through ``repro.obs.log``; a callable receives a
        dict per run with running counts, elapsed time, and the run's
        :class:`RunTelemetry` fields.  Reporting fires in completion
        order; the deterministic record is the returned ``telemetry``.
    profile_dir:
        When given, each executing process accumulates a cProfile of
        its simulate stages and dumps ``worker-<pid>.pstats`` (or
        ``serial-<pid>.pstats``) there after every unit.  Inspect with
        ``python -m pstats``.
    run_cache:
        Content-addressed result reuse (see :mod:`repro.simcache`).
        ``None`` defers to the ``REPRO_SIM_CACHE`` environment variable
        (unset disables); ``True``/``False`` force it on/off; a path or
        :class:`~repro.simcache.SimulationRunCache` enables it at that
        root.  Cache hits return the stored result without simulating,
        are reported with ``status="cached"`` (like checkpoint resume),
        and hit/miss counters land in the sweep manifest under
        ``"run_cache"``.
    executor:
        Which backend runs the pending units (see :mod:`repro.dist`).
        ``None`` (default) consults the ``REPRO_SWEEP_EXECUTOR``
        environment variable, then falls back to the historical
        ``n_workers`` selection.  ``"serial"``, ``"process"``, or
        ``"workqueue"`` pick a backend by name (``n_workers`` sizes it);
        a :class:`~repro.dist.SweepExecutor` instance is used as-is.
        The fault-tolerant ``"workqueue"`` backend coordinates
        independent worker processes through an on-disk queue with
        leases, crash-absorbing supervision, and poison-unit
        quarantine; all backends produce bit-identical statistics.
        Under ``on_error="raise"`` the work-queue backend raises
        :class:`~repro.errors.SimulationError` (the original exception
        type does not cross the process boundary).
    share_event_streams:
        Per-trial event-stream sharing (default on): the merged
        fault/request/contact stream is built once per trial and
        reused by every protocol via ``Simulation(prebuilt_events=)``
        — bit-identical to the per-protocol merge it replaces.
        ``False`` restores merge-per-protocol (the benchmark baseline;
        results are identical either way).  Sharing is skipped
        automatically for memory-mapped traces, which stream instead.
    trial_spill_dir:
        Zero-copy trial handoff for parallel and distributed sweeps:
        the parent realizes each pending trial's trace once, spills it
        to ``<dir>/trial-<k>.ctb``, and workers memory-map that copy
        (sharing the page cache) instead of each regenerating it from
        the trial seed.  With a run cache the trace fingerprint is
        computed once at spill time and travels in the spill header,
        so workers never re-hash.  Spilled traces take the engine's
        streamed mode — bit-identical to eager.  The directory is
        created if needed; files are left behind for inspection and
        reuse.  Ignored by the plain serial path, which realizes each
        trial exactly once anyway.
    """
    if n_trials <= 0:
        raise ConfigurationError(f"n_trials must be > 0, got {n_trials}")
    if baseline not in protocols:
        raise ConfigurationError(
            f"baseline {baseline!r} missing from protocols {sorted(protocols)}"
        )
    if on_error not in ("raise", "skip", "retry"):
        raise ConfigurationError(
            f"on_error must be 'raise', 'skip', or 'retry', got {on_error!r}"
        )
    if max_retries < 0:
        raise ConfigurationError(f"max_retries must be >= 0, got {max_retries}")
    if retry_backoff < 0 or max_backoff < 0:
        raise ConfigurationError("backoff delays must be >= 0")
    if n_workers is not None and n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    profile_path: Optional[str] = None
    if profile_dir is not None:
        profile_path = os.fspath(profile_dir)
        os.makedirs(profile_path, exist_ok=True)
    cache = resolve_run_cache(run_cache)
    cache_counts: Dict[str, int] = {"hits": 0, "misses": 0, "uncacheable": 0}
    sweep_timer = Stopwatch()

    checkpoint = (
        ComparisonCheckpoint.open(
            checkpoint_path,
            base_seed=base_seed,
            n_trials=n_trials,
            protocols=list(protocols),
        )
        if checkpoint_path is not None
        else None
    )
    attempts_per_run = 1 + (max_retries if on_error == "retry" else 0)
    trial_seeds = _derive_trial_seeds(base_seed, n_trials)

    # The dist import happens lazily: repro.dist builds on this module,
    # and by execution time this module is fully initialized.
    from ..dist import executors as dist_executors

    executor_obj = dist_executors.resolve_executor(
        executor, n_workers=n_workers
    )

    parallel = (
        executor_obj is None and n_workers is not None and n_workers > 1
    )
    if parallel and "fork" not in multiprocessing.get_all_start_methods():
        warnings.warn(
            "n_workers > 1 needs the 'fork' start method; running serially",
            RuntimeWarning,
            stacklevel=2,
        )
        parallel = False

    #: (trial, protocol) -> completed result / failure / telemetry,
    #: assembled into trial-major order at the end (identical to the
    #: serial walk) by the executor-agnostic accounting.
    accounting = _SweepAccounting(
        checkpoint=checkpoint,
        reporter=None,
        cache_counts=cache_counts,
        attempts_per_run=attempts_per_run,
    )
    if checkpoint is not None:
        for trial in range(n_trials):
            for name in protocols:
                if checkpoint.has(trial, name):
                    result = checkpoint.get(trial, name)
                    accounting.results_map[(trial, name)] = result
                    accounting.telemetry_map[(trial, name)] = RunTelemetry(
                        trial=trial,
                        protocol=name,
                        status="cached",
                        gain_rate=result.gain_rate,
                    )
    pending_units: List[_WorkUnit] = [
        (trial, name, *trial_seeds[trial])
        for trial in range(n_trials)
        for name in protocols
        if (trial, name) not in accounting.results_map
    ]
    reporter = (
        _ProgressReporter(len(pending_units), progress)
        if progress
        else None
    )
    accounting.reporter = reporter

    # Cap the pool at the machine and the workload: more workers than
    # cores (or than pending units) only add fork and IPC overhead —
    # BENCH_speed.json showed n_workers=4 on cpu_count=1 running slower
    # than serial.  An effective count of 1 bypasses the pool entirely.
    effective_workers = n_workers if n_workers is not None else 1
    if parallel:
        available_cpus = os.cpu_count() or 1
        capped = min(
            effective_workers, available_cpus, max(len(pending_units), 1)
        )
        if capped < effective_workers:
            get_logger("repro.experiments.sweep").info(
                "capping sweep workers",
                requested=effective_workers,
                effective=capped,
                cpu_count=available_cpus,
                pending_units=len(pending_units),
            )
        effective_workers = capped
        if effective_workers <= 1:
            parallel = False

    if executor_obj is None:
        if parallel and pending_units:
            executor_obj = dist_executors.ProcessPoolExecutor(
                effective_workers
            )
        else:
            executor_obj = dist_executors.SerialExecutor()

    # Zero-copy trial handoff: realize each pending trial's trace once
    # in the parent, spill it to .ctb, and let every worker memory-map
    # that copy.  The serial walk realizes each trial exactly once
    # anyway, so it skips the spill (and keeps the faster eager mode).
    trial_spills: Optional[Dict[int, str]] = None
    if (
        trial_spill_dir is not None
        and pending_units
        and not isinstance(executor_obj, dist_executors.SerialExecutor)
    ):
        spill_root = os.fspath(trial_spill_dir)
        os.makedirs(spill_root, exist_ok=True)
        spill_timer = Stopwatch()
        trial_spills = {}
        for trial in sorted({unit[0] for unit in pending_units}):
            spill_trace = trace_factory(trial_seeds[trial][0])
            trial_spills[trial] = spill_trial_trace(
                spill_trace,
                os.path.join(spill_root, f"trial-{trial}.ctb"),
                trace_fingerprint=(
                    fingerprint_trace(spill_trace)
                    if cache is not None
                    else None
                ),
            )
            del spill_trace
        spill_timer.stop()
        get_logger("repro.experiments.sweep").info(
            "spilled trial traces",
            trials=len(trial_spills),
            dir=spill_root,
            wall_s=f"{spill_timer.wall:.2f}",
        )

    executor_extras: Optional[Dict[str, Any]] = None
    if pending_units:
        spec_extra: Dict[str, Any] = {
            "share_event_streams": share_event_streams,
        }
        if trial_spills:
            spec_extra["trial_spills"] = trial_spills
        spec = dist_executors.SweepSpec(
            trace_factory=trace_factory,
            demand=demand,
            config=config,
            protocols=dict(protocols),
            n_clients=n_clients,
            faults=faults,
            on_error=on_error,
            attempts_per_run=attempts_per_run,
            retry_backoff=retry_backoff,
            max_backoff=max_backoff,
            profile_dir=profile_path,
            cache=cache,
            base_seed=base_seed,
            n_trials=n_trials,
            extra=spec_extra,
        )
        executor_extras = executor_obj.execute(
            pending_units, spec, accounting.record
        )

    results_map = accounting.results_map
    failures_map = accounting.failures_map
    telemetry_map = accounting.telemetry_map
    collected: Dict[str, List[SimulationResult]] = {
        name: [] for name in protocols
    }
    failures: List[TrialFailure] = []
    telemetry_records: List[RunTelemetry] = []
    for trial in range(n_trials):
        for name in protocols:
            key = (trial, name)
            if key in telemetry_map:
                telemetry_records.append(telemetry_map[key])
            if key in results_map:
                collected[name].append(results_map[key])
            elif key in failures_map:
                failures.append(failures_map[key])
    if reporter is not None:
        reporter.finish(len(failures))
    if not any(collected.values()):
        raise SimulationError(
            f"every run failed across {n_trials} trial(s); "
            f"first failure: {failures[0].protocol}: {failures[0].error}"
        )
    stats = {
        name: AlgorithmStats(
            name=name,
            gain_rates=np.array([r.gain_rate for r in results]),
            results=tuple(results),
        )
        for name, results in collected.items()
        if results
    }
    sweep_timer.stop()
    sweep_manifest: Dict[str, Any] = {
        "config_fingerprint": config.fingerprint(),
        "base_seed": base_seed,
        "n_trials": n_trials,
        "protocols": sorted(protocols),
        "executor": executor_obj.name or type(executor_obj).__name__,
        "n_workers": getattr(executor_obj, "n_workers", 1),
        "share_event_streams": share_event_streams,
        "n_spilled_trials": len(trial_spills) if trial_spills else 0,
        "n_runs_executed": len(pending_units),
        "n_failures": len(failures),
        "wall_s": sweep_timer.wall,
        "cpu_s": sweep_timer.cpu,
        "environment": environment_provenance(),
    }
    metrics_reg = obs_metrics.enabled_registry()
    if metrics_reg is not None:
        sweep_manifest["metrics"] = metrics_reg.snapshot()
    if cache is not None:
        sweep_manifest["run_cache"] = {
            "root": cache.root,
            "hits": cache_counts["hits"],
            "misses": cache_counts["misses"],
            "uncacheable": cache_counts["uncacheable"],
        }
    if executor_extras:
        sweep_manifest.update(executor_extras)
    if checkpoint is not None:
        checkpoint.set_manifest(sweep_manifest)
    return ComparisonResult(
        stats=stats,
        baseline=baseline,
        failures=tuple(failures),
        n_trials=n_trials,
        telemetry=tuple(telemetry_records),
        manifest=sweep_manifest,
    )
