"""The ``repro bench`` speed harness: measured, tracked performance.

Two measurements, both written to ``BENCH_speed.json`` at the repo root
so the perf trajectory is tracked across PRs:

* **engine throughput** — one simulation run (events processed per
  second) on the optimized :class:`~repro.sim.engine.Simulation` versus
  the frozen pre-optimization baseline
  (:class:`~repro.sim._reference.ReferenceSimulation`), for a hook-free
  static protocol and for QCR.  Both engines must produce bit-identical
  results; the speedup is their wall-clock ratio.
* **streamed large-scale case** — a sparse many-node trace generated
  chunk-by-chunk straight to the binary on-disk format, memory-mapped,
  and simulated through the streamed columnar pipeline; records
  generation time, events/s, and the run-phase Python-heap peak
  (tracemalloc), and asserts the streamed run is bit-identical to the
  same columns processed in RAM.
* **parallel sweep** — a small :func:`~repro.experiments.run_comparison`
  sweep run serially and with ``n_workers`` processes; the statistics
  must be bit-identical and the speedup is the wall-clock ratio.  On a
  single-core container the parallel run cannot beat serial — the
  recorded ``cpu_count`` says how to read the number.
* **allocation solver** — the lazy (CELF) heterogeneous greedy of
  :func:`~repro.allocation.greedy_heterogeneous` versus the textbook
  non-lazy greedy on a trace-sized instance.  Both must return the
  identical allocation; the report records wall time and the number of
  marginal-gain evaluations each performed (the lazy savings).

Timing numbers are noisy by nature; consumers (CI's perf-smoke job)
should fail on *crashes or identity violations*, never on timings.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
import tracemalloc
from typing import Any, Callable, Dict, Optional, Tuple, Union

import numpy as np

from ..allocation.submodular import (
    HeterogeneousProblem,
    greedy_heterogeneous,
)
from ..contacts import homogeneous_poisson_trace, load_binary
from ..demand import DemandModel, generate_requests
from ..sim._reference import ReferenceSimulation
from ..sim.engine import Simulation
from ..utility import StepUtility
from .checkpoint import result_to_dict
from .reporting import render_table
from .runner import run_comparison
from .scenarios import (
    Scenario,
    homogeneous_scenario,
    large_scale_scenario,
    standard_protocols,
)

__all__ = [
    "run_speed_benchmark",
    "render_speed_report",
    "BENCH_FILENAME",
]

BENCH_FILENAME = "BENCH_speed.json"
_FORMAT = "repro-speed-benchmark"
_VERSION = 1

PathLike = Union[str, "os.PathLike[str]"]


def _results_identical(a, b) -> bool:
    """Exact (bit-level) equality of two SimulationResults.

    Manifests are provenance (they carry host timings that differ on
    every run) and are excluded from the comparison.
    """
    da, db = result_to_dict(a), result_to_dict(b)
    da.pop("manifest", None)
    db.pop("manifest", None)
    return da == db


def _time_run(build: Callable[[], Simulation], repeats: int) -> Tuple[float, Any]:
    """Best-of-*repeats* wall time of one ``Simulation.run()``."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        sim = build()
        start = time.perf_counter()
        result = sim.run()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def _time_run_pair(
    build_ref: Callable[[], Simulation],
    build_opt: Callable[[], Simulation],
    repeats: int,
) -> Tuple[float, float, Any, Any]:
    """Interleaved best-of-*repeats* timing of two engines.

    Alternating reference/optimized runs within each repeat keeps slow
    machine-load drift correlated between the two measurements, which
    stabilizes the reported ratio far better than timing each engine
    in its own sequential block.
    """
    ref_best = float("inf")
    opt_best = float("inf")
    ref_result = None
    opt_result = None
    for _ in range(repeats):
        sim = build_ref()
        start = time.perf_counter()
        ref_result = sim.run()
        ref_best = min(ref_best, time.perf_counter() - start)
        sim = build_opt()
        start = time.perf_counter()
        opt_result = sim.run()
        opt_best = min(opt_best, time.perf_counter() - start)
    return ref_best, opt_best, ref_result, opt_result


def _run_peak_mb(build: Callable[[], Simulation]) -> float:
    """Peak Python-heap (MB) of one run phase, measured by tracemalloc.

    Setup happens before tracing starts, so the figure isolates what the
    event pipeline itself allocates — the quantity the columnar layout
    is supposed to keep flat (and, for streamed runs, bounded by the
    merge chunk size).  Tracemalloc slows execution, which is why this
    is a separate run and never shares a process phase with the timers.
    """
    sim = build()
    tracemalloc.start()
    try:
        sim.run()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 1e6


def _bench_engine_case(
    scenario: Scenario,
    protocol_name: str,
    *,
    seed: int,
    repeats: int,
) -> Dict[str, Any]:
    """Time optimized vs. reference engine on one (scenario, protocol)."""
    factories = standard_protocols(scenario, include=(protocol_name,))
    trace = scenario.trace_factory(seed)
    requests = generate_requests(
        scenario.demand, trace.n_nodes, trace.duration, seed=seed + 1
    )
    n_events = len(trace.times) + len(requests.times)

    def build(cls) -> Simulation:
        protocol = factories[protocol_name](trace, requests)
        return cls(
            trace, requests, scenario.config, protocol, seed=seed + 2
        )

    ref_seconds, opt_seconds, ref_result, opt_result = _time_run_pair(
        lambda: build(ReferenceSimulation), lambda: build(Simulation), repeats
    )
    return {
        "protocol": protocol_name,
        "n_events": n_events,
        "reference_seconds": ref_seconds,
        "optimized_seconds": opt_seconds,
        "reference_events_per_sec": n_events / ref_seconds,
        "optimized_events_per_sec": n_events / opt_seconds,
        "speedup": ref_seconds / opt_seconds,
        "bit_identical": _results_identical(ref_result, opt_result),
        "optimized_run_peak_mb": _run_peak_mb(lambda: build(Simulation)),
    }


def _bench_streamed_case(
    *,
    n_nodes: int,
    target_events: int,
    duration: float,
    seed: int,
    chunk_events: int,
    protocol_name: str = "UNI",
) -> Dict[str, Any]:
    """The large-scale columnar case: binary trace, memmap, streamed run.

    The trace is generated chunk-by-chunk straight to the binary format,
    reopened as a read-only memory map, and simulated through the
    streamed event pipeline.  One eager run on the same columns loaded
    into RAM checks that streaming is bit-identical to the in-memory
    path, and a tracemalloc run records the streamed run-phase heap peak
    (which stays bounded by the merge chunk, not the trace size).
    """
    scenario = large_scale_scenario(
        StepUtility(10.0),
        n_nodes=n_nodes,
        target_events=target_events,
        duration=duration,
    )
    factories = standard_protocols(scenario, include=(protocol_name,))
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        path = os.path.join(tmp, "trace.ctb")
        start = time.perf_counter()
        streamed_trace = homogeneous_poisson_trace(
            n_nodes,
            scenario.mu_estimate,
            duration,
            seed=seed,
            out=path,
            chunk_target=chunk_events,
        )
        generation_seconds = time.perf_counter() - start
        requests = generate_requests(
            scenario.demand,
            n_nodes,
            duration,
            seed=seed + 1,
            chunk_target=chunk_events,
        )
        eager_trace = load_binary(path, mmap=False, validate=False)
        n_events = len(streamed_trace.times) + len(requests.times)

        def build(trace) -> Simulation:
            protocol = factories[protocol_name](trace, requests)
            return Simulation(
                trace,
                requests,
                scenario.config,
                protocol,
                seed=seed + 2,
                chunk_events=chunk_events,
            )

        def build_eager() -> Simulation:
            protocol = factories[protocol_name](eager_trace, requests)
            return Simulation(
                eager_trace,
                requests,
                scenario.config,
                protocol,
                seed=seed + 2,
            )

        sim = build(streamed_trace)
        start = time.perf_counter()
        streamed_result = sim.run()
        streamed_seconds = time.perf_counter() - start
        eager_result = build_eager().run()
        peak_mb = _run_peak_mb(lambda: build(streamed_trace))
    return {
        "protocol": protocol_name,
        "n_nodes": n_nodes,
        "n_events": n_events,
        "chunk_events": chunk_events,
        "generation_seconds": generation_seconds,
        "streamed_seconds": streamed_seconds,
        "streamed_events_per_sec": n_events / streamed_seconds,
        "run_peak_mb": peak_mb,
        "bit_identical": _results_identical(streamed_result, eager_result),
    }


def _bench_parallel_sweep(
    scenario: Scenario,
    *,
    n_trials: int,
    n_workers: int,
    base_seed: int,
) -> Dict[str, Any]:
    """Time a run_comparison sweep serially vs. on a worker pool."""
    protocols = standard_protocols(scenario, include=("OPT", "QCR", "SQRT"))
    kwargs = dict(
        trace_factory=scenario.trace_factory,
        demand=scenario.demand,
        config=scenario.config,
        protocols=protocols,
        n_trials=n_trials,
        base_seed=base_seed,
        baseline="OPT",
    )
    start = time.perf_counter()
    serial = run_comparison(**kwargs)
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_comparison(**kwargs, n_workers=n_workers)
    parallel_seconds = time.perf_counter() - start
    identical = set(serial.stats) == set(parallel.stats) and all(
        np.array_equal(
            serial.stats[name].gain_rates, parallel.stats[name].gain_rates
        )
        for name in serial.stats
    )
    return {
        "n_trials": n_trials,
        "n_workers": n_workers,
        "n_runs": n_trials * len(protocols),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds,
        "bit_identical": identical,
    }


def _bench_allocation(
    *,
    n_items: int,
    n_servers: int,
    n_clients: int,
    rho: int,
    seed: int,
) -> Dict[str, Any]:
    """Time CELF vs. the non-lazy greedy on one heterogeneous instance."""
    rng = np.random.default_rng(seed)
    demand = DemandModel.pareto(n_items, omega=1.0, total_rate=4.0)
    rates = rng.gamma(shape=2.0, scale=0.01, size=(n_servers, n_clients))
    problem = HeterogeneousProblem(
        demand=demand,
        utility=StepUtility(25.0),
        rate_matrix=rates,
        rho=rho,
    )
    start = time.perf_counter()
    lazy = greedy_heterogeneous(problem)
    lazy_seconds = time.perf_counter() - start
    start = time.perf_counter()
    naive = greedy_heterogeneous(problem, lazy=False)
    naive_seconds = time.perf_counter() - start
    return {
        "n_items": n_items,
        "n_servers": n_servers,
        "n_clients": n_clients,
        "rho": rho,
        "naive_seconds": naive_seconds,
        "celf_seconds": lazy_seconds,
        "speedup": naive_seconds / lazy_seconds,
        "naive_evaluations": naive.evaluations,
        "celf_evaluations": lazy.evaluations,
        "evaluations_saved_pct": 100.0
        * (1.0 - lazy.evaluations / naive.evaluations),
        "identical_allocation": bool(
            np.array_equal(lazy.allocation, naive.allocation)
        ),
    }


def run_speed_benchmark(
    *,
    quick: bool = False,
    n_workers: int = 4,
    repeats: Optional[int] = None,
    output: Optional[PathLike] = BENCH_FILENAME,
) -> Dict[str, Any]:
    """Run the full speed harness and (optionally) write *output*.

    ``quick`` shrinks horizons and trial counts for CI smoke runs; the
    structure of the report is identical at both scales.
    """
    if repeats is None:
        repeats = 3 if quick else 7
    duration = 400.0 if quick else 2000.0
    sweep_duration = 200.0 if quick else 600.0
    n_trials = 4 if quick else 8

    utility = StepUtility(10.0)
    engine_scenario = homogeneous_scenario(
        utility, duration=duration, record_interval=None
    )
    cases = [
        _bench_engine_case(
            engine_scenario, name, seed=11, repeats=repeats
        )
        for name in ("OPT", "QCR")
    ]
    streamed = _bench_streamed_case(
        n_nodes=10**4 if quick else 10**6,
        target_events=10**6 if quick else 10**7,
        duration=duration,
        seed=29,
        chunk_events=1 << 18,
    )
    sweep_scenario = homogeneous_scenario(
        utility, duration=sweep_duration, record_interval=None
    )
    parallel = _bench_parallel_sweep(
        sweep_scenario,
        n_trials=n_trials,
        n_workers=n_workers,
        base_seed=17,
    )
    allocation = _bench_allocation(
        n_items=20 if quick else 40,
        n_servers=15 if quick else 40,
        n_clients=30 if quick else 80,
        rho=3 if quick else 5,
        seed=23,
    )
    report: Dict[str, Any] = {
        "format": _FORMAT,
        "version": _VERSION,
        "scale": "quick" if quick else "full",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "engine": {
            "cases": cases,
            "min_speedup": min(case["speedup"] for case in cases),
        },
        "streamed": streamed,
        "parallel": parallel,
        "allocation": allocation,
    }
    if output is not None:
        tmp_path = f"{os.fspath(output)}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        os.replace(tmp_path, output)
    return report


def render_speed_report(report: Dict[str, Any]) -> str:
    """An aligned text summary of a :func:`run_speed_benchmark` report."""
    engine_rows = [
        [
            case["protocol"],
            f"{case['reference_events_per_sec']:,.0f}",
            f"{case['optimized_events_per_sec']:,.0f}",
            f"{case['speedup']:.2f}x",
            f"{case['optimized_run_peak_mb']:.1f}",
            "yes" if case["bit_identical"] else "NO",
        ]
        for case in report["engine"]["cases"]
    ]
    engine_table = render_table(
        [
            "protocol",
            "ref ev/s",
            "opt ev/s",
            "speedup",
            "peak MB",
            "bit-identical",
        ],
        engine_rows,
        title=f"engine throughput ({report['scale']} scale)",
    )
    streamed = report["streamed"]
    streamed_table = render_table(
        ["metric", "value"],
        [
            ["nodes", f"{streamed['n_nodes']:,}"],
            ["events", f"{streamed['n_events']:,}"],
            ["protocol", streamed["protocol"]],
            ["generation", f"{streamed['generation_seconds']:.2f}s"],
            ["streamed run", f"{streamed['streamed_seconds']:.2f}s"],
            [
                "throughput",
                f"{streamed['streamed_events_per_sec']:,.0f} ev/s",
            ],
            ["run peak heap", f"{streamed['run_peak_mb']:.1f} MB"],
            ["chunk", f"{streamed['chunk_events']:,} events"],
            [
                "bit-identical",
                "yes" if streamed["bit_identical"] else "NO",
            ],
        ],
        title="streamed large-scale case (binary trace, memmap)",
    )
    par = report["parallel"]
    parallel_table = render_table(
        ["metric", "value"],
        [
            ["runs", par["n_runs"]],
            ["workers", par["n_workers"]],
            ["serial", f"{par['serial_seconds']:.2f}s"],
            ["parallel", f"{par['parallel_seconds']:.2f}s"],
            ["speedup", f"{par['speedup']:.2f}x"],
            ["bit-identical", "yes" if par["bit_identical"] else "NO"],
            ["cpu count", report["cpu_count"]],
        ],
        title="parallel sweep",
    )
    alloc = report["allocation"]
    size = (
        f"{alloc['n_items']} items x {alloc['n_servers']} servers, "
        f"rho={alloc['rho']}"
    )
    alloc_table = render_table(
        ["metric", "value"],
        [
            ["instance", size],
            ["naive greedy", f"{alloc['naive_seconds']:.3f}s"],
            ["lazy (CELF)", f"{alloc['celf_seconds']:.3f}s"],
            ["speedup", f"{alloc['speedup']:.2f}x"],
            ["naive evals", f"{alloc['naive_evaluations']:,}"],
            ["CELF evals", f"{alloc['celf_evaluations']:,}"],
            ["evals saved", f"{alloc['evaluations_saved_pct']:.1f}%"],
            [
                "identical allocation",
                "yes" if alloc["identical_allocation"] else "NO",
            ],
        ],
        title="allocation solver (lazy vs. naive greedy)",
    )
    return (
        engine_table
        + "\n\n"
        + streamed_table
        + "\n\n"
        + parallel_table
        + "\n\n"
        + alloc_table
    )
